//! Umbrella crate for the GridBank (GASA) reproduction.
//!
//! Re-exports every workspace crate under one roof so examples and
//! integration tests can `use gridbank_suite::...`.
pub use gridbank_broker as broker;
pub use gridbank_core as bank;
pub use gridbank_crypto as crypto;
pub use gridbank_gsp as gsp;
pub use gridbank_meter as meter;
pub use gridbank_net as net;
pub use gridbank_obs as obs;
pub use gridbank_rur as rur;
pub use gridbank_sim as sim;
pub use gridbank_trade as trade;
