//! Tour of the three payment strategies (§3.1) and the DBC scheduling
//! algorithms behind the broker (§2.2, refs [2,5]).
//!
//! Part 1 pays for the same job three ways — pay-before-use (direct
//! transfer), pay-as-you-go (GridHash chain), pay-after-use (GridCheque)
//! — and shows what each party holds afterwards.
//!
//! Part 2 sweeps a batch over deadline×budget with all four DBC
//! algorithms, printing the completion/cost/makespan table the Nimrod-G
//! evaluations report.
//!
//! Run with: `cargo run --example payment_strategies`

use std::sync::Arc;

use gridbank_suite::bank::api::BankRequest;
use gridbank_suite::bank::clock::Clock;
use gridbank_suite::bank::port::{BankPort, InProcessBank};
use gridbank_suite::bank::server::{GridBank, GridBankConfig};
use gridbank_suite::broker::broker::GridResourceBroker;
use gridbank_suite::broker::job::{JobBatch, QosConstraints};
use gridbank_suite::broker::payment::PaymentModule;
use gridbank_suite::broker::scheduling::Algorithm;
use gridbank_suite::crypto::cert::SubjectName;
use gridbank_suite::gsp::charging::PaymentInstrument;
use gridbank_suite::gsp::provider::{GridServiceProvider, GspConfig};
use gridbank_suite::meter::levels::AccountingLevel;
use gridbank_suite::meter::machine::{JobSpec, MachineSpec, OsFlavour};
use gridbank_suite::rur::record::ChargeableItem;
use gridbank_suite::rur::units::MS_PER_HOUR;
use gridbank_suite::rur::Credits;
use gridbank_suite::trade::pricing::FlatPricing;
use gridbank_suite::trade::rates::ServiceRates;

fn make_provider(
    bank: &Arc<GridBank>,
    name: &str,
    speed: u32,
    price: Credits,
    seed: u64,
) -> GridServiceProvider<InProcessBank> {
    let cert = format!("/O=Grid/OU=GSP/CN={name}");
    let subject = SubjectName(cert.clone());
    let mut port = InProcessBank::new(bank.clone(), subject.clone());
    port.create_account(None).expect("provider account");
    GridServiceProvider::new(
        GspConfig {
            cert,
            host: format!("{name}.grid.org"),
            machines: vec![MachineSpec {
                host: format!("{name}-node"),
                os: OsFlavour::Linux,
                speed,
                cores: 4,
                memory_mb: 16_384,
            }],
            base_rates: ServiceRates::new().with(ChargeableItem::Cpu, price),
            pool_size: 8,
            accounting_level: AccountingLevel::Standard,
            machine_seed: seed,
        },
        bank.verifying_key(),
        InProcessBank::new(bank.clone(), subject),
        Box::new(FlatPricing),
    )
}

fn main() {
    let clock = Clock::new();
    let bank = Arc::new(GridBank::new(GridBankConfig::default(), clock.clone()));
    let admin = SubjectName("/O=GridBank/OU=Admin/CN=operator".into());
    let alice = SubjectName::new("UWA", "CSSE", "alice");
    let mut alice_port = InProcessBank::new(bank.clone(), alice.clone());
    let alice_account = alice_port.create_account(None).expect("account");
    bank.handle(
        &admin,
        BankRequest::AdminDeposit { account: alice_account, amount: Credits::from_gd(10_000) },
    );

    println!("=== Part 1: the three payment strategies (§3.1) ===\n");
    let rates = ServiceRates::new().with(ChargeableItem::Cpu, Credits::from_gd(2));
    let job = JobSpec {
        work: 720_000,
        parallelism: 1,
        memory_mb: 0,
        storage_mb: 0,
        network_mb: 0,
        sys_pct: 0,
    };

    // -- Pay before use ------------------------------------------------
    let mut p1 = make_provider(&bank, "gsp-prepaid", 100, Credits::from_gd(2), 1);
    let p1_account = p1.gbcm.port.my_account().unwrap().id;
    let fixed_price = Credits::from_gd(5);
    let conf = alice_port
        .direct_transfer(p1_account, fixed_price, "gsp-prepaid.grid.org")
        .expect("prepay");
    let out = p1
        .execute_job(&alice.0, PaymentInstrument::Prepaid(conf), &job, &rates, clock.now_ms())
        .expect("prepaid job");
    println!("pay-before-use : fixed price {fixed_price}, metered charge {} (provider keeps the fixed price)", out.charge);

    // -- Pay as you go ---------------------------------------------------
    let mut p2 = make_provider(&bank, "gsp-streaming", 100, Credits::from_gd(2), 2);
    let chain = alice_port
        .request_hash_chain(&p2.cert, 5_000, Credits::from_milli(1), 10_000_000)
        .expect("hash chain");
    let commitment = chain.commitment.clone();
    let signature = chain.signature.clone();
    let mut revealed = 0u32;
    let out = {
        let mut source = |k: u32| {
            revealed = k;
            chain.payword(k).map_err(gridbank_suite::gsp::GspError::Bank)
        };
        p2.execute_streamed_job(
            &alice.0,
            &commitment,
            &signature,
            &mut source,
            &job,
            &rates,
            clock.now_ms(),
            1_000,
        )
        .expect("streamed job")
    };
    println!(
        "pay-as-you-go  : charge {}, paid {} via {} paywords of {}",
        out.charge, out.paid, revealed, commitment.value_per_word
    );

    // -- Pay after use ---------------------------------------------------
    let mut p3 = make_provider(&bank, "gsp-postpaid", 100, Credits::from_gd(2), 3);
    let cheque =
        alice_port.request_cheque(&p3.cert, Credits::from_gd(10), 10_000_000).expect("cheque");
    let out = p3
        .execute_job(&alice.0, PaymentInstrument::Cheque(cheque), &job, &rates, clock.now_ms())
        .expect("cheque job");
    println!(
        "pay-after-use  : reserved G$10.000000, charge {}, paid {}, released {}\n",
        out.charge, out.paid, out.released
    );

    println!("=== Part 2: DBC scheduling sweep (Nimrod-G algorithms) ===\n");
    // Two providers: cheap/slow and expensive/fast.
    println!(
        "{:<18} {:>9} {:>7} {:>12} {:>14}",
        "algorithm", "deadline", "done%", "cost", "makespan"
    );
    for deadline_h in [1u64, 2, 4] {
        for alg in Algorithm::ALL {
            let bank = Arc::new(GridBank::new(GridBankConfig::default(), Clock::new()));
            let admin = SubjectName("/O=GridBank/OU=Admin/CN=operator".into());
            let user = SubjectName::new("UWA", "CSSE", "sweeper");
            let mut gbpm = PaymentModule::new(
                InProcessBank::new(bank.clone(), user.clone()),
                Credits::from_gd(40),
            );
            let account = gbpm.ensure_account(None).unwrap();
            bank.handle(
                &admin,
                BankRequest::AdminDeposit { account, amount: Credits::from_gd(100_000) },
            );
            let mut providers = vec![
                make_provider(&bank, "cheap", 100, Credits::from_gd(1), 10),
                make_provider(&bank, "fast", 400, Credits::from_gd(8), 11),
            ];
            let mut broker = GridResourceBroker::new(user.0.clone(), gbpm);
            let batch = JobBatch::sweep(
                "sweep",
                JobSpec {
                    work: 90_000_000, // 15 min on cheap, ~4 min on fast
                    parallelism: 1,
                    memory_mb: 0,
                    storage_mb: 0,
                    network_mb: 0,
                    sys_pct: 0,
                },
                16,
                QosConstraints {
                    deadline_ms: deadline_h.saturating_mul(MS_PER_HOUR),
                    budget: Credits::from_gd(40),
                },
            );
            match broker.run_batch(alg, &batch, &mut providers, 0) {
                Ok(r) => println!(
                    "{:<18} {:>8}h {:>6}% {:>12} {:>13.2}m",
                    alg.name(),
                    deadline_h,
                    r.completion_pct(),
                    r.total_paid.to_string(),
                    r.makespan_ms as f64 / 60_000.0
                ),
                Err(e) => println!("{:<18} {:>8}h   failed: {e}", alg.name(), deadline_h),
            }
        }
        println!();
    }
    println!(
        "Tighter deadlines force traffic onto the fast/expensive resource\n\
         (cost rises); looser deadlines let cost-optimization save money\n\
         at the price of a longer makespan — the classic Nimrod-G result."
    );
}
