//! Multi-branch GridBank with inter-branch settlement — §6's future
//! work, implemented.
//!
//! Three Virtual Organizations each run their own GridBank branch.
//! Consumers pay providers across VO boundaries: the payee is credited
//! immediately while the debit parks in the drawer branch's clearing
//! account; a periodic settlement round nets each branch pair and moves
//! only the difference.
//!
//! Run with: `cargo run --example multi_branch`

use std::sync::Arc;

use gridbank_suite::bank::accounts::GbAccounts;
use gridbank_suite::bank::admin::GbAdmin;
use gridbank_suite::bank::branch::{Branch, InterBank};
use gridbank_suite::bank::clock::Clock;
use gridbank_suite::bank::db::Database;
use gridbank_suite::rur::Credits;

const ADMIN: &str = "/O=GridBank/OU=Admin/CN=operator";

fn make_branch(id: u16, vo: &str) -> Branch {
    let db = Arc::new(Database::new(1, id));
    let accounts = GbAccounts::new(db, Clock::new());
    let admin = GbAdmin::new(accounts.clone(), [ADMIN.to_string()]);
    println!("[vo  ] branch {id:04} serves VO `{vo}`");
    Branch::new(id, accounts, admin)
}

fn main() {
    println!("=== Multi-branch GridBank (§6) ===\n");

    let mut interbank = InterBank::new();
    let vos = ["physics", "bioinformatics", "climate"];
    let mut accounts = Vec::new();
    for (i, vo) in vos.iter().enumerate() {
        let branch = make_branch(i.saturating_add(1) as u16, vo);
        // Two members per VO: a consumer and a provider.
        let consumer =
            branch.accounts.create_account(&format!("/O={vo}/CN=consumer"), None).unwrap();
        let provider =
            branch.accounts.create_account(&format!("/O={vo}/CN=provider"), None).unwrap();
        branch.admin.deposit(ADMIN, &consumer, Credits::from_gd(100)).unwrap();
        accounts.push((consumer, provider));
        interbank.add_branch(branch);
    }
    println!();

    // Cross-VO trade: each VO's consumer uses the next VO's provider, and
    // physics additionally buys a lot from climate.
    let flows = [
        (accounts[0].0, accounts[1].1, 20i64), // physics -> bio
        (accounts[1].0, accounts[2].1, 15),    // bio -> climate
        (accounts[2].0, accounts[0].1, 10),    // climate -> physics
        (accounts[0].0, accounts[2].1, 25),    // physics -> climate
        (accounts[2].0, accounts[0].1, 5),     // climate -> physics again
    ];
    for (from, to, gd) in flows {
        interbank.cross_branch_transfer(from, to, Credits::from_gd(gd), Vec::new()).unwrap();
        println!("[pay ] {from} -> {to}: G${gd} (payee credited immediately)");
    }

    println!("\nclearing balances before settlement:");
    for a in 1..=3u16 {
        for b in 1..=3u16 {
            if a != b {
                let parked = interbank.branch(a).unwrap().clearing_balance(b);
                if parked.is_positive() {
                    println!("  branch {a:04} owes branch {b:04}: {parked}");
                }
            }
        }
    }

    let report = interbank.settle().unwrap();
    println!("\nsettlement round:");
    for p in &report.pairs {
        println!(
            "  {}↔{}: gross {} + {} → net {}",
            p.branch_a, p.branch_b, p.gross_a_to_b, p.gross_b_to_a, p.net
        );
    }
    println!(
        "\ntotal gross flow : {}\ntotal net settled: {}  (netting saved {})",
        report.total_gross(),
        report.total_net(),
        report.total_gross().checked_sub(report.total_net()).unwrap()
    );

    println!("\nfinal balances:");
    for (i, (consumer, provider)) in accounts.iter().enumerate() {
        let branch = interbank.branch(i.saturating_add(1) as u16).unwrap();
        let c = branch.accounts.account_details(consumer).unwrap();
        let p = branch.accounts.account_details(provider).unwrap();
        println!("  {:<16} consumer {}   provider {}", vos[i], c.available, p.available);
    }
    println!("\nfederation conservation check: total funds = {}", interbank.total_funds());
}
