//! Quickstart: the complete Figure 1 interaction, over the wire.
//!
//! One GridBank server, one consumer (Alice), one provider (gsp-alpha):
//!
//! 1. a CA issues certificates; Alice signs a *proxy* (single sign-on);
//! 2. the bank server starts and gates connections on its account tables;
//! 3. both parties open accounts over mutually-authenticated channels;
//! 4. Alice buys a GridCheque; the provider validates it, executes her
//!    job under a template account, meters usage into a GGF RUR,
//!    and redeems cheque + RUR with the bank;
//! 5. statements show the transfer with the RUR stored as evidence.
//!
//! Run with: `cargo run --example quickstart`
//!
//! Pass `--trace` to enable telemetry: the whole flow runs under one
//! trace whose span tree (broker, net, server layers, GSP charging) is
//! printed at the end, and whose trace id is stamped into the bank's
//! transfer record — the audit trail and the trace correlate.

use std::sync::Arc;

use gridbank_suite::bank::client::GridBankClient;
use gridbank_suite::bank::clock::Clock;
use gridbank_suite::bank::server::{GridBank, GridBankConfig, GridBankServer, ServerCredentials};
use gridbank_suite::broker::payment::PaymentModule;
use gridbank_suite::crypto::cert::{create_proxy, CertificateAuthority, SubjectName};
use gridbank_suite::crypto::keys::{KeyMaterial, SigningIdentity};
use gridbank_suite::crypto::rng::DeterministicStream;
use gridbank_suite::gsp::charging::PaymentInstrument;
use gridbank_suite::gsp::provider::{GridServiceProvider, GspConfig};
use gridbank_suite::meter::levels::AccountingLevel;
use gridbank_suite::meter::machine::{JobSpec, MachineSpec, OsFlavour};
use gridbank_suite::net::transport::{Address, Network};
use gridbank_suite::rur::record::ChargeableItem;
use gridbank_suite::rur::Credits;
use gridbank_suite::trade::pricing::FlatPricing;
use gridbank_suite::trade::rates::ServiceRates;

fn connect(
    network: &Network,
    from: &str,
    ca: &CertificateAuthority,
    user: &SigningIdentity,
    user_subject: SubjectName,
    clock: &Clock,
    seed: u64,
) -> GridBankClient {
    // CA-issued long-term certificate, then a short-lived proxy signed by
    // the *user* — the single sign-on credential everything else uses.
    let cert =
        ca.issue(user_subject, user.verifying_key(), 0, 1_000_000_000).expect("issue certificate");
    let proxy_id = SigningIdentity::generate(KeyMaterial { seed }, "proxy");
    let proxy = create_proxy(user, &cert, proxy_id.verifying_key(), 0, 1_000_000_000, 1)
        .expect("sign proxy");
    let mut nonces = DeterministicStream::from_u64(seed, b"client-nonce");
    GridBankClient::connect(
        network,
        Address::new(from),
        &Address::new("gridbank.grid.org"),
        ca.verifying_key(),
        clock.now_ms(),
        &proxy,
        &proxy_id,
        &mut nonces,
    )
    .expect("handshake with the bank")
}

fn main() {
    println!("=== GridBank quickstart: Figure 1, end to end ===\n");

    let tracing = std::env::args().any(|a| a == "--trace");
    if tracing {
        gridbank_suite::obs::set_telemetry(true);
    }
    // While live, every client call below carries this root's trace
    // context over the wire, so the server's spans join the same trace.
    let root = tracing.then(|| gridbank_suite::obs::root_span("quickstart", "figure1"));
    let root_trace_id = root.as_ref().map_or(0, |s| s.trace_id());

    // --- Public-key infrastructure (the GSI substitute) ---------------
    let ca = CertificateAuthority::new(
        SubjectName::new("GridBank", "CA", "Root"),
        SigningIdentity::generate(KeyMaterial { seed: 1 }, "ca"),
    );
    println!("[pki ] CA online: {}", ca.name());

    // --- The bank ------------------------------------------------------
    let clock = Clock::new();
    let bank = Arc::new(GridBank::new(GridBankConfig::default(), clock.clone()));
    let bank_identity = Arc::new(SigningIdentity::generate(KeyMaterial { seed: 2 }, "bank-tls"));
    let bank_cert = ca
        .issue(
            SubjectName::new("GridBank", "Server", "gridbank"),
            bank_identity.verifying_key(),
            0,
            1_000_000_000,
        )
        .expect("issue bank certificate");
    let network = Network::new();
    let _server = GridBankServer::start(
        &network,
        Address::new("gridbank.grid.org"),
        bank.clone(),
        ServerCredentials {
            certificate: bank_cert,
            identity: bank_identity,
            ca_key: ca.verifying_key(),
        },
        7,
    )
    .expect("bank server starts");
    println!("[bank] GridBank listening at gridbank.grid.org\n");

    // --- Identities ------------------------------------------------------
    let alice_id = SigningIdentity::generate(KeyMaterial { seed: 10 }, "alice");
    let alice_dn = SubjectName::new("UWA", "CSSE", "alice");
    let gsp_id = SigningIdentity::generate(KeyMaterial { seed: 11 }, "gsp-alpha");
    let gsp_dn = SubjectName::new("UniMelb", "GRIDS", "gsp-alpha");
    let admin_id = SigningIdentity::generate(KeyMaterial { seed: 12 }, "operator");
    let admin_dn = SubjectName("/O=GridBank/OU=Admin/CN=operator".into());

    // --- Accounts over authenticated channels -------------------------
    let mut alice =
        connect(&network, "alice.uwa.edu.au", &ca, &alice_id, alice_dn.clone(), &clock, 100);
    let alice_account = alice.create_account(Some("UWA".into())).expect("alice account");
    println!("[gsc ] Alice opened account {alice_account}");

    let mut gsp_client =
        connect(&network, "gsp-alpha.grid.org", &ca, &gsp_id, gsp_dn.clone(), &clock, 101);
    let gsp_account = gsp_client.create_account(Some("UniMelb".into())).expect("gsp account");
    println!("[gsp ] gsp-alpha opened account {gsp_account}");

    let mut operator = connect(&network, "ops.gridbank.org", &ca, &admin_id, admin_dn, &clock, 102);
    operator.admin_deposit(alice_account, Credits::from_gd(100)).expect("admin deposit");
    println!("[bank] operator deposited G$100 into Alice's account\n");

    // --- The provider --------------------------------------------------
    let rates = ServiceRates::new()
        .with(ChargeableItem::Cpu, Credits::from_gd(2))
        .with(ChargeableItem::Memory, Credits::from_milli(10))
        .with(ChargeableItem::Network, Credits::from_milli(5));
    let mut provider = GridServiceProvider::new(
        GspConfig {
            cert: gsp_dn.0.clone(),
            host: "gsp-alpha.grid.org".into(),
            machines: vec![MachineSpec {
                host: "node-1".into(),
                os: OsFlavour::Linux,
                speed: 200,
                cores: 8,
                memory_mb: 32_768,
            }],
            base_rates: rates,
            pool_size: 4,
            accounting_level: AccountingLevel::Standard,
            machine_seed: 1234,
        },
        bank.verifying_key(),
        gsp_client, // the provider's GBCM talks to the bank over the wire
        Box::new(FlatPricing),
    );

    // --- Negotiate, pay, execute (Figure 1 steps) ----------------------
    let quote = provider.quote(clock.now_ms(), 60_000).expect("GTS quote");
    println!(
        "[gts ] quoted rates: {} per CPU-hour (quote #{})",
        quote.rates.price(ChargeableItem::Cpu).unwrap(),
        quote.quote_id
    );

    let mut gbpm = PaymentModule::new(alice, Credits::from_gd(50));
    let cheque =
        gbpm.obtain_cheque(&gsp_dn.0, Credits::from_gd(20), 600_000).expect("GridCheque issued");
    println!(
        "[gbpm] GridCheque #{} for {} payable to {}",
        cheque.body.cheque_id, cheque.body.reserved, cheque.body.payee_cert
    );

    let job = JobSpec {
        work: 1_200_000, // ~6s on this machine
        parallelism: 4,
        memory_mb: 2_048,
        storage_mb: 0,
        network_mb: 120,
        sys_pct: 8,
    };
    let outcome = provider
        .execute_job(
            &alice_dn.0,
            PaymentInstrument::Cheque(cheque.clone()),
            &job,
            &quote.rates,
            clock.now_ms(),
        )
        .expect("job executes and settles");
    gbpm.settle_cheque(&cheque, outcome.paid);

    println!(
        "[gsp ] job ran under template account `{}` on {}",
        outcome.local_account, outcome.machine_host
    );
    println!(
        "[grm ] RUR: {} usage lines, span {}",
        outcome.rur.lines.len(),
        outcome.rur.job.span()
    );
    for line in &outcome.rur.lines {
        println!(
            "        {:<9} {:>14}  @ {}/{}",
            line.item.name(),
            line.usage.to_string(),
            line.price_per_unit,
            line.item.unit()
        );
    }
    println!(
        "[gbcm] charge {} — paid {}, released {}\n",
        outcome.charge, outcome.paid, outcome.released
    );

    // --- Statements -----------------------------------------------------
    let mut alice = gbpm.port; // reclaim the client
    let record = alice.my_account().expect("balance");
    println!("[bank] Alice:     available {}, locked {}", record.available, record.locked);
    let st = alice.statement(alice_account, 0, u64::MAX).expect("statement");
    println!(
        "[bank] statement: {} transactions, {} transfer (RUR evidence {} bytes)",
        st.transactions.len(),
        st.transfers.len(),
        st.transfers.first().map(|t| t.rur_blob.len()).unwrap_or(0)
    );

    if tracing {
        drop(root);
        let spans = gridbank_suite::obs::take_spans();
        println!("\n--- span trace ---");
        print!("{}", gridbank_suite::obs::render_trace(root_trace_id, &spans));
        let audit_trace = st.transfers.first().map(|t| t.trace_id).unwrap_or(0);
        println!(
            "[obs ] transfer record trace id {audit_trace:#018x} {} root trace",
            if audit_trace == root_trace_id { "matches" } else { "DOES NOT MATCH" }
        );
        assert_eq!(audit_trace, root_trace_id, "audit trail correlates with the trace");
    }

    println!("\nDone: consumer, provider and bank agree, with a signed audit trail.");
}
