//! Competitive operating model (§4.2) — open-market pricing and
//! bank-assisted price estimation.
//!
//! Part 1 runs an open market: providers post heterogeneous prices,
//! consumers schedule under deadline/budget, and the bank's confidential
//! transaction history accumulates. The bank is then asked to estimate
//! the market price of a resource "like provider 0" — without revealing
//! any individual transaction.
//!
//! Part 2 shows the GRACE auction protocols providers can sell capacity
//! through: English, Dutch, first-price sealed-bid, Vickrey, and a
//! clearing double auction.
//!
//! Run with: `cargo run --example competitive_market`

use gridbank_suite::broker::scheduling::Algorithm;
use gridbank_suite::rur::Credits;
use gridbank_suite::sim::scenario::{run_competitive, run_open_market, ScenarioConfig};
use gridbank_suite::sim::topology::TopologyConfig;
use gridbank_suite::sim::workload::{JobSizeDistribution, WorkloadConfig};
use gridbank_suite::trade::auction::{
    clear_double_auction, first_price_sealed, vickrey_sealed, DutchAuction, EnglishAuction, Order,
    SealedBid,
};

fn config() -> ScenarioConfig {
    ScenarioConfig {
        topology: TopologyConfig {
            providers: 6,
            machines_per_provider: 2,
            dynamic_pricing: true, // §1: price responds to demand
            ..TopologyConfig::default()
        },
        workload: WorkloadConfig {
            seed: 42,
            count: 30,
            consumers: 5,
            mean_interarrival_ms: 100,
            sizes: JobSizeDistribution::Uniform { lo: 1_000_000, hi: 5_000_000 },
            memory_mb: 0,
            network_mb: 0,
            diurnal: None,
        },
        algorithm: Algorithm::CostOpt,
        deadline_ms: 4 * 3_600_000,
        budget: Credits::from_gd(500),
    }
}

fn main() {
    println!("=== Competitive model (§4.2) ===\n");

    // --- Part 1: open market + price estimation -----------------------
    let market = run_open_market(&config());
    println!("open market: {} jobs completed, {} failed", market.completed, market.failed);
    println!("total paid to providers : {}", market.total_paid);
    println!("conservation drift      : {} (must be zero)", market.conservation_drift);
    println!("provider revenues:");
    for (i, r) in market.provider_revenue.iter().enumerate() {
        println!("  gsp-{i:02}: {r}");
    }

    let est = run_competitive(&config());
    println!(
        "\nbank price estimate for a resource like gsp-00: {} per CPU-hour\n\
         (from {} confidential history observations)\n",
        est.estimate, est.observations
    );

    // --- Part 2: the GRACE auction menu --------------------------------
    println!("=== Auction protocols (GRACE economic models) ===\n");

    let mut english = EnglishAuction::open(Credits::from_gd(2), Credits::from_milli(500));
    english.bid("alice", Credits::from_gd(2)).unwrap();
    english.bid("bob", Credits::from_milli(3_500)).unwrap();
    english.bid("alice", Credits::from_gd(5)).unwrap();
    let award = english.close().unwrap();
    println!("English auction  : {} wins at {}", award.winner, award.price);

    let mut dutch =
        DutchAuction::open(Credits::from_gd(10), Credits::from_gd(1), Credits::from_gd(3));
    dutch.tick().unwrap();
    dutch.tick().unwrap();
    let award = dutch.take("carol").unwrap();
    println!("Dutch auction    : {} takes at {}", award.winner, award.price);

    let bids = vec![
        SealedBid { bidder: "alice".into(), amount: Credits::from_gd(6) },
        SealedBid { bidder: "bob".into(), amount: Credits::from_gd(9) },
        SealedBid { bidder: "carol".into(), amount: Credits::from_gd(7) },
    ];
    let fp = first_price_sealed(&bids, Credits::from_gd(1)).unwrap();
    println!("First-price bid  : {} wins at {}", fp.winner, fp.price);
    let v = vickrey_sealed(&bids, Credits::from_gd(1)).unwrap();
    println!("Vickrey auction  : {} wins but pays {}", v.winner, v.price);

    let buys = vec![
        Order { trader: "hpc-lab".into(), limit: Credits::from_gd(8), quantity: 10 },
        Order { trader: "render-farm".into(), limit: Credits::from_gd(5), quantity: 6 },
    ];
    let sells = vec![
        Order { trader: "gsp-00".into(), limit: Credits::from_gd(4), quantity: 8 },
        Order { trader: "gsp-01".into(), limit: Credits::from_gd(6), quantity: 8 },
    ];
    println!("Double auction   :");
    for t in clear_double_auction(&buys, &sells) {
        println!("  {} buys {} units from {} at {}", t.buyer, t.quantity, t.seller, t.price);
    }
}
