//! Co-operative resource sharing — the executable version of Figure 4.
//!
//! Four participants who both provide and consume trade compute in a
//! ring. Prices follow the community's resource valuation (proportional
//! to speed), so "although computations on some resources are faster
//! because of better hardware, the slower resources have to compensate by
//! running longer" — and everyone ends up consuming about as much value
//! as they provide.
//!
//! Run with: `cargo run --example cooperative_barter`

use gridbank_suite::sim::scenario::run_cooperative;

fn main() {
    println!("=== Co-operative resource sharing (Figure 4) ===\n");
    let participants = 4;
    let rounds = 5;
    let work_per_job = 7_200_000; // ~20-72s of compute depending on speed

    let report = run_cooperative(participants, rounds, work_per_job, 2003);

    println!(
        "{:<28} {:>6} {:>16} {:>16} {:>16}",
        "participant", "speed", "consumed", "provided", "balance"
    );
    for row in &report.rows {
        println!(
            "{:<28} {:>6} {:>16} {:>16} {:>16}",
            row.name.rsplit('=').next().unwrap_or(&row.name),
            row.speed,
            row.consumed.to_string(),
            row.provided.to_string(),
            row.balance.to_string(),
        );
    }
    println!("\ntotal value exchanged : {}", report.total_exchanged);
    println!("equilibrium gap       : {}", report.equilibrium_gap);
    println!(
        "\nEvery participant consumed ≈ provided: the community price\n\
         authority's valuation (price ∝ speed) keeps the barter economy\n\
         at equilibrium, exactly the property §4.1 asks for."
    );
}
