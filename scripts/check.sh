#!/usr/bin/env bash
# Repository gate: formatting, lints, and the tier-1 build + test suite.
# Run from anywhere; exits non-zero on the first failure.
#
# CHECK_FULL=1 additionally enables every opt-in stage (LOOM, MIRI).
# A per-stage wall-clock summary prints after the final stage.
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ -n "${CHECK_FULL:-}" ]]; then
  LOOM="${LOOM:-1}"
  MIRI="${MIRI:-1}"
fi

STAGE_NAMES=()
STAGE_SECS=()
CURRENT_STAGE=""
STAGE_START=$SECONDS
stage_done() {
  if [[ -n "$CURRENT_STAGE" ]]; then
    STAGE_NAMES+=("$CURRENT_STAGE")
    STAGE_SECS+=("$((SECONDS - STAGE_START))")
    CURRENT_STAGE=""
  fi
}
stage() {
  stage_done
  CURRENT_STAGE="$1"
  STAGE_START=$SECONDS
  echo "== $1"
}

stage "cargo fmt --check"
cargo fmt --all --check

stage "cargo clippy (workspace, -D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

# Domain-invariant analysis (docs/STATIC_ANALYSIS.md): money arithmetic,
# idempotency stamps, no-panic request paths, Display parsing, metric
# registry. Exits non-zero on any violation or malformed allow
# directive; the report includes the suppression count per directive.
stage "gridbank-lint (deny violations; see docs/STATIC_ANALYSIS.md)"
cargo run -q -p gridbank-lint

stage "tier-1: cargo build --release && cargo test"
cargo build --release
# The root package's release build does not cover the workspace
# binaries the smoke stages below shell out to; build them explicitly.
cargo build --release -p gridbank-cli -p gridbank-bench
cargo test -q

# Chaos suite (E15): `cargo test` above already ran it at its fixed
# default seeds. Export CHAOS_SEED=<n> to additionally probe one extra
# storm seed.
if [[ -n "${CHAOS_SEED:-}" ]]; then
  stage "chaos suite with CHAOS_SEED=$CHAOS_SEED"
  cargo test -q --test chaos_payments
fi

# Vendored substitutes (vendor/*) are excluded: they mirror upstream
# docs we don't own. Every first-party crate must document cleanly.
stage "rustdoc (no-deps, warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet \
  -p gridbank-suite -p gridbank-bench -p gridbank-broker -p gridbank-cli \
  -p gridbank-core -p gridbank-crypto -p gridbank-gsp -p gridbank-meter \
  -p gridbank-net -p gridbank-obs -p gridbank-rur -p gridbank-sim \
  -p gridbank-trade

# Loadgen smoke (E16): a miniature end-to-end run against a live server
# must produce valid JSON with nonzero throughput for both strategies.
# Not a benchmark — only proves the pipeline path works.
stage "loadgen smoke (docs/BENCHMARKS.md §7)"
smoke_out="$(mktemp /tmp/loadgen_smoke.XXXXXX.json)"
./target/release/gridbank-bench loadgen \
  --strategies paybefore,cheque --duration-ms 200 --warmup-ms 50 \
  --out "$smoke_out"
if command -v python3 >/dev/null 2>&1; then
  python3 - "$smoke_out" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    report = json.load(f)
for name in ("paybefore", "cheque"):
    s = report["strategies"][name]
    assert s["ops"] > 0, f"{name}: zero ops"
    assert s["throughput_ops_per_sec"] > 0, f"{name}: zero throughput"
    assert s["latency_ns"]["p99"] >= s["latency_ns"]["p50"] > 0, f"{name}: bad percentiles"
print("loadgen smoke OK:", {n: report["strategies"][n]["ops"] for n in ("paybefore", "cheque")})
PY
else
  grep -q '"throughput_ops_per_sec": [1-9]' "$smoke_out" || {
    echo "loadgen smoke: no nonzero throughput in $smoke_out" >&2
    exit 1
  }
fi
rm -f "$smoke_out"

# Federation smoke (§6): two live branch servers, cross-branch payments
# over RPC, one netting pass. `gridbank settle` exits non-zero itself
# unless every clearing account nets to zero with no stranded credits.
stage "federation smoke (docs/PROTOCOLS.md §5)"
fed_out="$(./target/release/gridbank settle --branches 2 --payments 2)"
echo "$fed_out"
grep -q "clearing accounts net to zero" <<<"$fed_out" || {
  echo "federation smoke: settlement did not net to zero" >&2
  exit 1
}

# Ops smoke (E18 companion): scrape a live branch over the wire with the
# OPS_ADMIN-gated OpsQuery. The unauthorized probe must be refused, the
# health report must classify Healthy, and all six server.stage.*
# histograms must have recorded (docs/OBSERVABILITY.md §4).
stage "ops smoke (docs/OBSERVABILITY.md §4)"
ops_out="$(./target/release/gridbank metrics --remote bank --format jsonl)"
grep -q '"type":"ops-gate"' <<<"$ops_out" || {
  echo "ops smoke: unauthorized OpsQuery was not refused" >&2
  exit 1
}
grep -q '"type":"health".*"state":"Healthy"' <<<"$ops_out" || {
  echo "ops smoke: live branch did not report Healthy" >&2
  exit 1
}
for stage in queue decode dispatch lock journal reply; do
  grep -Eq "\"name\":\"server\.stage\.${stage}_ns\",\"count\":[1-9]" <<<"$ops_out" || {
    echo "ops smoke: server.stage.${stage}_ns empty or missing" >&2
    exit 1
  }
done

# Market smoke (docs/ECONOMY.md): a trimmed population-scale economy —
# Zipf spot traffic, capacity auctions with duplicate re-sends, barter,
# PayWord streams — through two live branches. `gridbank market` exits
# non-zero itself unless conservation, exactly-once settlement, and the
# zero-stranded-credit invariants all hold.
stage "market smoke (docs/ECONOMY.md)"
market_out="$(./target/release/gridbank market --population 60 --payments 30 --auctions 2)"
echo "$market_out"
grep -q "invariants: conservation, exactly-once settlement, zero stranded credit — OK" \
  <<<"$market_out" || {
  echo "market smoke: economy invariants not confirmed" >&2
  exit 1
}

# Recovery smoke (docs/STORAGE.md §5): populate a live durable branch
# over the wire, checkpoint, keep paying (the replay tail), kill the
# process state, restart on the same store, and require the restarted
# branch to serve with an identical ledger digest having replayed only
# the tail. `gridbank-bench loadgen --recovery` runs exactly that drill
# and reports the verdict; the strategy window is minimal — the drill
# is the payload here.
stage "recovery smoke (docs/STORAGE.md §5)"
rec_out="$(mktemp /tmp/recovery_smoke.XXXXXX.json)"
./target/release/gridbank-bench loadgen --recovery \
  --strategies paybefore --duration-ms 100 --warmup-ms 20 \
  --out "$rec_out"
if command -v python3 >/dev/null 2>&1; then
  python3 - "$rec_out" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    r = json.load(f)["recovery"]
assert r["invariants_ok"], "recovery drill invariants violated"
assert r["snapshots_loaded"] > 0, "no shard recovered from a snapshot"
assert 0 < r["tail_entries_replayed"] < r["journal_entries_total"], \
    "replay was not tail-only"
print("recovery smoke OK:", {k: r[k] for k in
      ("accounts", "tail_entries_replayed", "journal_entries_total")})
PY
else
  grep -q '"invariants_ok": true' "$rec_out" || {
    echo "recovery smoke: drill invariants not confirmed in $rec_out" >&2
    exit 1
  }
fi
rm -f "$rec_out"

# Docs link check: every relative markdown link target in README/DESIGN/
# docs must exist on disk — doc rot fails the gate, not review.
stage "docs dead-link check"
if command -v python3 >/dev/null 2>&1; then
python3 - <<'PY'
import os, re, sys
roots = ["README.md", "DESIGN.md", "EXPERIMENTS.md", "ROADMAP.md"] + [
    os.path.join("docs", f) for f in sorted(os.listdir("docs")) if f.endswith(".md")
]
link = re.compile(r"\[[^\]]*\]\(([^)#\s]+)(#[^)\s]*)?\)")
bad = []
for page in roots:
    base = os.path.dirname(page)
    for target, _frag in link.findall(open(page).read()):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        if not os.path.exists(os.path.normpath(os.path.join(base, target))):
            bad.append(f"{page}: broken link -> {target}")
for b in bad:
    print(b, file=sys.stderr)
if bad:
    sys.exit(1)
print(f"docs dead-link check OK ({len(roots)} pages)")
PY
else
  echo "docs dead-link check: python3 unavailable — skipping"
fi

# Opt-in concurrency stages (docs/STATIC_ANALYSIS.md). LOOM=1 rebuilds
# core/net with the yield-injecting sync facade and runs the five
# models (group-commit queue, idempotency dedup, snapshot-during-commit,
# transfer-vs-compaction, circuit breaker). LOOM_ITERS / LOOM_SEED tune
# the exploration (defaults 128 / fixed).
if [[ -n "${LOOM:-}" ]]; then
  stage "loom models (RUSTFLAGS=--cfg loom)"
  RUSTFLAGS="--cfg loom" cargo test -q -p gridbank-core -p gridbank-net loom_
fi

# MIRI=1 runs the codec + netting-engine unit tests under Miri when the
# component exists; the pinned toolchain may not ship it, so a missing
# cargo-miri is a skip, not a failure.
if [[ -n "${MIRI:-}" ]]; then
  if cargo miri --version >/dev/null 2>&1; then
    stage "miri (codec + netting engine)"
    cargo miri test -q -p gridbank-rur codec
    cargo miri test -q -p gridbank-core branch::
  else
    stage "miri: cargo-miri not installed for this toolchain — skipping"
    echo "       " \
         "(rustup component add miri on a nightly to enable)"
  fi
fi

stage_done
echo "== stage timing"
for i in "${!STAGE_NAMES[@]}"; do
  printf '  %5ss  %s\n' "${STAGE_SECS[$i]}" "${STAGE_NAMES[$i]}"
done
printf '  %5ss  total\n' "$SECONDS"

echo "== all checks passed"
