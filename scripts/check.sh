#!/usr/bin/env bash
# Repository gate: formatting, lints, and the tier-1 build + test suite.
# Run from anywhere; exits non-zero on the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy (workspace, -D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: cargo build --release && cargo test"
cargo build --release
cargo test -q

# Chaos suite (E15): `cargo test` above already ran it at its fixed
# default seeds. Export CHAOS_SEED=<n> to additionally probe one extra
# storm seed.
if [[ -n "${CHAOS_SEED:-}" ]]; then
  echo "== chaos suite with CHAOS_SEED=$CHAOS_SEED"
  cargo test -q --test chaos_payments
fi

echo "== all checks passed"
