//! Deterministic per-case random number generation.

/// A SplitMix64 generator seeded from `(test path, case index)`, so
/// every run of a property test draws the same inputs in the same
/// order — failures reproduce without recorded seeds.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator for one case of one test.
    pub fn deterministic(test_path: &str, case: u32) -> Self {
        // FNV-1a over the path, then fold in the case index.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in test_path.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: hash ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)) }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[lo, hi]` for any unsigned-convertible type.
    pub fn sample_u64_as<T: Copy + TryInto<u64> + TryFrom<u64>>(&mut self, lo: T, hi: T) -> T
    where
        <T as TryInto<u64>>::Error: std::fmt::Debug,
        <T as TryFrom<u64>>::Error: std::fmt::Debug,
    {
        let lo_u: u64 = lo.try_into().expect("range start fits u64");
        let hi_u: u64 = hi.try_into().expect("range end fits u64");
        assert!(lo_u <= hi_u, "empty range");
        let span = hi_u - lo_u;
        let draw =
            if span == u64::MAX { self.next_u64() } else { lo_u + self.next_u64() % (span + 1) };
        T::try_from(draw).expect("draw fits source type")
    }

    /// Uniform draw in `[lo, hi]` for signed types.
    pub fn sample_i64_as<T: Copy + Into<i64> + TryFrom<i64>>(&mut self, lo: T, hi: T) -> T
    where
        <T as TryFrom<i64>>::Error: std::fmt::Debug,
    {
        let lo_i: i64 = lo.into();
        let hi_i: i64 = hi.into();
        assert!(lo_i <= hi_i, "empty range");
        let span = hi_i.wrapping_sub(lo_i) as u64;
        let draw = if span == u64::MAX {
            self.next_u64() as i64
        } else {
            lo_i.wrapping_add((self.next_u64() % (span + 1)) as i64)
        };
        T::try_from(draw).expect("draw fits source type")
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
