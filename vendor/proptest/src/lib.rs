//! In-workspace property-testing mini-framework covering the `proptest`
//! API surface GridBank uses: the `proptest!` macro (with optional
//! `#![proptest_config(..)]`), range/tuple/`any`/`prop_map`/
//! `prop::collection::vec` strategies, a simple `".{a,b}"` string
//! strategy, and the `prop_assert!`/`prop_assert_eq!`/`prop_assume!`
//! macros. Cases are generated deterministically from the test's module
//! path, so failures reproduce exactly; shrinking is not implemented
//! (a failing case prints its generated inputs instead via Debug-free
//! message formatting at the assertion site).

use std::ops::{Range, RangeInclusive};

pub mod collection;
pub mod test_runner;

pub use test_runner::TestRng;

/// Why a generated case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// An assertion failed — the property is violated.
    Fail(String),
    /// The case was rejected by `prop_assume!` — draw another.
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// A rejection with the given reason.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

/// Runner configuration (only the `cases` knob is used in-workspace).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases each property must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A value generator.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_strategy {
    ($($t:ty => $sample:ident),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.$sample(self.start, self.end.wrapping_sub(1))
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.$sample(*self.start(), *self.end())
            }
        }
    )*};
}

int_strategy!(
    u8 => sample_u64_as,
    u16 => sample_u64_as,
    u32 => sample_u64_as,
    u64 => sample_u64_as,
    usize => sample_u64_as,
    i8 => sample_i64_as,
    i16 => sample_i64_as,
    i32 => sample_i64_as,
    i64 => sample_i64_as
);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy!((A)(A, B)(A, B, C)(A, B, C, D)(A, B, C, D, E)(A, B, C, D, E, G));

/// Whole-domain generation for [`any`].
pub trait Arbitrary {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// A strategy over the whole domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// String strategy from a pattern literal. Supports the shape the
/// workspace uses — `".{lo,hi}"` (any chars, length in `lo..=hi`) — and
/// falls back to a short alphanumeric string for other patterns.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (lo, hi) = parse_dot_repeat(self).unwrap_or((0, 16));
        let len = rng.sample_u64_as(lo, hi) as usize;
        // Mix ASCII with some multi-byte chars so codecs see both.
        const POOL: &[char] = &[
            'a', 'b', 'z', 'A', 'Z', '0', '9', ' ', '_', '-', '.', '/', ':', '=', '!', '#', 'é',
            'ß', '中', '€', '✓',
        ];
        (0..len).map(|_| POOL[rng.sample_u64_as(0, POOL.len() as u64 - 1) as usize]).collect()
    }
}

/// `Option` strategies, mirroring upstream `proptest::option`.
pub mod option {
    use super::{Strategy, TestRng};

    /// The strategy returned by [`of`].
    pub struct OptionStrategy<S>(S);

    /// A strategy yielding `None` about a quarter of the time and a
    /// value from `inner` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

fn parse_dot_repeat(pattern: &str) -> Option<(u64, u64)> {
    let rest = pattern.strip_prefix(".{")?.strip_suffix('}')?;
    let (lo, hi) = rest.split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

/// Runs a property once per generated case.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(48))]
///     #[test]
///     fn addition_commutes(a in 0i64..100, b in 0i64..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let test_path = concat!(module_path!(), "::", stringify!($name));
            let mut accepted: u32 = 0;
            let mut draws: u32 = 0;
            while accepted < config.cases {
                assert!(
                    draws < config.cases.saturating_mul(64).saturating_add(256),
                    "proptest `{}`: too many rejected cases", test_path
                );
                let mut rng = $crate::TestRng::deterministic(test_path, draws);
                draws += 1;
                $(let $pat = $crate::Strategy::generate(&($strategy), &mut rng);)+
                let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Fail(message)) => {
                        panic!(
                            "proptest `{}` failed on case {} (draw {}): {}",
                            test_path, accepted, draws - 1, message
                        );
                    }
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Property assertion: fails the current case (not the process) so the
/// runner can report which generated case violated the property.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Property equality assertion; both sides are shown on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), left, right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), left, right
            )));
        }
    }};
}

/// Rejects the current case; the runner draws a fresh one.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}

/// The glob-import surface test modules use.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy,
        TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_and_tuples((a, b) in (0u8..10, -5i64..=5), v in any::<u64>()) {
            prop_assert!(a < 10);
            prop_assert!((-5..=5).contains(&b), "b out of range: {b}");
            prop_assert_eq!(v, v);
        }

        #[test]
        fn vec_and_map_strategies(
            items in prop::collection::vec((1u32..100).prop_map(|x| x * 2), 0..8)
        ) {
            prop_assert!(items.len() < 8);
            prop_assert!(items.iter().all(|x| x % 2 == 0));
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn string_pattern_bounds_length(s in ".{0,64}") {
            prop_assert!(s.chars().count() <= 64);
        }

        #[test]
        fn option_strategy_yields_both_variants(
            opts in prop::collection::vec(prop::option::of(0u32..100), 64..65)
        ) {
            prop_assert!(opts.iter().flatten().all(|x| *x < 100));
        }
    }

    #[test]
    fn deterministic_generation() {
        let mut a = crate::TestRng::deterministic("x", 3);
        let mut b = crate::TestRng::deterministic("x", 3);
        let strat = (0u64..1000, -10i64..10);
        assert_eq!(
            crate::Strategy::generate(&strat, &mut a),
            crate::Strategy::generate(&strat, &mut b)
        );
    }
}
