//! Collection strategies (`prop::collection::vec`).

use std::ops::{Range, RangeInclusive};

use crate::{Strategy, TestRng};

/// A length range for collection strategies. Mirrors proptest's
/// `SizeRange`: built from `usize` ranges (or a single `usize`), so
/// unsuffixed integer literals at call sites infer as `usize`.
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange { lo: r.start, hi_inclusive: r.end.saturating_sub(1) }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi_inclusive: n }
    }
}

/// The strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    length: SizeRange,
}

/// Vectors of `element` values with a length drawn from `length`.
pub fn vec<S: Strategy>(element: S, length: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, length: length.into() }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = (self.length.lo..=self.length.hi_inclusive).generate(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
