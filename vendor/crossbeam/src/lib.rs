//! In-workspace substitute for the subset of `crossbeam` GridBank uses:
//! bounded MPMC-ish channels (the workspace only ever has one consumer
//! per receiver, so `std::sync::mpsc` underneath is sufficient) and
//! scoped threads.

/// Bounded channels in the style of `crossbeam-channel`.
pub mod channel {
    use std::fmt;
    use std::time::Duration;

    /// Creates a bounded channel of the given capacity.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = std::sync::mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }

    /// The sending half of a bounded channel.
    pub struct Sender<T>(std::sync::mpsc::SyncSender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Blocks until the message is enqueued; errors if disconnected.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value).map_err(|e| SendError(e.0))
        }
    }

    /// The receiving half of a bounded channel.
    pub struct Receiver<T>(std::sync::mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a message arrives; errors if disconnected.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout).map_err(|e| match e {
                std::sync::mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                std::sync::mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                std::sync::mpsc::TryRecvError::Empty => TryRecvError::Empty,
                std::sync::mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }
    }

    /// The channel is disconnected (message returned).
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// The channel is empty and disconnected.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Outcome of a timed receive that yielded no message.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message before the timeout.
        Timeout,
        /// All senders dropped.
        Disconnected,
    }

    /// Outcome of a non-blocking receive that yielded no message.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message currently queued.
        Empty,
        /// All senders dropped.
        Disconnected,
    }
}

/// Scoped threads in the style of `crossbeam-utils`.
pub mod thread {
    /// A handle for spawning scoped threads; passed to every spawned
    /// closure so children can spawn siblings.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives the scope.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope; all spawned threads are joined before it
    /// returns. Panics in children propagate as in `std::thread::scope`,
    /// so the `Ok` is unconditional (kept for crossbeam API parity).
    #[allow(clippy::type_complexity)]
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::Duration;

    #[test]
    fn channel_round_trip_and_errors() {
        let (tx, rx) = channel::bounded::<u32>(4);
        tx.send(7).expect("send");
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Empty));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(channel::RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Disconnected));
    }

    #[test]
    fn scoped_threads_join_and_nest() {
        let counter = AtomicU64::new(0);
        thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|inner| {
                    counter.fetch_add(1, Ordering::Relaxed);
                    inner.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
                });
            }
        })
        .expect("scope");
        assert_eq!(counter.load(Ordering::Relaxed), 8);
    }
}
