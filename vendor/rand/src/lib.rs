//! In-workspace substitute for the subset of `rand` 0.9 GridBank uses:
//! `StdRng::seed_from_u64` plus `Rng::random_range` over integer and
//! float ranges. The generator is SplitMix64 — deterministic under a
//! seed, which is all the simulation/workload code requires.

use std::ops::{Range, RangeInclusive};

/// The raw-output half of a generator.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Range sampling, implemented for the range shapes the workspace uses.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// User-facing generator methods (blanket-implemented over [`RngCore`]).
pub trait Rng: RngCore {
    /// Draws one value uniformly from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding entry point (only `seed_from_u64` is needed in-workspace).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

macro_rules! uint_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

uint_sample_range!(u8, u16, u32, u64, usize);

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add((rng.next_u64() % span) as i64) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i64).wrapping_add((rng.next_u64() % (span + 1)) as i64) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + (self.end - self.start) * unit
    }
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard seedable generator: SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0u64..1000), b.random_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(-100i64..=100);
            assert!((-100..=100).contains(&v));
            let u = rng.random_range(3u8..7);
            assert!((3..7).contains(&u));
            let f = rng.random_range(1e-12..1.0f64);
            assert!((1e-12..1.0).contains(&f));
            let n = rng.random_range(0usize..=0);
            assert_eq!(n, 0);
        }
    }

    #[test]
    fn values_spread_across_range() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(rng.random_range(0u8..10));
        }
        assert_eq!(seen.len(), 10);
    }
}
