//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros.
//!
//! The derives in this workspace are wire-stability markers; no code
//! bounds on the serde traits, so expanding to nothing is sufficient
//! (and keeps the offline build free of syn/quote).

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and expands to nothing.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and expands to nothing.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
