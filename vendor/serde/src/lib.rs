//! In-workspace substitute for the slice of `serde` GridBank uses.
//!
//! The workspace derives `Serialize`/`Deserialize` on a handful of
//! record types to mark them wire-stable, but all actual encoding goes
//! through the hand-written binary/text codecs (`gridbank_rur::codec`,
//! `gridbank_core::api`). Nothing bounds on the serde traits, so the
//! marker traits here plus no-op derive macros satisfy every use site
//! without pulling serde's real machinery into an offline build.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
