//! In-workspace benchmark mini-harness covering the `criterion` API
//! surface the GridBank bench suite uses. It genuinely measures:
//! warm-up calibrates an iteration count, then `sample_size` timed
//! samples are taken and min/median/max ns-per-iteration are printed,
//! so EXPERIMENTS.md numbers remain comparable run to run. Plots,
//! statistics beyond the three-point summary, and baselines are out of
//! scope.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver configuration + CLI filter.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    filters: Vec<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(300),
            filters: Vec::new(),
        }
    }
}

impl Criterion {
    /// Samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Target wall-clock budget for one benchmark's samples.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Calibration budget before sampling.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Accepted for API parity; this harness never plots.
    pub fn without_plots(self) -> Self {
        self
    }

    /// Reads benchmark-name filters from the command line. Flag-style
    /// arguments (`--bench`, `--exact`, …) that cargo appends are
    /// ignored; anything else is a substring filter.
    pub fn configure_from_args(mut self) -> Self {
        self.filters = std::env::args().skip(1).filter(|a| !a.starts_with('-')).collect();
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            measurement_time: None,
            warm_up_time: None,
            throughput: None,
        }
    }

    /// Runs one benchmark outside any group.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        let id = id.into();
        run_benchmark(
            &id.full_name(),
            self.sample_size,
            self.measurement_time,
            self.warm_up_time,
            None,
            &self.filters,
            f,
        );
    }

    /// End-of-run hook; the mini-harness reports per benchmark, so this
    /// only prints a terminator.
    pub fn final_summary(self) {
        println!();
    }
}

/// A named collection of related benchmarks with shared settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    measurement_time: Option<Duration>,
    warm_up_time: Option<Duration>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Samples per benchmark within this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Measurement budget within this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = Some(d);
        self
    }

    /// Warm-up budget within this group.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = Some(d);
        self
    }

    /// Declares work-per-iteration so rates are reported.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.full_name());
        run_benchmark(
            &full,
            self.sample_size.unwrap_or(self.criterion.sample_size),
            self.measurement_time.unwrap_or(self.criterion.measurement_time),
            self.warm_up_time.unwrap_or(self.criterion.warm_up_time),
            self.throughput,
            &self.criterion.filters,
            f,
        );
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        self.bench_function(id, |b| f(b, input));
    }

    /// Closes the group (API parity; nothing to flush).
    pub fn finish(self) {}
}

/// A benchmark identifier, optionally `function/parameter`.
pub struct BenchmarkId {
    name: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with a parameter component.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { name: name.into(), parameter: Some(parameter.to_string()) }
    }

    fn full_name(&self) -> String {
        match &self.parameter {
            Some(p) => format!("{}/{}", self.name, p),
            None => self.name.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId { name: name.to_string(), parameter: None }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { name, parameter: None }
    }
}

/// Work performed per iteration, for rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// The timing context handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed_ns: u128,
}

impl Bencher {
    /// Times `f` over the harness-chosen iteration count.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
    }

    /// Times only `routine`; `setup` runs untimed before each iteration.
    pub fn iter_with_setup<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
    ) {
        let mut total: u128 = 0;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed().as_nanos();
        }
        self.elapsed_ns = total;
    }
}

#[allow(clippy::too_many_arguments)]
fn run_benchmark(
    full_name: &str,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    throughput: Option<Throughput>,
    filters: &[String],
    mut f: impl FnMut(&mut Bencher),
) {
    if !filters.is_empty() && !filters.iter().any(|needle| full_name.contains(needle.as_str())) {
        return;
    }

    // Calibrate: grow the iteration count until one batch costs a slice
    // of the warm-up budget, so short ops aren't dominated by timer
    // resolution.
    let calibration_floor = (warm_up_time.as_nanos() / 8).max(1);
    let mut iters: u64 = 1;
    let per_iter_estimate: f64 = loop {
        let mut bencher = Bencher { iters, elapsed_ns: 0 };
        f(&mut bencher);
        if bencher.elapsed_ns >= calibration_floor || iters >= 1 << 24 {
            break bencher.elapsed_ns as f64 / iters as f64;
        }
        iters = iters.saturating_mul(4);
    };

    // Spend measurement_time across sample_size samples.
    let budget_per_sample = measurement_time.as_nanos() as f64 / sample_size as f64;
    let iters_per_sample =
        ((budget_per_sample / per_iter_estimate.max(1.0)) as u64).clamp(1, 1 << 24);

    let mut samples: Vec<f64> = (0..sample_size)
        .map(|_| {
            let mut bencher = Bencher { iters: iters_per_sample, elapsed_ns: 0 };
            f(&mut bencher);
            bencher.elapsed_ns as f64 / iters_per_sample as f64
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));

    let min = samples[0];
    let median = samples[samples.len() / 2];
    let max = samples[samples.len() - 1];
    print!("{full_name:<44} time: [{} {} {}]", format_ns(min), format_ns(median), format_ns(max));
    if let Some(throughput) = throughput {
        let per_second = |work: u64| work as f64 * (1e9 / median);
        match throughput {
            Throughput::Bytes(n) => print!("  thrpt: {}/s", format_bytes(per_second(n))),
            Throughput::Elements(n) => print!("  thrpt: {} elem/s", format_count(per_second(n))),
        }
    }
    println!();
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn format_bytes(rate: f64) -> String {
    if rate < 1024.0 * 1024.0 {
        format!("{:.1} KiB", rate / 1024.0)
    } else if rate < 1024.0 * 1024.0 * 1024.0 {
        format!("{:.1} MiB", rate / (1024.0 * 1024.0))
    } else {
        format!("{:.2} GiB", rate / (1024.0 * 1024.0 * 1024.0))
    }
}

fn format_count(rate: f64) -> String {
    if rate < 1_000.0 {
        format!("{rate:.1}")
    } else if rate < 1_000_000.0 {
        format!("{:.1}K", rate / 1_000.0)
    } else {
        format!("{:.2}M", rate / 1_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_iterations() {
        let mut b = Bencher { iters: 100, elapsed_ns: 0 };
        let mut count = 0u64;
        b.iter(|| count += 1);
        assert_eq!(count, 100);
        let mut setups = 0u64;
        let mut runs = 0u64;
        b.iter_with_setup(
            || {
                setups += 1;
            },
            |()| runs += 1,
        );
        assert_eq!((setups, runs), (100, 100));
    }

    #[test]
    fn benchmark_ids_compose() {
        assert_eq!(BenchmarkId::new("sha256", 64).full_name(), "sha256/64");
        assert_eq!(BenchmarkId::from("plain").full_name(), "plain");
    }

    #[test]
    fn formatting_scales_units() {
        assert!(format_ns(12.3).contains("ns"));
        assert!(format_ns(12_300.0).contains("µs"));
        assert!(format_ns(12_300_000.0).contains("ms"));
    }
}
