//! Thread spawning with a schedule point at spawn and join, mirroring
//! `loom::thread`.

use crate::schedule_point;

pub use std::thread::yield_now;

/// Join handle mirroring `std::thread::JoinHandle` with a schedule
/// point before joining.
pub struct JoinHandle<T>(std::thread::JoinHandle<T>);

impl<T> JoinHandle<T> {
    pub fn join(self) -> std::thread::Result<T> {
        schedule_point();
        self.0.join()
    }
}

/// Spawns a thread, injecting a schedule point on either side so sibling
/// spawns race from iteration to iteration.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    schedule_point();
    let handle = std::thread::spawn(move || {
        schedule_point();
        f()
    });
    JoinHandle(handle)
}
