//! In-workspace substitute for the [loom](https://github.com/tokio-rs/loom)
//! concurrency checker (the build environment cannot reach crates.io).
//!
//! Real loom explores thread interleavings *exhaustively* (bounded DPOR)
//! by virtualizing every synchronization operation. This substitute is
//! honest about being weaker: it wraps the vendored `parking_lot`
//! primitives and standard atomics with **seeded randomized yield
//! injection**, and [`model`] re-runs the test body many times with a
//! different schedule seed each iteration. That perturbs the OS
//! scheduler enough to surface lost-wakeup, lost-ticket, and
//! double-apply races with high probability, while keeping the same
//! source-level workflow as loom:
//!
//! ```text
//! #[cfg(all(loom, test))]
//! mod loom_model {
//!     #[test]
//!     fn no_lost_ticket() {
//!         loom::model(|| { /* spawn threads, assert invariants */ });
//!     }
//! }
//! ```
//!
//! Build with `RUSTFLAGS="--cfg loom"`; tune with `LOOM_ITERS` (default
//! 128) and `LOOM_SEED`. The API mirrors what the GridBank crates use
//! through their `crate::sync` facades: `lock()` returns the guard
//! directly (parking_lot style, not `LockResult`), and `Condvar` exposes
//! `wait`/`wait_until`/`WaitTimeoutResult`.

#![forbid(unsafe_code)]

use std::cell::Cell;
use std::sync::atomic::{AtomicU64 as StdAtomicU64, Ordering as StdOrdering};

pub mod sync;
pub mod thread;

/// Schedule seed for the current model iteration.
static ITERATION_SEED: StdAtomicU64 = StdAtomicU64::new(0x9e37_79b9_7f4a_7c15);

thread_local! {
    static RNG: Cell<u64> = const { Cell::new(0) };
}

/// Runs `f` repeatedly under different randomized schedules. Iteration
/// count comes from `LOOM_ITERS` (default 128), the base seed from
/// `LOOM_SEED` — print both when reporting a failure so the schedule can
/// be replayed.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let iters = env_u64("LOOM_ITERS", 128).max(1);
    let seed = env_u64("LOOM_SEED", 0x5eed_5eed_5eed_5eed);
    for i in 0..iters {
        ITERATION_SEED
            .store(splitmix(seed.wrapping_add(i.wrapping_mul(0x9e37_79b9))), StdOrdering::SeqCst);
        f();
    }
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Called by every wrapped synchronization operation: advances the
/// thread-local schedule RNG and yields the OS scheduler with
/// probability ~1/3 (occasionally twice, to force a longer reordering
/// window).
pub(crate) fn schedule_point() {
    let roll = RNG.with(|cell| {
        let mut state = cell.get();
        if state == 0 {
            // Lazily mix the iteration seed with a per-thread component
            // so sibling threads don't share one schedule stream.
            let tid = std::thread::current().id();
            let mut hasher = std::collections::hash_map::DefaultHasher::new();
            std::hash::Hash::hash(&tid, &mut hasher);
            state = splitmix(
                ITERATION_SEED.load(StdOrdering::SeqCst) ^ std::hash::Hasher::finish(&hasher),
            ) | 1;
        }
        // xorshift64*
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        cell.set(state);
        state
    });
    match roll % 8 {
        0 | 1 => std::thread::yield_now(),
        2 => {
            std::thread::yield_now();
            std::thread::yield_now();
        }
        _ => {}
    }
}
