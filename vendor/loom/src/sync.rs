//! Yield-injecting wrappers over the vendored `parking_lot` primitives
//! and the standard atomics, exposing the same API shape the GridBank
//! crates consume through their `crate::sync` facades.

use std::time::Instant;

use crate::schedule_point;

pub use std::sync::Arc;

/// Guard type re-exported so facade signatures line up.
pub type MutexGuard<'a, T> = parking_lot::MutexGuard<'a, T>;
/// Re-export: `wait_until` result, `timed_out()` accessor.
pub use parking_lot::WaitTimeoutResult;

/// parking_lot-style mutex (lock() returns the guard) with schedule
/// points on acquisition.
pub struct Mutex<T>(parking_lot::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(parking_lot::Mutex::new(value))
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        schedule_point();
        let guard = self.0.lock();
        schedule_point();
        guard
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner()
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

/// parking_lot-style rwlock with schedule points on acquisition.
pub struct RwLock<T>(parking_lot::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(parking_lot::RwLock::new(value))
    }

    pub fn read(&self) -> parking_lot::RwLockReadGuard<'_, T> {
        schedule_point();
        let guard = self.0.read();
        schedule_point();
        guard
    }

    pub fn write(&self) -> parking_lot::RwLockWriteGuard<'_, T> {
        schedule_point();
        let guard = self.0.write();
        schedule_point();
        guard
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner()
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

/// Condition variable mirroring the vendored parking_lot API
/// (`wait(&mut guard)`, `wait_until(...) -> WaitTimeoutResult`).
#[derive(Default)]
pub struct Condvar(parking_lot::Condvar);

impl Condvar {
    pub const fn new() -> Condvar {
        Condvar(parking_lot::Condvar::new())
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        schedule_point();
        self.0.wait(guard);
        schedule_point();
    }

    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        schedule_point();
        let result = self.0.wait_until(guard, deadline);
        schedule_point();
        result
    }

    pub fn notify_one(&self) {
        schedule_point();
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        schedule_point();
        self.0.notify_all();
    }
}

/// Atomics with a schedule point around every operation.
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    use crate::schedule_point;

    macro_rules! atomic_wrapper {
        ($name:ident, $std:ty, $int:ty) => {
            #[derive(Default, Debug)]
            pub struct $name($std);

            impl $name {
                pub const fn new(value: $int) -> $name {
                    $name(<$std>::new(value))
                }

                pub fn load(&self, order: Ordering) -> $int {
                    schedule_point();
                    self.0.load(order)
                }

                pub fn store(&self, value: $int, order: Ordering) {
                    schedule_point();
                    self.0.store(value, order);
                    schedule_point();
                }

                pub fn swap(&self, value: $int, order: Ordering) -> $int {
                    schedule_point();
                    self.0.swap(value, order)
                }

                pub fn fetch_add(&self, value: $int, order: Ordering) -> $int {
                    schedule_point();
                    let prev = self.0.fetch_add(value, order);
                    schedule_point();
                    prev
                }

                pub fn fetch_sub(&self, value: $int, order: Ordering) -> $int {
                    schedule_point();
                    let prev = self.0.fetch_sub(value, order);
                    schedule_point();
                    prev
                }

                pub fn compare_exchange(
                    &self,
                    current: $int,
                    new: $int,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$int, $int> {
                    schedule_point();
                    self.0.compare_exchange(current, new, success, failure)
                }

                pub fn fetch_update<F>(
                    &self,
                    set_order: Ordering,
                    fetch_order: Ordering,
                    f: F,
                ) -> Result<$int, $int>
                where
                    F: FnMut($int) -> Option<$int>,
                {
                    schedule_point();
                    let res = self.0.fetch_update(set_order, fetch_order, f);
                    schedule_point();
                    res
                }
            }
        };
    }

    atomic_wrapper!(AtomicU32, std::sync::atomic::AtomicU32, u32);
    atomic_wrapper!(AtomicU64, std::sync::atomic::AtomicU64, u64);
    atomic_wrapper!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);

    /// Bool atomics need their own wrapper (no fetch_add/fetch_sub).
    #[derive(Default, Debug)]
    pub struct AtomicBool(std::sync::atomic::AtomicBool);

    impl AtomicBool {
        pub const fn new(value: bool) -> AtomicBool {
            AtomicBool(std::sync::atomic::AtomicBool::new(value))
        }

        pub fn load(&self, order: Ordering) -> bool {
            schedule_point();
            self.0.load(order)
        }

        pub fn store(&self, value: bool, order: Ordering) {
            schedule_point();
            self.0.store(value, order);
            schedule_point();
        }

        pub fn swap(&self, value: bool, order: Ordering) -> bool {
            schedule_point();
            self.0.swap(value, order)
        }
    }
}
