//! In-workspace substitute for the subset of `parking_lot` GridBank uses.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! API-compatible shims built on `std::sync`. Semantics match what the
//! callers rely on: no lock poisoning (a poisoned std lock is recovered
//! with `into_inner`), guards returned directly from `lock`/`read`/`write`,
//! and a `Condvar` whose `wait_until` reports timeouts via
//! [`WaitTimeoutResult::timed_out`].

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::Instant;

/// A mutual-exclusion primitive (no poisoning).
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`].
///
/// The inner std guard lives in an `Option` so [`Condvar::wait_until`]
/// can temporarily take ownership of it; outside a wait it is always
/// `Some`.
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the underlying data.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }

    /// Attempts to acquire the mutex without blocking; `None` when it is
    /// already held.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(MutexGuard(Some(guard))),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard(Some(e.into_inner()))),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard present outside condvar wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard present outside condvar wait")
    }
}

/// A reader-writer lock (no poisoning).
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-access RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);
/// Exclusive-access RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the underlying data.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquires exclusive access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True when the wait ended because the deadline passed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable paired with [`Mutex`].
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Blocks until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present before wait");
        let inner = self.0.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.0 = Some(inner);
    }

    /// Blocks until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard present before wait");
        let timeout = deadline.saturating_duration_since(Instant::now());
        let (inner, result) =
            self.0.wait_timeout(inner, timeout).unwrap_or_else(|e| e.into_inner());
        guard.0 = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_times_out_and_wakes() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        // Timeout path.
        {
            let mut flag = pair.0.lock();
            let deadline = Instant::now() + Duration::from_millis(10);
            let res = pair.1.wait_until(&mut flag, deadline);
            assert!(res.timed_out());
        }
        // Wake path.
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            *p2.0.lock() = true;
            p2.1.notify_one();
        });
        let mut flag = pair.0.lock();
        let deadline = Instant::now() + Duration::from_secs(5);
        while !*flag {
            assert!(!pair.1.wait_until(&mut flag, deadline).timed_out());
        }
        t.join().expect("notifier thread");
    }
}
