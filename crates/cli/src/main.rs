//! `gridbank` — the GridBank administration/operations command line.
//!
//! Operates a durable bank: state persists as a write-ahead journal file
//! (see `gridbank_core::db`), so successive invocations compose like a
//! real banking deployment. Administrator operations follow §5.2.1;
//! client queries follow §5.2.
//!
//! ```text
//! gridbank --db bank.gbj create-account --cert "/O=UWA/OU=CSSE/CN=alice"
//! gridbank --db bank.gbj deposit --account 01-0001-00000001 --amount 100
//! gridbank --db bank.gbj transfer --from 01-0001-00000001 \
//!          --to 01-0001-00000002 --amount 12.5
//! gridbank --db bank.gbj statement --account 01-0001-00000001
//! gridbank --db bank.gbj accounts
//! ```

use std::process::ExitCode;
use std::sync::Arc;

use gridbank_core::accounts::GbAccounts;
use gridbank_core::admin::GbAdmin;
use gridbank_core::api::{journal_from_bytes, journal_to_bytes, HealthReport};
use gridbank_core::client::GridBankClient;
use gridbank_core::clock::Clock;
use gridbank_core::coop::BarterStats;
use gridbank_core::db::{AccountId, Database};
use gridbank_core::federation::FederationRouter;
use gridbank_core::server::{GridBank, GridBankServer};
use gridbank_crypto::cert::{CertificateAuthority, SubjectName};
use gridbank_net::transport::{Address, Network};
use gridbank_rur::Credits;

const ADMIN_CERT: &str = "/O=GridBank/OU=Admin/CN=operator";

struct Args {
    flags: Vec<(String, String)>,
    command: Option<String>,
}

impl Args {
    fn parse(argv: &[String]) -> Result<Args, String> {
        let mut flags = Vec::new();
        let mut command = None;
        let mut i = 0;
        while i < argv.len() {
            let a = &argv[i];
            if let Some(name) = a.strip_prefix("--") {
                let value = argv.get(i + 1).ok_or_else(|| format!("--{name} needs a value"))?;
                flags.push((name.to_string(), value.clone()));
                i += 2;
            } else {
                if command.is_some() {
                    return Err(format!("unexpected argument `{a}`"));
                }
                command = Some(a.clone());
                i += 1;
            }
        }
        Ok(Args { flags, command })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags.iter().rev().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    fn require(&self, name: &str) -> Result<&str, String> {
        self.get(name).ok_or_else(|| format!("missing required flag --{name}"))
    }
}

fn parse_amount(s: &str) -> Result<Credits, String> {
    // "12", "12.5", "0.000001" — up to 6 fraction digits.
    let (whole, frac) = match s.split_once('.') {
        Some((w, f)) => (w, f),
        None => (s, ""),
    };
    if frac.len() > 6 {
        return Err(format!("`{s}`: at most 6 decimal places (µG$ precision)"));
    }
    let negative = whole.starts_with('-');
    let whole: i128 = whole.parse().map_err(|e| format!("`{s}`: {e}"))?;
    let mut frac_val: i128 =
        if frac.is_empty() { 0 } else { frac.parse().map_err(|e| format!("`{s}`: {e}"))? };
    frac_val *= 10i128.pow(6 - frac.len() as u32);
    if negative {
        frac_val = -frac_val;
    }
    let micro = whole
        .checked_mul(1_000_000)
        .and_then(|w| w.checked_add(frac_val))
        .ok_or_else(|| format!("`{s}`: amount out of range"))?;
    Ok(Credits::from_micro(micro))
}

fn parse_account(s: &str) -> Result<AccountId, String> {
    AccountId::parse(s).ok_or_else(|| format!("`{s}` is not a bb-bbbb-nnnnnnnn account id"))
}

struct Bank {
    accounts: GbAccounts,
    admin: GbAdmin,
    db_path: String,
}

impl Bank {
    fn load(db_path: &str) -> Result<Bank, String> {
        let db = match std::fs::read(db_path) {
            Ok(bytes) => {
                let journal = journal_from_bytes(&bytes).map_err(|e| format!("{db_path}: {e}"))?;
                Database::replay(1, 1, &journal)
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Database::new(1, 1),
            Err(e) => return Err(format!("{db_path}: {e}")),
        };
        let accounts = GbAccounts::new(Arc::new(db), Clock::starting_at(now_wallclock_ms()));
        let admin = GbAdmin::new(accounts.clone(), [ADMIN_CERT.to_string()]);
        Ok(Bank { accounts, admin, db_path: db_path.to_string() })
    }

    fn save(&self) -> Result<(), String> {
        let bytes = journal_to_bytes(&self.accounts.db().journal_snapshot());
        let tmp = format!("{}.tmp", self.db_path);
        std::fs::write(&tmp, &bytes).map_err(|e| format!("{tmp}: {e}"))?;
        std::fs::rename(&tmp, &self.db_path).map_err(|e| format!("{}: {e}", self.db_path))
    }
}

fn now_wallclock_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// A self-hosted federation over live RPC: one full [`GridBankServer`]
/// stack per branch on a private in-process network, federated through
/// pooled resilient clients, with the CLI's ops identity enrolled as an
/// `OPS_ADMIN` on every branch. `settle`, `top`, and `metrics --remote`
/// all observe this world — the in-process transport has no external
/// listeners, so the "remote" commands boot the deployment they scrape.
struct FederatedWorld {
    network: Network,
    clock: Clock,
    ca: CertificateAuthority,
    banks: Vec<Arc<GridBank>>,
    routers: Vec<Arc<FederationRouter>>,
    servers: Vec<GridBankServer>,
}

/// Boots `branches` federated server stacks: a CA, one `GridBankServer`
/// per branch at address `branch-<b>`, and a full mesh of pooled
/// resilient settlement routes. The CLI's ops identity
/// (`/O=GridBank/OU=Ops/CN=cli`) is enrolled on every branch so
/// ops-plane scrapes work against any of them.
fn start_world(branches: u16) -> Result<FederatedWorld, String> {
    use gridbank_core::federation::RemotePeer;
    use gridbank_core::resilient::{Connector, ResilientBankClient};
    use gridbank_core::server::{GateMode, GridBankConfig, ServerCredentials};
    use gridbank_crypto::cert::create_proxy;
    use gridbank_crypto::keys::{KeyMaterial, SigningIdentity};
    use gridbank_crypto::rng::DeterministicStream;
    use gridbank_net::retry::RetryPolicy;

    let ca = CertificateAuthority::new(
        SubjectName::new("GridBank", "CA", "Root"),
        SigningIdentity::generate_small(KeyMaterial { seed: 1 }, "ca"),
    );
    let clock = Clock::new();
    let network = Network::new();

    // One full server stack per branch.
    let mut banks = Vec::new();
    let mut servers = Vec::new();
    for b in 1..=branches {
        let bank = Arc::new(GridBank::new(
            GridBankConfig {
                branch: b,
                signer_height: 9,
                gate_mode: GateMode::AllowEnrollment,
                key_material: KeyMaterial { seed: 0xB4A2 + b as u64 },
                ops_admins: vec![gridbank_core::server::ops_identity("cli")],
                ..GridBankConfig::default()
            },
            clock.clone(),
        ));
        let tls = Arc::new(SigningIdentity::generate(KeyMaterial { seed: 100 + b as u64 }, "tls"));
        let cert = ca
            .issue(
                SubjectName::new("GridBank", "Server", &format!("branch-{b:04}")),
                tls.verifying_key(),
                0,
                u64::MAX / 2,
            )
            .map_err(|e| e.to_string())?;
        let server = GridBankServer::start(
            &network,
            Address::new(format!("branch-{b}")),
            Arc::clone(&bank),
            ServerCredentials { certificate: cert, identity: tls, ca_key: ca.verifying_key() },
            b as u64,
        )
        .map_err(|e| e.to_string())?;
        banks.push(bank);
        servers.push(server);
    }

    // Federate: every branch gets a pooled resilient route to each peer,
    // calling as its own settlement identity.
    let routers: Vec<_> = banks.iter().map(FederationRouter::install).collect();
    for from in 1..=branches {
        for to in 1..=branches {
            if from == to {
                continue;
            }
            let id = SigningIdentity::generate_small(
                KeyMaterial { seed: 0x5E77_0000 + from as u64 },
                "settle",
            );
            let dn = SubjectName::new("GridBank", "Settlement", &format!("branch-{from:04}"));
            let cert =
                ca.issue(dn, id.verifying_key(), 0, u64::MAX / 2).map_err(|e| e.to_string())?;
            let (net, clk, ca_key) = (network.clone(), clock.clone(), ca.verifying_key());
            let target = Address::new(format!("branch-{to}"));
            let mut attempt = 0u64;
            let connector: Connector = Box::new(move || {
                attempt += 1;
                let id = SigningIdentity::generate_small(
                    KeyMaterial { seed: 0x5E77_0000 + from as u64 },
                    "settle",
                );
                let proxy_id = SigningIdentity::generate_small(
                    KeyMaterial { seed: 0x9000 + (from as u64) * 977 + attempt },
                    "proxy",
                );
                let proxy = create_proxy(&id, &cert, proxy_id.verifying_key(), 0, u64::MAX / 2, 1)?;
                let mut nonces = DeterministicStream::from_u64(
                    ((from as u64) << 32) | ((to as u64) << 16) | attempt,
                    b"fed-nonce",
                );
                GridBankClient::connect(
                    &net,
                    Address::new(format!("fed-{from}-{to}-{attempt}")),
                    &target,
                    ca_key,
                    clk.now_ms(),
                    &proxy,
                    &proxy_id,
                    &mut nonces,
                )
            });
            let policy = RetryPolicy {
                base_delay_ms: 1,
                max_delay_ms: 8,
                max_attempts: 6,
                deadline_ms: 10_000,
                seed: from as u64,
            };
            let client = ResilientBankClient::new(
                connector,
                policy,
                clock.clone(),
                (from as u64) * 31 + to as u64,
            );
            routers[(from - 1) as usize].add_peer(to, RemotePeer::new(client));
        }
    }

    Ok(FederatedWorld { network, clock, ca, banks, routers, servers })
}

impl FederatedWorld {
    fn branches(&self) -> u16 {
        self.servers.len() as u16
    }

    /// Connects an authenticated client as `dn` to `branch` through the
    /// real handshake, with a fresh single-sign-on proxy certificate.
    fn client(&self, dn: SubjectName, seed: u64, branch: u16) -> Result<GridBankClient, String> {
        use gridbank_crypto::cert::create_proxy;
        use gridbank_crypto::keys::{KeyMaterial, SigningIdentity};
        use gridbank_crypto::rng::DeterministicStream;

        let id = SigningIdentity::generate_small(KeyMaterial { seed }, "client");
        let cert =
            self.ca.issue(dn, id.verifying_key(), 0, u64::MAX / 2).map_err(|e| e.to_string())?;
        let proxy_id = SigningIdentity::generate_small(KeyMaterial { seed: seed + 5000 }, "proxy");
        let proxy = create_proxy(&id, &cert, proxy_id.verifying_key(), 0, u64::MAX / 2, 1)
            .map_err(|e| e.to_string())?;
        let mut nonces = DeterministicStream::from_u64(seed, b"nonce");
        GridBankClient::connect(
            &self.network,
            Address::new(format!("client-{seed}")),
            &Address::new(format!("branch-{branch}")),
            self.ca.verifying_key(),
            self.clock.now_ms(),
            &proxy,
            &proxy_id,
            &mut nonces,
        )
        .map_err(|e| e.to_string())
    }

    /// An ops-plane connection to `branch`: the base identity is the
    /// CLI's enrolled `OPS_ADMIN`, trusted to read telemetry and
    /// nothing more.
    fn ops_client(&self, branch: u16) -> Result<GridBankClient, String> {
        self.client(SubjectName::new("GridBank", "Ops", "cli"), 7_000 + branch as u64, branch)
    }
}

/// One funded payer per branch, connected through the real handshake.
fn fund_payers(world: &FederatedWorld) -> Result<(Vec<GridBankClient>, Vec<AccountId>), String> {
    let mut payers = Vec::new();
    let mut accounts = Vec::new();
    for b in 1..=world.branches() {
        let mut payer = world.client(
            SubjectName::new("Demo", "Payers", &format!("payer-{b}")),
            10 + b as u64,
            b,
        )?;
        let account = payer.create_account(None).map_err(|e| e.to_string())?;
        let mut admin = world.client(SubjectName(ADMIN_CERT.into()), 900 + b as u64, b)?;
        admin.admin_deposit(account, Credits::from_gd(1_000)).map_err(|e| e.to_string())?;
        payers.push(payer);
        accounts.push(account);
    }
    Ok((payers, accounts))
}

/// Drives `rounds` ring-wise rounds of cross-branch payments: every
/// branch pays the next one `amount` per round.
fn ring_payments(
    payers: &mut [GridBankClient],
    accounts: &[AccountId],
    rounds: u64,
    amount: Credits,
) -> Result<(), String> {
    let n = payers.len();
    for k in 0..rounds {
        for b in 0..n {
            let to = accounts[(b + 1) % n];
            payers[b]
                .direct_transfer(to, amount, &format!("payee.vo{}.org/{k}", b + 1))
                .map_err(|e| format!("payment {k} from branch {}: {e}", b + 1))?;
        }
    }
    Ok(())
}

/// `gridbank metrics`: runs a small in-process workload against a fresh
/// bank with telemetry enabled and prints the registry snapshot —
/// per-variant RPC latency percentiles, counters, and gauges. With
/// `--format jsonl` emits JSON-lines instead of the text table;
/// `--filter <prefix>` narrows the output to matching metric names.
fn run_metrics(args: &Args) -> Result<String, String> {
    use gridbank_core::api::{BankRequest, BankResponse};
    use gridbank_core::federation::LocalPeer;
    use gridbank_core::server::GridBankConfig;

    if args.get("remote").is_some() {
        // Scrape a live server's ops plane over RPC instead.
        return run_remote_metrics(args);
    }
    gridbank_obs::set_telemetry(true);
    // Height 9 = 512 one-time signatures — enough for the ~120 signed
    // confirmations/cheques the workload below produces.
    let clock = Clock::new();
    let bank = Arc::new(GridBank::new(
        GridBankConfig { signer_height: 9, ..GridBankConfig::default() },
        clock.clone(),
    ));
    let admin = SubjectName(ADMIN_CERT.into());
    let alice = SubjectName::new("UWA", "CSSE", "alice");
    let gsp = SubjectName::new("UM", "GRIDS", "gsp-alpha");

    let account = match bank.handle(&alice, BankRequest::CreateAccount { organization: None }) {
        BankResponse::AccountCreated { account } => account,
        other => return Err(format!("workload setup failed: {other:?}")),
    };
    let gsp_account = match bank.handle(&gsp, BankRequest::CreateAccount { organization: None }) {
        BankResponse::AccountCreated { account } => account,
        other => return Err(format!("workload setup failed: {other:?}")),
    };
    bank.handle(&admin, BankRequest::AdminDeposit { account, amount: Credits::from_gd(10_000) });

    // Exercise a representative request mix so the per-variant latency
    // histograms have enough samples for stable percentiles.
    for i in 0..100u64 {
        bank.handle(&alice, BankRequest::MyAccount);
        bank.handle(&alice, BankRequest::AccountDetails { account });
        bank.handle(&alice, BankRequest::Statement { account, start_ms: 0, end_ms: u64::MAX });
        bank.handle(
            &alice,
            BankRequest::CheckFunds { account, amount: Credits::from_micro(1_000) },
        );
        bank.handle(
            &alice,
            BankRequest::DirectTransfer {
                to: gsp_account,
                amount: Credits::from_micro(10_000),
                recipient_address: "gsp.grid.org".into(),
            },
        );
        if i % 10 == 0 {
            bank.handle(
                &alice,
                BankRequest::RequestCheque {
                    payee_cert: gsp.0.clone(),
                    amount: Credits::from_gd(1),
                    validity_ms: 60_000,
                },
            );
        }
    }
    bank.sweep_expired_instruments();

    // Federate with a second in-process branch so `--filter ib` has
    // data: cross-branch payments, one forwarded read, one netting pass.
    let bank2 = Arc::new(GridBank::new(
        GridBankConfig { branch: 2, signer_height: 9, ..GridBankConfig::default() },
        clock.clone(),
    ));
    let router = FederationRouter::install(&bank);
    let router2 = FederationRouter::install(&bank2);
    router.add_peer(2, LocalPeer::new(Arc::clone(&bank2), 1));
    router2.add_peer(1, LocalPeer::new(Arc::clone(&bank), 2));
    let remote = match bank2.handle(&gsp, BankRequest::CreateAccount { organization: None }) {
        BankResponse::AccountCreated { account } => account,
        other => return Err(format!("federation setup failed: {other:?}")),
    };
    for _ in 0..5 {
        bank.handle(
            &alice,
            BankRequest::DirectTransfer {
                to: remote,
                amount: Credits::from_micro(10_000),
                recipient_address: "gsp.vo2.org".into(),
            },
        );
    }
    bank.handle(&admin, BankRequest::AccountDetails { account: remote });
    router.settle_once().map_err(|e| format!("settle failed: {e}"))?;

    let snapshot = match args.get("filter") {
        Some(prefix) => gridbank_obs::registry().snapshot().filtered(prefix),
        None => gridbank_obs::registry().snapshot(),
    };
    match args.get("format") {
        Some("jsonl") => Ok(gridbank_obs::render_jsonl(&snapshot)),
        None | Some("text") => Ok(gridbank_obs::render_text(&snapshot)),
        Some(other) => Err(format!("unknown --format `{other}` (text|jsonl)")),
    }
}

/// `gridbank settle`: a self-contained federation demo over live RPC.
/// Spawns one `GridBankServer` per branch on an in-process network,
/// federates them with pooled resilient clients, drives cross-branch
/// payments ring-wise through real authenticated client connections,
/// then runs one §6 netting pass and prints the gross→net compression.
/// Fails (non-zero exit) unless every clearing account nets to zero and
/// no outbound credit is left unacknowledged.
fn run_settle(args: &Args) -> Result<String, String> {
    let branches: u16 = match args.get("branches") {
        Some(v) => v.parse().map_err(|e| format!("--branches: {e}"))?,
        None => 2,
    };
    if branches < 2 {
        return Err("--branches must be at least 2".into());
    }
    let payments: u64 = match args.get("payments") {
        Some(v) => v.parse().map_err(|e| format!("--payments: {e}"))?,
        None => 4,
    };
    let amount = parse_amount(args.get("amount").unwrap_or("10"))?;

    let world = start_world(branches)?;
    let (mut payers, accounts) = fund_payers(&world)?;

    // Ring of cross-branch payments: every branch pays the next one.
    ring_payments(&mut payers, &accounts, payments, amount)?;
    let (banks, routers) = (&world.banks, &world.routers);

    // One netting pass (branch 1 proposes; remaining pairs drain too).
    let mut out = format!(
        "federated settle: {branches} branches, {} cross-branch payments of {amount}\n",
        payments * branches as u64
    );
    let mut gross = Credits::ZERO;
    let mut net = Credits::ZERO;
    for router in routers {
        let report = router.settle_once().map_err(|e| e.to_string())?;
        for p in &report.pairs {
            out.push_str(&format!(
                "pair {:04}<->{:04}: gross {} -> net {}\n",
                p.branch_a,
                p.branch_b,
                p.gross_a_to_b.saturating_add(p.gross_b_to_a),
                p.net.abs()
            ));
        }
        gross = gross.saturating_add(report.total_gross());
        net = net.saturating_add(report.total_net());
    }
    out.push_str(&format!("total gross {gross} -> net {net}\n"));

    // The acceptance check: clearing accounts net to zero and no credit
    // is stranded.
    let mut residual = Credits::ZERO;
    let mut stranded = 0;
    for (i, router) in routers.iter().enumerate() {
        for peer in router.peer_branches() {
            residual = residual.saturating_add(router.clearing_balance(peer).abs());
        }
        stranded += banks[i].accounts.db().ib_pending_snapshot().len();
    }
    if !residual.is_zero() || stranded > 0 {
        return Err(format!(
            "settlement left residue: clearing {residual}, {stranded} unacknowledged credits"
        ));
    }
    out.push_str("clearing accounts net to zero; no stranded credits");
    Ok(out)
}

/// `gridbank market` — the population-scale market economy demo: Zipf
/// spot traffic, flash-crowd capacity auctions, a co-op barter ring,
/// and PayWord streams over two live federated branches, ending with
/// the hard invariant check (see `docs/ECONOMY.md`).
fn run_market_demo(args: &Args) -> Result<String, String> {
    use gridbank_sim::market::{run_market, EconomyConfig};

    let mut cfg = EconomyConfig::default();
    if let Some(v) = args.get("population") {
        cfg.population_per_branch = v.parse().map_err(|e| format!("--population: {e}"))?;
    }
    if let Some(v) = args.get("payments") {
        cfg.spot_payments = v.parse().map_err(|e| format!("--payments: {e}"))?;
    }
    if let Some(v) = args.get("auctions") {
        cfg.auctions = v.parse().map_err(|e| format!("--auctions: {e}"))?;
    }
    if let Some(v) = args.get("seed") {
        let parsed = match v.strip_prefix("0x") {
            Some(hex) => u64::from_str_radix(hex, 16),
            None => v.parse(),
        };
        cfg.seed = parsed.map_err(|e| format!("--seed: {e}"))?;
    }
    if cfg.population_per_branch < cfg.payers_per_branch + cfg.barter_members + cfg.payword_streams
    {
        return Err("--population too small to seat payers, barter members and streams".into());
    }

    let report = run_market(&cfg)?;
    let mut out = format!(
        "market economy: {} accounts over 2 branches, seed {:#x}\n",
        report.population * 2,
        cfg.seed
    );
    out.push_str(&format!(
        "spot payments:   {} committed ({} cross-branch, net {} settled)\n",
        report.spot_payments, report.cross_branch_payments, report.settlement_net
    ));
    out.push_str(&format!(
        "auctions:        {} settled ({} dutch, {} english), volume {}, {} duplicate re-sends deduped\n",
        report.auctions_settled,
        report.dutch_auctions,
        report.english_auctions,
        report.auction_volume,
        report.duplicate_settlements_deduped
    ));
    out.push_str(&format!(
        "barter ring:     volume {}, equilibrium gap {}\n",
        report.barter_volume, report.barter_equilibrium_gap
    ));
    out.push_str(&format!(
        "payword streams: {} redeemed, {} released at chain close\n",
        report.payword_paid, report.payword_released
    ));
    out.push_str(&format!(
        "conservation:    {} -> {} (journal {}+{} entries)\n",
        report.initial_total, report.final_total, report.journal_len[0], report.journal_len[1]
    ));
    out.push_str(&format!("ledger digest:   {:#018x}\n", report.ledger_digest));

    // The acceptance check: every hard invariant, or a nonzero exit.
    report.verify()?;
    out.push_str("invariants: conservation, exactly-once settlement, zero stranded credit — OK");
    Ok(out)
}

/// The six server-side request stages (`server.stage.<name>_ns`).
const STAGES: [&str; 6] = ["queue", "decode", "dispatch", "lock", "journal", "reply"];

/// Maps `--remote` addresses onto branch numbers: `bank` is an alias
/// for branch 1, `branch-N` selects a specific branch.
fn branch_for_address(addr: &str, branches: u16) -> Result<u16, String> {
    if addr == "bank" {
        return Ok(1);
    }
    if let Some(n) = addr.strip_prefix("branch-") {
        if let Ok(b) = n.parse::<u16>() {
            if (1..=branches).contains(&b) {
                return Ok(b);
            }
        }
    }
    Err(format!("`{addr}`: expected `bank` or `branch-1..={branches}`"))
}

/// Pulls a numeric field out of one flat JSON line as rendered by the
/// server's JSON-lines exporter (no nesting in the fields we read).
fn json_num(line: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\":");
    let rest = &line[line.find(&tag)? + tag.len()..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// The JSON line describing instrument `name`, if the scrape has one.
fn json_line<'a>(jsonl: &'a str, name: &str) -> Option<&'a str> {
    let tag = format!("\"name\":\"{name}\"");
    jsonl.lines().find(|l| l.contains(&tag))
}

/// Renders a nanosecond quantity for the dashboard.
fn fmt_ns(ns: f64) -> String {
    if ns >= 1_000_000.0 {
        format!("{:.1}ms", ns / 1_000_000.0)
    } else if ns >= 1_000.0 {
        format!("{:.1}µs", ns / 1_000.0)
    } else {
        format!("{ns:.0}ns")
    }
}

/// A unicode sparkline of `values`, scaled to their maximum.
fn spark(values: &[u64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().copied().max().unwrap_or(0).max(1);
    values.iter().map(|v| BARS[((*v as u128 * 7) / max as u128) as usize]).collect()
}

/// The health report as a human-readable block.
fn render_health(h: &HealthReport) -> String {
    let mut out = format!(
        "branch {:04} {}\n  journal flush lag {} · group-commit queue {}\n  \
         workers {}/{} busy · {} connections\n",
        h.branch,
        h.state.name(),
        h.journal_flush_lag,
        h.group_commit_queue,
        h.workers_busy,
        h.workers_total,
        h.connections,
    );
    for p in &h.peers {
        out.push_str(&format!(
            "  peer {:04}: clearing {} · {} · breaker {}\n",
            p.branch,
            p.clearing,
            if p.reachable { "reachable" } else { "unreachable" },
            p.breaker.as_deref().unwrap_or("n/a"),
        ));
    }
    out
}

/// The health report as one JSON line, shaped like the server's
/// JSON-lines metric output so the two can share a parser.
fn health_jsonl(h: &HealthReport) -> String {
    let peers: Vec<String> = h
        .peers
        .iter()
        .map(|p| {
            format!(
                "{{\"branch\":{},\"clearing\":\"{}\",\"reachable\":{},\"breaker\":{}}}",
                p.branch,
                p.clearing,
                p.reachable,
                match &p.breaker {
                    Some(b) => format!("\"{b}\""),
                    None => "null".to_string(),
                },
            )
        })
        .collect();
    format!(
        "{{\"type\":\"health\",\"branch\":{},\"state\":\"{}\",\"journal_flush_lag\":{},\
         \"group_commit_queue\":{},\"workers_busy\":{},\"workers_total\":{},\
         \"connections\":{},\"peers\":[{}]}}",
        h.branch,
        h.state.name(),
        h.journal_flush_lag,
        h.group_commit_queue,
        h.workers_busy,
        h.workers_total,
        h.connections,
        peers.join(","),
    )
}

/// `gridbank metrics --remote <addr>`: scrapes a live server's ops
/// plane over RPC instead of reading the in-process registry. Boots the
/// same self-hosted federation as `settle` (the in-process network has
/// no external listeners), drives a cross-branch payment load so every
/// `server.stage.*` histogram has samples, demonstrates the `OPS_ADMIN`
/// gate by showing a regular payer refused, then queries health and
/// metrics as the enrolled ops identity. `--filter` is applied
/// server-side; the metrics body is the server-rendered JSON lines.
fn run_remote_metrics(args: &Args) -> Result<String, String> {
    use gridbank_core::api::{OpsQuery, OpsReport};
    use gridbank_core::error::BankError;

    gridbank_obs::set_telemetry(true);
    gridbank_obs::set_flight_recorder(true);
    let addr = args.require("remote")?;
    let branches = 2u16;
    let branch = branch_for_address(addr, branches)?;
    let world = start_world(branches)?;
    let (mut payers, accounts) = fund_payers(&world)?;
    ring_payments(&mut payers, &accounts, 5, Credits::from_micro(5_000))?;
    for payer in payers.iter_mut() {
        payer.my_account().map_err(|e| e.to_string())?;
    }

    // The ops plane is its own trust role: a regular payer is refused
    // with a typed error before any telemetry leaves the server.
    let refusal = match payers[0].ops_query(OpsQuery::Health) {
        Err(BankError::NotAuthorized(why)) => why,
        other => return Err(format!("ops gate failed open for a payer: {other:?}")),
    };

    let mut ops = world.ops_client(branch)?;
    let health = match ops.ops_query(OpsQuery::Health).map_err(|e| e.to_string())? {
        OpsReport::Health(h) => h,
        other => return Err(format!("unexpected ops report: {other:?}")),
    };
    let filter = args.get("filter").map(str::to_string);
    let jsonl = match ops.ops_query(OpsQuery::Metrics { filter }).map_err(|e| e.to_string())? {
        OpsReport::Metrics { jsonl } => jsonl,
        other => return Err(format!("unexpected ops report: {other:?}")),
    };
    match args.get("format") {
        Some("jsonl") => Ok(format!(
            "{{\"type\":\"ops-gate\",\"refused\":\"{}\"}}\n{}\n{jsonl}",
            refusal.replace('"', "'"),
            health_jsonl(&health)
        )),
        None | Some("text") => Ok(format!(
            "== ops scrape from {addr} (branch {branch} of a live {branches}-branch \
             federation) ==\nops gate: payer refused ({refusal})\n{}\
             -- metrics (server-rendered JSON lines) --\n{jsonl}",
            render_health(&health)
        )),
        Some(other) => Err(format!("unknown --format `{other}` (text|jsonl)")),
    }
}

/// `gridbank top`: a terminal dashboard over the ops plane. Boots the
/// self-hosted federation, keeps a cross-branch payment load running,
/// and between frames scrapes `OpsQuery::{Health,Metrics}` from
/// branch 1 as the enrolled `OPS_ADMIN` — rendering throughput, the six
/// `server.stage.*` histograms (count, p50/p95/p99, and a p95 trend
/// sparkline across frames), peer breaker states, and the health
/// verdict. `--frames N` bounds the run (default 4) so it terminates.
fn run_top(args: &Args) -> Result<String, String> {
    use gridbank_core::api::{OpsQuery, OpsReport};
    use std::fmt::Write as _;

    let frames: u32 = match args.get("frames") {
        Some(v) => v.parse().map_err(|e| format!("--frames: {e}"))?,
        None => 4,
    };
    if frames == 0 {
        return Err("--frames must be at least 1".into());
    }
    gridbank_obs::set_telemetry(true);
    gridbank_obs::set_flight_recorder(true);
    let world = start_world(2)?;
    let (mut payers, accounts) = fund_payers(&world)?;
    let mut ops = world.ops_client(1)?;

    let mut out = String::new();
    let mut trend: Vec<Vec<u64>> = vec![Vec::new(); STAGES.len()];
    let mut last_total = 0u64;
    for frame in 1..=frames {
        // A burst of mixed load so every frame has fresh samples:
        // cross-branch payments (journal + lock stages) plus reads.
        ring_payments(&mut payers, &accounts, 3, Credits::from_micro(2_500))?;
        for payer in payers.iter_mut() {
            payer.my_account().map_err(|e| e.to_string())?;
        }

        let health = match ops.ops_query(OpsQuery::Health).map_err(|e| e.to_string())? {
            OpsReport::Health(h) => h,
            other => return Err(format!("unexpected ops report: {other:?}")),
        };
        let jsonl =
            match ops.ops_query(OpsQuery::Metrics { filter: None }).map_err(|e| e.to_string())? {
                OpsReport::Metrics { jsonl } => jsonl,
                other => return Err(format!("unexpected ops report: {other:?}")),
            };

        // Dispatch-stage count == requests the server has executed.
        let total = json_line(&jsonl, "server.stage.dispatch_ns")
            .and_then(|l| json_num(l, "count"))
            .unwrap_or(0.0) as u64;
        let _ = writeln!(out, "── gridbank top · frame {frame}/{frames} ──");
        let _ = writeln!(
            out,
            "branch {:04} {} · workers {}/{} busy · {} connections · \
             {} req this frame ({total} total)",
            health.branch,
            health.state.name(),
            health.workers_busy,
            health.workers_total,
            health.connections,
            total.saturating_sub(last_total),
        );
        last_total = total;
        let _ = writeln!(
            out,
            "journal flush lag {} · group-commit queue {}",
            health.journal_flush_lag, health.group_commit_queue
        );
        let _ = writeln!(
            out,
            "{:<10} {:>8} {:>10} {:>10} {:>10}  p95 trend",
            "stage", "count", "p50", "p95", "p99"
        );
        for (i, stage) in STAGES.iter().enumerate() {
            let name = format!("server.stage.{stage}_ns");
            let (count, p50, p95, p99) = match json_line(&jsonl, &name) {
                Some(l) => (
                    json_num(l, "count").unwrap_or(0.0),
                    json_num(l, "p50").unwrap_or(0.0),
                    json_num(l, "p95").unwrap_or(0.0),
                    json_num(l, "p99").unwrap_or(0.0),
                ),
                None => (0.0, 0.0, 0.0, 0.0),
            };
            trend[i].push(p95 as u64);
            let _ = writeln!(
                out,
                "{stage:<10} {:>8} {:>10} {:>10} {:>10}  {}",
                count as u64,
                fmt_ns(p50),
                fmt_ns(p95),
                fmt_ns(p99),
                spark(&trend[i]),
            );
        }
        for p in &health.peers {
            let _ = writeln!(
                out,
                "peer {:04}: {} · breaker {} · clearing {}",
                p.branch,
                if p.reachable { "reachable" } else { "unreachable" },
                p.breaker.as_deref().unwrap_or("n/a"),
                p.clearing,
            );
        }
        let retained = json_line(&jsonl, "obs.flight.retained")
            .and_then(|l| json_num(l, "value"))
            .unwrap_or(0.0) as u64;
        let _ = writeln!(out, "flight recorder: {retained} slow/errored traces retained\n");
    }
    Ok(out)
}

/// `gridbank store --dir PATH` — read-only inventory of a sharded
/// durable store directory (docs/STORAGE.md): per-shard segments,
/// snapshot generations, the journal tail a restart would replay, and
/// torn-tail/compaction state. Never opens the store for writing.
fn run_store(args: &Args) -> Result<String, String> {
    use std::fmt::Write as _;

    let dir = std::path::Path::new(args.require("dir")?);
    let inv = gridbank_core::store::inspect(dir).map_err(|e| e.to_string())?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "store {} — format v{}, bank {:02} branch {:04}, {} shards",
        dir.display(),
        inv.manifest.version,
        inv.manifest.bank,
        inv.manifest.branch,
        inv.manifest.shards,
    );
    let _ = writeln!(
        out,
        "{:<6} {:>8} {:>12} {:>6} {:>14} {:>10} {:>6}  flags",
        "shard", "segments", "seg bytes", "snaps", "snapshot lsn", "accounts", "tail"
    );
    for (shard, s) in inv.shards.iter().enumerate() {
        let mut flags = Vec::new();
        if s.torn_tail {
            flags.push("TORN-TAIL".to_string());
        }
        if s.compacted_through != 0 {
            flags.push(format!("compacted≤{}", s.compacted_through));
        }
        let _ = writeln!(
            out,
            "{shard:<6} {:>8} {:>12} {:>6} {:>14} {:>10} {:>6}  {}",
            s.segments,
            s.segment_bytes,
            s.snapshots,
            s.snapshot_lsn,
            s.snapshot_accounts,
            s.tail_entries,
            flags.join(" "),
        );
    }
    let _ = write!(
        out,
        "totals: {} accounts snapshotted, {} tail entries to replay, {} bytes on disk",
        inv.snapshot_accounts(),
        inv.tail_entries(),
        inv.total_bytes(),
    );
    Ok(out)
}

fn run(args: &Args) -> Result<String, String> {
    let db_path = args.get("db").unwrap_or("gridbank.gbj");
    let command = args.command.as_deref().ok_or_else(usage)?;
    if command == "metrics" {
        // Self-contained workload: never touches the journal file.
        return run_metrics(args);
    }
    if command == "settle" {
        // Self-contained federated demo: never touches the journal file.
        return run_settle(args);
    }
    if command == "market" {
        // Self-contained market economy demo: never touches the journal file.
        return run_market_demo(args);
    }
    if command == "top" {
        // Self-contained ops dashboard: never touches the journal file.
        return run_top(args);
    }
    if command == "store" {
        // Offline durable-store inventory: read-only, never opens the
        // store for writing (docs/STORAGE.md).
        return run_store(args);
    }
    let bank = Bank::load(db_path)?;
    let out = match command {
        "create-account" => {
            let cert = args.require("cert")?;
            let org = args.get("org").map(str::to_string);
            let id = bank.accounts.create_account(cert, org).map_err(|e| e.to_string())?;
            format!("created account {id} for {cert}")
        }
        "deposit" | "withdraw" => {
            let account = parse_account(args.require("account")?)?;
            let amount = parse_amount(args.require("amount")?)?;
            let txid = if command == "deposit" {
                bank.admin.deposit(ADMIN_CERT, &account, amount)
            } else {
                bank.admin.withdraw(ADMIN_CERT, &account, amount)
            }
            .map_err(|e| e.to_string())?;
            format!("{command} {amount} on {account} (tx {txid})")
        }
        "transfer" => {
            let from = parse_account(args.require("from")?)?;
            let to = parse_account(args.require("to")?)?;
            let amount = parse_amount(args.require("amount")?)?;
            let txid = bank
                .accounts
                .transfer(&from, &to, amount, Vec::new())
                .map_err(|e| e.to_string())?;
            format!("transferred {amount}: {from} -> {to} (tx {txid})")
        }
        "credit-limit" => {
            let account = parse_account(args.require("account")?)?;
            let amount = parse_amount(args.require("amount")?)?;
            bank.admin
                .change_credit_limit(ADMIN_CERT, &account, amount)
                .map_err(|e| e.to_string())?;
            format!("credit limit on {account} set to {amount}")
        }
        "cancel" => {
            let txid: u64 = args.require("tx")?.parse().map_err(|e| format!("--tx: {e}"))?;
            let rev = bank.admin.cancel_transfer(ADMIN_CERT, txid).map_err(|e| e.to_string())?;
            format!("transfer {txid} reversed by tx {rev}")
        }
        "close-account" => {
            let account = parse_account(args.require("account")?)?;
            let to = args.get("transfer-to").map(parse_account).transpose()?;
            bank.admin.close_account(ADMIN_CERT, &account, to).map_err(|e| e.to_string())?;
            format!("account {account} closed")
        }
        "balance" => {
            let record = if let Some(acct) = args.get("account") {
                bank.accounts.account_details(&parse_account(acct)?)
            } else {
                bank.accounts.account_by_cert(args.require("cert")?)
            }
            .map_err(|e| e.to_string())?;
            format!(
                "{} [{}]\n  available: {}\n  locked:    {}\n  credit:    {}",
                record.id,
                record.certificate_name,
                record.available,
                record.locked,
                record.credit_limit
            )
        }
        "statement" => {
            let account = parse_account(args.require("account")?)?;
            let st = bank.accounts.statement(&account, 0, u64::MAX).map_err(|e| e.to_string())?;
            let mut out = format!(
                "statement for {} ({} transactions, {} transfers)\n",
                account,
                st.transactions.len(),
                st.transfers.len()
            );
            for t in &st.transactions {
                out.push_str(&format!(
                    "  tx {:>6}  {:>10?}  {:>18}  @{}\n",
                    t.transaction_id,
                    t.tx_type,
                    t.amount.to_string(),
                    t.date_ms
                ));
            }
            out
        }
        "accounts" => {
            let mut out =
                String::from("account           available         locked            cert\n");
            for r in bank.accounts.db().all_accounts() {
                out.push_str(&format!(
                    "{}  {:>16}  {:>14}  {}\n",
                    r.id,
                    r.available.to_string(),
                    r.locked.to_string(),
                    r.certificate_name
                ));
            }
            out.push_str(&format!("total funds: {}", bank.accounts.db().total_funds()));
            out
        }
        "branches" => {
            // Peer branches as witnessed by this bank's ledger: one
            // clearing account per peer plus any credits journalled as
            // shipped but not yet acknowledged (§6).
            let local = 1u16;
            let pending = bank.accounts.db().ib_pending_snapshot();
            let mut rows: Vec<(u16, AccountId, Credits, usize)> = Vec::new();
            for r in bank.accounts.db().all_accounts() {
                if let Some(peer) =
                    gridbank_core::branch::parse_clearing_cert(local, &r.certificate_name)
                {
                    let outstanding = pending.iter().filter(|p| p.to.branch == peer).count();
                    rows.push((peer, r.id, r.available, outstanding));
                }
            }
            rows.sort();
            if rows.is_empty() {
                String::from("no peer branches (no clearing accounts on ledger)")
            } else {
                let mut out =
                    String::from("peer    clearing account  parked balance    pending credits\n");
                for (peer, id, parked, outstanding) in rows {
                    out.push_str(&format!(
                        "{peer:04}    {id}  {:>14}  {outstanding:>15}\n",
                        parked.to_string()
                    ));
                }
                out.push_str(&format!(
                    "unacknowledged outbound credits (all peers): {}",
                    pending.len()
                ));
                out
            }
        }
        "barter-stats" => {
            let stats = BarterStats::compute(bank.accounts.db(), 0, u64::MAX);
            let mut out = String::from("account           consumed          provided\n");
            let mut ids: Vec<_> = stats.balances.keys().copied().collect();
            ids.sort();
            for id in ids {
                let b = stats.balances[&id];
                out.push_str(&format!(
                    "{}  {:>16}  {:>16}\n",
                    id,
                    b.consumed.to_string(),
                    b.provided.to_string()
                ));
            }
            out.push_str(&format!("equilibrium gap: {}", stats.equilibrium_gap()));
            out
        }
        other => return Err(format!("unknown command `{other}`\n{}", usage())),
    };
    bank.save()?;
    Ok(out)
}

fn usage() -> String {
    "usage: gridbank [--db FILE] COMMAND [flags]\n\
     commands:\n\
       create-account --cert DN [--org NAME]\n\
       deposit        --account ID --amount G$\n\
       withdraw       --account ID --amount G$\n\
       transfer       --from ID --to ID --amount G$\n\
       credit-limit   --account ID --amount G$\n\
       cancel         --tx TXID\n\
       close-account  --account ID [--transfer-to ID]\n\
       balance        --account ID | --cert DN\n\
       statement      --account ID\n\
       accounts\n\
       branches\n\
       barter-stats\n\
       metrics        [--format text|jsonl] [--filter prefix] [--remote ADDR]\n\
       top            [--frames N]\n\
       store          --dir PATH\n\
       settle         [--branches N] [--payments N] [--amount G$]\n\
       market         [--population N] [--payments N] [--auctions N] [--seed N]"
        .to_string()
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match Args::parse(&argv).and_then(|args| run(&args)) {
        Ok(out) => {
            println!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("gridbank: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Args {
        Args::parse(&list.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn amount_parsing() {
        assert_eq!(parse_amount("12").unwrap(), Credits::from_gd(12));
        assert_eq!(parse_amount("12.5").unwrap(), Credits::from_micro(12_500_000));
        assert_eq!(parse_amount("0.000001").unwrap(), Credits::from_micro(1));
        assert_eq!(parse_amount("-3.25").unwrap(), Credits::from_micro(-3_250_000));
        assert!(parse_amount("1.0000001").is_err());
        assert!(parse_amount("abc").is_err());
    }

    #[test]
    fn arg_parsing() {
        let a =
            args(&["--db", "x.gbj", "deposit", "--account", "01-0001-00000001", "--amount", "5"]);
        assert_eq!(a.command.as_deref(), Some("deposit"));
        assert_eq!(a.get("db"), Some("x.gbj"));
        assert_eq!(a.require("amount").unwrap(), "5");
        assert!(a.require("missing").is_err());
        assert!(Args::parse(&["--flag".to_string()]).is_err());
        assert!(Args::parse(&["a".to_string(), "b".to_string()]).is_err());
    }

    #[test]
    fn end_to_end_against_temp_journal() {
        let dir = std::env::temp_dir().join(format!("gridbank-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let db = dir.join("bank.gbj");
        let db = db.to_str().unwrap();

        let out = run(&args(&["--db", db, "create-account", "--cert", "/CN=alice"])).unwrap();
        assert!(out.contains("01-0001-00000001"));
        run(&args(&["--db", db, "create-account", "--cert", "/CN=bob"])).unwrap();
        run(&args(&["--db", db, "deposit", "--account", "01-0001-00000001", "--amount", "100"]))
            .unwrap();
        run(&args(&[
            "--db",
            db,
            "transfer",
            "--from",
            "01-0001-00000001",
            "--to",
            "01-0001-00000002",
            "--amount",
            "30.5",
        ]))
        .unwrap();

        // State persisted across invocations.
        let out = run(&args(&["--db", db, "balance", "--cert", "/CN=bob"])).unwrap();
        assert!(out.contains("G$30.500000"), "{out}");
        let out = run(&args(&["--db", db, "accounts"])).unwrap();
        assert!(out.contains("total funds: G$100.000000"), "{out}");
        let out = run(&args(&["--db", db, "statement", "--account", "01-0001-00000001"])).unwrap();
        assert!(out.contains("Deposit"), "{out}");
        let out = run(&args(&["--db", db, "barter-stats"])).unwrap();
        assert!(out.contains("equilibrium gap"), "{out}");

        // `metrics` runs its own workload and reports per-variant
        // latency percentiles for at least five request kinds.
        let out = run(&args(&["metrics"])).unwrap();
        for variant in ["MyAccount", "AccountDetails", "Statement", "CheckFunds", "DirectTransfer"]
        {
            assert!(
                out.contains(&format!("rpc.server.latency_ns/{variant}")),
                "missing {variant} in:\n{out}"
            );
        }
        assert!(out.contains("p99"), "{out}");
        let out = run(&args(&["metrics", "--format", "jsonl"])).unwrap();
        assert!(out.contains("\"type\":\"histogram\""), "{out}");
        assert!(run(&args(&["metrics", "--format", "xml"])).is_err());

        // `--filter` narrows the snapshot to one name prefix.
        let out = run(&args(&["metrics", "--filter", "core.transfer."])).unwrap();
        assert!(out.contains("core.transfer.count"), "{out}");
        assert!(!out.contains("rpc.server.latency_ns"), "{out}");

        // The workload includes a federated exchange, so inter-branch
        // metrics are observable through the same filter mechanism.
        let out = run(&args(&["metrics", "--filter", "ib."])).unwrap();
        assert!(out.contains("ib.transfers"), "{out}");
        assert!(out.contains("ib.settle.gross"), "{out}");
        assert!(out.contains("ib.forwarded"), "{out}");

        // `settle` runs a live two-branch federation over RPC and must
        // report fully-netted clearing accounts.
        let out = run(&args(&["settle", "--payments", "1"])).unwrap();
        assert!(out.contains("clearing accounts net to zero"), "{out}");
        assert!(out.contains("gross"), "{out}");

        // `branches` on a ledger with no clearing accounts says so.
        let out = run(&args(&["--db", db, "branches"])).unwrap();
        assert!(out.contains("no peer branches"), "{out}");

        // Errors are surfaced, not panics.
        assert!(run(&args(&[
            "--db",
            db,
            "withdraw",
            "--account",
            "01-0001-00000002",
            "--amount",
            "999"
        ]))
        .is_err());
        assert!(run(&args(&["--db", db, "nonsense"])).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn store_inventory_reads_a_durable_store() {
        use gridbank_core::db::AccountRecord;
        use gridbank_core::store::StoreConfig;

        let dir =
            std::env::temp_dir().join(format!("gridbank-cli-store-test-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();

        // Build a real sharded store: accounts, a checkpoint, and a
        // two-entry journal tail on top of it.
        let (db, _) = Database::open(1, 1, StoreConfig::at(&dir).no_fsync()).unwrap();
        for n in 1..=12u32 {
            db.insert_account(AccountRecord {
                id: AccountId::new(1, 1, n),
                certificate_name: format!("/CN=holder-{n}"),
                organization: None,
                available: Credits::from_gd(5),
                locked: Credits::ZERO,
                currency: "GridDollar".into(),
                credit_limit: Credits::ZERO,
            })
            .unwrap();
        }
        db.checkpoint().unwrap();
        for n in 13..=14u32 {
            db.insert_account(AccountRecord {
                id: AccountId::new(1, 1, n),
                certificate_name: format!("/CN=holder-{n}"),
                organization: None,
                available: Credits::from_gd(5),
                locked: Credits::ZERO,
                currency: "GridDollar".into(),
                credit_limit: Credits::ZERO,
            })
            .unwrap();
        }
        drop(db);

        let out = run(&args(&["store", "--dir", dir.to_str().unwrap()])).unwrap();
        assert!(out.contains("format v1"), "{out}");
        assert!(out.contains("12 accounts snapshotted"), "{out}");
        assert!(out.contains("2 tail entries to replay"), "{out}");

        assert!(run(&args(&["store"])).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn store_rejects_non_store_directories_with_typed_errors() {
        let base = std::env::temp_dir()
            .join(format!("gridbank-cli-notastore-test-{}", std::process::id()));
        std::fs::remove_dir_all(&base).ok();
        std::fs::create_dir_all(&base).unwrap();

        // A directory that does not exist.
        let missing = base.join("missing");
        let err = run(&args(&["store", "--dir", missing.to_str().unwrap()])).unwrap_err();
        assert!(err.contains("not a gridbank store"), "{err}");
        assert!(err.contains("directory does not exist"), "{err}");

        // A directory that exists but holds nothing.
        let empty = base.join("empty");
        std::fs::create_dir_all(&empty).unwrap();
        let err = run(&args(&["store", "--dir", empty.to_str().unwrap()])).unwrap_err();
        assert!(err.contains("not a gridbank store"), "{err}");
        assert!(err.contains("directory is empty"), "{err}");

        // A non-empty directory that was never a store (no MANIFEST).
        let other = base.join("other");
        std::fs::create_dir_all(&other).unwrap();
        std::fs::write(other.join("notes.txt"), b"hello").unwrap();
        let err = run(&args(&["store", "--dir", other.to_str().unwrap()])).unwrap_err();
        assert!(err.contains("not a gridbank store"), "{err}");
        assert!(err.contains("no MANIFEST file"), "{err}");

        // A damaged store is still a *storage* error, not NotAStore:
        // a MANIFEST exists but cannot be verified.
        let broken = base.join("broken");
        std::fs::create_dir_all(&broken).unwrap();
        std::fs::write(broken.join("MANIFEST"), b"short").unwrap();
        let err = run(&args(&["store", "--dir", broken.to_str().unwrap()])).unwrap_err();
        assert!(err.contains("storage error"), "{err}");
        assert!(!err.contains("not a gridbank store"), "{err}");

        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn ops_plane_consumers() {
        // `metrics --remote` boots a live federation and scrapes its
        // ops plane over RPC as the enrolled OPS_ADMIN; the gate line
        // proves a regular payer was refused first.
        let out = run(&args(&["metrics", "--remote", "bank", "--format", "jsonl"])).unwrap();
        assert!(out.contains("\"type\":\"ops-gate\""), "{out}");
        assert!(out.contains("\"state\":\"Healthy\""), "{out}");
        for stage in STAGES {
            let name = format!("\"name\":\"server.stage.{stage}_ns\"");
            let line = out
                .lines()
                .find(|l| l.contains(&name))
                .unwrap_or_else(|| panic!("missing {stage} stage in:\n{out}"));
            assert!(json_num(line, "count").unwrap_or(0.0) > 0.0, "{stage} empty: {line}");
        }

        // Server-side filtering narrows the scrape; bad targets error.
        let out =
            run(&args(&["metrics", "--remote", "branch-2", "--filter", "server.stage."])).unwrap();
        assert!(out.contains("server.stage.queue_ns"), "{out}");
        assert!(!out.contains("\"name\":\"rpc.server"), "{out}");
        assert!(run(&args(&["metrics", "--remote", "branch-9"])).is_err());

        // `top` renders every stage row, peer breaker state, and the
        // health verdict on each frame.
        let out = run(&args(&["top", "--frames", "2"])).unwrap();
        assert!(out.contains("frame 2/2"), "{out}");
        for stage in STAGES {
            assert!(out.contains(stage), "missing {stage} in:\n{out}");
        }
        assert!(out.contains("Healthy"), "{out}");
        assert!(out.contains("breaker Closed"), "{out}");
        assert!(out.contains("flight recorder:"), "{out}");
        assert!(run(&args(&["top", "--frames", "0"])).is_err());
    }

    #[test]
    fn market_demo_reports_invariants() {
        // A trimmed `market` run drives the full economy — spot
        // payments, auctions, barter, PayWord — through live servers
        // and must end on the invariant verdict line.
        let out =
            run(&args(&["market", "--population", "60", "--payments", "30", "--auctions", "2"]))
                .unwrap();
        assert!(out.contains("market economy: 120 accounts"), "{out}");
        assert!(out.contains("2 settled (1 dutch, 1 english)"), "{out}");
        assert!(out.contains("ledger digest:"), "{out}");
        assert!(
            out.contains(
                "invariants: conservation, exactly-once settlement, zero stranded credit — OK"
            ),
            "{out}"
        );

        // A population too small to seat the cast is rejected up front.
        assert!(run(&args(&["market", "--population", "3"])).is_err());
        assert!(run(&args(&["market", "--seed", "oops"])).is_err());
    }
}
