//! The grid-mapfile.
//!
//! GSI maps authenticated certificate names to local accounts through the
//! grid-mapfile. §2.3: "GSC's Certificate Name is temporarily mapped to
//! the local account (in grid-mapfile) to indicate the dynamic
//! relationship between the account and current user … GBCM then removes
//! the association by deleting the entry corresponding to GSC in the
//! grid-mapfile and returning the local account to the pool."

use std::collections::HashMap;

use parking_lot::RwLock;

use crate::error::GspError;

/// A concurrent grid-mapfile with the classic textual form.
#[derive(Default)]
pub struct GridMapfile {
    /// cert name → local account name.
    entries: RwLock<HashMap<String, String>>,
}

impl GridMapfile {
    /// An empty mapfile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Binds `cert` to `local`. A certificate may hold only one binding
    /// and a local account may serve only one certificate at a time.
    pub fn bind(&self, cert: &str, local: &str) -> Result<(), GspError> {
        let mut map = self.entries.write();
        if map.contains_key(cert) {
            return Err(GspError::Mapfile(format!("`{cert}` already bound")));
        }
        if map.values().any(|l| l == local) {
            return Err(GspError::Mapfile(format!("local account `{local}` already in use")));
        }
        map.insert(cert.to_string(), local.to_string());
        Ok(())
    }

    /// Removes the binding for `cert`, returning the local account name.
    pub fn unbind(&self, cert: &str) -> Result<String, GspError> {
        self.entries
            .write()
            .remove(cert)
            .ok_or_else(|| GspError::Mapfile(format!("`{cert}` not bound")))
    }

    /// The local account `cert` is bound to, if any.
    pub fn lookup(&self, cert: &str) -> Option<String> {
        self.entries.read().get(cert).cloned()
    }

    /// Number of live bindings.
    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    /// True when no bindings exist.
    pub fn is_empty(&self) -> bool {
        self.entries.read().is_empty()
    }

    /// Renders the classic `"DN" account` textual form, sorted for
    /// determinism.
    pub fn render(&self) -> String {
        let map = self.entries.read();
        let mut lines: Vec<String> =
            map.iter().map(|(cert, local)| format!("\"{cert}\" {local}")).collect();
        lines.sort();
        let mut out = lines.join("\n");
        if !out.is_empty() {
            out.push('\n');
        }
        out
    }

    /// Parses the textual form back into a mapfile.
    pub fn parse(text: &str) -> Result<GridMapfile, GspError> {
        let mapfile = GridMapfile::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let rest = line.strip_prefix('"').ok_or_else(|| {
                GspError::Mapfile(format!(
                    "line {}: missing opening quote",
                    lineno.saturating_add(1)
                ))
            })?;
            let (cert, local) = rest.split_once('"').ok_or_else(|| {
                GspError::Mapfile(format!(
                    "line {}: missing closing quote",
                    lineno.saturating_add(1)
                ))
            })?;
            let local = local.trim();
            if local.is_empty() {
                return Err(GspError::Mapfile(format!(
                    "line {}: missing local account",
                    lineno.saturating_add(1)
                )));
            }
            mapfile.bind(cert, local)?;
        }
        Ok(mapfile)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_lookup_unbind() {
        let m = GridMapfile::new();
        m.bind("/CN=alice", "grid001").unwrap();
        assert_eq!(m.lookup("/CN=alice").as_deref(), Some("grid001"));
        assert_eq!(m.len(), 1);
        assert_eq!(m.unbind("/CN=alice").unwrap(), "grid001");
        assert!(m.is_empty());
        assert!(m.unbind("/CN=alice").is_err());
    }

    #[test]
    fn conflicts_rejected() {
        let m = GridMapfile::new();
        m.bind("/CN=alice", "grid001").unwrap();
        // Same cert twice.
        assert!(m.bind("/CN=alice", "grid002").is_err());
        // Same local account for another cert.
        assert!(m.bind("/CN=bob", "grid001").is_err());
        // After unbind both are allowed again.
        m.unbind("/CN=alice").unwrap();
        m.bind("/CN=bob", "grid001").unwrap();
    }

    #[test]
    fn render_and_parse_round_trip() {
        let m = GridMapfile::new();
        m.bind("/O=UWA/OU=CSSE/CN=alice", "grid001").unwrap();
        m.bind("/O=UM/OU=GRIDS/CN=raj", "grid002").unwrap();
        let text = m.render();
        assert!(text.contains("\"/O=UWA/OU=CSSE/CN=alice\" grid001"));
        let parsed = GridMapfile::parse(&text).unwrap();
        assert_eq!(parsed.lookup("/O=UM/OU=GRIDS/CN=raj").as_deref(), Some("grid002"));
        assert_eq!(parsed.render(), text);
    }

    #[test]
    fn parse_tolerates_comments_and_rejects_garbage() {
        let parsed = GridMapfile::parse("# comment\n\n\"/CN=x\" grid001\n").unwrap();
        assert_eq!(parsed.len(), 1);
        assert!(GridMapfile::parse("no quotes here").is_err());
        assert!(GridMapfile::parse("\"/CN=x\"").is_err());
        assert!(GridMapfile::parse("\"/CN=x\" a\n\"/CN=x\" b").is_err());
    }
}
