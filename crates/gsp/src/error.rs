//! Error type for the provider side.

use std::fmt;

use gridbank_core::BankError;
use gridbank_rur::RurError;
use gridbank_trade::TradeError;

/// Errors from the GSP pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GspError {
    /// The payment instrument failed validation.
    PaymentRejected(String),
    /// No template account was free within the wait budget.
    PoolExhausted {
        /// Configured pool size.
        pool_size: usize,
    },
    /// grid-mapfile binding conflict.
    Mapfile(String),
    /// The agreed rates and the metered RUR do not conform.
    Trade(TradeError),
    /// Bank interaction failed.
    Bank(BankError),
    /// Metering/record failure.
    Record(RurError),
    /// The job specification is unserviceable on this provider.
    Unserviceable(String),
}

impl fmt::Display for GspError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GspError::PaymentRejected(why) => write!(f, "payment rejected: {why}"),
            GspError::PoolExhausted { pool_size } => {
                write!(f, "all {pool_size} template accounts busy")
            }
            GspError::Mapfile(why) => write!(f, "grid-mapfile: {why}"),
            GspError::Trade(e) => write!(f, "trade: {e}"),
            GspError::Bank(e) => write!(f, "bank: {e}"),
            GspError::Record(e) => write!(f, "record: {e}"),
            GspError::Unserviceable(why) => write!(f, "unserviceable job: {why}"),
        }
    }
}

impl std::error::Error for GspError {}

impl From<TradeError> for GspError {
    fn from(e: TradeError) -> Self {
        GspError::Trade(e)
    }
}

impl From<BankError> for GspError {
    fn from(e: BankError) -> Self {
        GspError::Bank(e)
    }
}

impl From<RurError> for GspError {
    fn from(e: RurError) -> Self {
        GspError::Record(e)
    }
}
