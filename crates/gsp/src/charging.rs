//! The GridBank Charging Module (GBCM).
//!
//! §6 summarizes its duties: "determining legitimacy of payment
//! instruments passed to it by the GridBank Payment Module, setting up
//! and removing (after execution of user application) temporary local
//! accounts, calculating total charge using the Resource Usage Record and
//! the service rates passed by the Grid Trade Service, and redeeming the
//! payment with the GridBank server."
//!
//! Account setup/removal lives in [`crate::provider`] (it owns the pool
//! and mapfile); this module is instrument validation, charge
//! calculation, and redemption.

use gridbank_core::cheque::GridCheque;
use gridbank_core::direct::TransferConfirmation;
use gridbank_core::payword::{ChainCommitment, GridHashChain, PayWord};
use gridbank_core::port::BankPort;
use gridbank_crypto::keys::VerifyingKey;
use gridbank_crypto::merkle::MerkleSignature;
use gridbank_rur::codec::Encode;
use gridbank_rur::record::ResourceUsageRecord;
use gridbank_rur::Credits;
use gridbank_trade::rates::ServiceRates;

use crate::error::GspError;

/// The credentials a GSC presents with a job (§2.3: "we consider such
/// credentials to be a payment instrument that GSC obtains from the
/// GridBank").
#[derive(Clone, Debug)]
pub enum PaymentInstrument {
    /// Pay-after-use: a bank-signed cheque made out to this GSP.
    Cheque(GridCheque),
    /// Pay-as-you-go: a bank-signed hash-chain commitment; paywords flow
    /// during execution.
    HashChain {
        /// The commitment.
        commitment: ChainCommitment,
        /// Bank signature over the commitment.
        signature: MerkleSignature,
    },
    /// Pay-before-use: a bank-signed confirmation that the fixed price
    /// was already transferred.
    Prepaid(TransferConfirmation),
}

impl PaymentInstrument {
    /// The guaranteed value this instrument carries.
    pub fn guaranteed_value(&self) -> Credits {
        match self {
            PaymentInstrument::Cheque(c) => c.body.reserved,
            PaymentInstrument::HashChain { commitment, .. } => commitment
                .value_per_word
                .checked_mul(commitment.length as i128)
                .unwrap_or(Credits::MAX),
            PaymentInstrument::Prepaid(conf) => conf.body.amount,
        }
    }
}

/// The charging module, bound to the GSP's identity and a bank port.
pub struct ChargingModule<P: BankPort> {
    /// The bank's well-known verifying key (instruments check offline).
    pub bank_key: VerifyingKey,
    /// This GSP's certificate name.
    pub gsp_cert: String,
    /// Bank access for redemption.
    pub port: P,
}

impl<P: BankPort> ChargingModule<P> {
    /// Creates a module.
    pub fn new(bank_key: VerifyingKey, gsp_cert: impl Into<String>, port: P) -> Self {
        ChargingModule { bank_key, gsp_cert: gsp_cert.into(), port }
    }

    /// Validates an instrument *before* granting access (§2.3: access is
    /// granted only on a "well-formed payment instrument").
    pub fn validate_instrument(
        &mut self,
        instrument: &PaymentInstrument,
        now_ms: u64,
    ) -> Result<(), GspError> {
        let kind = match instrument {
            PaymentInstrument::Cheque(_) => "Cheque",
            PaymentInstrument::HashChain { .. } => "HashChain",
            PaymentInstrument::Prepaid(_) => "Prepaid",
        };
        let mut span = gridbank_obs::span("gsp.charging", "validate_instrument");
        span.attr("instrument", kind.to_string());
        let timer = gridbank_obs::Stopwatch::start();
        let out = self.validate_instrument_inner(instrument, now_ms);
        gridbank_obs::count(
            if out.is_ok() {
                "gsp.charging.instruments_accepted"
            } else {
                "gsp.charging.instruments_rejected"
            },
            1,
        );
        timer.record_named_label("gsp.charging.validate_ns", kind);
        out
    }

    fn validate_instrument_inner(
        &mut self,
        instrument: &PaymentInstrument,
        now_ms: u64,
    ) -> Result<(), GspError> {
        match instrument {
            PaymentInstrument::Cheque(cheque) => cheque
                .verify(&self.bank_key, Some(&self.gsp_cert), now_ms)
                .map_err(|e| GspError::PaymentRejected(e.to_string())),
            PaymentInstrument::HashChain { commitment, signature } => {
                GridHashChain::verify_commitment(commitment, signature, &self.bank_key)
                    .map_err(|e| GspError::PaymentRejected(e.to_string()))?;
                if commitment.payee_cert != self.gsp_cert {
                    return Err(GspError::PaymentRejected(format!(
                        "chain payable to `{}`",
                        commitment.payee_cert
                    )));
                }
                if now_ms >= commitment.expires_ms {
                    return Err(GspError::PaymentRejected("chain expired".into()));
                }
                Ok(())
            }
            PaymentInstrument::Prepaid(conf) => {
                conf.verify(&self.bank_key)
                    .map_err(|e| GspError::PaymentRejected(e.to_string()))?;
                let my_account = self.port.my_account()?;
                if conf.body.recipient != my_account.id {
                    return Err(GspError::PaymentRejected(format!(
                        "prepaid confirmation pays {}, not this GSP's account {}",
                        conf.body.recipient, my_account.id
                    )));
                }
                Ok(())
            }
        }
    }

    /// "Calculating total charge using the Resource Usage Record and the
    /// service rates": conformance check then itemized total (§2.1).
    pub fn compute_charge(
        &self,
        rates: &ServiceRates,
        rur: &ResourceUsageRecord,
    ) -> Result<Credits, GspError> {
        let _span = gridbank_obs::span("gsp.charging", "compute_charge");
        let timer = gridbank_obs::Stopwatch::start();
        let charge = rates.charge(rur);
        timer.record_named("gsp.charging.compute_charge_ns");
        Ok(charge?)
    }

    /// Redeems a cheque with the bank; returns (paid, released).
    pub fn redeem_cheque(
        &mut self,
        cheque: GridCheque,
        rur: ResourceUsageRecord,
    ) -> Result<(Credits, Credits), GspError> {
        let _span = gridbank_obs::span("gsp.charging", "redeem_cheque");
        let timer = gridbank_obs::Stopwatch::start();
        let out = self.port.redeem_cheque(cheque, rur);
        timer.record_named("gsp.charging.redeem_cheque_ns");
        Ok(out?)
    }

    /// Redeems paywords up to `payword.index`; verifies the word against
    /// the commitment locally first (no point shipping junk to the bank).
    pub fn redeem_payword(
        &mut self,
        commitment: &ChainCommitment,
        signature: &MerkleSignature,
        payword: PayWord,
        rur: Option<&ResourceUsageRecord>,
    ) -> Result<Credits, GspError> {
        let _span = gridbank_obs::span("gsp.charging", "redeem_payword");
        let verify_timer = gridbank_obs::Stopwatch::start();
        let verified = payword.verify(&commitment.root, commitment.length);
        verify_timer.record_named("gsp.charging.payword_verify_ns");
        verified.map_err(|e| GspError::PaymentRejected(e.to_string()))?;
        let blob = rur.map(|r| r.to_bytes()).unwrap_or_default();
        let timer = gridbank_obs::Stopwatch::start();
        let out = self.port.redeem_payword(commitment.clone(), signature.clone(), payword, blob);
        timer.record_named("gsp.charging.redeem_payword_ns");
        Ok(out?)
    }

    /// Converts a charge into the number of paywords that cover it
    /// (ceiling division). May exceed the chain length — callers compare
    /// against `commitment.length` to detect an underfunded chain.
    pub fn words_for_charge(commitment: &ChainCommitment, charge: Credits) -> u32 {
        if !charge.is_positive() {
            return 0;
        }
        // Both operands are positive here (guarded above; value_per_word
        // is clamped to >= 1), so widening into u128 is exact and
        // div_ceil replaces the overflow-prone `(a + b - 1) / b` idiom.
        let per = commitment.value_per_word.micro().max(1) as u128;
        let words = (charge.micro() as u128).div_ceil(per);
        words.min(u32::MAX as u128) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridbank_core::api::BankRequest;
    use gridbank_core::clock::Clock;
    use gridbank_core::port::InProcessBank;
    use gridbank_core::server::{GridBank, GridBankConfig};
    use gridbank_crypto::cert::SubjectName;
    use gridbank_rur::record::{ChargeableItem, RurBuilder, UsageAmount};
    use gridbank_rur::units::Duration;
    use std::sync::Arc;

    struct World {
        bank: Arc<GridBank>,
        gsc: SubjectName,
        gsp: SubjectName,
    }

    fn world() -> World {
        let bank = Arc::new(GridBank::new(
            GridBankConfig { signer_height: 6, ..GridBankConfig::default() },
            Clock::new(),
        ));
        let gsc = SubjectName::new("UWA", "CSSE", "alice");
        let gsp = SubjectName::new("UM", "GRIDS", "gsp-alpha");
        let admin = SubjectName("/O=GridBank/OU=Admin/CN=operator".into());
        let mut gsc_port = InProcessBank::new(bank.clone(), gsc.clone());
        let acct = gsc_port.create_account(None).unwrap();
        let mut gsp_port = InProcessBank::new(bank.clone(), gsp.clone());
        gsp_port.create_account(None).unwrap();
        bank.handle(
            &admin,
            BankRequest::AdminDeposit { account: acct, amount: Credits::from_gd(100) },
        );
        World { bank, gsc, gsp }
    }

    fn gbcm(w: &World) -> ChargingModule<InProcessBank> {
        ChargingModule::new(
            w.bank.verifying_key(),
            w.gsp.0.clone(),
            InProcessBank::new(w.bank.clone(), w.gsp.clone()),
        )
    }

    fn rur(w: &World, hours: u64, rate: Credits) -> ResourceUsageRecord {
        RurBuilder::default()
            .user("h", &w.gsc.0)
            .job("j", "a", 0, hours * 3_600_000)
            .resource("r", &w.gsp.0, None, 1)
            .line(ChargeableItem::Cpu, UsageAmount::Time(Duration::from_hours(hours)), rate)
            .build()
            .unwrap()
    }

    #[test]
    fn cheque_validate_and_redeem() {
        let w = world();
        let mut gsc_port = InProcessBank::new(w.bank.clone(), w.gsc.clone());
        let cheque = gsc_port.request_cheque(&w.gsp.0, Credits::from_gd(20), 100_000).unwrap();
        let mut m = gbcm(&w);
        m.validate_instrument(&PaymentInstrument::Cheque(cheque.clone()), 10).unwrap();

        let rates = ServiceRates::new().with(ChargeableItem::Cpu, Credits::from_gd(3));
        let record = rur(&w, 2, Credits::from_gd(3));
        let charge = m.compute_charge(&rates, &record).unwrap();
        assert_eq!(charge, Credits::from_gd(6));
        let (paid, released) = m.redeem_cheque(cheque, record).unwrap();
        assert_eq!(paid, Credits::from_gd(6));
        assert_eq!(released, Credits::from_gd(14));
    }

    #[test]
    fn wrong_payee_cheque_rejected_before_work() {
        let w = world();
        let mut gsc_port = InProcessBank::new(w.bank.clone(), w.gsc.clone());
        let cheque = gsc_port
            .request_cheque("/O=Other/OU=X/CN=gsp-beta", Credits::from_gd(20), 100_000)
            .unwrap();
        let mut m = gbcm(&w);
        assert!(matches!(
            m.validate_instrument(&PaymentInstrument::Cheque(cheque), 10),
            Err(GspError::PaymentRejected(_))
        ));
    }

    #[test]
    fn nonconforming_rur_never_reaches_the_bank() {
        let w = world();
        let m = gbcm(&w);
        // Rates price CPU at 3 but the RUR claims 9.
        let rates = ServiceRates::new().with(ChargeableItem::Cpu, Credits::from_gd(3));
        let record = rur(&w, 1, Credits::from_gd(9));
        assert!(matches!(m.compute_charge(&rates, &record), Err(GspError::Trade(_))));
    }

    #[test]
    fn hash_chain_validate_and_incremental_redeem() {
        let w = world();
        let mut gsc_port = InProcessBank::new(w.bank.clone(), w.gsc.clone());
        let chain =
            gsc_port.request_hash_chain(&w.gsp.0, 10, Credits::from_gd(1), 100_000).unwrap();
        let mut m = gbcm(&w);
        let instrument = PaymentInstrument::HashChain {
            commitment: chain.commitment.clone(),
            signature: chain.signature.clone(),
        };
        m.validate_instrument(&instrument, 10).unwrap();
        assert_eq!(instrument.guaranteed_value(), Credits::from_gd(10));

        // Charge of 2.5 G$ needs 3 words.
        let words = ChargingModule::<InProcessBank>::words_for_charge(
            &chain.commitment,
            Credits::from_micro(2_500_000),
        );
        assert_eq!(words, 3);
        let pw = chain.payword(words).unwrap();
        let paid = m.redeem_payword(&chain.commitment, &chain.signature, pw, None).unwrap();
        assert_eq!(paid, Credits::from_gd(3));

        // A forged word fails locally.
        let forged = PayWord { index: 5, word: gridbank_crypto::sha256::sha256(b"nope") };
        assert!(matches!(
            m.redeem_payword(&chain.commitment, &chain.signature, forged, None),
            Err(GspError::PaymentRejected(_))
        ));
    }

    #[test]
    fn prepaid_validation_checks_recipient() {
        let w = world();
        let mut gsc_port = InProcessBank::new(w.bank.clone(), w.gsc.clone());
        let mut m = gbcm(&w);
        let gsp_account = m.port.my_account().unwrap().id;
        let conf =
            gsc_port.direct_transfer(gsp_account, Credits::from_gd(2), "gsp.grid.org").unwrap();
        m.validate_instrument(&PaymentInstrument::Prepaid(conf), 5).unwrap();

        // A confirmation paying someone else is refused.
        let mallory = SubjectName::new("E", "E", "mallory");
        let mut mallory_port = InProcessBank::new(w.bank.clone(), mallory);
        let mallory_acct = mallory_port.create_account(None).unwrap();
        let conf2 = gsc_port.direct_transfer(mallory_acct, Credits::from_gd(2), "x").unwrap();
        assert!(matches!(
            m.validate_instrument(&PaymentInstrument::Prepaid(conf2), 5),
            Err(GspError::PaymentRejected(_))
        ));
    }

    #[test]
    fn words_for_charge_boundaries() {
        let w = world();
        let mut gsc_port = InProcessBank::new(w.bank.clone(), w.gsc.clone());
        let chain = gsc_port.request_hash_chain(&w.gsp.0, 5, Credits::from_gd(2), 100_000).unwrap();
        let c = &chain.commitment;
        type M = ChargingModule<InProcessBank>;
        assert_eq!(M::words_for_charge(c, Credits::ZERO), 0);
        assert_eq!(M::words_for_charge(c, Credits::from_micro(1)), 1);
        assert_eq!(M::words_for_charge(c, Credits::from_gd(2)), 1);
        assert_eq!(M::words_for_charge(c, Credits::from_micro(2_000_001)), 2);
        // May exceed the chain length — the caller detects underfunding.
        assert_eq!(M::words_for_charge(c, Credits::from_gd(1_000)), 500);
        assert!(M::words_for_charge(c, Credits::from_gd(1_000)) > c.length);
    }
}
