//! The assembled Grid Service Provider.
//!
//! Ties together the §2 pipeline: validate the payment instrument (GBCM)
//! → assign a template account and bind the grid-mapfile (§2.3) → execute
//! on the least-loaded machine → meter and convert usage (GRM, Figure 2)
//! → conformance-check against the agreed rates → redeem with GridBank →
//! unbind and return the account to the pool.

use gridbank_core::payword::{ChainCommitment, PayWord};
use gridbank_core::port::BankPort;
use gridbank_crypto::keys::VerifyingKey;
use gridbank_crypto::merkle::MerkleSignature;
use gridbank_meter::levels::AccountingLevel;
use gridbank_meter::machine::{JobSpec, Machine, MachineSpec};
use gridbank_meter::meter::{GridResourceMeter, MeteredJob};
use gridbank_rur::record::{ChargeableItem, ResourceUsageRecord};
use gridbank_rur::Credits;
use gridbank_trade::directory::ProviderAd;
use gridbank_trade::pricing::{PricingPolicy, Utilization};
use gridbank_trade::rates::{RateQuote, ServiceRates};
use gridbank_trade::session::{Announcement, AuctionKind};

use crate::charging::{ChargingModule, PaymentInstrument};
use crate::error::GspError;
use crate::mapfile::GridMapfile;
use crate::template::TemplatePool;

/// Provider construction parameters.
pub struct GspConfig {
    /// The provider's certificate name.
    pub cert: String,
    /// Host/endpoint name.
    pub host: String,
    /// The machines behind this provider (R1–R4 of Figure 1).
    pub machines: Vec<MachineSpec>,
    /// Base service rates before pricing-policy adjustment.
    pub base_rates: ServiceRates,
    /// Template account pool size (§2.3).
    pub pool_size: usize,
    /// Accounting level the meter runs at.
    pub accounting_level: AccountingLevel,
    /// Seed for machine jitter.
    pub machine_seed: u64,
}

/// Everything the consumer gets back after a paid job.
#[derive(Clone, Debug)]
pub struct JobOutcome {
    /// The combined (aggregated) usage record.
    pub rur: ResourceUsageRecord,
    /// The itemized charge.
    pub charge: Credits,
    /// Amount actually paid to the provider.
    pub paid: Credits,
    /// Reservation released back to the consumer (cheque path).
    pub released: Credits,
    /// The template account the job ran under.
    pub local_account: String,
    /// Machine that served the job.
    pub machine_host: String,
    /// Virtual completion time.
    pub end_ms: u64,
}

struct MachineState {
    machine: Machine,
    busy_until_ms: u64,
}

/// The provider.
pub struct GridServiceProvider<P: BankPort> {
    /// Certificate name.
    pub cert: String,
    /// Host name.
    pub host: String,
    machines: Vec<MachineState>,
    /// Template account pool (public for the scalability experiments).
    pub pool: TemplatePool,
    /// The grid-mapfile.
    pub mapfile: GridMapfile,
    meter: GridResourceMeter,
    /// The charging module.
    pub gbcm: ChargingModule<P>,
    base_rates: ServiceRates,
    pricing: Box<dyn PricingPolicy>,
    accounting_level: AccountingLevel,
    next_quote: u64,
    next_job: u64,
    /// Jobs completed, for diagnostics.
    pub jobs_served: u64,
    /// Optional failure injection: (percent, seeded rng).
    failure: Option<(u8, rand::rngs::StdRng)>,
}

impl<P: BankPort> GridServiceProvider<P> {
    /// Builds a provider; `pricing` maps load to quoted rates.
    pub fn new(
        config: GspConfig,
        bank_key: VerifyingKey,
        port: P,
        pricing: Box<dyn PricingPolicy>,
    ) -> Self {
        let machines = config
            .machines
            .into_iter()
            .enumerate()
            .map(|(i, spec)| MachineState {
                machine: Machine::new(spec, config.machine_seed.wrapping_add(i as u64)),
                busy_until_ms: 0,
            })
            .collect();
        GridServiceProvider {
            gbcm: ChargingModule::new(bank_key, config.cert.clone(), port),
            cert: config.cert,
            host: config.host,
            machines,
            pool: TemplatePool::new("grid", config.pool_size, 0o700),
            mapfile: GridMapfile::new(),
            meter: GridResourceMeter::new(""),
            base_rates: config.base_rates,
            pricing,
            accounting_level: config.accounting_level,
            next_quote: 1,
            next_job: 1,
            jobs_served: 0,
            failure: None,
        }
    }

    /// Enables fault injection: each execution fails with `pct`% chance
    /// (deterministic under `seed`). Used by resilience tests and the
    /// broker-retry experiments; failed jobs consume no payment.
    pub fn inject_failures(&mut self, pct: u8, seed: u64) {
        use rand::SeedableRng;
        self.failure = Some((pct.min(100), rand::rngs::StdRng::seed_from_u64(seed)));
    }

    /// Fraction of machines busy at `now`, as a [`Utilization`].
    pub fn utilization(&self, now_ms: u64) -> Utilization {
        if self.machines.is_empty() {
            return Utilization::new(0);
        }
        let busy = self.machines.iter().filter(|m| m.busy_until_ms > now_ms).count();
        Utilization::new(
            busy.saturating_mul(100).checked_div(self.machines.len()).unwrap_or(0) as u8
        )
    }

    /// The Grid Trade Server's quote: pricing policy applied to base
    /// rates at the current load.
    pub fn quote(&mut self, now_ms: u64, validity_ms: u64) -> Result<RateQuote, GspError> {
        let rates = self.pricing.quote(&self.base_rates, self.utilization(now_ms))?;
        let quote_id = self.next_quote;
        self.next_quote = self.next_quote.wrapping_add(1);
        Ok(RateQuote {
            provider: self.cert.clone(),
            rates,
            valid_until: now_ms.saturating_add(validity_ms),
            quote_id,
        })
    }

    /// Announces an auction for capacity, priced off the live quote.
    ///
    /// The mechanism follows the load: a scarce provider (half or more
    /// of its machines busy) sells by **English** ascending auction with
    /// the demand-adjusted hourly price as the reserve — a flash crowd
    /// bids the price up from there; an idle provider moves stock by
    /// **Dutch** descending auction opening at twice the posted hourly
    /// price and never clearing below it.
    pub fn announce_auction(
        &mut self,
        auction_id: u64,
        item: impl Into<String>,
        now_ms: u64,
    ) -> Result<Announcement, GspError> {
        let quote = self.quote(now_ms, 60_000)?;
        let hourly = quote.rates.total_time_price_per_hour();
        let kind = if self.utilization(now_ms).0 >= 50 {
            let increment =
                hourly.mul_ratio(1, 10).map_err(GspError::Record)?.max(Credits::from_micro(1));
            AuctionKind::English { reserve: hourly, increment }
        } else {
            let start = hourly.checked_mul(2).map_err(GspError::Record)?;
            let decrement =
                hourly.mul_ratio(1, 8).map_err(GspError::Record)?.max(Credits::from_micro(1));
            AuctionKind::Dutch { start, decrement, floor: hourly }
        };
        Ok(Announcement { auction_id, seller: self.cert.clone(), item: item.into(), kind })
    }

    /// The GMD advertisement for this provider.
    pub fn advertisement(&self) -> ProviderAd {
        let speed = self.machines.iter().map(|m| m.machine.spec.speed).max().unwrap_or(0);
        let cores: u32 = self.machines.iter().map(|m| m.machine.spec.cores).sum();
        let memory: u64 = self.machines.iter().map(|m| m.machine.spec.memory_mb).sum();
        ProviderAd {
            provider: self.cert.clone(),
            address: self.host.clone(),
            host_type: self
                .machines
                .first()
                .map(|m| m.machine.spec.os.host_type().to_string())
                .unwrap_or_else(|| "unknown".into()),
            cpu_speed: speed,
            cpu_count: cores,
            memory_mb: memory,
            storage_mb: 1_000_000,
            bandwidth_mbps: 1_000,
            rates: self.base_rates.clone(),
        }
    }

    /// The best throughput (work units/ms) any single machine offers a
    /// job with the given parallelism — the broker's speed estimate.
    pub fn effective_speed(&self, parallelism: u32) -> u64 {
        self.machines
            .iter()
            .map(|m| {
                (m.machine.spec.speed as u64)
                    .saturating_mul(m.machine.spec.cores.min(parallelism.max(1)) as u64)
            })
            .max()
            .unwrap_or(0)
    }

    /// Number of machines behind this provider.
    pub fn machine_count(&self) -> usize {
        self.machines.len()
    }

    fn pick_machine(&mut self) -> Result<usize, GspError> {
        if self.machines.is_empty() {
            return Err(GspError::Unserviceable("provider has no machines".into()));
        }
        Ok(self
            .machines
            .iter()
            .enumerate()
            .min_by_key(|(_, m)| m.busy_until_ms)
            .map(|(i, _)| i)
            .expect("nonempty"))
    }

    fn run_and_meter(
        &mut self,
        consumer_cert: &str,
        job: &JobSpec,
        agreed: &ServiceRates,
        now_ms: u64,
    ) -> Result<(ResourceUsageRecord, u64), GspError> {
        if let Some((pct, rng)) = &mut self.failure {
            use rand::Rng;
            if rng.random_range(0..100u8) < *pct {
                return Err(GspError::Unserviceable("injected execution failure".into()));
            }
        }
        let idx = self.pick_machine()?;
        let start = now_ms.max(self.machines[idx].busy_until_ms);
        let exec = self.machines[idx].machine.execute(job, start);
        self.machines[idx].busy_until_ms = exec.end_ms;
        let host = self.machines[idx].machine.spec.host.clone();
        let host_type = self.machines[idx].machine.spec.os.host_type().to_string();

        let job_id = format!("{}-job-{}", self.host, self.next_job);
        self.next_job = self.next_job.wrapping_add(1);
        let metered = MeteredJob {
            user_host: "submit.host".into(),
            user_cert: consumer_cert.to_string(),
            job_id,
            application: "grid-app".into(),
            executions: vec![(host, host_type, exec.native)],
        };
        let prices: Vec<(ChargeableItem, Credits)> = agreed.iter().collect();
        let meter = GridResourceMeter::new(self.cert.clone());
        let rur = meter.build_rur(&metered, &prices, self.accounting_level)?;
        let _ = &self.meter; // field kept for future multi-resource jobs
        Ok((rur, exec.end_ms))
    }

    /// The full §2 pipeline for cheque or prepaid instruments. Hash-chain
    /// payments use [`Self::execute_streamed_job`].
    pub fn execute_job(
        &mut self,
        consumer_cert: &str,
        instrument: PaymentInstrument,
        job: &JobSpec,
        agreed: &ServiceRates,
        now_ms: u64,
    ) -> Result<JobOutcome, GspError> {
        if matches!(instrument, PaymentInstrument::HashChain { .. }) {
            return Err(GspError::PaymentRejected(
                "hash chains pay per interval; use execute_streamed_job".into(),
            ));
        }
        // 1. Legitimacy of the payment instrument (before any work).
        self.gbcm.validate_instrument(&instrument, now_ms)?;

        // 2. Template account + grid-mapfile binding (§2.3).
        let account = self
            .pool
            .try_acquire()
            .ok_or(GspError::PoolExhausted { pool_size: self.pool.size() })?;
        if let Err(e) = self.mapfile.bind(consumer_cert, &account.local_name) {
            self.pool.release(account);
            return Err(e);
        }

        // 3-5. Execute, meter, convert (cleanup on any failure).
        let result = self.run_and_meter(consumer_cert, job, agreed, now_ms);
        let (rur, end_ms) = match result {
            Ok(ok) => ok,
            Err(e) => {
                let _ = self.mapfile.unbind(consumer_cert);
                self.pool.release(account);
                return Err(e);
            }
        };

        // 6. Total charge with conformance check (§2.1).
        let charge = match self.gbcm.compute_charge(agreed, &rur) {
            Ok(c) => c,
            Err(e) => {
                let _ = self.mapfile.unbind(consumer_cert);
                self.pool.release(account);
                return Err(e);
            }
        };

        // 7. Redeem.
        let redemption = match &instrument {
            PaymentInstrument::Cheque(cheque) => {
                self.gbcm.redeem_cheque(cheque.clone(), rur.clone())
            }
            PaymentInstrument::Prepaid(conf) => {
                // Fixed price was paid up front; the job must fit it.
                if conf.body.amount < charge {
                    Err(GspError::PaymentRejected(format!(
                        "prepaid {} does not cover charge {charge}",
                        conf.body.amount
                    )))
                } else {
                    Ok((conf.body.amount, Credits::ZERO))
                }
            }
            PaymentInstrument::HashChain { .. } => unreachable!("rejected above"),
        };

        // 8. Remove the association and return the account (§2.3).
        let _ = self.mapfile.unbind(consumer_cert);
        let local_account = account.local_name.clone();
        self.pool.release(account);

        let (paid, released) = redemption?;
        self.jobs_served = self.jobs_served.saturating_add(1);
        let machine_host = rur.resource.host.clone();
        Ok(JobOutcome { rur, charge, paid, released, local_account, machine_host, end_ms })
    }

    /// Pay-as-you-go execution: the job is metered in intervals and the
    /// consumer's payword source is asked for payment covering the
    /// cumulative charge after each interval; redemption happens
    /// incrementally (GridHash, §3.1).
    #[allow(clippy::too_many_arguments)] // the §3.1 streamed protocol's full context
    pub fn execute_streamed_job(
        &mut self,
        consumer_cert: &str,
        commitment: &ChainCommitment,
        signature: &MerkleSignature,
        payword_source: &mut dyn FnMut(u32) -> Result<PayWord, GspError>,
        job: &JobSpec,
        agreed: &ServiceRates,
        now_ms: u64,
        interval_ms: u64,
    ) -> Result<JobOutcome, GspError> {
        let instrument = PaymentInstrument::HashChain {
            commitment: commitment.clone(),
            signature: signature.clone(),
        };
        self.gbcm.validate_instrument(&instrument, now_ms)?;

        let account = self
            .pool
            .try_acquire()
            .ok_or(GspError::PoolExhausted { pool_size: self.pool.size() })?;
        if let Err(e) = self.mapfile.bind(consumer_cert, &account.local_name) {
            self.pool.release(account);
            return Err(e);
        }

        let run = (|| -> Result<JobOutcome, GspError> {
            let (rur, end_ms) = self.run_and_meter(consumer_cert, job, agreed, now_ms)?;
            let charge = self.gbcm.compute_charge(agreed, &rur)?;

            // Slice the execution into intervals and demand paywords as
            // the cumulative charge grows.
            let total_words = ChargingModule::<P>::words_for_charge(commitment, charge);
            if total_words > commitment.length {
                return Err(GspError::PaymentRejected(format!(
                    "charge {charge} exceeds the chain's {} words",
                    commitment.length
                )));
            }
            let n_intervals = (rur.job.span().as_ms().div_ceil(interval_ms.max(1))).max(1) as u32;
            let mut highest: u32 = 0;
            let mut last_pw: Option<PayWord> = None;
            for i in 1..=n_intervals {
                // Words owed after interval i (proportional, final
                // interval owes everything).
                let owed = if i == n_intervals {
                    total_words
                } else {
                    (total_words as u64)
                        .saturating_mul(i as u64)
                        .checked_div(n_intervals as u64)
                        .unwrap_or(0) as u32
                };
                if owed > highest {
                    let pw = payword_source(owed)?;
                    pw.verify(&commitment.root, commitment.length)
                        .map_err(|e| GspError::PaymentRejected(e.to_string()))?;
                    if pw.index != owed {
                        return Err(GspError::PaymentRejected(format!(
                            "expected payword {owed}, got {}",
                            pw.index
                        )));
                    }
                    highest = owed;
                    last_pw = Some(pw);
                }
            }
            // Single bank redemption for the highest index, with the RUR
            // as evidence.
            let paid = match last_pw {
                Some(pw) => self.gbcm.redeem_payword(commitment, signature, pw, Some(&rur))?,
                None => Credits::ZERO,
            };
            self.jobs_served = self.jobs_served.saturating_add(1);
            Ok(JobOutcome {
                machine_host: rur.resource.host.clone(),
                rur,
                charge,
                paid,
                released: Credits::ZERO,
                local_account: account.local_name.clone(),
                end_ms,
            })
        })();

        let _ = self.mapfile.unbind(consumer_cert);
        self.pool.release(account);
        run
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridbank_core::api::BankRequest;
    use gridbank_core::clock::Clock;
    use gridbank_core::port::{BankPort, InProcessBank};
    use gridbank_core::server::{GridBank, GridBankConfig};
    use gridbank_crypto::cert::SubjectName;
    use gridbank_meter::machine::OsFlavour;
    use gridbank_trade::pricing::FlatPricing;
    use std::sync::Arc;

    struct World {
        bank: Arc<GridBank>,
        gsc: SubjectName,
        gsp: SubjectName,
        provider: GridServiceProvider<InProcessBank>,
    }

    fn rates() -> ServiceRates {
        ServiceRates::new()
            .with(ChargeableItem::Cpu, Credits::from_gd(2))
            .with(ChargeableItem::WallClock, Credits::from_gd(1))
            .with(ChargeableItem::Memory, Credits::from_milli(10))
            .with(ChargeableItem::Storage, Credits::from_milli(2))
            .with(ChargeableItem::Network, Credits::from_milli(5))
            .with(ChargeableItem::Software, Credits::from_milli(100))
    }

    fn world(pool_size: usize) -> World {
        let bank = Arc::new(GridBank::new(
            GridBankConfig { signer_height: 7, ..GridBankConfig::default() },
            Clock::new(),
        ));
        let gsc = SubjectName::new("UWA", "CSSE", "alice");
        let gsp = SubjectName::new("UM", "GRIDS", "gsp-alpha");
        let admin = SubjectName("/O=GridBank/OU=Admin/CN=operator".into());
        let mut gsc_port = InProcessBank::new(bank.clone(), gsc.clone());
        let acct = gsc_port.create_account(None).unwrap();
        let mut gsp_port = InProcessBank::new(bank.clone(), gsp.clone());
        gsp_port.create_account(None).unwrap();
        bank.handle(
            &admin,
            BankRequest::AdminDeposit { account: acct, amount: Credits::from_gd(1_000) },
        );
        let config = GspConfig {
            cert: gsp.0.clone(),
            host: "gsp-alpha.grid.org".into(),
            machines: vec![
                MachineSpec {
                    host: "node-1".into(),
                    os: OsFlavour::Linux,
                    speed: 100,
                    cores: 4,
                    memory_mb: 16_384,
                },
                MachineSpec {
                    host: "node-2".into(),
                    os: OsFlavour::Linux,
                    speed: 200,
                    cores: 8,
                    memory_mb: 32_768,
                },
            ],
            base_rates: rates(),
            pool_size,
            accounting_level: AccountingLevel::Standard,
            machine_seed: 99,
        };
        let provider = GridServiceProvider::new(
            config,
            bank.verifying_key(),
            InProcessBank::new(bank.clone(), gsp.clone()),
            Box::new(FlatPricing),
        );
        World { bank, gsc, gsp, provider }
    }

    fn job() -> JobSpec {
        JobSpec {
            work: 200_000,
            parallelism: 2,
            memory_mb: 512,
            storage_mb: 64,
            network_mb: 10,
            sys_pct: 10,
        }
    }

    #[test]
    fn cheque_job_end_to_end() {
        let mut w = world(4);
        let mut gsc_port = InProcessBank::new(w.bank.clone(), w.gsc.clone());
        let quote = w.provider.quote(0, 10_000).unwrap();
        let cheque = gsc_port.request_cheque(&w.gsp.0, Credits::from_gd(100), 1_000_000).unwrap();
        let outcome = w
            .provider
            .execute_job(&w.gsc.0, PaymentInstrument::Cheque(cheque), &job(), &quote.rates, 0)
            .unwrap();
        assert!(outcome.charge.is_positive());
        assert_eq!(outcome.paid, outcome.charge);
        assert_eq!(outcome.paid.checked_add(outcome.released).unwrap(), Credits::from_gd(100));
        assert_eq!(w.provider.jobs_served, 1);
        // Pipeline cleaned up after itself.
        assert!(w.provider.mapfile.is_empty());
        assert_eq!(w.provider.pool.free_count(), 4);
        // The GSP actually got paid.
        let gsp_rec = w.provider.gbcm.port.my_account().unwrap();
        assert_eq!(gsp_rec.available, outcome.paid);
        // RUR conforms and names both parties.
        assert_eq!(outcome.rur.user.certificate_name, w.gsc.0);
        assert_eq!(outcome.rur.resource.certificate_name, w.gsp.0);
    }

    #[test]
    fn pool_exhaustion_surfaces() {
        let mut w = world(0);
        let mut gsc_port = InProcessBank::new(w.bank.clone(), w.gsc.clone());
        let cheque = gsc_port.request_cheque(&w.gsp.0, Credits::from_gd(10), 1_000_000).unwrap();
        let err = w.provider.execute_job(
            &w.gsc.0,
            PaymentInstrument::Cheque(cheque),
            &job(),
            &rates(),
            0,
        );
        assert!(matches!(err, Err(GspError::PoolExhausted { pool_size: 0 })));
    }

    #[test]
    fn invalid_instrument_means_no_execution() {
        let mut w = world(2);
        let mut gsc_port = InProcessBank::new(w.bank.clone(), w.gsc.clone());
        // Cheque made out to someone else.
        let cheque =
            gsc_port.request_cheque("/CN=other-gsp", Credits::from_gd(10), 1_000_000).unwrap();
        let err = w.provider.execute_job(
            &w.gsc.0,
            PaymentInstrument::Cheque(cheque),
            &job(),
            &rates(),
            0,
        );
        assert!(matches!(err, Err(GspError::PaymentRejected(_))));
        assert_eq!(w.provider.jobs_served, 0);
        assert_eq!(w.provider.pool.free_count(), 2);
    }

    #[test]
    fn machines_load_balance() {
        let mut w = world(8);
        let mut gsc_port = InProcessBank::new(w.bank.clone(), w.gsc.clone());
        let mut hosts = std::collections::HashSet::new();
        for _ in 0..4 {
            let cheque =
                gsc_port.request_cheque(&w.gsp.0, Credits::from_gd(50), 1_000_000).unwrap();
            let outcome = w
                .provider
                .execute_job(&w.gsc.0, PaymentInstrument::Cheque(cheque), &job(), &rates(), 0)
                .unwrap();
            hosts.insert(outcome.machine_host);
        }
        assert_eq!(hosts.len(), 2, "both machines should serve jobs");
        // Utilization reflects busy machines at t=0.
        assert_eq!(w.provider.utilization(0).0, 100);
        assert_eq!(w.provider.utilization(u64::MAX - 1).0, 0);
    }

    #[test]
    fn streamed_job_pays_with_paywords() {
        let mut w = world(2);
        let mut gsc_port = InProcessBank::new(w.bank.clone(), w.gsc.clone());
        let chain = gsc_port
            .request_hash_chain(&w.gsp.0, 2_000, Credits::from_milli(10), 1_000_000)
            .unwrap();
        let commitment = chain.commitment.clone();
        let signature = chain.signature.clone();
        let mut requests = Vec::new();
        let outcome = {
            let chain_words = &chain.chain;
            let mut source = |k: u32| {
                requests.push(k);
                Ok(PayWord { index: k, word: chain_words[k as usize] })
            };
            w.provider
                .execute_streamed_job(
                    &w.gsc.0,
                    &commitment,
                    &signature,
                    &mut source,
                    &job(),
                    &rates(),
                    0,
                    200,
                )
                .unwrap()
        };
        assert!(outcome.charge.is_positive());
        // Paid the word-granularity ceiling of the charge.
        assert!(outcome.paid >= outcome.charge);
        let over = outcome.paid.checked_sub(outcome.charge).unwrap();
        assert!(over < Credits::from_milli(10), "overpay {over} exceeds one word");
        // Payword demands were monotonically increasing.
        assert!(!requests.is_empty());
        assert!(requests.windows(2).all(|w| w[0] < w[1]));
        // GSP received the words' value.
        let gsp_rec = w.provider.gbcm.port.my_account().unwrap();
        assert_eq!(gsp_rec.available, outcome.paid);
    }

    #[test]
    fn streamed_job_rejects_short_chain() {
        let mut w = world(2);
        let mut gsc_port = InProcessBank::new(w.bank.clone(), w.gsc.clone());
        // A 1-word chain can't possibly cover the job.
        let chain =
            gsc_port.request_hash_chain(&w.gsp.0, 1, Credits::from_milli(1), 1_000_000).unwrap();
        let mut source = |k: u32| chain.payword(k).map_err(GspError::Bank);
        let err = w.provider.execute_streamed_job(
            &w.gsc.0,
            &chain.commitment,
            &chain.signature,
            &mut source,
            &job(),
            &rates(),
            0,
            200,
        );
        assert!(matches!(err, Err(GspError::PaymentRejected(_))));
        // Cleanup happened.
        assert_eq!(w.provider.pool.free_count(), 2);
        assert!(w.provider.mapfile.is_empty());
    }

    #[test]
    fn quote_reflects_load_with_supply_demand_pricing() {
        use gridbank_trade::pricing::SupplyDemandPricing;
        let mut w = world(4);
        // Swap in supply/demand pricing.
        w.provider.pricing = Box::new(SupplyDemandPricing::default());
        let idle_quote = w.provider.quote(0, 1000).unwrap();
        // Occupy both machines.
        let mut gsc_port = InProcessBank::new(w.bank.clone(), w.gsc.clone());
        for _ in 0..2 {
            let cheque =
                gsc_port.request_cheque(&w.gsp.0, Credits::from_gd(50), 1_000_000).unwrap();
            w.provider
                .execute_job(&w.gsc.0, PaymentInstrument::Cheque(cheque), &job(), &rates(), 0)
                .unwrap();
        }
        let busy_quote = w.provider.quote(0, 1000).unwrap();
        assert!(
            busy_quote.rates.total_time_price_per_hour()
                > idle_quote.rates.total_time_price_per_hour(),
            "price should rise under load"
        );
    }
}
