//! Template account pool (§2.3).
//!
//! "Thousands (or even millions) of GSCs can be clients of GridBank and
//! the requirement to have a local account at each resource is simply not
//! realistic … GSP maintains a pool of template accounts. These accounts
//! are local system accounts that are not associated with any particular
//! user. When a GSC contacts GSP to execute some application, provided
//! GSC presents a well-formed payment instrument, GSP dynamically assigns
//! one of the template accounts from the pool of free accounts … GSP
//! retains the fine-grained access control to its resources by specifying
//! permissions on the template accounts."

use std::collections::VecDeque;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

/// One local system account from the pool.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct TemplateAccount {
    /// Local user name, e.g. `grid007`.
    pub local_name: String,
    /// Local numeric uid.
    pub uid: u32,
    /// Unix-style permission bits the GSP configured on the account.
    pub permissions: u16,
}

/// Pool occupancy statistics (fed into E6's scalability experiment).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Successful acquisitions.
    pub acquisitions: u64,
    /// Releases back to the pool.
    pub releases: u64,
    /// Acquisitions that had to wait for a free account.
    pub waits: u64,
    /// Acquisitions that timed out (pool exhausted).
    pub exhaustions: u64,
    /// Maximum simultaneous accounts in use.
    pub high_watermark: usize,
}

struct PoolInner {
    free: VecDeque<TemplateAccount>,
    in_use: usize,
    stats: PoolStats,
}

/// A blocking pool of template accounts.
pub struct TemplatePool {
    inner: Mutex<PoolInner>,
    available: Condvar,
    size: usize,
}

impl TemplatePool {
    /// Creates a pool of `size` accounts named `{prefix}{001..}` with the
    /// given permission bits.
    pub fn new(prefix: &str, size: usize, permissions: u16) -> Self {
        let free = (1..=size)
            .map(|i| TemplateAccount {
                local_name: format!("{prefix}{i:03}"),
                uid: 60_000u32.saturating_add(i as u32),
                permissions,
            })
            .collect();
        TemplatePool {
            inner: Mutex::new(PoolInner { free, in_use: 0, stats: PoolStats::default() }),
            available: Condvar::new(),
            size,
        }
    }

    /// Pool capacity.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Accounts currently free.
    pub fn free_count(&self) -> usize {
        self.inner.lock().free.len()
    }

    /// Snapshot of the statistics.
    pub fn stats(&self) -> PoolStats {
        self.inner.lock().stats
    }

    /// Acquires an account immediately or returns `None`.
    pub fn try_acquire(&self) -> Option<TemplateAccount> {
        let mut inner = self.inner.lock();
        match inner.free.pop_front() {
            Some(acct) => {
                inner.in_use = inner.in_use.saturating_add(1);
                inner.stats.acquisitions = inner.stats.acquisitions.saturating_add(1);
                let in_use = inner.in_use;
                inner.stats.high_watermark = inner.stats.high_watermark.max(in_use);
                gridbank_obs::gauge_set("gsp.pool.in_use", in_use as i64);
                Some(acct)
            }
            None => None,
        }
    }

    /// Acquires an account, waiting up to `timeout` for one to free up.
    pub fn acquire(&self, timeout: Duration) -> Option<TemplateAccount> {
        let mut inner = self.inner.lock();
        if inner.free.is_empty() {
            inner.stats.waits = inner.stats.waits.saturating_add(1);
            let deadline = std::time::Instant::now()
                .checked_add(timeout)
                .unwrap_or_else(std::time::Instant::now);
            while inner.free.is_empty() {
                if self.available.wait_until(&mut inner, deadline).timed_out() {
                    inner.stats.exhaustions = inner.stats.exhaustions.saturating_add(1);
                    gridbank_obs::count("gsp.pool.exhaustions", 1);
                    return None;
                }
            }
        }
        let acct = inner.free.pop_front().expect("non-empty after wait");
        inner.in_use = inner.in_use.saturating_add(1);
        inner.stats.acquisitions = inner.stats.acquisitions.saturating_add(1);
        let in_use = inner.in_use;
        inner.stats.high_watermark = inner.stats.high_watermark.max(in_use);
        gridbank_obs::gauge_set("gsp.pool.in_use", in_use as i64);
        Some(acct)
    }

    /// Returns an account to the free pool and wakes one waiter.
    pub fn release(&self, account: TemplateAccount) {
        let mut inner = self.inner.lock();
        inner.in_use = inner.in_use.saturating_sub(1);
        inner.stats.releases = inner.stats.releases.saturating_add(1);
        gridbank_obs::gauge_set("gsp.pool.in_use", inner.in_use as i64);
        inner.free.push_back(account);
        drop(inner);
        self.available.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn accounts_are_distinct_and_permissioned() {
        let pool = TemplatePool::new("grid", 3, 0o750);
        let a = pool.try_acquire().unwrap();
        let b = pool.try_acquire().unwrap();
        assert_ne!(a.local_name, b.local_name);
        assert_ne!(a.uid, b.uid);
        assert_eq!(a.permissions, 0o750);
        assert_eq!(pool.free_count(), 1);
    }

    #[test]
    fn exhaustion_and_release() {
        let pool = TemplatePool::new("grid", 1, 0o700);
        let a = pool.try_acquire().unwrap();
        assert!(pool.try_acquire().is_none());
        assert!(pool.acquire(Duration::from_millis(10)).is_none());
        pool.release(a);
        assert!(pool.try_acquire().is_some());
        let s = pool.stats();
        assert_eq!(s.acquisitions, 2);
        assert_eq!(s.releases, 1);
        assert_eq!(s.exhaustions, 1);
        assert!(s.waits >= 1);
        assert_eq!(s.high_watermark, 1);
    }

    #[test]
    fn waiter_wakes_on_release() {
        let pool = Arc::new(TemplatePool::new("grid", 1, 0o700));
        let a = pool.try_acquire().unwrap();
        let p2 = pool.clone();
        let waiter = std::thread::spawn(move || p2.acquire(Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        pool.release(a);
        let got = waiter.join().unwrap();
        assert!(got.is_some());
    }

    #[test]
    fn concurrent_churn_never_double_assigns() {
        let pool = Arc::new(TemplatePool::new("grid", 4, 0o700));
        let in_use = Arc::new(parking_lot::Mutex::new(std::collections::HashSet::new()));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let pool = pool.clone();
                let in_use = in_use.clone();
                s.spawn(move || {
                    for _ in 0..200 {
                        if let Some(acct) = pool.acquire(Duration::from_secs(1)) {
                            {
                                let mut set = in_use.lock();
                                assert!(
                                    set.insert(acct.local_name.clone()),
                                    "account double-assigned"
                                );
                            }
                            std::thread::yield_now();
                            in_use.lock().remove(&acct.local_name);
                            pool.release(acct);
                        }
                    }
                });
            }
        });
        assert_eq!(pool.free_count(), 4);
        let s = pool.stats();
        assert_eq!(s.acquisitions, s.releases);
        assert!(s.high_watermark <= 4);
    }
}
