//! # gridbank-gsp
//!
//! The **Grid Service Provider** side of the architecture: everything
//! that runs at a resource-owner site in Figures 1 and 2.
//!
//! * [`template`] — §2.3 access scalability: "GSP maintains a pool of
//!   template accounts … local system accounts that are not associated
//!   with any particular user", dynamically assigned per paying consumer.
//! * [`mapfile`] — the grid-mapfile: the dynamic certificate-name →
//!   local-account binding GSI consults, with bind/unbind and the
//!   classic textual rendering.
//! * [`charging`] — the **GridBank Charging Module** (GBCM):
//!   "responsible for determining legitimacy of payment instruments …
//!   setting up and removing temporary local accounts, calculating total
//!   charge using the Resource Usage Record and the service rates passed
//!   by the Grid Trade Service, and redeeming the payment with the
//!   GridBank server" (§6).
//! * [`provider`] — the assembled GSP: machines (from `gridbank-meter`),
//!   the Grid Trade Server instance (rates + pricing policy), the meter,
//!   the pool, and the full §2.1/§2.3 job pipeline.

// The workspace `clippy::arithmetic_side_effects` wall guards
// production money paths; test fixtures may build inputs with plain
// arithmetic (see docs/STATIC_ANALYSIS.md §lint wall).
#![cfg_attr(test, allow(clippy::arithmetic_side_effects))]

pub mod charging;
pub mod error;
pub mod mapfile;
pub mod provider;
pub mod template;

pub use charging::{ChargingModule, PaymentInstrument};
pub use error::GspError;
pub use mapfile::GridMapfile;
pub use provider::{GridServiceProvider, GspConfig, JobOutcome};
pub use template::{PoolStats, TemplateAccount, TemplatePool};
