//! Simulated machines — the "local resource allocation system".
//!
//! A [`Machine`] executes abstract [`JobSpec`]s deterministically (seeded
//! jitter) and emits a *native* usage record in its own OS flavour, which
//! the GRM then filters and converts. The three flavours deliberately use
//! different native units (µs vs ticks vs ms, KB vs pages vs Mwords) so
//! the conversion path is genuinely exercised.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use gridbank_rur::native::{CrayCsa, LinuxRusage, NativeUsageRecord, SolarisAcct};

/// Which native accounting format the machine produces.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OsFlavour {
    /// Linux, `getrusage` records.
    Linux,
    /// Solaris, `acct` records.
    Solaris,
    /// Cray, CSA records.
    Cray,
}

impl OsFlavour {
    /// Host-type string for RUR resource details.
    pub fn host_type(&self) -> &'static str {
        match self {
            OsFlavour::Linux => "Linux/x86",
            OsFlavour::Solaris => "Solaris/sparc",
            OsFlavour::Cray => "Cray",
        }
    }
}

/// Static description of a machine.
#[derive(Clone, Debug)]
pub struct MachineSpec {
    /// Host name.
    pub host: String,
    /// OS flavour (selects the native record format).
    pub os: OsFlavour,
    /// Per-core speed: abstract work units per millisecond.
    pub speed: u32,
    /// Core count.
    pub cores: u32,
    /// Main memory capacity, MB.
    pub memory_mb: u64,
}

/// An abstract job to execute.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// Total work, abstract units (CPU-bound component).
    pub work: u64,
    /// Degree of parallelism the job can exploit.
    pub parallelism: u32,
    /// Resident memory footprint, MB.
    pub memory_mb: u64,
    /// Scratch storage footprint, MB.
    pub storage_mb: u64,
    /// Network traffic, MB.
    pub network_mb: u64,
    /// Percent of CPU time spent in system calls / libraries (0..=100).
    pub sys_pct: u8,
}

impl JobSpec {
    /// A small CPU-bound job, convenient for tests.
    pub fn cpu_bound(work: u64) -> Self {
        JobSpec { work, parallelism: 1, memory_mb: 64, storage_mb: 0, network_mb: 1, sys_pct: 5 }
    }
}

/// A simulated machine with a deterministic jitter stream.
pub struct Machine {
    /// The static description.
    pub spec: MachineSpec,
    rng: StdRng,
    next_pid: u32,
}

/// Result of executing a job: the native record plus the virtual end time.
#[derive(Clone, Debug)]
pub struct Execution {
    /// The raw native-format usage record.
    pub native: NativeUsageRecord,
    /// Virtual completion time, epoch ms.
    pub end_ms: u64,
}

impl Machine {
    /// Creates a machine with a seeded jitter stream.
    pub fn new(spec: MachineSpec, seed: u64) -> Self {
        Machine { spec, rng: StdRng::seed_from_u64(seed), next_pid: 1000 }
    }

    /// Ideal (jitter-free) wall-clock milliseconds for a job.
    pub fn ideal_wall_ms(&self, job: &JobSpec) -> u64 {
        let effective_cores = job.parallelism.min(self.spec.cores).max(1) as u64;
        let rate = self.spec.speed as u64 * effective_cores;
        job.work.div_ceil(rate.max(1))
    }

    /// Executes a job starting at virtual time `start_ms`, returning the
    /// native usage record. Wall time gets ±10% deterministic jitter.
    pub fn execute(&mut self, job: &JobSpec, start_ms: u64) -> Execution {
        let ideal = self.ideal_wall_ms(job).max(1);
        // Jitter in [-10%, +10%].
        let jitter_pm = self.rng.random_range(-100i64..=100);
        let wall_ms = ((ideal as i64) + (ideal as i64 * jitter_pm) / 1000).max(1) as u64;
        // Total CPU = work / speed (independent of parallelism), split
        // user/system by sys_pct.
        let total_cpu_ms = (job.work / self.spec.speed.max(1) as u64).max(1);
        let sys_ms = total_cpu_ms * job.sys_pct.min(100) as u64 / 100;
        let user_ms = total_cpu_ms - sys_ms;
        let end_ms = start_ms + wall_ms;
        let pid = self.next_pid;
        self.next_pid += 1;

        let native = match self.spec.os {
            OsFlavour::Linux => NativeUsageRecord::Linux(LinuxRusage {
                pid,
                start_ms,
                end_ms,
                utime_us: user_ms * 1_000,
                stime_us: sys_ms * 1_000,
                maxrss_kb: job.memory_mb * 1_000, // decimal MB → KB
                scratch_kb: job.storage_mb * 1_000,
                net_bytes: job.network_mb * 1_000_000,
                inblock: 0,
                oublock: 0,
                minflt: self.rng.random_range(0..1_000_000),
                nsignals: self.rng.random_range(0..16),
            }),
            OsFlavour::Solaris => NativeUsageRecord::Solaris(SolarisAcct {
                pid,
                start_ms,
                etime_ticks: wall_ms / 10,
                utime_ticks: user_ms / 10,
                stime_ticks: sys_ms / 10,
                mem_pages: job.memory_mb * 1_000_000 / (8 * 1024),
                scratch_pages: job.storage_mb * 1_000_000 / (8 * 1024),
                io_chars: job.network_mb * 1_000_000,
                ac_flag: 0,
                ac_stat: 0,
            }),
            OsFlavour::Cray => NativeUsageRecord::Cray(CrayCsa {
                jid: pid as u64,
                start_ms,
                end_ms,
                ucpu_ms: user_ms,
                scpu_ms: sys_ms,
                himem_mwords: job.memory_mb / 8, // 8 MB units
                disk_sectors: job.storage_mb * 1_000_000 / 4096,
                net_sectors: job.network_mb * 1_000_000 / 4096,
                billing_weight: 1,
            }),
        };
        Execution { native, end_ms }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(os: OsFlavour, speed: u32, cores: u32) -> MachineSpec {
        MachineSpec { host: "node-1".into(), os, speed, cores, memory_mb: 16_384 }
    }

    #[test]
    fn ideal_wall_time_scales_with_speed_and_cores() {
        let m_slow = Machine::new(spec(OsFlavour::Linux, 100, 1), 1);
        let m_fast = Machine::new(spec(OsFlavour::Linux, 200, 1), 1);
        let job = JobSpec::cpu_bound(100_000);
        assert_eq!(m_slow.ideal_wall_ms(&job), 1000);
        assert_eq!(m_fast.ideal_wall_ms(&job), 500);

        // Parallelism exploits cores up to the job's limit.
        let m_many = Machine::new(spec(OsFlavour::Linux, 100, 8), 1);
        let mut parallel_job = JobSpec::cpu_bound(100_000);
        parallel_job.parallelism = 4;
        assert_eq!(m_many.ideal_wall_ms(&parallel_job), 250);
        // Cores beyond the machine's count don't help.
        parallel_job.parallelism = 100;
        assert_eq!(m_many.ideal_wall_ms(&parallel_job), 125);
    }

    #[test]
    fn execution_is_deterministic_per_seed() {
        let job = JobSpec::cpu_bound(500_000);
        let mut m1 = Machine::new(spec(OsFlavour::Linux, 100, 2), 42);
        let mut m2 = Machine::new(spec(OsFlavour::Linux, 100, 2), 42);
        let e1 = m1.execute(&job, 0);
        let e2 = m2.execute(&job, 0);
        assert_eq!(e1.native, e2.native);
        let mut m3 = Machine::new(spec(OsFlavour::Linux, 100, 2), 43);
        let e3 = m3.execute(&job, 0);
        assert_ne!(e1.end_ms, e3.end_ms); // different jitter
    }

    #[test]
    fn jitter_stays_within_ten_percent() {
        let job = JobSpec::cpu_bound(1_000_000);
        let mut m = Machine::new(spec(OsFlavour::Linux, 100, 1), 7);
        let ideal = m.ideal_wall_ms(&job);
        for _ in 0..50 {
            let e = m.execute(&job, 0);
            let wall = e.end_ms;
            assert!(wall >= ideal * 9 / 10 && wall <= ideal * 11 / 10, "wall {wall} ideal {ideal}");
        }
    }

    #[test]
    fn all_flavours_normalize_consistently() {
        let job = JobSpec {
            work: 1_000_000,
            parallelism: 1,
            memory_mb: 1024,
            storage_mb: 512,
            network_mb: 100,
            sys_pct: 10,
        };
        let mut normalized = Vec::new();
        for os in [OsFlavour::Linux, OsFlavour::Solaris, OsFlavour::Cray] {
            let mut m = Machine::new(spec(os, 100, 1), 11);
            let e = m.execute(&job, 0);
            let n = e.native.normalize().unwrap();
            normalized.push((os, n));
        }
        // CPU time must agree across flavours to within tick rounding (10ms).
        let cpu_ms: Vec<u64> = normalized.iter().map(|(_, n)| n.cpu.as_ms()).collect();
        for w in cpu_ms.windows(2) {
            assert!((w[0] as i64 - w[1] as i64).abs() <= 10, "cpu times {cpu_ms:?}");
        }
        // Network traffic is exactly 100 MB for Linux/Solaris; Cray rounds
        // to 4 KB sectors.
        for (os, n) in &normalized {
            let mb = n.network.as_bytes() / 1_000_000;
            assert!((99..=100).contains(&mb), "{os:?} network {mb} MB");
        }
    }

    #[test]
    fn pids_increment() {
        let mut m = Machine::new(spec(OsFlavour::Linux, 100, 1), 1);
        let a = m.execute(&JobSpec::cpu_bound(1000), 0);
        let b = m.execute(&JobSpec::cpu_bound(1000), 0);
        assert_ne!(a.native.local_job_id(), b.native.local_job_id());
    }
}
