//! Accounting information levels.
//!
//! §2.1: "the GRM provides different levels of accounting information
//! depending on the kind of payment protocol GridBank Charging Module is
//! using. Different protocols might require different resource usage
//! statistics."

use gridbank_rur::record::ChargeableItem;

/// How much detail the meter should emit for a job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccountingLevel {
    /// Wall-clock only — enough for fixed-price (pay-before-use) access
    /// where the charge does not depend on consumption detail.
    Coarse,
    /// Every chargeable item, itemized — the standard level used by
    /// pay-after-use GridCheque charging.
    Standard,
    /// Itemized and *streaming*: usage deltas per metering interval, for
    /// pay-as-you-go hash-chain payments tied to consumption.
    Streaming {
        /// Metering interval in virtual milliseconds.
        interval_ms: u64,
    },
}

impl AccountingLevel {
    /// The chargeable items this level reports.
    pub fn items(&self) -> &'static [ChargeableItem] {
        match self {
            AccountingLevel::Coarse => &[ChargeableItem::WallClock],
            AccountingLevel::Standard | AccountingLevel::Streaming { .. } => &[
                ChargeableItem::WallClock,
                ChargeableItem::Cpu,
                ChargeableItem::Memory,
                ChargeableItem::Storage,
                ChargeableItem::Network,
                ChargeableItem::Software,
            ],
        }
    }

    /// True if this level emits interval deltas rather than a single
    /// end-of-job record.
    pub fn is_streaming(&self) -> bool {
        matches!(self, AccountingLevel::Streaming { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coarse_reports_wallclock_only() {
        assert_eq!(AccountingLevel::Coarse.items(), &[ChargeableItem::WallClock]);
        assert!(!AccountingLevel::Coarse.is_streaming());
    }

    #[test]
    fn standard_reports_all_items() {
        assert_eq!(AccountingLevel::Standard.items().len(), 6);
    }

    #[test]
    fn streaming_flag() {
        let l = AccountingLevel::Streaming { interval_ms: 500 };
        assert!(l.is_streaming());
        assert_eq!(l.items().len(), 6);
    }
}
