//! # gridbank-meter
//!
//! The **Grid Resource Meter** (GRM) of Figure 2 and the simulated
//! machines it meters.
//!
//! Paper §2.1: "The Grid Resource Meter (GRM) module will interface with
//! local resource allocation system (e.g., cluster scheduler) … to extract
//! resource usage information … Once GRM obtains the raw usage statistics,
//! it filters relevant fields in the record and passes them to the
//! conversion unit, which generates a standard OS-independent Resource
//! Usage Record."
//!
//! * [`machine`] — the *local resource allocation system* substitute:
//!   deterministic simulated machines (Linux / Solaris / Cray flavours)
//!   that execute abstract jobs and emit **native** usage records, exactly
//!   the raw input a real GRM would scrape from the OS.
//! * [`meter`] — the GRM proper: collects native records per job, runs the
//!   conversion unit (`gridbank_rur::native`), applies agreed prices, and
//!   emits signed-ready RURs; supports per-resource collection and
//!   aggregation across a provider's machines (Figure 1's R1–R4).
//! * [`levels`] — "the GRM provides different levels of accounting
//!   information depending on the kind of payment protocol" (§2.1):
//!   coarse (wall-clock only, for fixed-price access), standard
//!   (itemized), and streaming interval metering for pay-as-you-go.

pub mod levels;
pub mod machine;
pub mod meter;

pub use levels::AccountingLevel;
pub use machine::{JobSpec, Machine, MachineSpec, OsFlavour};
pub use meter::{GridResourceMeter, MeteredJob, MeteringInterval};
