//! The Grid Resource Meter itself.
//!
//! Collects native records for a job (possibly from several resources —
//! Figure 1's R1–R4), runs the conversion unit, applies the agreed prices
//! and emits standard RURs. For pay-as-you-go protocols it can also slice
//! an execution into per-interval usage deltas.

use gridbank_rur::aggregate::aggregate_records;
use gridbank_rur::native::{NativeUsageRecord, NormalizedUsage};
use gridbank_rur::record::{ChargeableItem, ResourceUsageRecord, RurBuilder, UsageAmount};
use gridbank_rur::units::{DataSize, Duration, MbHours};
use gridbank_rur::{Credits, RurError};

use crate::levels::AccountingLevel;

/// A job's worth of raw metering input.
#[derive(Clone, Debug)]
pub struct MeteredJob {
    /// Submitting host.
    pub user_host: String,
    /// Consumer certificate name.
    pub user_cert: String,
    /// Grid-global job id.
    pub job_id: String,
    /// Application name.
    pub application: String,
    /// One native record per resource that served the job:
    /// `(resource_host, host_type, record)`.
    pub executions: Vec<(String, String, NativeUsageRecord)>,
}

/// One streaming metering interval (pay-as-you-go).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MeteringInterval {
    /// Interval start, virtual ms.
    pub start_ms: u64,
    /// Interval end, virtual ms.
    pub end_ms: u64,
    /// Usage attributed to this interval.
    pub usage: NormalizedUsage,
}

/// The provider-side meter, bound to the GSP's identity.
#[derive(Clone, Debug)]
pub struct GridResourceMeter {
    /// The provider's certificate name, stamped into every RUR.
    pub gsp_cert: String,
}

impl GridResourceMeter {
    /// Creates a meter for the given provider identity.
    pub fn new(gsp_cert: impl Into<String>) -> Self {
        GridResourceMeter { gsp_cert: gsp_cert.into() }
    }

    /// Builds usage lines for `usage` at the given level, pricing each
    /// emitted item from `prices`. Only items that are both in the level
    /// and priced are emitted (conformance with the rates record is then
    /// checked by the charging module).
    fn lines(
        &self,
        usage: &NormalizedUsage,
        prices: &[(ChargeableItem, Credits)],
        level: AccountingLevel,
    ) -> Vec<(ChargeableItem, UsageAmount, Credits)> {
        level
            .items()
            .iter()
            .filter_map(|item| {
                let price = prices.iter().find(|(i, _)| i == item).map(|(_, p)| *p)?;
                let amount = match item {
                    ChargeableItem::WallClock => UsageAmount::Time(usage.wall),
                    ChargeableItem::Cpu => UsageAmount::Time(usage.cpu),
                    ChargeableItem::Software => UsageAmount::Time(usage.sys_cpu),
                    ChargeableItem::Memory => UsageAmount::Occupancy(usage.memory),
                    ChargeableItem::Storage => UsageAmount::Occupancy(usage.storage),
                    ChargeableItem::Network => UsageAmount::Data(usage.network),
                };
                Some((*item, amount, price))
            })
            .collect()
    }

    /// Builds one RUR per resource execution (no aggregation).
    pub fn per_resource_rurs(
        &self,
        job: &MeteredJob,
        prices: &[(ChargeableItem, Credits)],
        level: AccountingLevel,
    ) -> Result<Vec<ResourceUsageRecord>, RurError> {
        job.executions
            .iter()
            .map(|(host, host_type, native)| {
                let usage = native.normalize()?;
                let mut b = RurBuilder::default()
                    .user(job.user_host.clone(), job.user_cert.clone())
                    .job(
                        job.job_id.clone(),
                        job.application.clone(),
                        native.start_ms(),
                        native.end_ms(),
                    )
                    .resource(
                        host.clone(),
                        self.gsp_cert.clone(),
                        Some(host_type.clone()),
                        native.local_job_id(),
                    );
                for (item, amount, price) in self.lines(&usage, prices, level) {
                    b = b.line(item, amount, price);
                }
                b.build()
            })
            .collect()
    }

    /// Builds the combined GSP-level RUR: per-resource records aggregated
    /// into one (§2.1, Figure 1).
    pub fn build_rur(
        &self,
        job: &MeteredJob,
        prices: &[(ChargeableItem, Credits)],
        level: AccountingLevel,
    ) -> Result<ResourceUsageRecord, RurError> {
        let per_resource = self.per_resource_rurs(job, prices, level)?;
        aggregate_records(&per_resource)
    }

    /// Slices one execution into per-interval usage deltas for streaming
    /// (pay-as-you-go) accounting. Component sums over all intervals equal
    /// the whole-job usage exactly; remainders land in the final interval.
    pub fn stream_intervals(
        &self,
        native: &NativeUsageRecord,
        interval_ms: u64,
    ) -> Result<Vec<MeteringInterval>, RurError> {
        if interval_ms == 0 {
            return Err(RurError::Invalid { field: "interval_ms", why: "zero".into() });
        }
        let total = native.normalize()?;
        let start = native.start_ms();
        let end = native.end_ms();
        let wall = end.saturating_sub(start);
        if wall == 0 {
            return Ok(vec![MeteringInterval { start_ms: start, end_ms: end, usage: total }]);
        }
        let n = wall.div_ceil(interval_ms);
        let mut out = Vec::with_capacity(n as usize);
        // Proportional split helper: share of component c in [done, done+len).
        let share = |c: u64, t0: u64, t1: u64| -> u64 { c * t1 / wall - c * t0 / wall };
        for k in 0..n {
            let t0 = k * interval_ms;
            let t1 = ((k + 1) * interval_ms).min(wall);
            let usage = NormalizedUsage {
                wall: Duration::from_ms(t1 - t0),
                cpu: Duration::from_ms(share(total.cpu.as_ms(), t0, t1)),
                sys_cpu: Duration::from_ms(share(total.sys_cpu.as_ms(), t0, t1)),
                memory: MbHours::from_mb_ms(share(total.memory.as_mb_ms(), t0, t1)),
                storage: MbHours::from_mb_ms(share(total.storage.as_mb_ms(), t0, t1)),
                network: DataSize::from_bytes(share(total.network.as_bytes(), t0, t1)),
            };
            out.push(MeteringInterval { start_ms: start + t0, end_ms: start + t1, usage });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{JobSpec, Machine, MachineSpec, OsFlavour};

    fn prices() -> Vec<(ChargeableItem, Credits)> {
        vec![
            (ChargeableItem::WallClock, Credits::from_milli(100)),
            (ChargeableItem::Cpu, Credits::from_gd(2)),
            (ChargeableItem::Memory, Credits::from_milli(10)),
            (ChargeableItem::Storage, Credits::from_milli(2)),
            (ChargeableItem::Network, Credits::from_milli(5)),
            (ChargeableItem::Software, Credits::from_milli(500)),
        ]
    }

    fn job_on(os: OsFlavour, seed: u64) -> MeteredJob {
        let spec = MachineSpec {
            host: format!("node-{seed}.gsp.org"),
            os,
            speed: 100,
            cores: 4,
            memory_mb: 8192,
        };
        let mut m = Machine::new(spec.clone(), seed);
        let exec = m.execute(
            &JobSpec {
                work: 600_000,
                parallelism: 2,
                memory_mb: 512,
                storage_mb: 128,
                network_mb: 50,
                sys_pct: 10,
            },
            1_000,
        );
        MeteredJob {
            user_host: "submit.uwa.edu.au".into(),
            user_cert: "/CN=alice".into(),
            job_id: "nimrod-7".into(),
            application: "sweep".into(),
            executions: vec![(spec.host, os.host_type().to_string(), exec.native)],
        }
    }

    #[test]
    fn builds_standard_rur() {
        let meter = GridResourceMeter::new("/CN=gsp-alpha");
        let job = job_on(OsFlavour::Linux, 1);
        let rur = meter.build_rur(&job, &prices(), AccountingLevel::Standard).unwrap();
        assert_eq!(rur.lines.len(), 6);
        assert_eq!(rur.user.certificate_name, "/CN=alice");
        assert_eq!(rur.resource.certificate_name, "/CN=gsp-alpha");
        assert_eq!(rur.resource.host_type.as_deref(), Some("Linux/x86"));
        assert!(rur.total_cost().unwrap().is_positive());
    }

    #[test]
    fn coarse_level_emits_wallclock_only() {
        let meter = GridResourceMeter::new("/CN=gsp");
        let job = job_on(OsFlavour::Solaris, 2);
        let rur = meter.build_rur(&job, &prices(), AccountingLevel::Coarse).unwrap();
        assert_eq!(rur.lines.len(), 1);
        assert_eq!(rur.lines[0].item, ChargeableItem::WallClock);
    }

    #[test]
    fn unpriced_items_are_omitted() {
        let meter = GridResourceMeter::new("/CN=gsp");
        let job = job_on(OsFlavour::Cray, 3);
        let only_cpu = vec![(ChargeableItem::Cpu, Credits::from_gd(1))];
        let rur = meter.build_rur(&job, &only_cpu, AccountingLevel::Standard).unwrap();
        assert_eq!(rur.lines.len(), 1);
        assert_eq!(rur.lines[0].item, ChargeableItem::Cpu);
    }

    #[test]
    fn multi_resource_jobs_aggregate() {
        let meter = GridResourceMeter::new("/CN=gsp");
        // Same job served by four Linux resources (Figure 1's R1-R4).
        let mut executions = Vec::new();
        for i in 0..4u64 {
            let spec = MachineSpec {
                host: format!("r{i}.gsp.org"),
                os: OsFlavour::Linux,
                speed: 100,
                cores: 2,
                memory_mb: 4096,
            };
            let mut m = Machine::new(spec.clone(), 100 + i);
            let exec = m.execute(&JobSpec::cpu_bound(200_000), i * 10);
            executions.push((spec.host, "Linux/x86".to_string(), exec.native));
        }
        let job = MeteredJob {
            user_host: "h".into(),
            user_cert: "/CN=alice".into(),
            job_id: "par-1".into(),
            application: "mpi".into(),
            executions,
        };
        let per = meter.per_resource_rurs(&job, &prices(), AccountingLevel::Standard).unwrap();
        assert_eq!(per.len(), 4);
        let combined = meter.build_rur(&job, &prices(), AccountingLevel::Standard).unwrap();
        let sum: i128 = per.iter().map(|r| r.total_cost().unwrap().micro()).sum();
        // Aggregation sums usage before pricing, so the combined cost may
        // differ from the per-record sum by at most one µG$ of half-up
        // rounding per line per record.
        let slack = (per.len() * 6) as i128;
        let diff = (combined.total_cost().unwrap().micro() - sum).abs();
        assert!(diff <= slack, "diff {diff} exceeds rounding slack {slack}");
    }

    #[test]
    fn streaming_intervals_conserve_usage() {
        let meter = GridResourceMeter::new("/CN=gsp");
        let job = job_on(OsFlavour::Linux, 5);
        let (_, _, native) = &job.executions[0];
        let total = native.normalize().unwrap();
        let intervals = meter.stream_intervals(native, 700).unwrap();
        assert!(intervals.len() >= 2);
        let mut acc = NormalizedUsage::default();
        for iv in &intervals {
            assert!(iv.end_ms > iv.start_ms);
            acc.accumulate(&iv.usage);
        }
        assert_eq!(acc.cpu, total.cpu);
        assert_eq!(acc.wall, total.wall);
        assert_eq!(acc.network, total.network);
        assert_eq!(acc.memory, total.memory);
        // Intervals tile the execution window.
        assert_eq!(intervals.first().unwrap().start_ms, native.start_ms());
        assert_eq!(intervals.last().unwrap().end_ms, native.end_ms());
        for w in intervals.windows(2) {
            assert_eq!(w[0].end_ms, w[1].start_ms);
        }
    }

    #[test]
    fn streaming_rejects_zero_interval() {
        let meter = GridResourceMeter::new("/CN=gsp");
        let job = job_on(OsFlavour::Linux, 6);
        assert!(meter.stream_intervals(&job.executions[0].2, 0).is_err());
    }
}
