//! The typed Resource Usage Record (paper §5.1).
//!
//! Field-for-field reproduction of the RUR item list the paper associates
//! with the GGF format: user details (host, certificate name), job details
//! (job id, application, start/end dates), resource details (host,
//! certificate name, host type, local job id), and one usage+price line per
//! chargeable item (wall clock, CPU, memory, storage, network, software),
//! with the total job cost derivable from the lines.

use serde::{Deserialize, Serialize};

use crate::error::RurError;
use crate::money::Credits;
use crate::units::{DataSize, Duration, MbHours, BYTES_PER_MB, MS_PER_HOUR};

/// The chargeable items of §2.1 plus wall-clock time from the RUR field
/// list. "Software Libraries" are priced by system CPU time, as the paper
/// specifies.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum ChargeableItem {
    /// Wall-clock duration of the job on the resource.
    WallClock,
    /// User CPU time ("Processors" in §2.1). Priced per CPU hour.
    Cpu,
    /// Main memory occupancy. Priced per MB·hour.
    Memory,
    /// Secondary storage occupancy. Priced per MB·hour.
    Storage,
    /// I/O channels / networking. Priced per MB of total traffic.
    Network,
    /// Software libraries: system CPU time. Priced per hour.
    Software,
}

impl ChargeableItem {
    /// All items, in canonical order.
    pub const ALL: [ChargeableItem; 6] = [
        ChargeableItem::WallClock,
        ChargeableItem::Cpu,
        ChargeableItem::Memory,
        ChargeableItem::Storage,
        ChargeableItem::Network,
        ChargeableItem::Software,
    ];

    /// Stable wire tag: the item's index in [`ChargeableItem::ALL`].
    pub const fn tag(self) -> u8 {
        match self {
            ChargeableItem::WallClock => 0,
            ChargeableItem::Cpu => 1,
            ChargeableItem::Memory => 2,
            ChargeableItem::Storage => 3,
            ChargeableItem::Network => 4,
            ChargeableItem::Software => 5,
        }
    }

    /// Stable name used by codecs and rate tables.
    pub fn name(&self) -> &'static str {
        match self {
            ChargeableItem::WallClock => "wallclock",
            ChargeableItem::Cpu => "cpu",
            ChargeableItem::Memory => "memory",
            ChargeableItem::Storage => "storage",
            ChargeableItem::Network => "network",
            ChargeableItem::Software => "software",
        }
    }

    /// Parses the stable name.
    pub fn from_name(name: &str) -> Option<ChargeableItem> {
        Self::ALL.iter().copied().find(|i| i.name() == name)
    }

    /// The pricing unit, for display: "per CPU hour", "per MB·hour", ...
    pub fn unit(&self) -> &'static str {
        match self {
            ChargeableItem::WallClock | ChargeableItem::Cpu | ChargeableItem::Software => "G$/hour",
            ChargeableItem::Memory | ChargeableItem::Storage => "G$/MB·hour",
            ChargeableItem::Network => "G$/MB",
        }
    }
}

/// The measured quantity for one chargeable item.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum UsageAmount {
    /// A duration (wall clock, user CPU, system CPU).
    Time(Duration),
    /// A size×time occupancy (memory, storage).
    Occupancy(MbHours),
    /// A data volume (network traffic).
    Data(DataSize),
}

impl UsageAmount {
    /// True when no usage was recorded.
    pub fn is_zero(&self) -> bool {
        match self {
            UsageAmount::Time(d) => d.as_ms() == 0,
            UsageAmount::Occupancy(o) => o.as_mb_ms() == 0,
            UsageAmount::Data(s) => s.as_bytes() == 0,
        }
    }
}

impl std::fmt::Display for UsageAmount {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UsageAmount::Time(d) => write!(f, "{d}"),
            UsageAmount::Occupancy(o) => write!(f, "{o}"),
            UsageAmount::Data(s) => write!(f, "{s}"),
        }
    }
}

/// One usage line: item, measured usage, and the agreed price per unit.
///
/// "For every chargeable item in the rates record there must be a
/// corresponding item in the RUR" (§2.1) — conformance is checked by
/// `gridbank_trade::rates`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct UsageLine {
    /// Which chargeable item this line accounts.
    pub item: ChargeableItem,
    /// The measured quantity.
    pub usage: UsageAmount,
    /// Agreed price per unit (unit depends on the item, see
    /// [`ChargeableItem::unit`]).
    pub price_per_unit: Credits,
}

impl UsageLine {
    /// The charge for this line: `rate × usage` in the item's unit system
    /// ("The total charge is calculated by multiplying rate by usage for
    /// each item", §2.1).
    pub fn cost(&self) -> Result<Credits, RurError> {
        match (self.item, self.usage) {
            (
                ChargeableItem::WallClock | ChargeableItem::Cpu | ChargeableItem::Software,
                UsageAmount::Time(d),
            ) => self.price_per_unit.mul_ratio(d.as_ms(), MS_PER_HOUR),
            (ChargeableItem::Memory | ChargeableItem::Storage, UsageAmount::Occupancy(o)) => {
                self.price_per_unit.mul_ratio(o.as_mb_ms(), MS_PER_HOUR)
            }
            (ChargeableItem::Network, UsageAmount::Data(s)) => {
                self.price_per_unit.mul_ratio(s.as_bytes(), BYTES_PER_MB)
            }
            (item, usage) => Err(RurError::Invalid {
                field: "usage",
                why: format!("{usage:?} is the wrong quantity kind for {item:?}"),
            }),
        }
    }

    /// Checks unit consistency without computing the cost.
    pub fn validate(&self) -> Result<(), RurError> {
        self.cost().map(|_| ())
    }
}

/// User (GSC) details carried in the RUR.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct UserDetails {
    /// Host name / IP the job was submitted from.
    pub host: String,
    /// Grid-wide unique certificate name of the GSC.
    pub certificate_name: String,
}

/// Job details carried in the RUR.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct JobDetails {
    /// Grid-global job identifier (the paper leaves the scheme open:
    /// Nimrod-G id, local pid, or a global unique id).
    pub job_id: String,
    /// Application name.
    pub application: String,
    /// Job start, epoch milliseconds (virtual time in simulations).
    pub start_ms: u64,
    /// Job end, epoch milliseconds.
    pub end_ms: u64,
}

impl JobDetails {
    /// Wall-clock span of the job.
    pub fn span(&self) -> Duration {
        Duration::from_ms(self.end_ms.saturating_sub(self.start_ms))
    }
}

/// Resource (GSP) details carried in the RUR.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct ResourceDetails {
    /// Host name / IP of the resource.
    pub host: String,
    /// Grid-wide unique certificate name of the GSP.
    pub certificate_name: String,
    /// Host type, e.g. "Cray" (optional in the paper).
    pub host_type: Option<String>,
    /// Local OS process/job id, kept "to settle disputes about resource
    /// consumption".
    pub local_job_id: u64,
}

/// The OS-independent Resource Usage Record.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct ResourceUsageRecord {
    /// Consumer details.
    pub user: UserDetails,
    /// Job details.
    pub job: JobDetails,
    /// Provider details.
    pub resource: ResourceDetails,
    /// One line per chargeable item that was metered.
    pub lines: Vec<UsageLine>,
}

impl ResourceUsageRecord {
    /// Starts a builder.
    pub fn builder() -> RurBuilder {
        RurBuilder::default()
    }

    /// The itemized total: Σ rate×usage over all lines (§2.1).
    pub fn total_cost(&self) -> Result<Credits, RurError> {
        let mut total = Credits::ZERO;
        for line in &self.lines {
            total = total.checked_add(line.cost()?)?;
        }
        Ok(total)
    }

    /// The paper's simplified "Job Cost = (end − start) × total price per
    /// time unit" formula, meaningful when every line is time-priced; we
    /// expose it for comparison but charging uses [`Self::total_cost`].
    pub fn flat_rate_cost(&self, total_price_per_hour: Credits) -> Result<Credits, RurError> {
        total_price_per_hour.mul_ratio(self.job.span().as_ms(), MS_PER_HOUR)
    }

    /// Looks up a line by item.
    pub fn line(&self, item: ChargeableItem) -> Option<&UsageLine> {
        self.lines.iter().find(|l| l.item == item)
    }

    /// Full structural validation.
    pub fn validate(&self) -> Result<(), RurError> {
        if self.user.certificate_name.is_empty() {
            return Err(RurError::MissingField("user.certificate_name"));
        }
        if self.resource.certificate_name.is_empty() {
            return Err(RurError::MissingField("resource.certificate_name"));
        }
        if self.job.job_id.is_empty() {
            return Err(RurError::MissingField("job.job_id"));
        }
        if self.job.end_ms < self.job.start_ms {
            return Err(RurError::Invalid {
                field: "job.end_ms",
                why: format!("end {} before start {}", self.job.end_ms, self.job.start_ms),
            });
        }
        let mut seen = [false; ChargeableItem::ALL.len()];
        for line in &self.lines {
            let idx = line.item.tag() as usize;
            if seen[idx] {
                return Err(RurError::Invalid {
                    field: "lines",
                    why: format!("duplicate line for {:?}", line.item),
                });
            }
            seen[idx] = true;
            line.validate()?;
            if line.price_per_unit.is_negative() {
                return Err(RurError::Invalid {
                    field: "lines",
                    why: format!("negative price for {:?}", line.item),
                });
            }
        }
        Ok(())
    }
}

/// Builder enforcing the record's required fields.
#[derive(Default, Clone, Debug)]
pub struct RurBuilder {
    user: Option<UserDetails>,
    job: Option<JobDetails>,
    resource: Option<ResourceDetails>,
    lines: Vec<UsageLine>,
}

impl RurBuilder {
    /// Sets the consumer details.
    pub fn user(mut self, host: impl Into<String>, certificate_name: impl Into<String>) -> Self {
        self.user =
            Some(UserDetails { host: host.into(), certificate_name: certificate_name.into() });
        self
    }

    /// Sets the job details.
    pub fn job(
        mut self,
        job_id: impl Into<String>,
        application: impl Into<String>,
        start_ms: u64,
        end_ms: u64,
    ) -> Self {
        self.job = Some(JobDetails {
            job_id: job_id.into(),
            application: application.into(),
            start_ms,
            end_ms,
        });
        self
    }

    /// Sets the provider details.
    pub fn resource(
        mut self,
        host: impl Into<String>,
        certificate_name: impl Into<String>,
        host_type: Option<String>,
        local_job_id: u64,
    ) -> Self {
        self.resource = Some(ResourceDetails {
            host: host.into(),
            certificate_name: certificate_name.into(),
            host_type,
            local_job_id,
        });
        self
    }

    /// Adds a usage line.
    pub fn line(
        mut self,
        item: ChargeableItem,
        usage: UsageAmount,
        price_per_unit: Credits,
    ) -> Self {
        self.lines.push(UsageLine { item, usage, price_per_unit });
        self
    }

    /// Validates and builds the record.
    pub fn build(self) -> Result<ResourceUsageRecord, RurError> {
        let record = ResourceUsageRecord {
            user: self.user.ok_or(RurError::MissingField("user"))?,
            job: self.job.ok_or(RurError::MissingField("job"))?,
            resource: self.resource.ok_or(RurError::MissingField("resource"))?,
            lines: self.lines,
        };
        record.validate()?;
        Ok(record)
    }
}

#[cfg(test)]
pub(crate) fn sample_record() -> ResourceUsageRecord {
    ResourceUsageRecord::builder()
        .user("submit.uwa.edu.au", "/O=UWA/OU=CSSE/CN=alice")
        .job("nimrod-42", "povray-render", 1_000, 3_601_000)
        .resource(
            "cluster.unimelb.edu.au",
            "/O=UniMelb/OU=GRIDS/CN=gsp-alpha",
            Some("Linux/x86".into()),
            7_777,
        )
        .line(ChargeableItem::Cpu, UsageAmount::Time(Duration::from_hours(1)), Credits::from_gd(2))
        .line(
            ChargeableItem::Memory,
            UsageAmount::Occupancy(MbHours::occupancy(
                DataSize::from_mb(512),
                Duration::from_hours(1),
            )),
            Credits::from_milli(10),
        )
        .line(
            ChargeableItem::Network,
            UsageAmount::Data(DataSize::from_mb(100)),
            Credits::from_milli(5),
        )
        .build()
        .expect("sample record is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn item_names_round_trip() {
        for item in ChargeableItem::ALL {
            assert_eq!(ChargeableItem::from_name(item.name()), Some(item));
        }
        assert_eq!(ChargeableItem::from_name("nonsense"), None);
    }

    #[test]
    fn line_costs_follow_units() {
        // 2 G$/h CPU for 1h = 2 G$.
        let cpu = UsageLine {
            item: ChargeableItem::Cpu,
            usage: UsageAmount::Time(Duration::from_hours(1)),
            price_per_unit: Credits::from_gd(2),
        };
        assert_eq!(cpu.cost().unwrap(), Credits::from_gd(2));

        // 0.01 G$/MBh memory, 512 MBh = 5.12 G$.
        let mem = UsageLine {
            item: ChargeableItem::Memory,
            usage: UsageAmount::Occupancy(MbHours::occupancy(
                DataSize::from_mb(512),
                Duration::from_hours(1),
            )),
            price_per_unit: Credits::from_milli(10),
        };
        assert_eq!(mem.cost().unwrap(), Credits::from_micro(5_120_000));

        // 0.005 G$/MB network, 100 MB = 0.5 G$.
        let net = UsageLine {
            item: ChargeableItem::Network,
            usage: UsageAmount::Data(DataSize::from_mb(100)),
            price_per_unit: Credits::from_milli(5),
        };
        assert_eq!(net.cost().unwrap(), Credits::from_micro(500_000));
    }

    #[test]
    fn unit_mismatch_is_an_error() {
        let bad = UsageLine {
            item: ChargeableItem::Cpu,
            usage: UsageAmount::Data(DataSize::from_mb(1)),
            price_per_unit: Credits::from_gd(1),
        };
        assert!(matches!(bad.cost(), Err(RurError::Invalid { .. })));
    }

    #[test]
    fn sample_record_totals() {
        let r = sample_record();
        // 2 + 5.12 + 0.5 G$.
        assert_eq!(r.total_cost().unwrap(), Credits::from_micro(7_620_000));
        assert_eq!(r.job.span(), Duration::from_hours(1));
        // Flat-rate formula with total price 7.62 G$/h over 1h matches.
        assert_eq!(
            r.flat_rate_cost(Credits::from_micro(7_620_000)).unwrap(),
            Credits::from_micro(7_620_000)
        );
    }

    #[test]
    fn builder_requires_all_sections() {
        assert!(matches!(RurBuilder::default().build(), Err(RurError::MissingField("user"))));
        assert!(matches!(
            RurBuilder::default().user("h", "cn").build(),
            Err(RurError::MissingField("job"))
        ));
        assert!(matches!(
            RurBuilder::default().user("h", "cn").job("j", "a", 0, 1).build(),
            Err(RurError::MissingField("resource"))
        ));
    }

    #[test]
    fn validation_catches_bad_records() {
        // End before start.
        let r = RurBuilder::default()
            .user("h", "cn")
            .job("j", "a", 10, 5)
            .resource("r", "cn2", None, 0)
            .build();
        assert!(matches!(r, Err(RurError::Invalid { field: "job.end_ms", .. })));

        // Duplicate item line.
        let r = RurBuilder::default()
            .user("h", "cn")
            .job("j", "a", 0, 10)
            .resource("r", "cn2", None, 0)
            .line(ChargeableItem::Cpu, UsageAmount::Time(Duration::from_ms(1)), Credits::ZERO)
            .line(ChargeableItem::Cpu, UsageAmount::Time(Duration::from_ms(2)), Credits::ZERO)
            .build();
        assert!(matches!(r, Err(RurError::Invalid { field: "lines", .. })));

        // Negative price.
        let r = RurBuilder::default()
            .user("h", "cn")
            .job("j", "a", 0, 10)
            .resource("r", "cn2", None, 0)
            .line(
                ChargeableItem::Cpu,
                UsageAmount::Time(Duration::from_ms(1)),
                Credits::from_gd(-1),
            )
            .build();
        assert!(matches!(r, Err(RurError::Invalid { field: "lines", .. })));

        // Empty certificate name.
        let r = RurBuilder::default()
            .user("h", "")
            .job("j", "a", 0, 10)
            .resource("r", "cn2", None, 0)
            .build();
        assert!(matches!(r, Err(RurError::MissingField("user.certificate_name"))));
    }

    #[test]
    fn line_lookup() {
        let r = sample_record();
        assert!(r.line(ChargeableItem::Cpu).is_some());
        assert!(r.line(ChargeableItem::Storage).is_none());
    }

    #[test]
    fn zero_usage_detection() {
        assert!(UsageAmount::Time(Duration::ZERO).is_zero());
        assert!(UsageAmount::Data(DataSize::ZERO).is_zero());
        assert!(UsageAmount::Occupancy(MbHours::ZERO).is_zero());
        assert!(!UsageAmount::Time(Duration::from_ms(1)).is_zero());
    }
}
