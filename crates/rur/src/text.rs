//! XML-like textual rendering of usage records.
//!
//! The paper: "whatever format is chosen (e.g. XML), GridBank stores RUR
//! in binary format … the RUR can be independently defined by the Grid
//! sites … Grid Resource Meter Module can then perform translations from
//! one record format into another." This module is that textual side: a
//! deterministic XML-ish writer and a strict parser, so sites exchanging
//! text records can be translated to/from the canonical binary codec.
//!
//! The grammar is a deliberately small XML subset: elements, no
//! attributes, `&amp; &lt; &gt;` escaping, UTF-8.

use crate::error::RurError;
use crate::money::Credits;
use crate::record::{
    ChargeableItem, JobDetails, ResourceDetails, ResourceUsageRecord, UsageAmount, UsageLine,
    UserDetails,
};
use crate::units::{DataSize, Duration, MbHours};

fn escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            _ => out.push(c),
        }
    }
}

fn unescape(s: &str) -> Result<String, RurError> {
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        rest = &rest[amp..];
        if let Some(stripped) = rest.strip_prefix("&amp;") {
            out.push('&');
            rest = stripped;
        } else if let Some(stripped) = rest.strip_prefix("&lt;") {
            out.push('<');
            rest = stripped;
        } else if let Some(stripped) = rest.strip_prefix("&gt;") {
            out.push('>');
            rest = stripped;
        } else {
            return Err(RurError::Parse(format!(
                "bad entity near `{}`",
                &rest[..rest.len().min(8)]
            )));
        }
    }
    out.push_str(rest);
    Ok(out)
}

fn elem(name: &str, value: &str, indent: usize, out: &mut String) {
    for _ in 0..indent {
        out.push(' ');
    }
    out.push('<');
    out.push_str(name);
    out.push('>');
    escape(value, out);
    out.push_str("</");
    out.push_str(name);
    out.push_str(">\n");
}

/// Renders a record as indented XML-like text.
pub fn to_text(record: &ResourceUsageRecord) -> String {
    let mut out = String::with_capacity(512);
    out.push_str("<rur>\n");
    out.push_str(" <user>\n");
    elem("host", &record.user.host, 2, &mut out);
    elem("cert", &record.user.certificate_name, 2, &mut out);
    out.push_str(" </user>\n <job>\n");
    elem("id", &record.job.job_id, 2, &mut out);
    elem("application", &record.job.application, 2, &mut out);
    elem("start_ms", &record.job.start_ms.to_string(), 2, &mut out);
    elem("end_ms", &record.job.end_ms.to_string(), 2, &mut out);
    out.push_str(" </job>\n <resource>\n");
    elem("host", &record.resource.host, 2, &mut out);
    elem("cert", &record.resource.certificate_name, 2, &mut out);
    if let Some(ht) = &record.resource.host_type {
        elem("host_type", ht, 2, &mut out);
    }
    elem("local_job_id", &record.resource.local_job_id.to_string(), 2, &mut out);
    out.push_str(" </resource>\n");
    for line in &record.lines {
        out.push_str(" <usage>\n");
        elem("item", line.item.name(), 2, &mut out);
        let (kind, value) = match line.usage {
            UsageAmount::Time(d) => ("time_ms", d.as_ms()),
            UsageAmount::Occupancy(o) => ("mb_ms", o.as_mb_ms()),
            UsageAmount::Data(s) => ("bytes", s.as_bytes()),
        };
        elem(kind, &value.to_string(), 2, &mut out);
        elem("price_micro_gd", &line.price_per_unit.micro().to_string(), 2, &mut out);
        out.push_str(" </usage>\n");
    }
    out.push_str("</rur>\n");
    out
}

/// A minimal pull-parser over the XML subset.
struct Parser<'a> {
    rest: &'a str,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser { rest: input }
    }

    fn skip_ws(&mut self) {
        self.rest = self.rest.trim_start();
    }

    /// Consumes `<name>` if next; returns whether it was consumed.
    fn try_open(&mut self, name: &str) -> bool {
        self.skip_ws();
        let tag = format!("<{name}>");
        if let Some(stripped) = self.rest.strip_prefix(&tag) {
            self.rest = stripped;
            true
        } else {
            false
        }
    }

    fn expect_open(&mut self, name: &str) -> Result<(), RurError> {
        if self.try_open(name) {
            Ok(())
        } else {
            Err(RurError::Parse(format!(
                "expected <{name}> near `{}`",
                &self.rest[..self.rest.len().min(24)]
            )))
        }
    }

    fn expect_close(&mut self, name: &str) -> Result<(), RurError> {
        self.skip_ws();
        let tag = format!("</{name}>");
        if let Some(stripped) = self.rest.strip_prefix(&tag) {
            self.rest = stripped;
            Ok(())
        } else {
            Err(RurError::Parse(format!(
                "expected </{name}> near `{}`",
                &self.rest[..self.rest.len().min(24)]
            )))
        }
    }

    /// Parses `<name>text</name>` and returns the unescaped text.
    fn leaf(&mut self, name: &str) -> Result<String, RurError> {
        self.expect_open(name)?;
        let end =
            self.rest.find('<').ok_or_else(|| RurError::Parse(format!("unterminated <{name}>")))?;
        let raw = &self.rest[..end];
        self.rest = &self.rest[end..];
        let value = unescape(raw)?;
        self.expect_close(name)?;
        Ok(value)
    }

    /// Like [`Self::leaf`] but only if the element is present.
    fn try_leaf(&mut self, name: &str) -> Result<Option<String>, RurError> {
        if self.try_open(name) {
            let end = self
                .rest
                .find('<')
                .ok_or_else(|| RurError::Parse(format!("unterminated <{name}>")))?;
            let raw = &self.rest[..end];
            self.rest = &self.rest[end..];
            let value = unescape(raw)?;
            self.expect_close(name)?;
            Ok(Some(value))
        } else {
            Ok(None)
        }
    }

    fn leaf_u64(&mut self, name: &str) -> Result<u64, RurError> {
        self.leaf(name)?.parse().map_err(|e| RurError::Parse(format!("<{name}>: {e}")))
    }

    fn leaf_i128(&mut self, name: &str) -> Result<i128, RurError> {
        self.leaf(name)?.parse().map_err(|e| RurError::Parse(format!("<{name}>: {e}")))
    }
}

/// Parses the textual form back into a record (validating it).
pub fn from_text(input: &str) -> Result<ResourceUsageRecord, RurError> {
    let mut p = Parser::new(input);
    p.expect_open("rur")?;

    p.expect_open("user")?;
    let user = UserDetails { host: p.leaf("host")?, certificate_name: p.leaf("cert")? };
    p.expect_close("user")?;

    p.expect_open("job")?;
    let job = JobDetails {
        job_id: p.leaf("id")?,
        application: p.leaf("application")?,
        start_ms: p.leaf_u64("start_ms")?,
        end_ms: p.leaf_u64("end_ms")?,
    };
    p.expect_close("job")?;

    p.expect_open("resource")?;
    let host = p.leaf("host")?;
    let cert = p.leaf("cert")?;
    let host_type = p.try_leaf("host_type")?;
    let local_job_id = p.leaf_u64("local_job_id")?;
    p.expect_close("resource")?;
    let resource = ResourceDetails { host, certificate_name: cert, host_type, local_job_id };

    let mut lines = Vec::new();
    while p.try_open("usage") {
        let item_name = p.leaf("item")?;
        let item = ChargeableItem::from_name(&item_name)
            .ok_or_else(|| RurError::Parse(format!("unknown item `{item_name}`")))?;
        let usage = if let Some(v) = p.try_leaf("time_ms")? {
            UsageAmount::Time(Duration::from_ms(
                v.parse().map_err(|e| RurError::Parse(format!("time_ms: {e}")))?,
            ))
        } else if let Some(v) = p.try_leaf("mb_ms")? {
            UsageAmount::Occupancy(MbHours::from_mb_ms(
                v.parse().map_err(|e| RurError::Parse(format!("mb_ms: {e}")))?,
            ))
        } else if let Some(v) = p.try_leaf("bytes")? {
            UsageAmount::Data(DataSize::from_bytes(
                v.parse().map_err(|e| RurError::Parse(format!("bytes: {e}")))?,
            ))
        } else {
            return Err(RurError::Parse("usage element missing quantity".into()));
        };
        let price = Credits::from_micro(p.leaf_i128("price_micro_gd")?);
        lines.push(UsageLine { item, usage, price_per_unit: price });
        p.expect_close("usage")?;
    }
    p.expect_close("rur")?;

    let record = ResourceUsageRecord { user, job, resource, lines };
    record.validate()?;
    Ok(record)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::sample_record;

    #[test]
    fn round_trip() {
        let r = sample_record();
        let text = to_text(&r);
        let back = from_text(&text).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn escaping_round_trips() {
        let mut r = sample_record();
        r.job.application = "a<b>&c &amp; literal".into();
        r.user.host = "<<>>&&".into();
        let back = from_text(&to_text(&r)).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn optional_host_type_absent() {
        let mut r = sample_record();
        r.resource.host_type = None;
        let text = to_text(&r);
        assert!(!text.contains("host_type"));
        assert_eq!(from_text(&text).unwrap(), r);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_text("").is_err());
        assert!(from_text("<rur>").is_err());
        let text = to_text(&sample_record());
        // Break a numeric field.
        let broken = text.replace("<start_ms>1000</start_ms>", "<start_ms>abc</start_ms>");
        assert!(matches!(from_text(&broken), Err(RurError::Parse(_))));
        // Unknown item.
        let broken = text.replace("<item>cpu</item>", "<item>quantum</item>");
        assert!(matches!(from_text(&broken), Err(RurError::Parse(_))));
        // Bad entity.
        let broken = text.replace("povray-render", "povray&bad;");
        assert!(from_text(&broken).is_err());
    }

    #[test]
    fn parsed_records_are_validated() {
        let text = to_text(&sample_record());
        // Make end precede start: structurally fine, semantically invalid.
        let broken = text.replace("<start_ms>1000</start_ms>", "<start_ms>9999999</start_ms>");
        assert!(matches!(from_text(&broken), Err(RurError::Invalid { .. })));
    }

    #[test]
    fn text_and_binary_agree() {
        use crate::codec::{Decode, Encode};
        let r = sample_record();
        let via_text = from_text(&to_text(&r)).unwrap();
        let via_binary = ResourceUsageRecord::from_bytes(&r.to_bytes()).unwrap();
        assert_eq!(via_text, via_binary);
    }
}
