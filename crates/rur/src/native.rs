//! Native (OS-flavoured) raw accounting records and the conversion unit.
//!
//! Figure 2 of the paper: the Grid Resource Meter obtains *raw usage
//! statistics* from the local OS or scheduler, "filters relevant fields in
//! the record and passes them to the conversion unit, which generates a
//! standard OS-independent Resource Usage Record".
//!
//! Since no real testbed is available (see DESIGN.md substitutions), three
//! historically-plausible native formats are modelled, each with its own
//! units and with extra fields that the filter must drop:
//!
//! * [`LinuxRusage`] — `getrusage(2)`-style: microsecond CPU timers, RSS in
//!   kilobytes, 512-byte I/O blocks, plus irrelevant fault/signal counters.
//! * [`SolarisAcct`] — `acct(2)`-style: clock-tick timers (100 Hz), memory
//!   in 8 KB pages, I/O in characters.
//! * [`CrayCsa`] — CSA-style: millisecond timers, memory in million-word
//!   (8 MB) units, I/O in 4 KB sectors. ("Host type (e.g. Cray)" is the
//!   paper's own example.)
//!
//! [`NativeUsageRecord::normalize`] is the conversion unit: every flavour
//! maps onto the same [`NormalizedUsage`], from which the meter builds
//! priced RUR lines.

use crate::error::RurError;
use crate::units::{DataSize, Duration, MbHours};

/// OS-independent normalized usage — the conversion unit's output.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NormalizedUsage {
    /// Wall-clock span of the job.
    pub wall: Duration,
    /// User CPU time.
    pub cpu: Duration,
    /// System CPU time (prices "software libraries" per the paper).
    pub sys_cpu: Duration,
    /// Main-memory occupancy.
    pub memory: MbHours,
    /// Secondary-storage occupancy.
    pub storage: MbHours,
    /// Total network/I/O traffic.
    pub network: DataSize,
}

impl NormalizedUsage {
    /// Component-wise accumulation (used when a job spans several
    /// processes or metering intervals).
    pub fn accumulate(&mut self, other: &NormalizedUsage) {
        self.wall = self.wall.saturating_add(other.wall);
        self.cpu = self.cpu.saturating_add(other.cpu);
        self.sys_cpu = self.sys_cpu.saturating_add(other.sys_cpu);
        self.memory = self.memory.saturating_add(other.memory);
        self.storage = self.storage.saturating_add(other.storage);
        self.network = self.network.saturating_add(other.network);
    }

    /// True when every component is zero.
    pub fn is_zero(&self) -> bool {
        *self == NormalizedUsage::default()
    }
}

/// `getrusage`-flavoured raw record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LinuxRusage {
    /// Process id.
    pub pid: u32,
    /// Job start, epoch ms.
    pub start_ms: u64,
    /// Job end, epoch ms.
    pub end_ms: u64,
    /// User CPU, microseconds.
    pub utime_us: u64,
    /// System CPU, microseconds.
    pub stime_us: u64,
    /// Maximum resident set size, kilobytes.
    pub maxrss_kb: u64,
    /// Scratch space used, kilobytes.
    pub scratch_kb: u64,
    /// Bytes received + sent on the network.
    pub net_bytes: u64,
    /// Block-input operations (512-byte blocks) — counted into storage I/O.
    pub inblock: u64,
    /// Block-output operations (512-byte blocks).
    pub oublock: u64,
    /// Minor page faults — *filtered out* by the conversion unit.
    pub minflt: u64,
    /// Signals received — *filtered out*.
    pub nsignals: u64,
}

/// `acct(2)`-flavoured raw record (System V accounting).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SolarisAcct {
    /// Process id.
    pub pid: u32,
    /// Job start, epoch ms.
    pub start_ms: u64,
    /// Elapsed time in clock ticks (100 Hz).
    pub etime_ticks: u64,
    /// User CPU in clock ticks.
    pub utime_ticks: u64,
    /// System CPU in clock ticks.
    pub stime_ticks: u64,
    /// Mean memory usage, 8 KB pages.
    pub mem_pages: u64,
    /// Scratch usage, 8 KB pages.
    pub scratch_pages: u64,
    /// Characters transferred (network + disk combined; the conversion
    /// unit attributes them all to I/O traffic).
    pub io_chars: u64,
    /// Accounting flags — *filtered out*.
    pub ac_flag: u8,
    /// Exit status — *filtered out*.
    pub ac_stat: u8,
}

/// Cray CSA-flavoured raw record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CrayCsa {
    /// CSA job id.
    pub jid: u64,
    /// Job start, epoch ms.
    pub start_ms: u64,
    /// Job end, epoch ms.
    pub end_ms: u64,
    /// User CPU, milliseconds.
    pub ucpu_ms: u64,
    /// System CPU, milliseconds.
    pub scpu_ms: u64,
    /// Memory high-water mark, million 8-byte words (= 8 MB units).
    pub himem_mwords: u64,
    /// Disk allocation, 4 KB sectors.
    pub disk_sectors: u64,
    /// Network traffic, 4 KB sectors.
    pub net_sectors: u64,
    /// Billing weight applied by local site policy — *filtered out* (the
    /// Grid rate table is authoritative, not local weights).
    pub billing_weight: u32,
}

/// A raw record in any supported native flavour.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NativeUsageRecord {
    /// Linux `getrusage` flavour.
    Linux(LinuxRusage),
    /// Solaris `acct` flavour.
    Solaris(SolarisAcct),
    /// Cray CSA flavour.
    Cray(CrayCsa),
}

impl NativeUsageRecord {
    /// Name of the native format, for provenance/host-type fields.
    pub fn flavour(&self) -> &'static str {
        match self {
            NativeUsageRecord::Linux(_) => "Linux/getrusage",
            NativeUsageRecord::Solaris(_) => "Solaris/acct",
            NativeUsageRecord::Cray(_) => "Cray/CSA",
        }
    }

    /// The local job/process id, carried into the RUR "to settle disputes
    /// about resource consumption".
    pub fn local_job_id(&self) -> u64 {
        match self {
            NativeUsageRecord::Linux(r) => r.pid as u64,
            NativeUsageRecord::Solaris(r) => r.pid as u64,
            NativeUsageRecord::Cray(r) => r.jid,
        }
    }

    /// Job start time in epoch milliseconds.
    pub fn start_ms(&self) -> u64 {
        match self {
            NativeUsageRecord::Linux(r) => r.start_ms,
            NativeUsageRecord::Solaris(r) => r.start_ms,
            NativeUsageRecord::Cray(r) => r.start_ms,
        }
    }

    /// Job end time in epoch milliseconds.
    pub fn end_ms(&self) -> u64 {
        match self {
            NativeUsageRecord::Linux(r) => r.end_ms,
            NativeUsageRecord::Solaris(r) => {
                r.start_ms.saturating_add(r.etime_ticks.saturating_mul(10))
            }
            NativeUsageRecord::Cray(r) => r.end_ms,
        }
    }

    /// The conversion unit: filters relevant fields and maps native units
    /// onto the OS-independent [`NormalizedUsage`].
    pub fn normalize(&self) -> Result<NormalizedUsage, RurError> {
        match self {
            NativeUsageRecord::Linux(r) => {
                if r.end_ms < r.start_ms {
                    return Err(RurError::Invalid {
                        field: "end_ms",
                        why: "job ends before it starts".into(),
                    });
                }
                let wall = Duration::from_ms(r.end_ms.saturating_sub(r.start_ms));
                let mem = DataSize::from_bytes(r.maxrss_kb.saturating_mul(1024));
                let scratch = DataSize::from_bytes(r.scratch_kb.saturating_mul(1024));
                // Block I/O counts toward traffic alongside network bytes.
                let block_bytes = r.inblock.saturating_add(r.oublock).saturating_mul(512);
                Ok(NormalizedUsage {
                    wall,
                    cpu: Duration::from_ms(r.utime_us / 1_000),
                    sys_cpu: Duration::from_ms(r.stime_us / 1_000),
                    memory: MbHours::occupancy(mem, wall),
                    storage: MbHours::occupancy(scratch, wall),
                    network: DataSize::from_bytes(r.net_bytes.saturating_add(block_bytes)),
                })
            }
            NativeUsageRecord::Solaris(r) => {
                // 100 Hz ticks → 10 ms each; pages are 8 KB.
                let wall = Duration::from_ms(r.etime_ticks.saturating_mul(10));
                let mem = DataSize::from_bytes(r.mem_pages.saturating_mul(8 * 1024));
                let scratch = DataSize::from_bytes(r.scratch_pages.saturating_mul(8 * 1024));
                Ok(NormalizedUsage {
                    wall,
                    cpu: Duration::from_ms(r.utime_ticks.saturating_mul(10)),
                    sys_cpu: Duration::from_ms(r.stime_ticks.saturating_mul(10)),
                    memory: MbHours::occupancy(mem, wall),
                    storage: MbHours::occupancy(scratch, wall),
                    network: DataSize::from_bytes(r.io_chars),
                })
            }
            NativeUsageRecord::Cray(r) => {
                if r.end_ms < r.start_ms {
                    return Err(RurError::Invalid {
                        field: "end_ms",
                        why: "job ends before it starts".into(),
                    });
                }
                let wall = Duration::from_ms(r.end_ms.saturating_sub(r.start_ms));
                // A million 8-byte words = 8 MB.
                let mem = DataSize::from_bytes(r.himem_mwords.saturating_mul(8_000_000));
                let disk = DataSize::from_bytes(r.disk_sectors.saturating_mul(4096));
                Ok(NormalizedUsage {
                    wall,
                    cpu: Duration::from_ms(r.ucpu_ms),
                    sys_cpu: Duration::from_ms(r.scpu_ms),
                    memory: MbHours::occupancy(mem, wall),
                    storage: MbHours::occupancy(disk, wall),
                    network: DataSize::from_bytes(r.net_sectors.saturating_mul(4096)),
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::MS_PER_HOUR;

    fn linux_record() -> LinuxRusage {
        LinuxRusage {
            pid: 4242,
            start_ms: 0,
            end_ms: MS_PER_HOUR,           // 1 hour
            utime_us: 30 * 60 * 1_000_000, // 30 CPU-minutes
            stime_us: 5 * 60 * 1_000_000,  // 5 system-minutes
            maxrss_kb: 1024 * 1024,        // 1 GiB RSS
            scratch_kb: 512 * 1024,
            net_bytes: 50_000_000,
            inblock: 1000,
            oublock: 1000,
            minflt: 999_999,
            nsignals: 3,
        }
    }

    #[test]
    fn linux_conversion_units() {
        let n = NativeUsageRecord::Linux(linux_record()).normalize().unwrap();
        assert_eq!(n.wall, Duration::from_hours(1));
        assert_eq!(n.cpu, Duration::from_ms(30 * 60 * 1000));
        assert_eq!(n.sys_cpu, Duration::from_ms(5 * 60 * 1000));
        // 1 GiB = 1073.741824 MB for one hour.
        assert_eq!(
            n.memory,
            MbHours::occupancy(DataSize::from_bytes(1024 * 1024 * 1024), Duration::from_hours(1))
        );
        // Network = raw bytes + 2000 blocks × 512.
        assert_eq!(n.network.as_bytes(), 50_000_000 + 2000 * 512);
    }

    #[test]
    fn irrelevant_fields_are_filtered() {
        let mut a = linux_record();
        let mut b = linux_record();
        a.minflt = 0;
        a.nsignals = 0;
        b.minflt = u64::MAX;
        b.nsignals = u64::MAX;
        assert_eq!(
            NativeUsageRecord::Linux(a).normalize().unwrap(),
            NativeUsageRecord::Linux(b).normalize().unwrap()
        );
    }

    #[test]
    fn solaris_tick_and_page_units() {
        let r = SolarisAcct {
            pid: 7,
            start_ms: 1_000,
            etime_ticks: 360_000, // 3600 s
            utime_ticks: 180_000, // 1800 s
            stime_ticks: 6_000,   // 60 s
            mem_pages: 131_072,   // 1 GiB in 8 KB pages
            scratch_pages: 0,
            io_chars: 12_345,
            ac_flag: 1,
            ac_stat: 0,
        };
        let rec = NativeUsageRecord::Solaris(r);
        assert_eq!(rec.end_ms(), 1_000 + 3_600_000);
        let n = rec.normalize().unwrap();
        assert_eq!(n.wall, Duration::from_hours(1));
        assert_eq!(n.cpu, Duration::from_secs(1800));
        assert_eq!(n.sys_cpu, Duration::from_secs(60));
        assert_eq!(n.network.as_bytes(), 12_345);
    }

    #[test]
    fn cray_units_and_billing_weight_ignored() {
        let mk = |weight| CrayCsa {
            jid: 99,
            start_ms: 0,
            end_ms: 7_200_000,
            ucpu_ms: 3_600_000,
            scpu_ms: 60_000,
            himem_mwords: 4, // 32 MB
            disk_sectors: 256,
            net_sectors: 128,
            billing_weight: weight,
        };
        let a = NativeUsageRecord::Cray(mk(1)).normalize().unwrap();
        let b = NativeUsageRecord::Cray(mk(1000)).normalize().unwrap();
        assert_eq!(a, b);
        assert_eq!(a.wall, Duration::from_hours(2));
        assert_eq!(a.network.as_bytes(), 128 * 4096);
        assert_eq!(
            a.storage,
            MbHours::occupancy(DataSize::from_bytes(256 * 4096), Duration::from_hours(2))
        );
    }

    #[test]
    fn negative_span_rejected() {
        let mut r = linux_record();
        r.end_ms = 0;
        r.start_ms = 10;
        assert!(NativeUsageRecord::Linux(r).normalize().is_err());
    }

    #[test]
    fn accumulate_adds_componentwise() {
        let n1 = NativeUsageRecord::Linux(linux_record()).normalize().unwrap();
        let mut acc = NormalizedUsage::default();
        assert!(acc.is_zero());
        acc.accumulate(&n1);
        acc.accumulate(&n1);
        assert_eq!(acc.cpu.as_ms(), 2 * n1.cpu.as_ms());
        assert_eq!(acc.network.as_bytes(), 2 * n1.network.as_bytes());
        assert!(!acc.is_zero());
    }

    #[test]
    fn flavour_and_local_id() {
        let l = NativeUsageRecord::Linux(linux_record());
        assert_eq!(l.flavour(), "Linux/getrusage");
        assert_eq!(l.local_job_id(), 4242);
    }
}
