//! Canonical binary codec.
//!
//! GridBank stores the RUR "in a binary format" as a BLOB inside the
//! TRANSFER record (§5.1). This module defines that format: a simple,
//! versioned, length-prefixed encoding with explicit integer widths and no
//! alignment. The [`Encode`]/[`Decode`] traits and the [`ByteWriter`]/
//! [`ByteReader`] primitives are reused by `gridbank-core` for cheques,
//! payment messages and the write-ahead journal, so every wire/storage
//! artifact in the workspace shares one audited codec.

use crate::error::RurError;
use crate::money::Credits;
use crate::record::{
    ChargeableItem, JobDetails, ResourceDetails, ResourceUsageRecord, UsageAmount, UsageLine,
    UserDetails,
};
use crate::units::{DataSize, Duration, MbHours};

/// Format version tag leading every top-level record.
pub const RUR_FORMAT_VERSION: u8 = 1;

/// Append-only encoder.
#[derive(Default, Debug)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a writer with a capacity hint.
    pub fn with_capacity(cap: usize) -> Self {
        ByteWriter { buf: Vec::with_capacity(cap) }
    }

    /// Finishes and returns the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Current encoded length.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a big-endian u32.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Writes a big-endian u64.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Writes a big-endian i128.
    pub fn put_i128(&mut self, v: i128) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Writes a length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Writes an optional string (presence byte + value).
    pub fn put_opt_str(&mut self, v: Option<&str>) {
        match v {
            Some(s) => {
                self.put_u8(1);
                self.put_str(s);
            }
            None => self.put_u8(0),
        }
    }
}

/// Sequential decoder over a byte slice.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Starts reading at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    /// Fails unless the whole input was consumed — trailing garbage in a
    /// signed blob is always suspicious.
    pub fn finish(self) -> Result<(), RurError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(RurError::Decode(format!("{} trailing bytes", self.remaining())))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], RurError> {
        if self.remaining() < n {
            return Err(RurError::Decode(format!("need {n} bytes, {} remain", self.remaining())));
        }
        let end = self.pos.saturating_add(n);
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, RurError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a big-endian u32.
    pub fn get_u32(&mut self) -> Result<u32, RurError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a big-endian u64.
    pub fn get_u64(&mut self) -> Result<u64, RurError> {
        let b = self.take(8)?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(b);
        Ok(u64::from_be_bytes(arr))
    }

    /// Reads a big-endian i128.
    pub fn get_i128(&mut self) -> Result<i128, RurError> {
        let b = self.take(16)?;
        let mut arr = [0u8; 16];
        arr.copy_from_slice(b);
        Ok(i128::from_be_bytes(arr))
    }

    /// Reads a length-prefixed byte string.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], RurError> {
        let len = self.get_u32()? as usize;
        self.take(len)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, RurError> {
        let bytes = self.get_bytes()?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| RurError::Decode(format!("invalid utf-8: {e}")))
    }

    /// Reads an optional string.
    pub fn get_opt_str(&mut self) -> Result<Option<String>, RurError> {
        match self.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.get_str()?)),
            t => Err(RurError::Decode(format!("bad option tag {t}"))),
        }
    }
}

/// Types with a canonical binary encoding.
pub trait Encode {
    /// Appends this value to the writer.
    fn encode(&self, w: &mut ByteWriter);

    /// Convenience: encode into a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        self.encode(&mut w);
        w.into_bytes()
    }
}

/// Types decodable from the canonical encoding.
pub trait Decode: Sized {
    /// Reads one value from the reader.
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, RurError>;

    /// Convenience: decode a complete buffer, rejecting trailing bytes.
    fn from_bytes(bytes: &[u8]) -> Result<Self, RurError> {
        let mut r = ByteReader::new(bytes);
        let v = Self::decode(&mut r)?;
        r.finish()?;
        Ok(v)
    }
}

impl Encode for Credits {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_i128(self.micro());
    }
}

impl Decode for Credits {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, RurError> {
        Ok(Credits::from_micro(r.get_i128()?))
    }
}

impl Encode for ChargeableItem {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u8(self.tag());
    }
}

impl Decode for ChargeableItem {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, RurError> {
        let tag = r.get_u8()? as usize;
        ChargeableItem::ALL
            .get(tag)
            .copied()
            .ok_or_else(|| RurError::Decode(format!("bad chargeable item tag {tag}")))
    }
}

impl Encode for UsageAmount {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            UsageAmount::Time(d) => {
                w.put_u8(0);
                w.put_u64(d.as_ms());
            }
            UsageAmount::Occupancy(o) => {
                w.put_u8(1);
                w.put_u64(o.as_mb_ms());
            }
            UsageAmount::Data(s) => {
                w.put_u8(2);
                w.put_u64(s.as_bytes());
            }
        }
    }
}

impl Decode for UsageAmount {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, RurError> {
        match r.get_u8()? {
            0 => Ok(UsageAmount::Time(Duration::from_ms(r.get_u64()?))),
            1 => Ok(UsageAmount::Occupancy(MbHours::from_mb_ms(r.get_u64()?))),
            2 => Ok(UsageAmount::Data(DataSize::from_bytes(r.get_u64()?))),
            t => Err(RurError::Decode(format!("bad usage amount tag {t}"))),
        }
    }
}

impl Encode for UsageLine {
    fn encode(&self, w: &mut ByteWriter) {
        self.item.encode(w);
        self.usage.encode(w);
        self.price_per_unit.encode(w);
    }
}

impl Decode for UsageLine {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, RurError> {
        Ok(UsageLine {
            item: ChargeableItem::decode(r)?,
            usage: UsageAmount::decode(r)?,
            price_per_unit: Credits::decode(r)?,
        })
    }
}

impl Encode for ResourceUsageRecord {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u8(RUR_FORMAT_VERSION);
        w.put_str(&self.user.host);
        w.put_str(&self.user.certificate_name);
        w.put_str(&self.job.job_id);
        w.put_str(&self.job.application);
        w.put_u64(self.job.start_ms);
        w.put_u64(self.job.end_ms);
        w.put_str(&self.resource.host);
        w.put_str(&self.resource.certificate_name);
        w.put_opt_str(self.resource.host_type.as_deref());
        w.put_u64(self.resource.local_job_id);
        w.put_u32(self.lines.len() as u32);
        for line in &self.lines {
            line.encode(w);
        }
    }
}

impl Decode for ResourceUsageRecord {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, RurError> {
        let version = r.get_u8()?;
        if version != RUR_FORMAT_VERSION {
            return Err(RurError::Decode(format!("unsupported RUR version {version}")));
        }
        let user = UserDetails { host: r.get_str()?, certificate_name: r.get_str()? };
        let job = JobDetails {
            job_id: r.get_str()?,
            application: r.get_str()?,
            start_ms: r.get_u64()?,
            end_ms: r.get_u64()?,
        };
        let resource = ResourceDetails {
            host: r.get_str()?,
            certificate_name: r.get_str()?,
            host_type: r.get_opt_str()?,
            local_job_id: r.get_u64()?,
        };
        let n = r.get_u32()? as usize;
        // Cap defensively: a record can't have more lines than items.
        if n > ChargeableItem::ALL.len() {
            return Err(RurError::Decode(format!("{n} usage lines exceeds maximum")));
        }
        let mut lines = Vec::with_capacity(n);
        for _ in 0..n {
            lines.push(UsageLine::decode(r)?);
        }
        Ok(ResourceUsageRecord { user, job, resource, lines })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::sample_record;
    use proptest::prelude::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u32(0xDEADBEEF);
        w.put_u64(u64::MAX);
        w.put_i128(-5);
        w.put_str("héllo");
        w.put_bytes(&[1, 2, 3]);
        w.put_opt_str(None);
        w.put_opt_str(Some("x"));
        let bytes = w.into_bytes();

        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xDEADBEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX);
        assert_eq!(r.get_i128().unwrap(), -5);
        assert_eq!(r.get_str().unwrap(), "héllo");
        assert_eq!(r.get_bytes().unwrap(), &[1, 2, 3]);
        assert_eq!(r.get_opt_str().unwrap(), None);
        assert_eq!(r.get_opt_str().unwrap(), Some("x".into()));
        r.finish().unwrap();
    }

    #[test]
    fn truncated_input_fails_cleanly() {
        let bytes = sample_record().to_bytes();
        for cut in [0, 1, 5, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                ResourceUsageRecord::from_bytes(&bytes[..cut]).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = sample_record().to_bytes();
        bytes.push(0);
        assert!(matches!(ResourceUsageRecord::from_bytes(&bytes), Err(RurError::Decode(_))));
    }

    #[test]
    fn record_round_trip() {
        let r = sample_record();
        let bytes = r.to_bytes();
        let back = ResourceUsageRecord::from_bytes(&bytes).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.total_cost().unwrap(), r.total_cost().unwrap());
    }

    #[test]
    fn version_is_checked() {
        let mut bytes = sample_record().to_bytes();
        bytes[0] = 99;
        assert!(matches!(ResourceUsageRecord::from_bytes(&bytes), Err(RurError::Decode(_))));
    }

    #[test]
    fn line_count_is_bounded() {
        let mut w = ByteWriter::new();
        let r = sample_record();
        // Re-encode with a hostile line count.
        w.put_u8(RUR_FORMAT_VERSION);
        w.put_str(&r.user.host);
        w.put_str(&r.user.certificate_name);
        w.put_str(&r.job.job_id);
        w.put_str(&r.job.application);
        w.put_u64(r.job.start_ms);
        w.put_u64(r.job.end_ms);
        w.put_str(&r.resource.host);
        w.put_str(&r.resource.certificate_name);
        w.put_opt_str(r.resource.host_type.as_deref());
        w.put_u64(r.resource.local_job_id);
        w.put_u32(u32::MAX);
        assert!(ResourceUsageRecord::from_bytes(&w.into_bytes()).is_err());
    }

    proptest! {
        #[test]
        fn usage_amount_round_trips(tag in 0u8..3, v in any::<u64>()) {
            let amount = match tag {
                0 => UsageAmount::Time(crate::units::Duration::from_ms(v)),
                1 => UsageAmount::Occupancy(crate::units::MbHours::from_mb_ms(v)),
                _ => UsageAmount::Data(crate::units::DataSize::from_bytes(v)),
            };
            let bytes = amount.to_bytes();
            prop_assert_eq!(UsageAmount::from_bytes(&bytes).unwrap(), amount);
        }

        #[test]
        fn credits_round_trip(v in any::<i64>()) {
            let c = Credits::from_micro(v as i128);
            prop_assert_eq!(Credits::from_bytes(&c.to_bytes()).unwrap(), c);
        }

        #[test]
        fn arbitrary_strings_round_trip(s in ".{0,64}") {
            let mut w = ByteWriter::new();
            w.put_str(&s);
            let bytes = w.into_bytes();
            let mut r = ByteReader::new(&bytes);
            prop_assert_eq!(r.get_str().unwrap(), s);
        }
    }
}
