//! Aggregation of per-resource records into a combined GSP-level RUR.
//!
//! Figure 1 of the paper shows individual resources R1–R4 each presenting
//! a usage record to the Grid Resource Meter, which "might choose to
//! aggregate individual records into the standard RUR to reflect the
//! charge for the combined GSP's service" (§2.1). Aggregation is only
//! meaningful for records of the *same job by the same consumer at the
//! same provider*; anything else is a mismatch error.

use crate::error::RurError;
use crate::record::{ChargeableItem, ResourceUsageRecord, UsageAmount, UsageLine};
use crate::units::{DataSize, Duration, MbHours};

/// Merges per-resource RURs for one job into a single combined record.
///
/// * user, provider certificate name, job id and application must agree;
/// * the combined job span is the envelope `[min(start), max(end)]`;
/// * usage lines are summed per chargeable item;
/// * prices per item must agree across records (one rate agreement covers
///   the whole GSP — the service-rates record is negotiated once);
/// * the combined `host` is the provider host of the first record, and
///   `local_job_id` likewise (individual ids remain in the source records,
///   which the bank keeps as evidence).
pub fn aggregate_records(records: &[ResourceUsageRecord]) -> Result<ResourceUsageRecord, RurError> {
    let first = records
        .first()
        .ok_or_else(|| RurError::AggregationMismatch("no records to aggregate".into()))?;

    let mut out = first.clone();
    for r in &records[1..] {
        if r.user.certificate_name != first.user.certificate_name {
            return Err(RurError::AggregationMismatch(format!(
                "consumer differs: {} vs {}",
                r.user.certificate_name, first.user.certificate_name
            )));
        }
        if r.resource.certificate_name != first.resource.certificate_name {
            return Err(RurError::AggregationMismatch(format!(
                "provider differs: {} vs {}",
                r.resource.certificate_name, first.resource.certificate_name
            )));
        }
        if r.job.job_id != first.job.job_id {
            return Err(RurError::AggregationMismatch(format!(
                "job differs: {} vs {}",
                r.job.job_id, first.job.job_id
            )));
        }
        out.job.start_ms = out.job.start_ms.min(r.job.start_ms);
        out.job.end_ms = out.job.end_ms.max(r.job.end_ms);
        for line in &r.lines {
            merge_line(&mut out.lines, line)?;
        }
    }
    out.validate()?;
    Ok(out)
}

fn merge_line(lines: &mut Vec<UsageLine>, incoming: &UsageLine) -> Result<(), RurError> {
    if let Some(existing) = lines.iter_mut().find(|l| l.item == incoming.item) {
        if existing.price_per_unit != incoming.price_per_unit {
            return Err(RurError::AggregationMismatch(format!(
                "price for {:?} differs across records ({} vs {})",
                incoming.item, existing.price_per_unit, incoming.price_per_unit
            )));
        }
        existing.usage = add_usage(existing.item, existing.usage, incoming.usage)?;
    } else {
        lines.push(*incoming);
    }
    Ok(())
}

fn add_usage(
    item: ChargeableItem,
    a: UsageAmount,
    b: UsageAmount,
) -> Result<UsageAmount, RurError> {
    match (a, b) {
        (UsageAmount::Time(x), UsageAmount::Time(y)) => Ok(UsageAmount::Time(Duration::from_ms(
            x.as_ms().checked_add(y.as_ms()).ok_or(RurError::Overflow("usage time addition"))?,
        ))),
        (UsageAmount::Occupancy(x), UsageAmount::Occupancy(y)) => {
            Ok(UsageAmount::Occupancy(MbHours::from_mb_ms(
                x.as_mb_ms()
                    .checked_add(y.as_mb_ms())
                    .ok_or(RurError::Overflow("usage occupancy addition"))?,
            )))
        }
        (UsageAmount::Data(x), UsageAmount::Data(y)) => {
            Ok(UsageAmount::Data(DataSize::from_bytes(
                x.as_bytes()
                    .checked_add(y.as_bytes())
                    .ok_or(RurError::Overflow("usage data addition"))?,
            )))
        }
        _ => Err(RurError::AggregationMismatch(format!("usage kinds for {item:?} do not match"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::money::Credits;
    use crate::record::RurBuilder;

    fn record_for_resource(n: u32, cpu_ms: u64) -> ResourceUsageRecord {
        RurBuilder::default()
            .user("submit.host", "/CN=alice")
            .job("job-1", "sweep", 1_000 * n as u64, 10_000 + 1_000 * n as u64)
            .resource(format!("r{n}.gsp.org"), "/CN=gsp-alpha", None, 100 + n as u64)
            .line(
                ChargeableItem::Cpu,
                UsageAmount::Time(Duration::from_ms(cpu_ms)),
                Credits::from_gd(1),
            )
            .line(
                ChargeableItem::Network,
                UsageAmount::Data(DataSize::from_mb(n as u64)),
                Credits::from_milli(5),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn aggregates_four_resources() {
        let records: Vec<_> = (1..=4).map(|n| record_for_resource(n, 1_000 * n as u64)).collect();
        let combined = aggregate_records(&records).unwrap();
        // CPU sums across R1-R4: 1+2+3+4 seconds.
        let cpu = combined.line(ChargeableItem::Cpu).unwrap();
        assert_eq!(cpu.usage, UsageAmount::Time(Duration::from_secs(10)));
        // Network sums: 1+2+3+4 MB.
        let net = combined.line(ChargeableItem::Network).unwrap();
        assert_eq!(net.usage, UsageAmount::Data(DataSize::from_mb(10)));
        // Envelope span.
        assert_eq!(combined.job.start_ms, 1_000);
        assert_eq!(combined.job.end_ms, 14_000);
        // Cost equals sum of individual costs (same prices).
        let individual: i128 = records.iter().map(|r| r.total_cost().unwrap().micro()).sum();
        assert_eq!(combined.total_cost().unwrap().micro(), individual);
    }

    #[test]
    fn single_record_is_identity() {
        let r = record_for_resource(1, 500);
        assert_eq!(aggregate_records(std::slice::from_ref(&r)).unwrap(), r);
    }

    #[test]
    fn empty_input_rejected() {
        assert!(matches!(aggregate_records(&[]), Err(RurError::AggregationMismatch(_))));
    }

    #[test]
    fn consumer_mismatch_rejected() {
        let a = record_for_resource(1, 100);
        let mut b = record_for_resource(2, 100);
        b.user.certificate_name = "/CN=bob".into();
        assert!(matches!(aggregate_records(&[a, b]), Err(RurError::AggregationMismatch(_))));
    }

    #[test]
    fn provider_and_job_mismatch_rejected() {
        let a = record_for_resource(1, 100);
        let mut b = record_for_resource(2, 100);
        b.resource.certificate_name = "/CN=gsp-beta".into();
        assert!(aggregate_records(&[a.clone(), b]).is_err());

        let mut c = record_for_resource(2, 100);
        c.job.job_id = "job-2".into();
        assert!(aggregate_records(&[a, c]).is_err());
    }

    #[test]
    fn price_disagreement_rejected() {
        let a = record_for_resource(1, 100);
        let mut b = record_for_resource(2, 100);
        b.lines[0].price_per_unit = Credits::from_gd(9);
        assert!(matches!(aggregate_records(&[a, b]), Err(RurError::AggregationMismatch(_))));
    }

    #[test]
    fn disjoint_items_union() {
        let a = record_for_resource(1, 100);
        let mut b = record_for_resource(2, 100);
        // b meters storage instead of cpu/network.
        b.lines = vec![UsageLine {
            item: ChargeableItem::Storage,
            usage: UsageAmount::Occupancy(MbHours::from_mb_ms(77)),
            price_per_unit: Credits::from_milli(1),
        }];
        let combined = aggregate_records(&[a, b]).unwrap();
        assert!(combined.line(ChargeableItem::Cpu).is_some());
        assert!(combined.line(ChargeableItem::Storage).is_some());
        assert_eq!(combined.lines.len(), 3);
    }
}
