//! # gridbank-rur
//!
//! The OS-independent **Resource Usage Record** (RUR) the paper takes from
//! the Global Grid Forum effort (§5.1, refs [13, 20]), plus everything the
//! Grid Resource Meter needs to produce one:
//!
//! * [`money`] — fixed-point Grid currency ([`money::Credits`], µG$
//!   precision) with checked arithmetic. The paper stores balances as SQL
//!   `FLOAT`; we deliberately substitute exact fixed point so conservation
//!   invariants are testable (DESIGN.md §4).
//! * [`units`] — durations, data sizes, and the MB·hour composite unit the
//!   paper prices memory and storage in.
//! * [`record`] — the typed RUR (user / job / resource details, usage and
//!   price-per-unit for each chargeable item, total job cost) and its
//!   builder.
//! * [`native`] — simulated *raw* accounting records in three native
//!   flavours (Linux getrusage, Solaris acct, Cray CSA) and the
//!   **conversion unit** that filters them into standard RURs — exactly
//!   the GRM pipeline of Figure 2.
//! * [`aggregate`] — merging the per-resource records R1–R4 of Figure 1
//!   into one combined GSP-level RUR.
//! * [`codec`] — the canonical length-prefixed binary encoding (GridBank
//!   stores RURs as BLOBs) and a reusable byte reader/writer other crates
//!   share.
//! * [`text`] — an XML-like human-readable rendering with a parser, since
//!   the paper notes sites may define textual formats that the GRM then
//!   translates.

// The workspace-level `clippy::arithmetic_side_effects` wall guards
// production money paths; test fixtures may build inputs with plain
// arithmetic (see docs/STATIC_ANALYSIS.md §lint wall).
#![cfg_attr(test, allow(clippy::arithmetic_side_effects))]

pub mod aggregate;
pub mod codec;
pub mod error;
pub mod money;
pub mod native;
pub mod record;
pub mod text;
pub mod units;

pub use aggregate::aggregate_records;
pub use codec::{ByteReader, ByteWriter, Decode, Encode};
pub use error::RurError;
pub use money::Credits;
pub use record::{
    ChargeableItem, JobDetails, ResourceDetails, ResourceUsageRecord, RurBuilder, UsageLine,
    UserDetails,
};
pub use units::{DataSize, Duration, MbHours};
