//! Error type for record construction, conversion, and codecs.

use std::fmt;

/// Errors from RUR construction, validation, conversion and (de)serialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RurError {
    /// A required field was missing when building a record.
    MissingField(&'static str),
    /// A field carried an out-of-range or inconsistent value.
    Invalid {
        /// Field name.
        field: &'static str,
        /// Human-readable reason.
        why: String,
    },
    /// Arithmetic overflow while computing usage or cost.
    Overflow(&'static str),
    /// The byte stream ended early or carried a bad tag/length.
    Decode(String),
    /// The textual form could not be parsed.
    Parse(String),
    /// Aggregation was asked to merge records that do not belong together.
    AggregationMismatch(String),
}

impl fmt::Display for RurError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RurError::MissingField(name) => write!(f, "missing required field `{name}`"),
            RurError::Invalid { field, why } => write!(f, "invalid field `{field}`: {why}"),
            RurError::Overflow(what) => write!(f, "arithmetic overflow in {what}"),
            RurError::Decode(why) => write!(f, "decode error: {why}"),
            RurError::Parse(why) => write!(f, "parse error: {why}"),
            RurError::AggregationMismatch(why) => write!(f, "aggregation mismatch: {why}"),
        }
    }
}

impl std::error::Error for RurError {}
