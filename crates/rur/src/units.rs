//! Measurement units used by usage records and rate tables.
//!
//! The paper prices: CPU time in G$ per CPU **hour**; memory and secondary
//! storage in G$ per **MB·hour**; I/O in G$ per **MB**; software libraries
//! by system CPU time. These newtypes keep the integer bookkeeping exact
//! and make unit errors type errors.

use serde::{Deserialize, Serialize};

/// Milliseconds per hour — the denominator for per-hour pricing.
pub const MS_PER_HOUR: u64 = 3_600_000;

/// Bytes per megabyte (decimal MB, as grid accounting conventionally used).
pub const BYTES_PER_MB: u64 = 1_000_000;

/// A duration in milliseconds of virtual or wall time.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Debug, Serialize, Deserialize,
)]
pub struct Duration(pub u64);

impl Duration {
    /// Zero duration.
    pub const ZERO: Duration = Duration(0);

    /// From whole milliseconds.
    pub const fn from_ms(ms: u64) -> Duration {
        Duration(ms)
    }

    /// From whole seconds.
    pub const fn from_secs(s: u64) -> Duration {
        Duration(s.saturating_mul(1_000))
    }

    /// From whole hours.
    pub const fn from_hours(h: u64) -> Duration {
        Duration(h.saturating_mul(MS_PER_HOUR))
    }

    /// Milliseconds.
    pub const fn as_ms(self) -> u64 {
        self.0
    }

    /// Whole seconds (truncated).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000
    }

    /// Fractional hours, for display.
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / MS_PER_HOUR as f64
    }

    /// Saturating addition.
    pub fn saturating_add(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl std::fmt::Display for Duration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0 >= MS_PER_HOUR {
            write!(f, "{:.3}h", self.as_hours_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}s", self.0 as f64 / 1_000.0)
        } else {
            write!(f, "{}ms", self.0)
        }
    }
}

/// An amount of data in bytes (network traffic, storage footprints).
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Debug, Serialize, Deserialize,
)]
pub struct DataSize(pub u64);

impl DataSize {
    /// Zero bytes.
    pub const ZERO: DataSize = DataSize(0);

    /// From bytes.
    pub const fn from_bytes(b: u64) -> DataSize {
        DataSize(b)
    }

    /// From whole megabytes.
    pub const fn from_mb(mb: u64) -> DataSize {
        DataSize(mb.saturating_mul(BYTES_PER_MB))
    }

    /// Bytes.
    pub const fn as_bytes(self) -> u64 {
        self.0
    }

    /// Whole megabytes (truncated).
    pub const fn as_mb(self) -> u64 {
        self.0 / BYTES_PER_MB
    }

    /// Saturating addition.
    pub fn saturating_add(self, rhs: DataSize) -> DataSize {
        DataSize(self.0.saturating_add(rhs.0))
    }
}

impl std::fmt::Display for DataSize {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0 >= BYTES_PER_MB {
            write!(f, "{:.2}MB", self.0 as f64 / BYTES_PER_MB as f64)
        } else {
            write!(f, "{}B", self.0)
        }
    }
}

/// The MB·hour composite the paper prices memory and storage in, tracked
/// exactly as **MB·milliseconds** internally.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Debug, Serialize, Deserialize,
)]
pub struct MbHours(pub u64);

impl MbHours {
    /// Zero.
    pub const ZERO: MbHours = MbHours(0);

    /// From MB·milliseconds.
    pub const fn from_mb_ms(v: u64) -> MbHours {
        MbHours(v)
    }

    /// Computes `size × duration` occupancy.
    pub fn occupancy(size: DataSize, held_for: Duration) -> MbHours {
        // Work in bytes·ms then convert to MB·ms to preserve precision for
        // small allocations; saturate on pathological inputs.
        let bytes_ms = (size.as_bytes() as u128).saturating_mul(held_for.as_ms() as u128);
        MbHours(bytes_ms.checked_div(BYTES_PER_MB as u128).unwrap_or(0).min(u64::MAX as u128) as u64)
    }

    /// Raw MB·milliseconds.
    pub const fn as_mb_ms(self) -> u64 {
        self.0
    }

    /// Fractional MB·hours, for display.
    pub fn as_mb_hours_f64(self) -> f64 {
        self.0 as f64 / MS_PER_HOUR as f64
    }

    /// Saturating addition.
    pub fn saturating_add(self, rhs: MbHours) -> MbHours {
        MbHours(self.0.saturating_add(rhs.0))
    }
}

impl std::fmt::Display for MbHours {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.4}MBh", self.as_mb_hours_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_conversions() {
        assert_eq!(Duration::from_secs(2).as_ms(), 2_000);
        assert_eq!(Duration::from_hours(1).as_ms(), MS_PER_HOUR);
        assert_eq!(Duration::from_ms(2_500).as_secs(), 2);
        assert!((Duration::from_hours(2).as_hours_f64() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn duration_display_picks_scale() {
        assert_eq!(Duration::from_ms(5).to_string(), "5ms");
        assert_eq!(Duration::from_ms(1_500).to_string(), "1.500s");
        assert_eq!(Duration::from_hours(2).to_string(), "2.000h");
    }

    #[test]
    fn duration_saturating_ops() {
        assert_eq!(Duration(u64::MAX).saturating_add(Duration(1)), Duration(u64::MAX));
        assert_eq!(Duration(5).saturating_sub(Duration(9)), Duration::ZERO);
    }

    #[test]
    fn datasize_conversions() {
        assert_eq!(DataSize::from_mb(3).as_bytes(), 3_000_000);
        assert_eq!(DataSize::from_bytes(2_500_000).as_mb(), 2);
        assert_eq!(DataSize::from_bytes(10).to_string(), "10B");
        assert_eq!(DataSize::from_mb(2).to_string(), "2.00MB");
    }

    #[test]
    fn occupancy_computes_mb_ms() {
        // 512 MB held for 2 hours = 512 * 2 MBh.
        let occ = MbHours::occupancy(DataSize::from_mb(512), Duration::from_hours(2));
        assert_eq!(occ.as_mb_ms(), 512 * 2 * MS_PER_HOUR);
        assert!((occ.as_mb_hours_f64() - 1024.0).abs() < 1e-9);
        // Sub-MB sizes still accrue.
        let small = MbHours::occupancy(DataSize::from_bytes(500_000), Duration::from_ms(2));
        assert_eq!(small.as_mb_ms(), 1);
    }

    #[test]
    fn occupancy_saturates() {
        let huge = MbHours::occupancy(DataSize::from_bytes(u64::MAX), Duration::from_ms(u64::MAX));
        assert_eq!(huge.as_mb_ms(), u64::MAX);
    }
}
