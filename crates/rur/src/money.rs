//! Fixed-point Grid currency.
//!
//! The paper stores balances as MySQL `FLOAT` and prices CPU time in
//! "G$ (Grid currency) per CPU hour". Floating-point money cannot support
//! the conservation invariants our property tests check (transfers must
//! move value exactly), so [`Credits`] is an `i128` count of **micro-G$**
//! (1 G$ = 1,000,000 µG$). All arithmetic is checked; rate×usage charging
//! uses a widened multiply-then-divide so a µG$-per-hour rate applied to a
//! millisecond duration rounds deterministically (half-up at the µG$).

// lint:allow-file(money-arith) fixed-point definition module: the checked helpers are built here from raw i128 ops, under proptest coverage
// The same rationale exempts this one module from the workspace clippy
// wall: everything downstream must go through the checked API built here.
#![allow(clippy::arithmetic_side_effects)]

use std::fmt;
use std::iter::Sum;
use std::ops::Neg;

use serde::{Deserialize, Serialize};

use crate::error::RurError;

/// Micro-G$ per G$.
pub const MICRO_PER_GD: i128 = 1_000_000;

/// An exact amount of Grid currency, in micro-G$.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Credits(i128);

impl Credits {
    /// Zero credits.
    pub const ZERO: Credits = Credits(0);
    /// The largest representable amount.
    pub const MAX: Credits = Credits(i128::MAX);

    /// Constructs from whole Grid dollars.
    pub const fn from_gd(gd: i64) -> Credits {
        Credits(gd as i128 * MICRO_PER_GD)
    }

    /// Constructs from micro-G$ directly.
    pub const fn from_micro(micro: i128) -> Credits {
        Credits(micro)
    }

    /// Constructs from milli-G$ (handy for price tables).
    pub const fn from_milli(milli: i64) -> Credits {
        Credits(milli as i128 * 1_000)
    }

    /// Raw micro-G$ value.
    pub const fn micro(self) -> i128 {
        self.0
    }

    /// Whole-G$ part, truncated toward zero.
    pub const fn whole_gd(self) -> i128 {
        self.0 / MICRO_PER_GD
    }

    /// Approximate f64 value in G$ — for display and metrics only.
    pub fn as_gd_f64(self) -> f64 {
        self.0 as f64 / MICRO_PER_GD as f64
    }

    /// True if strictly negative.
    pub const fn is_negative(self) -> bool {
        self.0 < 0
    }

    /// True if exactly zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// True if strictly positive.
    pub const fn is_positive(self) -> bool {
        self.0 > 0
    }

    /// Checked addition.
    pub fn checked_add(self, rhs: Credits) -> Result<Credits, RurError> {
        self.0.checked_add(rhs.0).map(Credits).ok_or(RurError::Overflow("credits addition"))
    }

    /// Checked subtraction.
    pub fn checked_sub(self, rhs: Credits) -> Result<Credits, RurError> {
        self.0.checked_sub(rhs.0).map(Credits).ok_or(RurError::Overflow("credits subtraction"))
    }

    /// Checked integer scaling.
    pub fn checked_mul(self, factor: i128) -> Result<Credits, RurError> {
        self.0.checked_mul(factor).map(Credits).ok_or(RurError::Overflow("credits multiplication"))
    }

    /// Saturating addition (metrics accumulation only).
    pub fn saturating_add(self, rhs: Credits) -> Credits {
        Credits(self.0.saturating_add(rhs.0))
    }

    /// `self * numerator / denominator` with half-up rounding, the charging
    /// primitive: e.g. `rate.mul_ratio(usage_ms, MS_PER_HOUR)` prices a
    /// per-hour rate over a millisecond duration.
    pub fn mul_ratio(self, numerator: u64, denominator: u64) -> Result<Credits, RurError> {
        if denominator == 0 {
            return Err(RurError::Invalid { field: "denominator", why: "zero".into() });
        }
        let wide = self
            .0
            .checked_mul(numerator as i128)
            .ok_or(RurError::Overflow("credits ratio multiply"))?;
        let den = denominator as i128;
        // Half-up rounding that works for negative amounts too.
        let half = if wide >= 0 { den / 2 } else { -(den / 2) };
        let rounded =
            wide.checked_add(half).ok_or(RurError::Overflow("credits ratio round"))? / den;
        Ok(Credits(rounded))
    }

    /// The amount as a non-negative `u64` of micro-G$ for counters and
    /// histograms: negative amounts clamp to zero, amounts beyond
    /// `u64::MAX` saturate. Telemetry only — never accounting — like
    /// [`Credits::as_gd_f64`]; this is the one sanctioned way to turn
    /// money into a metric value (`gridbank-lint` rejects ad-hoc casts).
    pub const fn metric_micro(self) -> u64 {
        if self.0 < 0 {
            0
        } else if self.0 > u64::MAX as i128 {
            u64::MAX
        } else {
            self.0 as u64
        }
    }

    /// Absolute value.
    pub fn abs(self) -> Credits {
        Credits(self.0.abs())
    }

    /// The smaller of two amounts.
    pub fn min(self, other: Credits) -> Credits {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// The larger of two amounts.
    pub fn max(self, other: Credits) -> Credits {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl Neg for Credits {
    type Output = Credits;
    fn neg(self) -> Credits {
        Credits(-self.0)
    }
}

impl Credits {
    /// Negation as a method: call sites outside this module sit behind
    /// the workspace arithmetic wall, which bans the unary operator.
    pub const fn negated(self) -> Credits {
        Credits(-self.0)
    }
}

impl Sum for Credits {
    /// Sums with saturation; use `checked_add` loops when exactness is
    /// load-bearing (account arithmetic does).
    fn sum<I: Iterator<Item = Credits>>(iter: I) -> Credits {
        iter.fold(Credits::ZERO, Credits::saturating_add)
    }
}

impl fmt::Debug for Credits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Credits({self})")
    }
}

impl fmt::Display for Credits {
    /// Renders as `G$<whole>.<6-digit-fraction>`, e.g. `G$1.250000`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sign = if self.0 < 0 { "-" } else { "" };
        let abs = self.0.unsigned_abs();
        let whole = abs / MICRO_PER_GD as u128;
        let frac = abs % MICRO_PER_GD as u128;
        write!(f, "{sign}G${whole}.{frac:06}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constructors_and_accessors() {
        assert_eq!(Credits::from_gd(3).micro(), 3_000_000);
        assert_eq!(Credits::from_milli(1500).micro(), 1_500_000);
        assert_eq!(Credits::from_micro(42).micro(), 42);
        assert_eq!(Credits::from_gd(7).whole_gd(), 7);
        assert!(Credits::from_gd(-1).is_negative());
        assert!(Credits::ZERO.is_zero());
        assert!(Credits::from_micro(1).is_positive());
    }

    #[test]
    fn display_format() {
        assert_eq!(Credits::from_gd(1).to_string(), "G$1.000000");
        assert_eq!(Credits::from_micro(1_250_000).to_string(), "G$1.250000");
        assert_eq!(Credits::from_micro(-42).to_string(), "-G$0.000042");
        assert_eq!(Credits::ZERO.to_string(), "G$0.000000");
    }

    #[test]
    fn checked_arithmetic() {
        let a = Credits::from_gd(5);
        let b = Credits::from_gd(3);
        assert_eq!(a.checked_add(b).unwrap(), Credits::from_gd(8));
        assert_eq!(a.checked_sub(b).unwrap(), Credits::from_gd(2));
        assert_eq!(b.checked_sub(a).unwrap(), Credits::from_gd(-2));
        assert_eq!(a.checked_mul(4).unwrap(), Credits::from_gd(20));
        assert!(Credits::MAX.checked_add(Credits::from_micro(1)).is_err());
        assert!(Credits::MAX.checked_mul(2).is_err());
    }

    #[test]
    fn ratio_pricing_rounds_half_up() {
        // 1 G$ per hour, for 30 minutes => 0.5 G$.
        let rate = Credits::from_gd(1);
        let cost = rate.mul_ratio(1_800_000, 3_600_000).unwrap();
        assert_eq!(cost, Credits::from_micro(500_000));
        // 1 µG$ * 1/2 rounds up to 1.
        assert_eq!(Credits::from_micro(1).mul_ratio(1, 2).unwrap(), Credits::from_micro(1));
        // 1 µG$ * 1/3 rounds down to 0.
        assert_eq!(Credits::from_micro(1).mul_ratio(1, 3).unwrap(), Credits::ZERO);
        // Negative amounts round symmetrically.
        assert_eq!(Credits::from_micro(-1).mul_ratio(1, 2).unwrap(), Credits::from_micro(-1));
        assert!(rate.mul_ratio(1, 0).is_err());
    }

    #[test]
    fn min_max_abs_neg() {
        let a = Credits::from_gd(2);
        let b = Credits::from_gd(-3);
        assert_eq!(a.min(b), b);
        assert_eq!(a.max(b), a);
        assert_eq!(b.abs(), Credits::from_gd(3));
        assert_eq!(-a, Credits::from_gd(-2));
    }

    #[test]
    fn sum_saturates() {
        let total: Credits = vec![Credits::MAX, Credits::from_gd(1)].into_iter().sum();
        assert_eq!(total, Credits::MAX);
    }

    proptest! {
        #[test]
        fn add_sub_round_trips(a in -1_000_000_000i64..1_000_000_000, b in -1_000_000_000i64..1_000_000_000) {
            let ca = Credits::from_micro(a as i128);
            let cb = Credits::from_micro(b as i128);
            let sum = ca.checked_add(cb).unwrap();
            prop_assert_eq!(sum.checked_sub(cb).unwrap(), ca);
        }

        #[test]
        fn ratio_is_monotone_in_numerator(
            rate in 0i64..10_000_000,
            n1 in 0u64..1_000_000,
            n2 in 0u64..1_000_000,
            den in 1u64..1_000_000,
        ) {
            let r = Credits::from_micro(rate as i128);
            let (lo, hi) = if n1 <= n2 { (n1, n2) } else { (n2, n1) };
            let a = r.mul_ratio(lo, den).unwrap();
            let b = r.mul_ratio(hi, den).unwrap();
            prop_assert!(a <= b);
        }

        #[test]
        fn ratio_full_denominator_is_identity(amount in -1_000_000_000i64..1_000_000_000, den in 1u64..1_000_000) {
            let c = Credits::from_micro(amount as i128);
            prop_assert_eq!(c.mul_ratio(den, den).unwrap(), c);
        }
    }
}
