//! Fixture tests: every rule must flag its seeded violation and stay
//! quiet on the compliant twin. These are the lint's own regression
//! harness — if a rule stops firing on its fixture, the workspace scan
//! has silently lost coverage.

use gridbank_lint::{
    render_report, storage_sections, LockOrderSpec, NameRegistry, Report, Rule, SourceFile,
    Workspace,
};

fn registry() -> NameRegistry {
    NameRegistry::parse(
        "| metric | `core.` `net.` |\n\
         | span | `net` `server.payment` |",
    )
    .expect("fixture registry parses")
}

/// A miniature declared lock order mirroring the real table's shape:
/// ranks ascend, `account-shard` alone permits ascending-index
/// multi-acquire.
fn lock_order() -> LockOrderSpec {
    LockOrderSpec::parse(
        "| 10 | registry | server.rs | `peers` | single |\n\
         | 15 | worker-inbox | server.rs | `rx` | single |\n\
         | 20 | account-shard | db.rs | `shards` `shard` | ascending-index |\n\
         | 30 | journal-mem | db.rs | `mem` | single |\n\
         | 40 | segment-writer | store.rs | `writer` | single |",
    )
    .expect("fixture lock order parses")
}

fn workspace(files: Vec<SourceFile>) -> Workspace {
    Workspace {
        files,
        registry: registry(),
        lock_order: lock_order(),
        storage_sections: vec!["1".into(), "2".into(), "2.3".into(), "3".into(), "3.4".into()],
    }
}

fn analyze(path: &str, source: &str) -> Report {
    workspace(vec![SourceFile::parse(path, source)]).analyze()
}

fn violations(report: &Report, rule: Rule) -> usize {
    report.violations.iter().filter(|v| v.rule == rule).count()
}

// ---- L1 money-arith ----

#[test]
fn money_arith_flags_bare_ops_and_lossy_casts() {
    let report = analyze(
        "crates/sim/src/fixture.rs",
        r#"
fn total(a: Credits, b: Credits) -> i128 {
    a.micro() + b.micro()
}
fn lossy(a: Credits) -> u64 {
    a.micro() as u64
}
"#,
    );
    assert_eq!(violations(&report, Rule::MoneyArith), 2, "{:?}", report.violations);
}

#[test]
fn money_arith_accepts_checked_helpers_and_widening() {
    let report = analyze(
        "crates/sim/src/fixture.rs",
        r#"
fn total(a: Credits, b: Credits) -> Credits {
    a.checked_add(b).unwrap_or(Credits::ZERO)
}
fn widen(a: Credits) -> i128 {
    a.micro() as i128
}
fn telemetry(a: Credits) -> u64 {
    a.metric_micro()
}
"#,
    );
    assert_eq!(violations(&report, Rule::MoneyArith), 0, "{:?}", report.violations);
}

#[test]
fn money_arith_skips_test_code_and_counts_allows() {
    let report = analyze(
        "crates/sim/src/fixture.rs",
        r#"
fn tagged(a: Credits) -> i128 {
    // lint:allow(money-arith) fixture: justified exception
    a.micro() + 1
}

#[cfg(test)]
mod tests {
    fn free_for_all(a: Credits) -> i128 {
        a.micro() * 2 + 1
    }
}
"#,
    );
    assert_eq!(violations(&report, Rule::MoneyArith), 0, "{:?}", report.violations);
    assert_eq!(report.suppressed.len(), 1);
    assert_eq!(report.suppressed[0].reason, "fixture: justified exception");
}

#[test]
fn money_arith_ignores_operators_in_strings_and_comments() {
    let report = analyze(
        "crates/sim/src/fixture.rs",
        r#"
fn describe(a: Credits) -> String {
    // a.micro() + b.micro() would be wrong here
    format!("balance {a} = x + y")
}
"#,
    );
    assert_eq!(violations(&report, Rule::MoneyArith), 0, "{:?}", report.violations);
}

// ---- L2 idem-stamp ----

const API_OK: &str = r#"
impl BankRequest {
    pub fn variant_name(&self) -> &'static str {
        match self {
            BankRequest::CreateAccount { .. } => "CreateAccount",
            BankRequest::DirectTransfer { .. } => "DirectTransfer",
        }
    }
    pub fn is_mutating(&self) -> bool {
        match self {
            BankRequest::CreateAccount { .. } => true,
            BankRequest::DirectTransfer { .. } => true,
        }
    }
}
"#;

const SERVER_OK: &str = r#"
impl GridBank {
    fn handle_keyed(&self, req: BankRequest) -> BankResponse {
        if let Some(hit) = self.db.idem_lookup(&cert, key) {
            return hit;
        }
        let response = self.dispatch(req);
        self.db.idem_record(&cert, key, &response);
        response
    }
    fn dispatch(&self, req: BankRequest) -> BankResponse {
        match req {
            BankRequest::CreateAccount { .. } => self.create(),
            BankRequest::DirectTransfer { .. } => self.transfer(),
        }
    }
}
"#;

fn analyze_core(api: &str, server: &str) -> Report {
    workspace(vec![
        SourceFile::parse("crates/core/src/api.rs", api),
        SourceFile::parse("crates/core/src/server.rs", server),
    ])
    .analyze()
}

#[test]
fn idem_stamp_passes_on_explicit_classification() {
    let report = analyze_core(API_OK, SERVER_OK);
    assert_eq!(violations(&report, Rule::IdemStamp), 0, "{:?}", report.violations);
}

#[test]
fn idem_stamp_rejects_wildcard_is_mutating() {
    let api = API_OK.replace(
        "BankRequest::CreateAccount { .. } => true,\n            BankRequest::DirectTransfer { .. } => true,",
        "_ => true,",
    );
    let report = analyze_core(&api, SERVER_OK);
    // Wildcard arm plus two unclassified variants.
    assert!(violations(&report, Rule::IdemStamp) >= 1, "{:?}", report.violations);
}

#[test]
fn idem_stamp_rejects_dispatch_outside_handle_keyed() {
    let server = format!(
        "{SERVER_OK}
impl SideDoor {{
    fn sneak(&self, req: BankRequest) -> BankResponse {{
        self.dispatch(req)
    }}
}}
"
    );
    let report = analyze_core(API_OK, &server);
    assert_eq!(violations(&report, Rule::IdemStamp), 1, "{:?}", report.violations);
}

#[test]
fn idem_stamp_requires_idem_calls_in_handle_keyed() {
    let server = SERVER_OK.replace("self.db.idem_record(&cert, key, &response);", "");
    let report = analyze_core(API_OK, &server);
    assert_eq!(violations(&report, Rule::IdemStamp), 1, "{:?}", report.violations);
}

#[test]
fn idem_stamp_requires_idem_field_next_to_transfer_rows() {
    let bad = r#"
fn build(&self) -> CommitRows {
    CommitRows {
        transactions: vec![],
        transfer: Some(record),
        ib_out: None,
    }
}
"#;
    let report = analyze("crates/core/src/fixture.rs", bad);
    assert_eq!(violations(&report, Rule::IdemStamp), 1, "{:?}", report.violations);

    let good = bad.replace("ib_out: None,", "ib_out: None,\n        idem: stamp,");
    let report = analyze("crates/core/src/fixture.rs", &good);
    assert_eq!(violations(&report, Rule::IdemStamp), 0, "{:?}", report.violations);

    // `transfer: None` carries no audit row, so no stamp is required.
    let none = bad.replace("transfer: Some(record),", "transfer: None,");
    let report = analyze("crates/core/src/fixture.rs", &none);
    assert_eq!(violations(&report, Rule::IdemStamp), 0, "{:?}", report.violations);
}

// ---- L3 no-panic ----

#[test]
fn no_panic_flags_unwrap_in_scope() {
    let source = r#"
fn decode(buf: &[u8]) -> Frame {
    let len = buf.first().unwrap();
    panic!("bad frame {len}");
}
"#;
    let report = analyze("crates/net/src/fixture.rs", source);
    assert_eq!(violations(&report, Rule::NoPanic), 2, "{:?}", report.violations);

    // The same text outside the protected paths is none of our business.
    let report = analyze("crates/sim/src/fixture.rs", source);
    assert_eq!(violations(&report, Rule::NoPanic), 0, "{:?}", report.violations);
}

#[test]
fn no_panic_permits_tests_and_fallible_cousins() {
    let report = analyze(
        "crates/core/src/fixture.rs",
        r#"
fn replay(buf: &[u8]) -> Result<Frame, DbError> {
    let len = buf.first().copied().unwrap_or_default();
    buf.get(1).ok_or(DbError::Truncated)
}

#[cfg(test)]
mod tests {
    #[test]
    fn explode() {
        decode(&[]).unwrap();
        panic!("fine in tests");
    }
}
"#,
    );
    assert_eq!(violations(&report, Rule::NoPanic), 0, "{:?}", report.violations);
}

// ---- L4 display-parse ----

#[test]
fn display_parse_flags_matching_on_error_text() {
    let report = analyze(
        "crates/broker/src/fixture.rs",
        r#"
fn classify(e: &ErrorFrame) -> bool {
    if e.message.contains("insufficient") {
        return true;
    }
    e.to_string().starts_with("NET")
}
"#,
    );
    assert_eq!(violations(&report, Rule::DisplayParse), 2, "{:?}", report.violations);
}

#[test]
fn display_parse_permits_structured_fields_and_ordinary_strings() {
    let report = analyze(
        "crates/broker/src/fixture.rs",
        r#"
fn classify(e: &ErrorFrame, names: &HashSet<String>) -> bool {
    if let ErrorDetail::InsufficientFunds { needed, .. } = &e.detail {
        return needed.is_positive();
    }
    names.contains("alice") && e.code.starts_with("srv")
}
"#,
    );
    assert_eq!(violations(&report, Rule::DisplayParse), 0, "{:?}", report.violations);
}

// ---- L5 metric-prefix ----

#[test]
fn metric_prefix_checks_literal_names_against_registry() {
    let report = analyze(
        "crates/gsp/src/fixture.rs",
        r#"
fn observe(timer: Stopwatch) {
    gridbank_obs::count("core.fixture.hits", 1);
    gridbank_obs::count("bogus.fixture.hits", 1);
    timer.record_named("net.fixture.duration_ns");
}
"#,
    );
    assert_eq!(violations(&report, Rule::MetricPrefix), 1, "{:?}", report.violations);
    assert!(report.violations[0].message.contains("bogus.fixture.hits"));
}

#[test]
fn metric_prefix_checks_span_components_exactly() {
    let report = analyze(
        "crates/gsp/src/fixture.rs",
        r#"
fn trace() {
    let _a = gridbank_obs::span("server.payment", "fixture");
    let _b = gridbank_obs::span("server.shadow", "fixture");
}
"#,
    );
    assert_eq!(violations(&report, Rule::MetricPrefix), 1, "{:?}", report.violations);
    assert!(report.violations[0].message.contains("server.shadow"));
}

#[test]
fn metric_prefix_skips_dynamic_names_and_reads_multiline_calls() {
    let report = analyze(
        "crates/gsp/src/fixture.rs",
        r#"
fn observe(name: &str) {
    gridbank_obs::count(name, 1);
    gridbank_obs::count(
        "core.fixture.multiline",
        1,
    );
    gridbank_obs::count(
        "nope.fixture.multiline",
        1,
    );
}
"#,
    );
    assert_eq!(violations(&report, Rule::MetricPrefix), 1, "{:?}", report.violations);
}

// ---- L6 lock-order ----

#[test]
fn lock_order_flags_inverted_acquisition() {
    let report = analyze(
        "crates/core/src/db.rs",
        r#"
fn bad(&self) {
    let mem = self.journal.mem.lock();
    let shard = self.shards[0].write();
}
"#,
    );
    assert_eq!(violations(&report, Rule::LockOrder), 1, "{:?}", report.violations);
    assert!(report.violations[0].message.contains("rank 20"));

    let report = analyze(
        "crates/core/src/db.rs",
        r#"
fn good(&self) {
    let shard = self.shards[0].write();
    let mem = self.journal.mem.lock();
}
"#,
    );
    assert_eq!(violations(&report, Rule::LockOrder), 0, "{:?}", report.violations);
}

#[test]
fn lock_order_respects_explicit_drop() {
    let report = analyze(
        "crates/core/src/db.rs",
        r#"
fn ok(&self) {
    let mem = self.journal.mem.lock();
    drop(mem);
    let shard = self.shards[0].write();
}
"#,
    );
    assert_eq!(violations(&report, Rule::LockOrder), 0, "{:?}", report.violations);
}

#[test]
fn lock_order_releases_guards_at_scope_end() {
    let report = analyze(
        "crates/core/src/db.rs",
        r#"
fn ok(&self) {
    {
        let mem = self.journal.mem.lock();
        mem.push(entry);
    }
    let shard = self.shards[0].write();
}
"#,
    );
    assert_eq!(violations(&report, Rule::LockOrder), 0, "{:?}", report.violations);
}

#[test]
fn lock_order_rejects_undeclared_receivers() {
    let report = analyze(
        "crates/core/src/db.rs",
        r#"
fn sneak(&self) {
    let g = self.mystery.lock();
}
"#,
    );
    assert_eq!(violations(&report, Rule::LockOrder), 1, "{:?}", report.violations);
    assert!(report.violations[0].message.contains("no class"));
}

#[test]
fn lock_order_flags_reacquisition_of_the_same_lock() {
    let report = analyze(
        "crates/core/src/db.rs",
        r#"
fn deadlock(&self, i: usize) {
    let a = self.shards[i].write();
    let b = self.shards[i].read();
}
"#,
    );
    assert_eq!(violations(&report, Rule::LockOrder), 1, "{:?}", report.violations);
    assert!(report.violations[0].message.contains("self-deadlock"));
}

#[test]
fn lock_order_requires_sorted_cross_shard_acquire() {
    let report = analyze(
        "crates/core/src/db.rs",
        r#"
fn transfer(&self, a: usize, b: usize) {
    let first = self.shards[a].write();
    let second = self.shards[b].write();
}
"#,
    );
    assert_eq!(violations(&report, Rule::LockOrder), 1, "{:?}", report.violations);
    assert!(report.violations[0].message.contains("ascending-index"));

    let report = analyze(
        "crates/core/src/db.rs",
        r#"
fn transfer(&self, a: usize, b: usize) {
    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
    let first = self.shards[lo].write();
    let second = self.shards[hi].write();
}
"#,
    );
    assert_eq!(violations(&report, Rule::LockOrder), 0, "{:?}", report.violations);
}

#[test]
fn lock_order_joins_rustfmt_continuation_receivers() {
    let report = analyze(
        "crates/core/src/db.rs",
        r#"
fn lookup(&self, cert: &str) -> Option<AccountId> {
    let shard = self.shards[0].read();
    let id = *self
        .journal
        .mem
        .lock()
        .last()?;
    Some(id)
}
"#,
    );
    // shard (20) then journal mem (30): legal, and the split receiver
    // must still classify (an unclassified receiver would flag).
    assert_eq!(violations(&report, Rule::LockOrder), 0, "{:?}", report.violations);
}

#[test]
fn lock_order_spec_rejects_an_empty_table() {
    assert!(LockOrderSpec::parse("# no table here\n").is_err());
}

// ---- L7 blocking-under-lock ----

#[test]
fn blocking_under_lock_flags_io_inside_guard_scope() {
    let report = analyze(
        "crates/core/src/store.rs",
        r#"
fn flush(&self) {
    let writer = self.writer.lock();
    file.sync_all().ok();
}
"#,
    );
    assert_eq!(violations(&report, Rule::BlockingUnderLock), 1, "{:?}", report.violations);
    assert!(report.violations[0].message.contains("sync_all"));

    let report = analyze(
        "crates/core/src/store.rs",
        r#"
fn flush(&self) {
    let writer = self.writer.lock();
    drop(writer);
    file.sync_all().ok();
}
"#,
    );
    assert_eq!(violations(&report, Rule::BlockingUnderLock), 0, "{:?}", report.violations);
}

#[test]
fn blocking_under_lock_catches_same_line_chains() {
    let report = analyze(
        "crates/core/src/server.rs",
        r#"
fn next_job(&self) -> Job {
    let job = rx.lock().recv();
    job.unwrap_or_default()
}
"#,
    );
    assert_eq!(violations(&report, Rule::BlockingUnderLock), 1, "{:?}", report.violations);
}

#[test]
fn blocking_under_lock_allow_requires_and_prints_reason() {
    let report = analyze(
        "crates/core/src/store.rs",
        r#"
fn flush(&self) {
    let writer = self.writer.lock();
    // lint:allow(blocking-under-lock) group-commit fsync: batch absorbs the stall
    file.sync_data().ok();
}
"#,
    );
    assert_eq!(violations(&report, Rule::BlockingUnderLock), 0, "{:?}", report.violations);
    assert_eq!(report.suppressed.len(), 1);
    let rendered = render_report(&report);
    assert!(
        rendered.contains("group-commit fsync: batch absorbs the stall"),
        "reason must be printed:\n{rendered}"
    );
}

// ---- L8 durability-order ----

#[test]
fn durability_order_requires_fsync_before_rename() {
    let report = analyze(
        "crates/core/src/store.rs",
        r#"
fn write_snapshot(&self) -> io::Result<()> {
    f.write_all(&buf)?;
    fs::rename(&tmp, &path)?;
    Ok(())
}
"#,
    );
    assert_eq!(violations(&report, Rule::DurabilityOrder), 1, "{:?}", report.violations);
    assert!(report.violations[0].message.contains("file fsync"));

    let report = analyze(
        "crates/core/src/store.rs",
        r#"
fn write_snapshot(&self) -> io::Result<()> {
    f.write_all(&buf)?;
    f.sync_all()?;
    fs::rename(&tmp, &path)?;
    dir.sync_all()?;
    Ok(())
}
"#,
    );
    assert_eq!(violations(&report, Rule::DurabilityOrder), 0, "{:?}", report.violations);
}

#[test]
fn durability_order_requires_marker_before_segment_deletion() {
    let report = analyze(
        "crates/core/src/store.rs",
        r#"
fn compact_shard(&self, shard: usize) {
    fs::remove_file(segment_path(dir, shard, seq)).ok();
    self.write_compacted_marker(shard).ok();
}
"#,
    );
    assert_eq!(violations(&report, Rule::DurabilityOrder), 1, "{:?}", report.violations);
    assert!(report.violations[0].message.contains("COMPACTED"));

    let report = analyze(
        "crates/core/src/store.rs",
        r#"
fn compact_shard(&self, shard: usize) {
    self.write_compacted_marker(shard).ok();
    fs::remove_file(segment_path(dir, shard, seq)).ok();
}
"#,
    );
    assert_eq!(violations(&report, Rule::DurabilityOrder), 0, "{:?}", report.violations);
}

#[test]
fn durability_order_validates_storage_doc_anchors() {
    let report = analyze(
        "crates/core/src/store.rs",
        r#"
// Atomic publish per docs/STORAGE.md §3.4.
// And a stale one: docs/STORAGE.md §9.9 no longer exists.
fn unrelated() {}
"#,
    );
    assert_eq!(violations(&report, Rule::DurabilityOrder), 1, "{:?}", report.violations);
    assert!(report.violations[0].message.contains("9.9"));
}

#[test]
fn storage_sections_parse_numbered_headings() {
    let sections = storage_sections(
        "# Storage\n## 1. Layout\n### 2.1 Segments\n## Unnumbered\n### 3.4 Compaction\n",
    );
    assert_eq!(sections, vec!["1", "2.1", "3.4"]);
}

// ---- escape-hatch audit ----

#[test]
fn allow_file_prints_its_reason_in_the_report() {
    let report = analyze(
        "crates/sim/src/fixture.rs",
        "// lint:allow-file(money-arith) fixture-wide waiver for synthetic totals\n\
         fn f(a: Credits) -> i128 { a.micro() + 1 }\n",
    );
    assert!(report.passed(), "{:?}", report.violations);
    assert_eq!(report.suppressed.len(), 1);
    assert!(report.suppressed[0].file_wide);
    let rendered = render_report(&report);
    assert!(
        rendered.contains("fixture-wide waiver for synthetic totals"),
        "file-wide reason must be printed:\n{rendered}"
    );
    assert!(rendered.contains("(file-wide)"), "{rendered}");
}

#[test]
fn malformed_directives_fail_the_run() {
    let report = analyze(
        "crates/sim/src/fixture.rs",
        r#"
// lint:allow(no-such-rule) typo'd rule id
fn a() {}
// lint:allow(no-panic)
fn b() {}
"#,
    );
    assert_eq!(report.bad_directives.len(), 2, "{:?}", report.bad_directives);
    assert!(!report.passed());
}

#[test]
fn registry_parse_rejects_missing_table() {
    assert!(NameRegistry::parse("# Observability\nno table here\n").is_err());
}
