//! Source preparation: comment/string masking, test-region detection,
//! and `lint:allow` escape-hatch directives.
//!
//! The analyzer is token-oriented, not a full parser: rules scan a
//! *masked* copy of each file in which every comment and every string,
//! raw-string, and char-literal body has been replaced by spaces (line
//! structure preserved). Operators and identifiers that survive masking
//! are genuinely code, so substring rules cannot be fooled by a `"+"`
//! inside a format string or an `unwrap()` in a doc comment.

use std::collections::BTreeMap;

/// One `// lint:allow(<rule>) <reason>` directive.
#[derive(Clone, Debug)]
pub struct AllowDirective {
    /// Rule id the directive suppresses, e.g. `money-arith`.
    pub rule: String,
    /// Line (1-based) the directive applies to; `None` for file-wide
    /// `lint:allow-file` directives.
    pub line: Option<usize>,
    /// Line the directive itself was written on.
    pub declared_at: usize,
    /// Mandatory justification text.
    pub reason: String,
}

/// A source file prepared for rule scanning.
pub struct SourceFile {
    /// Workspace-relative path (display + scoping).
    pub path: String,
    /// Raw line contents (string literals intact — used by rules that
    /// read names out of literals).
    pub raw_lines: Vec<String>,
    /// Masked line contents (comments and literal bodies blanked).
    pub masked_lines: Vec<String>,
    /// Per line: true when the line sits inside `#[cfg(test)]` /
    /// `#[cfg(loom)]` regions or a `#[test]` function.
    pub in_test: Vec<bool>,
    /// Escape-hatch directives found in the file.
    pub allows: Vec<AllowDirective>,
}

impl SourceFile {
    /// Prepares `source` (with `path` used for display and scoping).
    pub fn parse(path: &str, source: &str) -> SourceFile {
        let masked = mask(source);
        let raw_lines: Vec<String> = source.lines().map(str::to_string).collect();
        let masked_lines: Vec<String> = masked.lines().map(str::to_string).collect();
        let in_test = test_regions(&masked_lines);
        // Directives are parsed from a strings-only mask: a `lint:allow`
        // inside a string literal (a lint self-test fixture, a log
        // message) is data, not a directive.
        let comment_lines: Vec<String> =
            mask_impl(source, true).lines().map(str::to_string).collect();
        let allows = parse_allows(&comment_lines, &masked_lines);
        SourceFile { path: path.to_string(), raw_lines, masked_lines, in_test, allows }
    }

    /// Whether `line` (1-based) is inside test-only code.
    pub fn is_test_line(&self, line: usize) -> bool {
        self.in_test.get(line.wrapping_sub(1)).copied().unwrap_or(false)
    }

    /// The allow directive covering `rule` at `line`, if any.
    pub fn allow_for(&self, rule: &str, line: usize) -> Option<&AllowDirective> {
        self.allows.iter().find(|a| a.rule == rule && (a.line.is_none() || a.line == Some(line)))
    }
}

/// Replaces comment text and string/char-literal bodies with spaces,
/// preserving newlines and column positions. Quote characters are kept
/// so adjacent tokens do not merge.
pub fn mask(source: &str) -> String {
    mask_impl(source, false)
}

/// As [`mask`], but with `keep_comments` the comment text survives and
/// only string/char-literal bodies are blanked — the view directive
/// parsing uses to tell a real `// lint:allow` comment from the same
/// text embedded in a string literal.
fn mask_impl(source: &str, keep_comments: bool) -> String {
    #[derive(PartialEq)]
    enum State {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(usize),
        Char,
    }
    let bytes: Vec<char> = source.chars().collect();
    let mut out = String::with_capacity(source.len());
    let mut state = State::Code;
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        let next = bytes.get(i + 1).copied();
        match state {
            State::Code => match c {
                '/' if next == Some('/') => {
                    state = State::LineComment;
                    let fill = if keep_comments { '/' } else { ' ' };
                    out.push(fill);
                    out.push(fill);
                    i += 2;
                    continue;
                }
                '/' if next == Some('*') => {
                    state = State::BlockComment(1);
                    out.push(if keep_comments { '/' } else { ' ' });
                    out.push(if keep_comments { '*' } else { ' ' });
                    i += 2;
                    continue;
                }
                '"' => {
                    state = State::Str;
                    out.push('"');
                }
                'r' if next == Some('"') || next == Some('#') => {
                    // Possible raw string r"..." / r#"..."#.
                    let mut j = i + 1;
                    let mut hashes = 0;
                    while bytes.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if bytes.get(j) == Some(&'"') {
                        for _ in i..=j {
                            out.push(' ');
                        }
                        i = j + 1;
                        state = State::RawStr(hashes);
                        continue;
                    }
                    out.push(c);
                }
                '\'' => {
                    // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
                    let is_char_literal = match next {
                        Some('\\') => true,
                        Some(n) => bytes.get(i + 2) == Some(&'\'') && n != '\'',
                        None => false,
                    };
                    if is_char_literal {
                        state = State::Char;
                        out.push('\'');
                    } else {
                        out.push('\'');
                    }
                }
                _ => out.push(c),
            },
            State::LineComment => {
                if c == '\n' {
                    state = State::Code;
                    out.push('\n');
                } else {
                    out.push(if keep_comments { c } else { ' ' });
                }
            }
            State::BlockComment(depth) => {
                if c == '\n' {
                    out.push('\n');
                    i += 1;
                    continue;
                }
                if c == '*' && next == Some('/') {
                    out.push(if keep_comments { '*' } else { ' ' });
                    out.push(if keep_comments { '/' } else { ' ' });
                    i += 2;
                    state = if depth == 1 { State::Code } else { State::BlockComment(depth - 1) };
                    continue;
                }
                if c == '/' && next == Some('*') {
                    out.push(if keep_comments { '/' } else { ' ' });
                    out.push(if keep_comments { '*' } else { ' ' });
                    i += 2;
                    state = State::BlockComment(depth + 1);
                    continue;
                }
                out.push(if keep_comments { c } else { ' ' });
            }
            State::Str => match c {
                '\\' => {
                    out.push(' ');
                    if next.is_some() {
                        out.push(' ');
                        i += 2;
                        continue;
                    }
                }
                '"' => {
                    state = State::Code;
                    out.push('"');
                }
                '\n' => out.push('\n'),
                _ => out.push(' '),
            },
            State::RawStr(hashes) => {
                if c == '"' {
                    let mut ok = true;
                    for k in 0..hashes {
                        if bytes.get(i + 1 + k) != Some(&'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        out.push('"');
                        for _ in 0..hashes {
                            out.push(' ');
                        }
                        i += 1 + hashes;
                        state = State::Code;
                        continue;
                    }
                }
                out.push(if c == '\n' { '\n' } else { ' ' });
            }
            State::Char => match c {
                '\\' => {
                    out.push(' ');
                    if next.is_some() {
                        out.push(' ');
                        i += 2;
                        continue;
                    }
                }
                '\'' => {
                    state = State::Code;
                    out.push('\'');
                }
                _ => out.push(' '),
            },
        }
        i += 1;
    }
    out
}

/// Marks the line ranges covered by `#[cfg(test)]` / `#[cfg(loom)]` /
/// `#[test]`-attributed items (and `#[cfg(all(...))]` combinations that
/// mention `test` or `loom`).
fn test_regions(masked_lines: &[String]) -> Vec<bool> {
    let mut in_test = vec![false; masked_lines.len()];
    let joined: Vec<&str> = masked_lines.iter().map(String::as_str).collect();
    for (idx, line) in joined.iter().enumerate() {
        let compact: String = line.chars().filter(|c| !c.is_whitespace()).collect();
        let is_marker = compact.contains("#[cfg(test)]")
            || compact.contains("#[cfg(loom)]")
            || compact.contains("#[test]")
            || (compact.contains("#[cfg(all(")
                && (compact.contains("test") || compact.contains("loom")));
        if !is_marker {
            continue;
        }
        // From the end of this line, find the item's opening `{` (or a
        // terminating `;` for attribute-on-statement forms) and mark
        // through the matching close brace.
        let mut depth: i32 = 0;
        let mut started = false;
        'outer: for (j, body) in joined.iter().enumerate().skip(idx) {
            for ch in body.chars() {
                match ch {
                    '{' => {
                        depth += 1;
                        started = true;
                    }
                    '}' => depth -= 1,
                    ';' if !started => {
                        // `#[cfg(test)] use foo;` — only these lines.
                        for flag in in_test.iter_mut().take(j + 1).skip(idx) {
                            *flag = true;
                        }
                        break 'outer;
                    }
                    _ => {}
                }
            }
            if started && depth <= 0 {
                for flag in in_test.iter_mut().take(j + 1).skip(idx) {
                    *flag = true;
                }
                break;
            }
            if j + 1 == joined.len() {
                for flag in in_test.iter_mut().skip(idx) {
                    *flag = true;
                }
            }
        }
    }
    in_test
}

/// Parses `// lint:allow(<rule>) <reason>` and
/// `// lint:allow-file(<rule>) <reason>` directives.
///
/// A same-line directive covers the code on its own line; a directive
/// alone on a line covers the next line that carries code. The reason
/// text is mandatory — a bare directive is itself reported by the
/// driver as a violation of the escape-hatch contract. `raw_lines` is
/// the strings-only masked view: comment text intact, literals blanked.
fn parse_allows(raw_lines: &[String], masked_lines: &[String]) -> Vec<AllowDirective> {
    let mut out = Vec::new();
    // Map: directive line -> target line (for standalone directives).
    let code_on_line: Vec<bool> =
        masked_lines.iter().map(|l| !l.trim().is_empty() && l.trim() != "}").collect();
    for (i, raw) in raw_lines.iter().enumerate() {
        for (marker, file_wide) in [("lint:allow-file(", true), ("lint:allow(", false)] {
            let Some(pos) = raw.find(marker) else { continue };
            // Must live in a plain `//` comment. Doc comments (`///`,
            // `//!`) don't count — they *describe* the directive syntax.
            let before = &raw[..pos];
            let Some(cpos) = before.find("//") else { continue };
            if matches!(raw[cpos + 2..].chars().next(), Some('/' | '!')) {
                continue;
            }
            let after = &raw[pos + marker.len()..];
            let Some(close) = after.find(')') else { continue };
            let rule = after[..close].trim().to_string();
            let reason = after[close + 1..].trim().trim_start_matches(['-', '—', ':']).trim();
            let line = if file_wide {
                None
            } else if raw[..cpos].trim().is_empty() {
                // Standalone comment: applies to the next code line.
                (i + 1..raw_lines.len()).find(|&j| code_on_line[j]).map(|j| j + 1)
            } else {
                Some(i + 1)
            };
            out.push(AllowDirective { rule, line, declared_at: i + 1, reason: reason.to_string() });
            break;
        }
    }
    out
}

/// Extracts the body text of `fn <name>` from a file, as (first_line,
/// body) — brace-matched on masked lines. Used by the structural L2
/// rule to cross-reference match arms between functions.
pub fn fn_body(file: &SourceFile, name: &str) -> Option<(usize, String)> {
    let needle = format!("fn {name}");
    for (i, line) in file.masked_lines.iter().enumerate() {
        let Some(pos) = line.find(&needle) else { continue };
        // Word boundary after the name.
        let after = &line[pos + needle.len()..];
        if !after.starts_with('(') && !after.starts_with('<') && !after.starts_with(' ') {
            continue;
        }
        let mut depth: i32 = 0;
        let mut started = false;
        let mut body = String::new();
        for cur in &file.masked_lines[i..] {
            for ch in cur.chars() {
                if started && depth > 0 {
                    body.push(ch);
                }
                match ch {
                    '{' => {
                        depth += 1;
                        started = true;
                    }
                    '}' => {
                        depth -= 1;
                        if started && depth == 0 {
                            body.pop();
                            return Some((i + 1, body));
                        }
                    }
                    _ => {}
                }
            }
            body.push('\n');
        }
        return None;
    }
    None
}

/// All `Prefix::Variant` identifiers occurring in `text`, de-duplicated.
pub fn variants_of(text: &str, prefix: &str) -> BTreeMap<String, usize> {
    let needle = format!("{prefix}::");
    let mut out = BTreeMap::new();
    let mut search = 0;
    while let Some(pos) = text[search..].find(&needle) {
        let start = search + pos + needle.len();
        let ident: String =
            text[start..].chars().take_while(|c| c.is_ascii_alphanumeric() || *c == '_').collect();
        if !ident.is_empty() && ident.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
            *out.entry(ident).or_insert(0) += 1;
        }
        search = start;
    }
    out
}
