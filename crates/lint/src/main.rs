//! Workspace driver: walks `crates/*/src` (plus the umbrella `src/`),
//! loads the registered telemetry names from `docs/OBSERVABILITY.md`,
//! runs every rule, prints the report, and exits non-zero on any
//! violation. Invoked as `cargo run -p gridbank-lint` from
//! `scripts/check.sh`.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use gridbank_lint::{render_report, NameRegistry, SourceFile, Workspace};

fn main() -> ExitCode {
    let root = match workspace_root() {
        Ok(root) => root,
        Err(err) => {
            eprintln!("gridbank-lint: {err}");
            return ExitCode::FAILURE;
        }
    };
    let obs_doc = root.join("docs/OBSERVABILITY.md");
    let registry = match std::fs::read_to_string(&obs_doc) {
        Ok(text) => match NameRegistry::parse(&text) {
            Ok(reg) => reg,
            Err(err) => {
                eprintln!("gridbank-lint: {err}");
                return ExitCode::FAILURE;
            }
        },
        Err(err) => {
            eprintln!("gridbank-lint: cannot read {}: {err}", obs_doc.display());
            return ExitCode::FAILURE;
        }
    };

    let mut files = Vec::new();
    let mut paths = collect_sources(&root);
    paths.sort();
    for path in paths {
        let rel = path.strip_prefix(&root).unwrap_or(&path).display().to_string();
        match std::fs::read_to_string(&path) {
            Ok(text) => files.push(SourceFile::parse(&rel, &text)),
            Err(err) => {
                eprintln!("gridbank-lint: cannot read {rel}: {err}");
                return ExitCode::FAILURE;
            }
        }
    }
    if files.is_empty() {
        eprintln!("gridbank-lint: no sources found under {}", root.display());
        return ExitCode::FAILURE;
    }

    let workspace = Workspace { files, registry };
    let report = workspace.analyze();
    print!("{}", render_report(&report));
    if report.rules_exercised() == 0 {
        eprintln!("gridbank-lint: no rule inspected any site — scan scope is broken");
        return ExitCode::FAILURE;
    }
    if report.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Ascends from the current directory to the first `Cargo.toml` that
/// declares `[workspace]`.
fn workspace_root() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let text = std::fs::read_to_string(&manifest)
                .map_err(|e| format!("cannot read {}: {e}", manifest.display()))?;
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err("no workspace Cargo.toml above the current directory".to_string());
        }
    }
}

/// Rust sources in scope: `crates/*/src/**` and the umbrella `src/**`.
/// `vendor/`, `target/`, per-crate `tests/`, `benches/`, and `examples/`
/// stay out — the rules govern production code; integration tests are
/// covered by the in-file `#[cfg(test)]` masking instead.
fn collect_sources(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    if let Ok(entries) = std::fs::read_dir(&crates_dir) {
        for entry in entries.flatten() {
            let src = entry.path().join("src");
            if src.is_dir() {
                walk_rs(&src, &mut out);
            }
        }
    }
    let umbrella = root.join("src");
    if umbrella.is_dir() {
        walk_rs(&umbrella, &mut out);
    }
    out
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            walk_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}
