//! Workspace driver: walks `crates/*/src` (plus the umbrella `src/`,
//! the root `tests/`, and per-crate `tests/`), loads the doc-declared
//! tables the rules check against — telemetry names from
//! `docs/OBSERVABILITY.md`, the lock order from
//! `docs/STATIC_ANALYSIS.md`, section anchors from `docs/STORAGE.md` —
//! runs every rule, prints the report, and exits non-zero on any
//! violation. Invoked as `cargo run -p gridbank-lint` from
//! `scripts/check.sh`.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use gridbank_lint::{
    render_report, storage_sections, LockOrderSpec, NameRegistry, SourceFile, Workspace,
};

fn main() -> ExitCode {
    let root = match workspace_root() {
        Ok(root) => root,
        Err(err) => {
            eprintln!("gridbank-lint: {err}");
            return ExitCode::FAILURE;
        }
    };
    let obs_doc = root.join("docs/OBSERVABILITY.md");
    let registry = match std::fs::read_to_string(&obs_doc) {
        Ok(text) => match NameRegistry::parse(&text) {
            Ok(reg) => reg,
            Err(err) => {
                eprintln!("gridbank-lint: {err}");
                return ExitCode::FAILURE;
            }
        },
        Err(err) => {
            eprintln!("gridbank-lint: cannot read {}: {err}", obs_doc.display());
            return ExitCode::FAILURE;
        }
    };
    let sa_doc = root.join("docs/STATIC_ANALYSIS.md");
    let lock_order = match std::fs::read_to_string(&sa_doc) {
        Ok(text) => match LockOrderSpec::parse(&text) {
            Ok(spec) => spec,
            Err(err) => {
                eprintln!("gridbank-lint: {err}");
                return ExitCode::FAILURE;
            }
        },
        Err(err) => {
            eprintln!("gridbank-lint: cannot read {}: {err}", sa_doc.display());
            return ExitCode::FAILURE;
        }
    };
    let storage_doc = root.join("docs/STORAGE.md");
    let sections = match std::fs::read_to_string(&storage_doc) {
        Ok(text) => storage_sections(&text),
        Err(err) => {
            eprintln!("gridbank-lint: cannot read {}: {err}", storage_doc.display());
            return ExitCode::FAILURE;
        }
    };
    if sections.is_empty() {
        eprintln!("gridbank-lint: docs/STORAGE.md has no numbered headings — L8 anchors broken");
        return ExitCode::FAILURE;
    }

    let mut files = Vec::new();
    let mut paths = collect_sources(&root);
    paths.sort();
    for path in paths {
        let rel = path.strip_prefix(&root).unwrap_or(&path).display().to_string();
        match std::fs::read_to_string(&path) {
            Ok(text) => files.push(SourceFile::parse(&rel, &text)),
            Err(err) => {
                eprintln!("gridbank-lint: cannot read {rel}: {err}");
                return ExitCode::FAILURE;
            }
        }
    }
    if files.is_empty() {
        eprintln!("gridbank-lint: no sources found under {}", root.display());
        return ExitCode::FAILURE;
    }

    let workspace = Workspace { files, registry, lock_order, storage_sections: sections };
    let report = workspace.analyze();
    print!("{}", render_report(&report));
    if report.rules_exercised() == 0 {
        eprintln!("gridbank-lint: no rule inspected any site — scan scope is broken");
        return ExitCode::FAILURE;
    }
    if report.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Ascends from the current directory to the first `Cargo.toml` that
/// declares `[workspace]`.
fn workspace_root() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let text = std::fs::read_to_string(&manifest)
                .map_err(|e| format!("cannot read {}: {e}", manifest.display()))?;
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err("no workspace Cargo.toml above the current directory".to_string());
        }
    }
}

/// Rust sources in scope: `crates/*/src/**`, the umbrella `src/**`,
/// the root `tests/**`, and per-crate `tests/**`. `vendor/`, `target/`,
/// `benches/`, and `examples/` stay out — vendored substitutes mirror
/// upstream code we don't own, and bench/example code is measured, not
/// shipped. Integration tests ARE in scope: a test that parses Display
/// text or does bare money arithmetic rots just like production code.
fn collect_sources(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    if let Ok(entries) = std::fs::read_dir(&crates_dir) {
        for entry in entries.flatten() {
            for sub in ["src", "tests"] {
                let dir = entry.path().join(sub);
                if dir.is_dir() {
                    walk_rs(&dir, &mut out);
                }
            }
        }
    }
    for sub in ["src", "tests"] {
        let dir = root.join(sub);
        if dir.is_dir() {
            walk_rs(&dir, &mut out);
        }
    }
    out
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            walk_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}
