//! The eight domain rules. Each operates on masked source (comments and
//! literal bodies blanked — see [`crate::source::mask`]) so substring
//! matching cannot be fooled by strings or docs, and skips
//! `#[cfg(test)]` / `#[cfg(loom)]` regions.

use crate::source::{fn_body, variants_of, SourceFile};
use crate::{LockClass, LockOrderSpec, NameRegistry, Report, Rule};

/// Tokens that put a line in "money context" for L1. `Credits` is the
/// currency type; `.micro()` / `.whole_gd()` expose its raw integers;
/// `MICRO_PER_GD` is the fixed-point scale.
const MONEY_TOKENS: [&str; 4] = ["Credits", ".micro()", ".whole_gd()", "MICRO_PER_GD"];

/// Cast targets that are always-widening from the `i128` money
/// representation, hence lossless.
const WIDENING_TARGETS: [&str; 2] = ["i128", "u128"];

/// L1 `money-arith`: in money context, arithmetic must go through the
/// `checked_*` / `saturating_*` / `mul_ratio` helpers on `Credits`, and
/// the only sanctioned money→integer conversion is
/// `Credits::metric_micro()`. Bare `+ - * / %` operators and lossy `as`
/// casts are flagged.
pub fn money_arith(file: &SourceFile, report: &mut Report) {
    for (idx, line) in file.masked_lines.iter().enumerate() {
        let lineno = idx + 1;
        if file.is_test_line(lineno) {
            continue;
        }
        if !MONEY_TOKENS.iter().any(|t| line.contains(t)) {
            continue;
        }
        report.add_sites(Rule::MoneyArith, 1);
        for (col, target) in casts(line) {
            if WIDENING_TARGETS.contains(&target.as_str()) {
                continue;
            }
            let _ = col;
            report.flag(
                Rule::MoneyArith,
                file,
                lineno,
                format!(
                    "lossy `as {target}` cast in money context — use \
                     Credits::metric_micro() for telemetry or a checked conversion"
                ),
            );
        }
        for op in bare_operators(line) {
            report.flag(
                Rule::MoneyArith,
                file,
                lineno,
                format!(
                    "bare `{op}` arithmetic in money context — use checked_add/checked_sub/\
                     checked_mul/mul_ratio (or saturating_add for metrics)"
                ),
            );
        }
    }
}

/// Every `expr as Type` cast on the line, as (column, target-type).
fn casts(line: &str) -> Vec<(usize, String)> {
    let chars: Vec<char> = line.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i + 4 <= chars.len() {
        // Match the keyword `as` with identifier boundaries either side.
        if chars[i] == 'a'
            && chars.get(i + 1) == Some(&'s')
            && (i == 0 || !is_ident(chars[i - 1]))
            && chars.get(i + 2).is_some_and(|c| c.is_whitespace())
        {
            // Require something cast-able before it (not `as` in a word).
            let prev = chars[..i].iter().rev().find(|c| !c.is_whitespace());
            let castable = matches!(prev, Some(&c) if is_ident(c) || c == ')' || c == ']');
            if castable {
                let mut j = i + 2;
                while j < chars.len() && chars[j].is_whitespace() {
                    j += 1;
                }
                let target: String = chars[j..].iter().take_while(|c| is_ident(**c)).collect();
                if !target.is_empty() {
                    out.push((i, target));
                }
            }
            i += 2;
            continue;
        }
        i += 1;
    }
    out
}

/// Binary `+ - * / %` operators (and their compound-assign forms) on a
/// masked line, excluding `->`, unary minus/deref, and references.
fn bare_operators(line: &str) -> Vec<char> {
    let chars: Vec<char> = line.chars().collect();
    let mut out = Vec::new();
    for (i, &c) in chars.iter().enumerate() {
        if !matches!(c, '+' | '-' | '*' | '/' | '%') {
            continue;
        }
        let next = chars.get(i + 1).copied();
        // `->` arrow, `//` (only in masked residue), doubled symbols.
        if c == '-' && next == Some('>') {
            continue;
        }
        if (c == '/' && next == Some('/')) || (i > 0 && chars[i - 1] == '/' && c == '/') {
            continue;
        }
        // Binary operators need an operand on the left: identifier tail,
        // close paren/bracket, or a `?` propagation. Anything else means
        // unary minus, deref `*`, or a pattern position.
        let prev = chars[..i].iter().rev().find(|ch| !ch.is_whitespace());
        let has_left_operand =
            matches!(prev, Some(p) if is_ident(*p) || matches!(p, ')' | ']' | '?' | '"'));
        if !has_left_operand {
            continue;
        }
        // `&mut *x` / `ref mut` style derefs: previous token is a keyword.
        if c == '*' {
            let word = prev_word(&chars, i);
            if matches!(word.as_str(), "mut" | "ref" | "return" | "in" | "as" | "else") {
                continue;
            }
        }
        // The right side must be an operand too (filters `x <-` typos and
        // stray punctuation in masked residue).
        let after = chars[i + 1..].iter().find(|ch| !ch.is_whitespace());
        let rhs_start = if next == Some('=') {
            // Compound assign `+=` — arithmetic all the same.
            chars[i + 2..].iter().find(|ch| !ch.is_whitespace())
        } else {
            after
        };
        let has_right_operand = matches!(
            rhs_start,
            Some(r) if is_ident(*r) || matches!(r, '(' | '-' | '*' | '&' | '"' | '\'')
        );
        if !has_right_operand {
            continue;
        }
        out.push(c);
    }
    out
}

fn prev_word(chars: &[char], before: usize) -> String {
    let mut end = before;
    while end > 0 && chars[end - 1].is_whitespace() {
        end -= 1;
    }
    let mut start = end;
    while start > 0 && is_ident(chars[start - 1]) {
        start -= 1;
    }
    chars[start..end].iter().collect()
}

fn is_ident(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Paths whose non-test code must never panic: the server request path,
/// wire codecs, and journal replay (L3).
const NO_PANIC_SCOPE: [&str; 3] = ["crates/net/src/", "crates/rur/src/", "crates/core/src/"];

const PANIC_PATTERNS: [&str; 6] =
    [".unwrap()", ".expect(", "panic!", "unreachable!", "todo!", "unimplemented!"];

/// L3 `no-panic`: inside [`NO_PANIC_SCOPE`], production code returns
/// typed errors (`NetError`, `DbError`, `BankError`, `RurError`) —
/// never `unwrap`/`expect`/`panic!`.
pub fn no_panic(file: &SourceFile, report: &mut Report) {
    if !NO_PANIC_SCOPE.iter().any(|p| file.path.contains(p)) {
        return;
    }
    report.add_sites(Rule::NoPanic, 1); // one site per in-scope file
    for (idx, line) in file.masked_lines.iter().enumerate() {
        let lineno = idx + 1;
        if file.is_test_line(lineno) {
            continue;
        }
        for pat in PANIC_PATTERNS {
            if let Some(pos) = line.find(pat) {
                // `panic!` etc. must not be the tail of a longer ident
                // (`.unwrap()`/`.expect(` are dot-anchored already).
                if !pat.starts_with('.') {
                    let prior = line[..pos].chars().next_back();
                    if prior.is_some_and(is_ident) {
                        continue;
                    }
                }
                report.flag(
                    Rule::NoPanic,
                    file,
                    lineno,
                    format!(
                        "`{pat}` in a panic-free path (server request / codec / replay) — \
                         return a typed error instead"
                    ),
                );
            }
        }
    }
}

/// String methods that, applied to Display text, constitute parsing (L4).
const PARSE_SINKS: [&str; 10] = [
    "contains(",
    "split(",
    "splitn(",
    "rsplit(",
    "strip_prefix(",
    "strip_suffix(",
    "find(",
    "starts_with(",
    "ends_with(",
    "parse",
];

/// Receiver chain segments that mark the value as human-readable error
/// text rather than a structured field.
const DISPLAY_SOURCES: [&str; 3] = ["message", "msg", "to_string()"];

/// L4 `display-parse`: error frames carry a structured `detail` field;
/// matching on rendered `message` text (or any `to_string()` output)
/// couples callers to wording and breaks silently when copy changes.
pub fn display_parse(file: &SourceFile, report: &mut Report) {
    for (idx, line) in file.masked_lines.iter().enumerate() {
        let lineno = idx + 1;
        if file.is_test_line(lineno) {
            continue;
        }
        for sink in PARSE_SINKS {
            let needle = format!(".{sink}");
            let mut from = 0;
            while let Some(pos) = line[from..].find(&needle) {
                let at = from + pos;
                from = at + needle.len();
                // `parse` must be the whole method name (`.parse()` or
                // `.parse::<`), not a prefix of e.g. `.parse_config(`.
                if sink == "parse" {
                    let tail = &line[at + needle.len()..];
                    if !(tail.starts_with("()") || tail.starts_with("::<")) {
                        continue;
                    }
                }
                report.add_sites(Rule::DisplayParse, 1);
                let chain = receiver_chain(line, at);
                if chain.iter().any(|seg| DISPLAY_SOURCES.contains(&seg.as_str())) {
                    report.flag(
                        Rule::DisplayParse,
                        file,
                        lineno,
                        format!(
                            "parsing Display text via `.{sink}` on `{}` — match on the \
                             structured error detail field instead",
                            chain.join(".")
                        ),
                    );
                }
            }
        }
    }
}

/// The dotted receiver chain ending at byte offset `end` (exclusive),
/// e.g. for `e.message.contains(` with `end` at the final `.`, returns
/// `["e", "message"]`.
fn receiver_chain(line: &str, end: usize) -> Vec<String> {
    let chars: Vec<char> = line[..end].chars().collect();
    let mut i = chars.len();
    while i > 0 {
        let c = chars[i - 1];
        if is_ident(c) || matches!(c, '.' | '(' | ')' | '?') {
            i -= 1;
        } else {
            break;
        }
    }
    let chain: String = chars[i..].iter().collect();
    chain.split('.').map(|s| s.trim_matches('?').to_string()).filter(|s| !s.is_empty()).collect()
}

/// Telemetry call markers whose first string literal is a metric name.
const METRIC_MARKERS: [&str; 5] = [
    "gridbank_obs::count(",
    "gridbank_obs::observe(",
    "gridbank_obs::gauge_set(",
    ".record_named(",
    ".record_named_label(",
];

/// Span constructors whose first string literal is the component.
const SPAN_MARKERS: [&str; 2] = ["gridbank_obs::span(", "gridbank_obs::span_under("];

/// L5 `metric-prefix`: every literal metric name must start with a
/// registered prefix and every literal span component must be a
/// registered component (table in docs/OBSERVABILITY.md). Dynamic names
/// are out of static reach and skipped.
pub fn metric_prefix(file: &SourceFile, registry: &NameRegistry, report: &mut Report) {
    if file.path.contains("crates/obs/src/") {
        // The obs crate is the plumbing itself; names pass through it as
        // parameters, not literals it owns.
        return;
    }
    let masked_text = file.masked_lines.join("\n");
    // Masking preserves the *char* structure (one output char per input
    // char), so char-indexed views of masked and raw text stay aligned
    // even around multi-byte characters in comments.
    let masked: Vec<char> = masked_text.chars().collect();
    let raw: Vec<char> = file.raw_lines.join("\n").chars().collect();
    for (markers, is_span) in [(&METRIC_MARKERS[..], false), (&SPAN_MARKERS[..], true)] {
        for marker in markers {
            let mut from = 0;
            while let Some(pos) = masked_text[from..].find(marker) {
                let at = from + pos;
                from = at + marker.len();
                let lineno = masked_text[..at].matches('\n').count() + 1;
                if file.is_test_line(lineno) {
                    continue;
                }
                let open = masked_text[..at + marker.len()].chars().count() - 1;
                let Some(close) = match_paren(&masked, open) else { continue };
                let Some(name) = first_literal(&masked, &raw, open + 1, close) else {
                    continue; // dynamic name — not statically checkable
                };
                report.add_sites(Rule::MetricPrefix, 1);
                let ok = if is_span { registry.span_ok(&name) } else { registry.metric_ok(&name) };
                if !ok {
                    let kind = if is_span { "span component" } else { "metric name" };
                    let want = if is_span {
                        format!("registered components: {}", registry.span_components.join(", "))
                    } else {
                        format!("registered prefixes: {}", registry.metric_prefixes.join(" "))
                    };
                    report.flag(
                        Rule::MetricPrefix,
                        file,
                        lineno,
                        format!(
                            "{kind} \"{name}\" is not in docs/OBSERVABILITY.md ({want}) — \
                             register it there or fix the name"
                        ),
                    );
                }
            }
        }
    }
}

/// Char index of the `)` matching the `(` at `open`, if balanced.
fn match_paren(masked: &[char], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (off, c) in masked[open..].iter().enumerate() {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(open + off);
                }
            }
            _ => {}
        }
    }
    None
}

/// First `"..."` literal between char indices `start..end`, read from
/// the raw text (masking keeps the quotes but blanks the contents).
fn first_literal(masked: &[char], raw: &[char], start: usize, end: usize) -> Option<String> {
    let open = masked[start..end].iter().position(|&c| c == '"')? + start;
    let close = masked[open + 1..end].iter().position(|&c| c == '"')? + open + 1;
    Some(raw[open + 1..close].iter().collect())
}

/// L2 `idem-stamp`: structural checks tying the RPC surface to the
/// idempotency journal. All four must hold:
///
/// 1. `BankRequest::is_mutating` in `crates/core/src/api.rs` classifies
///    every variant explicitly — no `_ =>` wildcard, and every variant
///    named in `variant_name` appears.
/// 2. `dispatch` in `crates/core/src/server.rs` has no wildcard arm.
/// 3. `dispatch` is reached only through `handle_keyed`, whose body
///    performs the idempotency record/lookup pairing.
/// 4. Every non-test `CommitRows { .. }` literal that carries a
///    `transfer:` row explicitly binds `idem:` (same commit batch), so a
///    transfer can never be journalled without its idempotency stamp.
pub fn idem_stamp(files: &[SourceFile], report: &mut Report) {
    let api = files.iter().find(|f| f.path.ends_with("crates/core/src/api.rs"));
    let server = files.iter().find(|f| f.path.ends_with("crates/core/src/server.rs"));

    if let Some(api) = api {
        check_is_mutating(api, report);
    }
    if let Some(server) = server {
        check_dispatch(server, api, report);
    }
    for file in files {
        if file.path.contains("crates/core/src/") {
            check_commit_rows(file, report);
        }
    }
}

fn check_is_mutating(api: &SourceFile, report: &mut Report) {
    let Some((names_line, names_body)) = fn_body(api, "variant_name") else {
        report.flag(
            Rule::IdemStamp,
            api,
            1,
            "cannot find fn variant_name in api.rs — idem-stamp coverage check lost".into(),
        );
        return;
    };
    let canonical = variants_of(&names_body, "BankRequest");
    report.add_sites(Rule::IdemStamp, canonical.len());

    let Some((mut_line, mut_body)) = fn_body(api, "is_mutating") else {
        report.flag(
            Rule::IdemStamp,
            api,
            names_line,
            "BankRequest has no is_mutating classifier".into(),
        );
        return;
    };
    if has_wildcard_arm(&mut_body) {
        report.flag(
            Rule::IdemStamp,
            api,
            mut_line,
            "is_mutating uses a `_ =>` wildcard — new request variants would silently \
             default; classify every variant explicitly"
                .into(),
        );
    }
    let classified = variants_of(&mut_body, "BankRequest");
    for variant in canonical.keys() {
        if !classified.contains_key(variant) {
            report.flag(
                Rule::IdemStamp,
                api,
                mut_line,
                format!("is_mutating does not classify BankRequest::{variant}"),
            );
        }
    }
}

fn check_dispatch(server: &SourceFile, api: Option<&SourceFile>, report: &mut Report) {
    let Some((dispatch_line, dispatch_body)) = fn_body(server, "dispatch") else {
        return;
    };
    report.add_sites(Rule::IdemStamp, 1);
    if has_wildcard_arm(&dispatch_body) {
        report.flag(
            Rule::IdemStamp,
            server,
            dispatch_line,
            "dispatch uses a `_ =>` wildcard arm — every request variant must be \
             routed explicitly so mutations cannot bypass idempotency stamping"
                .into(),
        );
    }
    if let Some(api) = api {
        if let Some((_, names_body)) = fn_body(api, "variant_name") {
            let canonical = variants_of(&names_body, "BankRequest");
            let dispatched = variants_of(&dispatch_body, "BankRequest");
            for variant in canonical.keys() {
                if !dispatched.contains_key(variant) {
                    report.flag(
                        Rule::IdemStamp,
                        server,
                        dispatch_line,
                        format!("dispatch has no arm for BankRequest::{variant}"),
                    );
                }
            }
        }
    }

    // dispatch must be called only from handle_keyed, which owns the
    // idempotency record/lookup protocol.
    let Some((hk_line, hk_body)) = fn_body(server, "handle_keyed") else {
        report.flag(
            Rule::IdemStamp,
            server,
            dispatch_line,
            "no handle_keyed wrapper found — dispatch must run under the idempotency guard".into(),
        );
        return;
    };
    report.add_sites(Rule::IdemStamp, 1);
    for miss in ["idem_record", "idem_lookup"] {
        if !hk_body.contains(miss) {
            report.flag(
                Rule::IdemStamp,
                server,
                hk_line,
                format!("handle_keyed does not call {miss} — idempotency protocol incomplete"),
            );
        }
    }
    let hk_extent = line_extent(server, hk_line);
    let dispatch_extent = line_extent(server, dispatch_line);
    for (idx, line) in server.masked_lines.iter().enumerate() {
        let lineno = idx + 1;
        if !line.contains(".dispatch(") || server.is_test_line(lineno) {
            continue;
        }
        let within =
            |range: &Option<(usize, usize)>| range.is_some_and(|(s, e)| lineno >= s && lineno <= e);
        if within(&hk_extent) || within(&dispatch_extent) {
            continue;
        }
        report.flag(
            Rule::IdemStamp,
            server,
            lineno,
            "dispatch called outside handle_keyed — this bypasses idempotency \
             dedup and in-flight keying"
                .into(),
        );
    }
}

/// Line range (1-based, inclusive) of the brace-matched item starting at
/// `start_line`.
fn line_extent(file: &SourceFile, start_line: usize) -> Option<(usize, usize)> {
    let mut depth: i32 = 0;
    let mut started = false;
    for (idx, line) in file.masked_lines.iter().enumerate().skip(start_line - 1) {
        for c in line.chars() {
            match c {
                '{' => {
                    depth += 1;
                    started = true;
                }
                '}' => depth -= 1,
                _ => {}
            }
        }
        if started && depth <= 0 {
            return Some((start_line, idx + 1));
        }
    }
    None
}

fn has_wildcard_arm(body: &str) -> bool {
    let compact: String = body.chars().filter(|c| !c.is_whitespace()).collect();
    compact.contains("_=>")
}

fn check_commit_rows(file: &SourceFile, report: &mut Report) {
    for (idx, line) in file.masked_lines.iter().enumerate() {
        let lineno = idx + 1;
        // `struct CommitRows {` is the definition and `-> CommitRows {`
        // a fn signature — only brace literals are commit batches.
        if file.is_test_line(lineno) || line.contains("struct") || line.contains("->") {
            continue;
        }
        let Some(pos) = line.find("CommitRows {") else { continue };
        report.add_sites(Rule::IdemStamp, 1);
        // Brace-match the literal body across lines.
        let open_col = pos + "CommitRows ".len();
        let body = braced_text(file, idx, open_col);
        if body.contains("..") {
            continue; // struct-update syntax: fields may come from the base
        }
        let has_transfer = body.contains("transfer:")
            && !body.lines().any(|l| l.trim_start().starts_with("transfer:") && l.contains("None"));
        if has_transfer && !body.contains("idem:") {
            report.flag(
                Rule::IdemStamp,
                file,
                lineno,
                "CommitRows carries a transfer row without binding `idem:` — the \
                 idempotency stamp must land in the same commit batch as the transfer"
                    .into(),
            );
        }
    }
}

/// Text inside the brace opening at (line index, column), braces matched.
fn braced_text(file: &SourceFile, line_idx: usize, col: usize) -> String {
    let mut depth: i32 = 0;
    let mut out = String::new();
    for (idx, line) in file.masked_lines.iter().enumerate().skip(line_idx) {
        let start = if idx == line_idx { col } else { 0 };
        for c in line.chars().skip(start) {
            match c {
                '{' => {
                    depth += 1;
                    if depth == 1 {
                        continue;
                    }
                }
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        return out;
                    }
                }
                _ => {}
            }
            if depth >= 1 {
                out.push(c);
            }
        }
        out.push('\n');
    }
    out
}

// ---------------------------------------------------------------------------
// L6 lock-order + L7 blocking-under-lock (one linear pass per file)
// ---------------------------------------------------------------------------

/// Zero-argument acquisition methods of `Mutex`/`RwLock`. The io-trait
/// `.read(buf)` / `.write(buf)` calls take arguments and never match.
const LOCK_CALLS: [&str; 3] = [".lock()", ".read()", ".write()"];

/// Calls that block the thread: filesystem IO, fsync, sockets, channel
/// receives, sleeps. `.wait(` is deliberately absent — `Condvar::wait`
/// releases its mutex while parked, so it is not "blocking under a lock".
const BLOCKING_PATTERNS: [&str; 11] = [
    ".sync_all(",
    ".sync_data(",
    "File::",
    "OpenOptions",
    "fs::",
    "std::net",
    "TcpStream",
    ".recv()",
    ".recv_timeout(",
    "thread::sleep",
    "::sleep(",
];

/// A lock guard bound to a name, still live.
struct Held {
    name: String,
    rank: u16,
    class: &'static str,
    receiver: String,
    /// Brace depth at the start of the binding line; the guard dies when
    /// the running depth drops below this.
    depth: i32,
    line: usize,
}

/// L6 + L7. Walks the file once, tracking named guard bindings
/// (`let g = x.lock();`) plus their scopes, and checks every lock
/// acquisition against the declared order and every blocking call
/// against the currently-held set. See docs/STATIC_ANALYSIS.md for the
/// model and its honest limitations.
pub fn lock_discipline(file: &SourceFile, spec: &LockOrderSpec, report: &mut Report) {
    let classes = spec.classes_for(&file.path);
    if classes.is_empty() {
        return;
    }
    let mut held: Vec<Held> = Vec::new();
    let mut depth: i32 = 0;
    for (idx, line) in file.masked_lines.iter().enumerate() {
        let lineno = idx + 1;
        let in_test = file.in_test.get(idx).copied().unwrap_or(false);
        if !in_test {
            // -- acquisitions ------------------------------------------------
            for (at, call) in lock_calls_on(line) {
                report.add_sites(Rule::LockOrder, 1);
                let receiver = lock_receiver(file, idx, at);
                let hits = classify(&classes, &receiver);
                let class = match hits.as_slice() {
                    [] => {
                        report.flag(
                            Rule::LockOrder,
                            file,
                            lineno,
                            format!(
                                "lock acquisition on `{receiver}` matches no class in the \
                                 declared lock-order table (docs/STATIC_ANALYSIS.md §L6) — \
                                 declare it with a rank before taking it"
                            ),
                        );
                        continue;
                    }
                    [one] => *one,
                    many => {
                        let names: Vec<&str> = many.iter().map(|c| c.name.as_str()).collect();
                        report.flag(
                            Rule::LockOrder,
                            file,
                            lineno,
                            format!(
                                "lock receiver `{receiver}` is ambiguous between declared \
                                 classes {} — tighten the table patterns",
                                names.join(", ")
                            ),
                        );
                        continue;
                    }
                };
                if let Some(worst) = held.iter().max_by_key(|h| h.rank) {
                    if class.rank < worst.rank {
                        report.flag(
                            Rule::LockOrder,
                            file,
                            lineno,
                            format!(
                                "acquires {} (rank {}) while holding {} (rank {}, taken \
                                 line {}) — violates the declared lock order \
                                 (docs/STATIC_ANALYSIS.md §L6)",
                                class.name, class.rank, worst.class, worst.rank, worst.line
                            ),
                        );
                    } else if class.rank == worst.rank {
                        if receiver == worst.receiver {
                            report.flag(
                                Rule::LockOrder,
                                file,
                                lineno,
                                format!(
                                    "re-acquires `{receiver}` while the guard from line {} \
                                     is still held — self-deadlock on a non-reentrant lock",
                                    worst.line
                                ),
                            );
                        } else if !class.ascending_index {
                            report.flag(
                                Rule::LockOrder,
                                file,
                                lineno,
                                format!(
                                    "holds two {} locks at once but the class is not \
                                     marked ascending-index in the declared table",
                                    class.name
                                ),
                            );
                        } else if !ascending_witness(file, idx) {
                            report.flag(
                                Rule::LockOrder,
                                file,
                                lineno,
                                format!(
                                    "multi-acquire of {} locks without a visible \
                                     ascending-index sort — order the pair with \
                                     `let (first, second) = if a < b ...` before locking",
                                    class.name
                                ),
                            );
                        }
                    }
                }
                if let Some(name) = held_binding(line, at + call.len()) {
                    // A rebinding replaces the old guard (drop-then-assign
                    // semantics are close enough for a lexical model).
                    held.retain(|h| h.name != name);
                    held.push(Held {
                        name,
                        rank: class.rank,
                        class: leak(&class.name),
                        receiver: receiver.clone(),
                        depth,
                        line: lineno,
                    });
                }
            }
            // -- blocking calls ---------------------------------------------
            let blocking: Vec<(usize, &str)> = BLOCKING_PATTERNS
                .iter()
                .filter_map(|p| line.find(p).map(|pos| (pos, *p)))
                .collect();
            if let Some(&(first_pos, pat)) = blocking.iter().min_by_key(|(pos, _)| *pos) {
                report.add_sites(Rule::BlockingUnderLock, 1);
                let lock_chain = lock_calls_on(line).into_iter().any(|(pos, _)| pos < first_pos);
                if lock_chain || !held.is_empty() {
                    let under = if lock_chain {
                        "a lock acquired earlier on the same line".to_string()
                    } else {
                        let h = held.iter().max_by_key(|h| h.line).unwrap();
                        format!("{} (held since line {})", h.class, h.line)
                    };
                    report.flag(
                        Rule::BlockingUnderLock,
                        file,
                        lineno,
                        format!(
                            "blocking call `{pat}` under {under} — move the IO off the \
                             locked path or annotate the audited exception \
                             (docs/STATIC_ANALYSIS.md §L7)"
                        ),
                    );
                }
            }
            // -- explicit releases ------------------------------------------
            for name in drop_calls_on(line) {
                held.retain(|h| h.name != name);
            }
        }
        // Brace depth is tracked on every line (test regions included) so
        // guard scopes survive interleaved cfg blocks.
        for c in line.chars() {
            match c {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
        }
        held.retain(|h| depth >= h.depth);
    }
}

/// All lock-call occurrences on one masked line: (byte offset, pattern).
fn lock_calls_on(line: &str) -> Vec<(usize, &'static str)> {
    let mut out = Vec::new();
    for call in LOCK_CALLS {
        let mut from = 0;
        while let Some(pos) = line[from..].find(call) {
            out.push((from + pos, call));
            from += pos + call.len();
        }
    }
    out.sort_unstable();
    out
}

/// The receiver chain feeding a lock call, walked backward from the `.`
/// at `at`, joining rustfmt continuation lines (`*self` / `.by_cert` /
/// `.read()`). Accepts identifier chars plus `.?`, swallowing balanced
/// `[...]` / `(...)` groups whole (so `shards[account_shard(&r.id)]`
/// stays one receiver); an unmatched opener or interior whitespace
/// terminates the chain.
fn lock_receiver(file: &SourceFile, line_idx: usize, at: usize) -> String {
    let mut out: Vec<char> = Vec::new();
    let mut li = line_idx;
    let mut prefix: Vec<char> = file.masked_lines[li][..at].chars().collect();
    let mut hops = 0;
    // Unmatched closers seen so far — while positive we are inside an
    // index/call argument and accept any character.
    let mut nest: u32 = 0;
    loop {
        let mut jumped = false;
        while let Some(&c) = prefix.last() {
            if matches!(c, ')' | ']') {
                nest += 1;
                out.push(c);
                prefix.pop();
            } else if matches!(c, '(' | '[') {
                if nest == 0 {
                    return out.iter().rev().collect(); // enclosing call/index
                }
                nest -= 1;
                out.push(c);
                prefix.pop();
            } else if nest > 0 || c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | '?') {
                if c.is_whitespace() && prefix.iter().all(|ch| ch.is_whitespace()) {
                    jumped = true;
                    break;
                }
                out.push(c);
                prefix.pop();
            } else if c.is_whitespace() && prefix.iter().all(|ch| ch.is_whitespace()) {
                jumped = true;
                break;
            } else {
                return out.iter().rev().collect();
            }
        }
        if !jumped && prefix.is_empty() {
            jumped = true; // chain ran to column 0 — may continue above
        }
        hops += 1;
        if !jumped || hops > 6 || li == 0 {
            return out.iter().rev().collect();
        }
        li -= 1;
        while li > 0 && file.masked_lines[li].trim().is_empty() {
            li -= 1;
        }
        prefix = file.masked_lines[li].trim_end().chars().collect();
    }
}

/// Declared classes whose receiver patterns match, deduped by rank.
fn classify<'a>(classes: &[&'a LockClass], receiver: &str) -> Vec<&'a LockClass> {
    let mut hits: Vec<&LockClass> = Vec::new();
    for class in classes {
        let matched = class.patterns.iter().any(|pat| {
            if pat.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
                ident_bounded(receiver, pat)
            } else {
                receiver.contains(pat.as_str())
            }
        });
        if matched && !hits.iter().any(|h| h.rank == class.rank) {
            hits.push(class);
        }
    }
    hits
}

/// Does `needle` occur in `haystack` on identifier boundaries?
fn ident_bounded(haystack: &str, needle: &str) -> bool {
    let bytes = haystack.as_bytes();
    let mut from = 0;
    while let Some(pos) = haystack[from..].find(needle) {
        let start = from + pos;
        let end = start + needle.len();
        let before_ok = start == 0 || !is_ident(bytes[start - 1] as char);
        let after_ok = end >= haystack.len() || !is_ident(bytes[end] as char);
        if before_ok && after_ok {
            return true;
        }
        from = start + 1;
    }
    false
}

/// If the acquisition at the end of this line is a guard *binding*
/// (`let [mut] name = chain.lock();` or `name = chain.lock();`), the
/// bound name. Deref/ref copies (`let x = *c.lock();`) and `_` bindings
/// drop the guard at the semicolon and are transient.
fn held_binding(line: &str, after: usize) -> Option<String> {
    if line[after..].trim() != ";" {
        return None;
    }
    let t = line.trim_start();
    let rest = t.strip_prefix("let ").unwrap_or(t);
    let rest = rest.strip_prefix("mut ").unwrap_or(rest);
    let name: String = rest.chars().take_while(|c| is_ident(*c)).collect();
    if name.is_empty() || name == "_" {
        return None;
    }
    let after_name = rest[name.len()..].trim_start();
    if !after_name.starts_with('=') || after_name.starts_with("==") {
        return None;
    }
    let rhs = after_name[1..].trim_start();
    if rhs.starts_with('*') || rhs.starts_with('&') {
        return None;
    }
    Some(name)
}

/// Names released by `drop(name)` calls on this line.
fn drop_calls_on(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = line[from..].find("drop(") {
        let at = from + pos;
        let boundary = at == 0 || !is_ident(line.as_bytes()[at - 1] as char);
        from = at + "drop(".len();
        if !boundary {
            continue;
        }
        let name: String = line[from..].chars().take_while(|c| is_ident(*c)).collect();
        if !name.is_empty() {
            out.push(name);
        }
    }
    out
}

/// Does the enclosing function order the pair before locking? Looks for
/// the idiom `let (first, second) = if a < b { ... }` between the
/// nearest preceding `fn ` line and the acquisition.
fn ascending_witness(file: &SourceFile, line_idx: usize) -> bool {
    let Some(start) = file.masked_lines[..=line_idx].iter().rposition(|l| l.contains("fn ")) else {
        return false;
    };
    let compact: String = file.masked_lines[start..=line_idx]
        .iter()
        .flat_map(|l| l.chars())
        .filter(|c| !c.is_whitespace())
        .collect();
    compact.contains(")=if") && compact.contains('<')
}

/// Class names live as long as the report; the set is tiny and fixed per
/// run, so leaking the handful of strings is cheaper than an arena.
fn leak(name: &str) -> &'static str {
    Box::leak(name.to_string().into_boxed_str())
}

// ---------------------------------------------------------------------------
// L8 durability-order
// ---------------------------------------------------------------------------

/// L8: the storage engine's atomic-publish paths must sequence
/// write → fsync → rename → dir-fsync, the COMPACTED marker must land
/// before any segment deletion, and every `STORAGE.md §n` citation in
/// the file must resolve to a real heading. Scoped to store.rs.
pub fn durability_order(file: &SourceFile, sections: &[String], report: &mut Report) {
    if !file.path.ends_with("core/src/store.rs") {
        return;
    }
    ordered_markers(
        file,
        "write_snapshot",
        &[
            (".write_all(", "payload write"),
            (".sync_all(", "file fsync"),
            ("fs::rename(", "atomic rename"),
            (".sync_all(", "directory fsync"),
        ],
        report,
    );
    ordered_markers(
        file,
        "write_compacted_marker",
        &[
            (".write_all(", "marker write"),
            (".sync_all(", "marker fsync"),
            ("fs::rename(", "atomic rename"),
        ],
        report,
    );
    if let Some((lineno, body)) = fn_body(file, "compact_shard") {
        report.add_sites(Rule::DurabilityOrder, 1);
        let marker = body.find("write_compacted_marker(");
        let seg_del = body.find("remove_file(segment_path");
        match (marker, seg_del) {
            (Some(m), Some(d)) if m > d => report.flag(
                Rule::DurabilityOrder,
                file,
                lineno,
                "compact_shard deletes segments before the COMPACTED marker is durable — \
                 a crash between the two loses the only copy (docs/STORAGE.md §3.4)"
                    .into(),
            ),
            (None, Some(_)) => report.flag(
                Rule::DurabilityOrder,
                file,
                lineno,
                "compact_shard deletes segments without writing the COMPACTED marker \
                 (docs/STORAGE.md §3.4)"
                    .into(),
            ),
            _ => {}
        }
    }
    // §-anchor audit: raw lines, because the citations live in comments.
    for (idx, raw) in file.raw_lines.iter().enumerate() {
        let mut from = 0;
        while let Some(pos) = raw[from..].find("STORAGE.md §") {
            let at = from + pos + "STORAGE.md §".len();
            from = at;
            let token: String =
                raw[at..].chars().take_while(|c| c.is_ascii_digit() || *c == '.').collect();
            let num = token.trim_end_matches('.').to_string();
            report.add_sites(Rule::DurabilityOrder, 1);
            if num.is_empty() || !sections.contains(&num) {
                report.flag(
                    Rule::DurabilityOrder,
                    file,
                    idx + 1,
                    format!(
                        "cites docs/STORAGE.md §{num} but the doc has no such heading — \
                         fix the anchor or restore the section"
                    ),
                );
            }
        }
    }
}

/// Require `markers` to appear in order inside `fn name`; each search
/// resumes after the previous hit, so a repeated marker (the second
/// `.sync_all(`) must occur again later. A missing function is not a
/// violation — renames surface via the zero-sites gate instead.
fn ordered_markers(file: &SourceFile, name: &str, markers: &[(&str, &str)], report: &mut Report) {
    let Some((lineno, body)) = fn_body(file, name) else {
        return;
    };
    report.add_sites(Rule::DurabilityOrder, 1);
    let mut from = 0;
    for (marker, step) in markers {
        match body[from..].find(marker) {
            Some(pos) => from += pos + marker.len(),
            None => {
                report.flag(
                    Rule::DurabilityOrder,
                    file,
                    lineno,
                    format!(
                        "{name} is missing the `{step}` step (`{marker}`) at its place in \
                         the write→fsync→rename→dir-fsync sequence (docs/STORAGE.md §3)"
                    ),
                );
                return;
            }
        }
    }
}
