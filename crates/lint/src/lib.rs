//! gridbank-lint: domain-invariant static analysis for the GridBank
//! workspace.
//!
//! Clippy and rustc enforce language-level hygiene; this crate enforces
//! *accounting-domain* invariants that no general-purpose lint knows
//! about:
//!
//! | id                    | invariant                                                         |
//! |-----------------------|-------------------------------------------------------------------|
//! | `money-arith`         | money values use checked/saturating helpers, never bare ops/casts |
//! | `idem-stamp`          | every mutating RPC arm stamps idempotency in the commit batch     |
//! | `no-panic`            | server/codec/replay paths return typed errors, never panic        |
//! | `display-parse`       | error handling reads structured details, not Display text         |
//! | `metric-prefix`       | metric/span names match the registered table in OBSERVABILITY.md  |
//! | `lock-order`          | acquisitions follow the declared table in STATIC_ANALYSIS.md      |
//! | `blocking-under-lock` | no fsync/file/net/recv/sleep inside a held lock scope             |
//! | `durability-order`    | store.rs sequences write→fsync→rename→dir-fsync; marker precedes deletion |
//!
//! The analyzer is deliberately dependency-free: it tokenizes by masking
//! comments and literals (see [`source`]) rather than parsing full Rust,
//! so it builds in the sealed CI image and runs in well under a second.
//! Escape hatch: `// lint:allow(<rule>) <reason>` on (or directly above)
//! a line, or `// lint:allow-file(<rule>) <reason>` anywhere in a file.
//! Every use is counted and printed — suppressions are visible, not
//! silent.

pub mod rules;
pub mod source;

use std::collections::BTreeMap;
use std::fmt;

pub use source::{AllowDirective, SourceFile};

/// The eight domain rules.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Rule {
    /// L1: bare arithmetic / lossy casts in money context.
    MoneyArith,
    /// L2: mutating RPC arms must stamp idempotency with the commit.
    IdemStamp,
    /// L3: no unwrap/expect/panic in request, codec, or replay paths.
    NoPanic,
    /// L4: no parsing of Display text out of error frames.
    DisplayParse,
    /// L5: telemetry names must match the registered prefix table.
    MetricPrefix,
    /// L6: lock acquisitions follow the declared global order.
    LockOrder,
    /// L7: no blocking calls lexically inside a held lock scope.
    BlockingUnderLock,
    /// L8: durable-file creation sequences write→fsync→rename→dir-fsync,
    /// and the COMPACTED marker lands before any segment deletion.
    DurabilityOrder,
}

impl Rule {
    /// Every rule, in report order.
    pub const ALL: [Rule; 8] = [
        Rule::MoneyArith,
        Rule::IdemStamp,
        Rule::NoPanic,
        Rule::DisplayParse,
        Rule::MetricPrefix,
        Rule::LockOrder,
        Rule::BlockingUnderLock,
        Rule::DurabilityOrder,
    ];

    /// Stable identifier used in reports and allow directives.
    pub const fn id(self) -> &'static str {
        match self {
            Rule::MoneyArith => "money-arith",
            Rule::IdemStamp => "idem-stamp",
            Rule::NoPanic => "no-panic",
            Rule::DisplayParse => "display-parse",
            Rule::MetricPrefix => "metric-prefix",
            Rule::LockOrder => "lock-order",
            Rule::BlockingUnderLock => "blocking-under-lock",
            Rule::DurabilityOrder => "durability-order",
        }
    }

    /// Looks up a rule by its identifier.
    pub fn from_id(id: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.id() == id)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One rule violation at a source location.
#[derive(Clone, Debug)]
pub struct Violation {
    pub rule: Rule,
    pub file: String,
    pub line: usize,
    pub message: String,
}

/// A violation suppressed by an allow directive.
#[derive(Clone, Debug)]
pub struct Suppressed {
    pub violation: Violation,
    /// Justification text from the directive.
    pub reason: String,
    /// Line the directive was declared on.
    pub declared_at: usize,
    /// Whether the directive was file-wide.
    pub file_wide: bool,
}

/// Analysis result across a workspace.
#[derive(Default)]
pub struct Report {
    /// Files scanned.
    pub files: usize,
    /// Live violations (fail the build).
    pub violations: Vec<Violation>,
    /// Violations silenced by counted allow directives.
    pub suppressed: Vec<Suppressed>,
    /// Malformed escape hatches (unknown rule id / missing reason) —
    /// these fail the build like violations.
    pub bad_directives: Vec<Violation>,
    /// Sites each rule actually inspected, by rule id. A rule with zero
    /// sites did not exercise on this tree — the driver treats that as
    /// suspicious (the invariant can't rot silently out of scope).
    pub sites: BTreeMap<&'static str, usize>,
}

impl Report {
    /// Records that `rule` inspected `n` more candidate sites.
    pub fn add_sites(&mut self, rule: Rule, n: usize) {
        *self.sites.entry(rule.id()).or_insert(0) += n;
    }

    /// Files a candidate violation, routing it through the file's allow
    /// directives.
    pub fn flag(&mut self, rule: Rule, file: &SourceFile, line: usize, message: String) {
        let violation = Violation { rule, file: file.path.clone(), line, message };
        match file.allow_for(rule.id(), line) {
            Some(allow) => self.suppressed.push(Suppressed {
                violation,
                reason: allow.reason.clone(),
                declared_at: allow.declared_at,
                file_wide: allow.line.is_none(),
            }),
            None => self.violations.push(violation),
        }
    }

    /// Rules that inspected at least one site.
    pub fn rules_exercised(&self) -> usize {
        self.sites.values().filter(|&&n| n > 0).count()
    }

    /// True when the tree is clean (no violations, no malformed
    /// directives).
    pub fn passed(&self) -> bool {
        self.violations.is_empty() && self.bad_directives.is_empty()
    }
}

/// Registered telemetry names parsed from `docs/OBSERVABILITY.md`
/// (see the "Registered name prefixes" section there).
#[derive(Clone, Debug, Default)]
pub struct NameRegistry {
    /// Allowed metric-name prefixes (each ends with `.`).
    pub metric_prefixes: Vec<String>,
    /// Allowed span component names (matched exactly).
    pub span_components: Vec<String>,
}

impl NameRegistry {
    /// Parses the registry table out of OBSERVABILITY.md. Rows look like
    /// `| metric | \`core.\` \`db.\` ... |` and
    /// `| span | \`net\` \`server.payment\` ... |`.
    pub fn parse(markdown: &str) -> Result<NameRegistry, String> {
        let mut reg = NameRegistry::default();
        for line in markdown.lines() {
            let trimmed = line.trim();
            let kind = if trimmed.starts_with("| metric ") || trimmed.starts_with("| metric|") {
                Some(true)
            } else if trimmed.starts_with("| span ") || trimmed.starts_with("| span|") {
                Some(false)
            } else {
                None
            };
            let Some(is_metric) = kind else { continue };
            let names = backtick_tokens(trimmed);
            if is_metric {
                reg.metric_prefixes.extend(names);
            } else {
                reg.span_components.extend(names);
            }
        }
        if reg.metric_prefixes.is_empty() || reg.span_components.is_empty() {
            return Err("docs/OBSERVABILITY.md has no 'Registered name prefixes' table \
                 (need `| metric | ... |` and `| span | ... |` rows)"
                .to_string());
        }
        Ok(reg)
    }

    /// Whether `name` starts with a registered metric prefix.
    pub fn metric_ok(&self, name: &str) -> bool {
        self.metric_prefixes.iter().any(|p| name.starts_with(p.as_str()))
    }

    /// Whether `component` is a registered span component.
    pub fn span_ok(&self, component: &str) -> bool {
        self.span_components.iter().any(|c| c == component)
    }
}

/// One class of locks in the declared global acquisition order
/// (a row of the L6 table in docs/STATIC_ANALYSIS.md).
#[derive(Clone, Debug)]
pub struct LockClass {
    /// Global acquisition rank — strictly increasing along any legal
    /// acquisition path.
    pub rank: u16,
    /// Human name, e.g. `account-shard`.
    pub name: String,
    /// File the class's locks live in (suffix match, e.g. `db.rs`).
    pub file: String,
    /// Receiver patterns. All-identifier patterns match a receiver
    /// expression on identifier boundaries; patterns with punctuation
    /// are plain substring matches.
    pub patterns: Vec<String>,
    /// Whether same-rank multi-acquisition is legal when iterated in
    /// ascending index order (the cross-shard transfer idiom).
    pub ascending_index: bool,
}

/// The declared lock-acquisition order, parsed from the L6 table in
/// docs/STATIC_ANALYSIS.md.
#[derive(Clone, Debug, Default)]
pub struct LockOrderSpec {
    /// Every declared class, in table order.
    pub classes: Vec<LockClass>,
}

impl LockOrderSpec {
    /// Parses the declared-order table. Rows look like
    /// `| 80 | account-shard | db.rs | \`shards\` \`shard\` | ascending-index |`;
    /// any markdown table row whose first cell is an integer and which
    /// has five cells is taken as a class declaration.
    pub fn parse(markdown: &str) -> Result<LockOrderSpec, String> {
        let mut spec = LockOrderSpec::default();
        for line in markdown.lines() {
            let trimmed = line.trim();
            if !trimmed.starts_with('|') {
                continue;
            }
            let cells: Vec<&str> = trimmed.trim_matches('|').split('|').collect();
            if cells.len() < 5 {
                continue;
            }
            let Ok(rank) = cells[0].trim().parse::<u16>() else { continue };
            let name = cells[1].trim().trim_matches('`').to_string();
            let file = cells[2].trim().trim_matches('`').to_string();
            let patterns = backtick_tokens(cells[3]);
            if name.is_empty() || file.is_empty() || patterns.is_empty() {
                continue;
            }
            spec.classes.push(LockClass {
                rank,
                name,
                file,
                patterns,
                ascending_index: cells[4].contains("ascending-index"),
            });
        }
        if spec.classes.is_empty() {
            return Err("docs/STATIC_ANALYSIS.md has no declared lock-order table \
                 (need `| rank | class | file | receivers | same-rank |` rows)"
                .to_string());
        }
        Ok(spec)
    }

    /// Classes whose file column suffix-matches `path`.
    pub fn classes_for<'a>(&'a self, path: &str) -> Vec<&'a LockClass> {
        self.classes.iter().filter(|c| path.ends_with(c.file.as_str())).collect()
    }

    /// Whether any class governs `path` — i.e. L6/L7 are in scope there.
    pub fn governs(&self, path: &str) -> bool {
        self.classes.iter().any(|c| path.ends_with(c.file.as_str()))
    }
}

/// Section numbers (`1`, `2.3`, …) of every heading in
/// docs/STORAGE.md — the anchor set L8 validates `§`-citations against.
pub fn storage_sections(markdown: &str) -> Vec<String> {
    let mut out = Vec::new();
    for line in markdown.lines() {
        let trimmed = line.trim_start();
        if !trimmed.starts_with('#') {
            continue;
        }
        let rest = trimmed.trim_start_matches('#').trim_start();
        let number: String = rest.chars().take_while(|c| c.is_ascii_digit() || *c == '.').collect();
        let number = number.trim_end_matches('.').to_string();
        if !number.is_empty() {
            out.push(number);
        }
    }
    out
}

fn backtick_tokens(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = line;
    while let Some(open) = rest.find('`') {
        let tail = &rest[open + 1..];
        let Some(close) = tail.find('`') else { break };
        let token = tail[..close].trim();
        if !token.is_empty() {
            out.push(token.to_string());
        }
        rest = &tail[close + 1..];
    }
    out
}

/// A set of prepared source files plus the doc-derived tables the
/// rules check against: the telemetry registry (L5), the declared
/// lock order (L6/L7), and the STORAGE.md section anchors (L8).
pub struct Workspace {
    pub files: Vec<SourceFile>,
    pub registry: NameRegistry,
    pub lock_order: LockOrderSpec,
    pub storage_sections: Vec<String>,
}

impl Workspace {
    /// Runs every rule and audits the escape hatches.
    pub fn analyze(&self) -> Report {
        let mut report = Report { files: self.files.len(), ..Report::default() };
        for rule in Rule::ALL {
            report.add_sites(rule, 0); // every rule shows up in the table
        }
        for file in &self.files {
            rules::money_arith(file, &mut report);
            rules::no_panic(file, &mut report);
            rules::display_parse(file, &mut report);
            rules::metric_prefix(file, &self.registry, &mut report);
            rules::lock_discipline(file, &self.lock_order, &mut report);
            rules::durability_order(file, &self.storage_sections, &mut report);
        }
        rules::idem_stamp(&self.files, &mut report);
        self.audit_directives(&mut report);
        report
    }

    /// Flags malformed allow directives: unknown rule ids and missing
    /// reasons both fail the run — a silent or typo'd escape hatch is
    /// worse than none.
    fn audit_directives(&self, report: &mut Report) {
        for file in &self.files {
            for allow in &file.allows {
                let Some(rule) = Rule::from_id(&allow.rule) else {
                    report.bad_directives.push(Violation {
                        rule: Rule::MoneyArith,
                        file: file.path.clone(),
                        line: allow.declared_at,
                        message: format!(
                            "lint:allow names unknown rule `{}` (known: {})",
                            allow.rule,
                            Rule::ALL.map(Rule::id).join(", ")
                        ),
                    });
                    continue;
                };
                if allow.reason.is_empty() {
                    report.bad_directives.push(Violation {
                        rule,
                        file: file.path.clone(),
                        line: allow.declared_at,
                        message: format!(
                            "lint:allow({}) has no justification — a reason is mandatory",
                            rule.id()
                        ),
                    });
                }
            }
        }
    }
}

/// Renders the human report. `verbose` additionally lists suppressions.
pub fn render_report(report: &Report) -> String {
    let mut out = String::new();
    out.push_str(&format!("gridbank-lint: scanned {} files\n", report.files));
    for rule in Rule::ALL {
        let id = rule.id();
        let v = report.violations.iter().filter(|x| x.rule == rule).count();
        let s = report.suppressed.iter().filter(|x| x.violation.rule == rule).count();
        let sites = report.sites.get(id).copied().unwrap_or(0);
        out.push_str(&format!(
            "  {id:<19} {v:>3} violation{} {sites:>5} sites inspected  {s:>2} allowed\n",
            if v == 1 { " " } else { "s" }
        ));
    }
    if !report.suppressed.is_empty() {
        // One line per *directive*, with how many findings it absorbed.
        let mut by_directive: BTreeMap<(String, usize, &'static str), (usize, &Suppressed)> =
            BTreeMap::new();
        for s in &report.suppressed {
            by_directive
                .entry((s.violation.file.clone(), s.declared_at, s.violation.rule.id()))
                .and_modify(|(n, _)| *n += 1)
                .or_insert((1, s));
        }
        out.push_str(&format!(
            "allow directives in effect ({} directives, {} findings suppressed):\n",
            by_directive.len(),
            report.suppressed.len()
        ));
        for ((file, declared_at, rule), (n, s)) in &by_directive {
            out.push_str(&format!(
                "  {file}:{declared_at}  [{rule}]{}  x{n}  {}\n",
                if s.file_wide { " (file-wide)" } else { "" },
                s.reason
            ));
        }
    }
    for v in report.violations.iter().chain(&report.bad_directives) {
        out.push_str(&format!("error: {}:{}  [{}] {}\n", v.file, v.line, v.rule, v.message));
    }
    let verdict = if report.passed() {
        format!("PASS ({} rules exercised)", report.rules_exercised())
    } else {
        format!("FAIL ({} violations)", report.violations.len() + report.bad_directives.len())
    };
    out.push_str(&verdict);
    out.push('\n');
    out
}
