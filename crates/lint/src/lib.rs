//! gridbank-lint: domain-invariant static analysis for the GridBank
//! workspace.
//!
//! Clippy and rustc enforce language-level hygiene; this crate enforces
//! *accounting-domain* invariants that no general-purpose lint knows
//! about:
//!
//! | id              | invariant                                                        |
//! |-----------------|------------------------------------------------------------------|
//! | `money-arith`   | money values use checked/saturating helpers, never bare ops/casts |
//! | `idem-stamp`    | every mutating RPC arm stamps idempotency in the commit batch     |
//! | `no-panic`      | server/codec/replay paths return typed errors, never panic        |
//! | `display-parse` | error handling reads structured details, not Display text         |
//! | `metric-prefix` | metric/span names match the registered table in OBSERVABILITY.md  |
//!
//! The analyzer is deliberately dependency-free: it tokenizes by masking
//! comments and literals (see [`source`]) rather than parsing full Rust,
//! so it builds in the sealed CI image and runs in well under a second.
//! Escape hatch: `// lint:allow(<rule>) <reason>` on (or directly above)
//! a line, or `// lint:allow-file(<rule>) <reason>` anywhere in a file.
//! Every use is counted and printed — suppressions are visible, not
//! silent.

pub mod rules;
pub mod source;

use std::collections::BTreeMap;
use std::fmt;

pub use source::{AllowDirective, SourceFile};

/// The five domain rules.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Rule {
    /// L1: bare arithmetic / lossy casts in money context.
    MoneyArith,
    /// L2: mutating RPC arms must stamp idempotency with the commit.
    IdemStamp,
    /// L3: no unwrap/expect/panic in request, codec, or replay paths.
    NoPanic,
    /// L4: no parsing of Display text out of error frames.
    DisplayParse,
    /// L5: telemetry names must match the registered prefix table.
    MetricPrefix,
}

impl Rule {
    /// Every rule, in report order.
    pub const ALL: [Rule; 5] =
        [Rule::MoneyArith, Rule::IdemStamp, Rule::NoPanic, Rule::DisplayParse, Rule::MetricPrefix];

    /// Stable identifier used in reports and allow directives.
    pub const fn id(self) -> &'static str {
        match self {
            Rule::MoneyArith => "money-arith",
            Rule::IdemStamp => "idem-stamp",
            Rule::NoPanic => "no-panic",
            Rule::DisplayParse => "display-parse",
            Rule::MetricPrefix => "metric-prefix",
        }
    }

    /// Looks up a rule by its identifier.
    pub fn from_id(id: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.id() == id)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One rule violation at a source location.
#[derive(Clone, Debug)]
pub struct Violation {
    pub rule: Rule,
    pub file: String,
    pub line: usize,
    pub message: String,
}

/// A violation suppressed by an allow directive.
#[derive(Clone, Debug)]
pub struct Suppressed {
    pub violation: Violation,
    /// Justification text from the directive.
    pub reason: String,
    /// Line the directive was declared on.
    pub declared_at: usize,
    /// Whether the directive was file-wide.
    pub file_wide: bool,
}

/// Analysis result across a workspace.
#[derive(Default)]
pub struct Report {
    /// Files scanned.
    pub files: usize,
    /// Live violations (fail the build).
    pub violations: Vec<Violation>,
    /// Violations silenced by counted allow directives.
    pub suppressed: Vec<Suppressed>,
    /// Malformed escape hatches (unknown rule id / missing reason) —
    /// these fail the build like violations.
    pub bad_directives: Vec<Violation>,
    /// Sites each rule actually inspected, by rule id. A rule with zero
    /// sites did not exercise on this tree — the driver treats that as
    /// suspicious (the invariant can't rot silently out of scope).
    pub sites: BTreeMap<&'static str, usize>,
}

impl Report {
    /// Records that `rule` inspected `n` more candidate sites.
    pub fn add_sites(&mut self, rule: Rule, n: usize) {
        *self.sites.entry(rule.id()).or_insert(0) += n;
    }

    /// Files a candidate violation, routing it through the file's allow
    /// directives.
    pub fn flag(&mut self, rule: Rule, file: &SourceFile, line: usize, message: String) {
        let violation = Violation { rule, file: file.path.clone(), line, message };
        match file.allow_for(rule.id(), line) {
            Some(allow) => self.suppressed.push(Suppressed {
                violation,
                reason: allow.reason.clone(),
                declared_at: allow.declared_at,
                file_wide: allow.line.is_none(),
            }),
            None => self.violations.push(violation),
        }
    }

    /// Rules that inspected at least one site.
    pub fn rules_exercised(&self) -> usize {
        self.sites.values().filter(|&&n| n > 0).count()
    }

    /// True when the tree is clean (no violations, no malformed
    /// directives).
    pub fn passed(&self) -> bool {
        self.violations.is_empty() && self.bad_directives.is_empty()
    }
}

/// Registered telemetry names parsed from `docs/OBSERVABILITY.md`
/// (see the "Registered name prefixes" section there).
#[derive(Clone, Debug, Default)]
pub struct NameRegistry {
    /// Allowed metric-name prefixes (each ends with `.`).
    pub metric_prefixes: Vec<String>,
    /// Allowed span component names (matched exactly).
    pub span_components: Vec<String>,
}

impl NameRegistry {
    /// Parses the registry table out of OBSERVABILITY.md. Rows look like
    /// `| metric | \`core.\` \`db.\` ... |` and
    /// `| span | \`net\` \`server.payment\` ... |`.
    pub fn parse(markdown: &str) -> Result<NameRegistry, String> {
        let mut reg = NameRegistry::default();
        for line in markdown.lines() {
            let trimmed = line.trim();
            let kind = if trimmed.starts_with("| metric ") || trimmed.starts_with("| metric|") {
                Some(true)
            } else if trimmed.starts_with("| span ") || trimmed.starts_with("| span|") {
                Some(false)
            } else {
                None
            };
            let Some(is_metric) = kind else { continue };
            let names = backtick_tokens(trimmed);
            if is_metric {
                reg.metric_prefixes.extend(names);
            } else {
                reg.span_components.extend(names);
            }
        }
        if reg.metric_prefixes.is_empty() || reg.span_components.is_empty() {
            return Err("docs/OBSERVABILITY.md has no 'Registered name prefixes' table \
                 (need `| metric | ... |` and `| span | ... |` rows)"
                .to_string());
        }
        Ok(reg)
    }

    /// Whether `name` starts with a registered metric prefix.
    pub fn metric_ok(&self, name: &str) -> bool {
        self.metric_prefixes.iter().any(|p| name.starts_with(p.as_str()))
    }

    /// Whether `component` is a registered span component.
    pub fn span_ok(&self, component: &str) -> bool {
        self.span_components.iter().any(|c| c == component)
    }
}

fn backtick_tokens(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = line;
    while let Some(open) = rest.find('`') {
        let tail = &rest[open + 1..];
        let Some(close) = tail.find('`') else { break };
        let token = tail[..close].trim();
        if !token.is_empty() {
            out.push(token.to_string());
        }
        rest = &tail[close + 1..];
    }
    out
}

/// A set of prepared source files plus the telemetry registry.
pub struct Workspace {
    pub files: Vec<SourceFile>,
    pub registry: NameRegistry,
}

impl Workspace {
    /// Runs every rule and audits the escape hatches.
    pub fn analyze(&self) -> Report {
        let mut report = Report { files: self.files.len(), ..Report::default() };
        for rule in Rule::ALL {
            report.add_sites(rule, 0); // every rule shows up in the table
        }
        for file in &self.files {
            rules::money_arith(file, &mut report);
            rules::no_panic(file, &mut report);
            rules::display_parse(file, &mut report);
            rules::metric_prefix(file, &self.registry, &mut report);
        }
        rules::idem_stamp(&self.files, &mut report);
        self.audit_directives(&mut report);
        report
    }

    /// Flags malformed allow directives: unknown rule ids and missing
    /// reasons both fail the run — a silent or typo'd escape hatch is
    /// worse than none.
    fn audit_directives(&self, report: &mut Report) {
        for file in &self.files {
            for allow in &file.allows {
                let Some(rule) = Rule::from_id(&allow.rule) else {
                    report.bad_directives.push(Violation {
                        rule: Rule::MoneyArith,
                        file: file.path.clone(),
                        line: allow.declared_at,
                        message: format!(
                            "lint:allow names unknown rule `{}` (known: {})",
                            allow.rule,
                            Rule::ALL.map(Rule::id).join(", ")
                        ),
                    });
                    continue;
                };
                if allow.reason.is_empty() {
                    report.bad_directives.push(Violation {
                        rule,
                        file: file.path.clone(),
                        line: allow.declared_at,
                        message: format!(
                            "lint:allow({}) has no justification — a reason is mandatory",
                            rule.id()
                        ),
                    });
                }
            }
        }
    }
}

/// Renders the human report. `verbose` additionally lists suppressions.
pub fn render_report(report: &Report) -> String {
    let mut out = String::new();
    out.push_str(&format!("gridbank-lint: scanned {} files\n", report.files));
    for rule in Rule::ALL {
        let id = rule.id();
        let v = report.violations.iter().filter(|x| x.rule == rule).count();
        let s = report.suppressed.iter().filter(|x| x.violation.rule == rule).count();
        let sites = report.sites.get(id).copied().unwrap_or(0);
        out.push_str(&format!(
            "  {id:<14} {v:>3} violation{} {sites:>5} sites inspected  {s:>2} allowed\n",
            if v == 1 { " " } else { "s" }
        ));
    }
    if !report.suppressed.is_empty() {
        // One line per *directive*, with how many findings it absorbed.
        let mut by_directive: BTreeMap<(String, usize, &'static str), (usize, &Suppressed)> =
            BTreeMap::new();
        for s in &report.suppressed {
            by_directive
                .entry((s.violation.file.clone(), s.declared_at, s.violation.rule.id()))
                .and_modify(|(n, _)| *n += 1)
                .or_insert((1, s));
        }
        out.push_str(&format!(
            "allow directives in effect ({} directives, {} findings suppressed):\n",
            by_directive.len(),
            report.suppressed.len()
        ));
        for ((file, declared_at, rule), (n, s)) in &by_directive {
            out.push_str(&format!(
                "  {file}:{declared_at}  [{rule}]{}  x{n}  {}\n",
                if s.file_wide { " (file-wide)" } else { "" },
                s.reason
            ));
        }
    }
    for v in report.violations.iter().chain(&report.bad_directives) {
        out.push_str(&format!("error: {}:{}  [{}] {}\n", v.file, v.line, v.rule, v.message));
    }
    let verdict = if report.passed() {
        format!("PASS ({} rules exercised)", report.rules_exercised())
    } else {
        format!("FAIL ({} violations)", report.violations.len() + report.bad_directives.len())
    };
    out.push_str(&verdict);
    out.push('\n');
    out
}
