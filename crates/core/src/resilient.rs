//! Resilient bank client: retries, reconnects, and exactly-once keys.
//!
//! [`ResilientBankClient`] wraps the typed [`GridBankClient`] with the
//! machinery a broker needs to survive a flaky bank link (ISSUE 2 /
//! `docs/RESILIENCE.md`):
//!
//! * every attempt that fails with a *retryable* transport error
//!   ([`gridbank_net::NetError::is_retryable`]) tears the connection down and retries
//!   over a **fresh handshake**, pacing itself with a seeded
//!   [`RetryPolicy`] backoff schedule;
//! * a [`CircuitBreaker`] fails calls fast once the bank looks dead,
//!   and probes it again after a cooldown (graceful degradation);
//! * mutating requests are stamped with a **stable idempotency key**
//!   that is reused across every retry of the same logical operation,
//!   so the bank's dedup cache makes "maybe it applied" retries safe.
//!
//! Typed bank errors (insufficient funds, not authorized, ...) mean the
//! round trip *worked*; they are returned immediately and count as
//! breaker successes.

use std::time::Duration;

use gridbank_net::retry::{BreakerState, CircuitBreaker, RetryPolicy};
use gridbank_rur::record::ResourceUsageRecord;
use gridbank_rur::Credits;

use gridbank_crypto::merkle::MerkleSignature;

use crate::api::{BankRequest, BankResponse};
use crate::cheque::GridCheque;
use crate::client::{ClientHashChain, GridBankClient};
use crate::clock::Clock;
use crate::db::{AccountId, AccountRecord};
use crate::direct::TransferConfirmation;
use crate::error::BankError;
use crate::payword::{ChainCommitment, PayWord};
use crate::port::BankPort;
use crate::pricing::ResourceDescription;

/// How the client waits out a backoff delay.
#[derive(Clone, Debug, Default)]
pub enum BackoffSleep {
    /// Retry immediately. Right for in-process transports where faults
    /// are per-message, not per-time-window.
    #[default]
    None,
    /// Advance the shared virtual clock — deterministic simulations.
    Virtual,
    /// `std::thread::sleep` — real deployments.
    Real,
}

/// Builds a fresh authenticated connection (full handshake).
pub type Connector = Box<dyn FnMut() -> Result<GridBankClient, BankError> + Send>;

/// A [`GridBankClient`] wrapper with retry, reconnect, circuit-breaker,
/// and idempotency-key stamping. Implements [`BankPort`], so GBPM/GBCM
/// code can run over a faulty link unchanged.
pub struct ResilientBankClient {
    connector: Connector,
    client: Option<GridBankClient>,
    policy: RetryPolicy,
    breaker: CircuitBreaker,
    clock: Clock,
    sleep: BackoffSleep,
    call_timeout: Option<Duration>,
    key_seed: u64,
    ops: u64,
}

impl ResilientBankClient {
    /// Wraps a connector. `key_seed` decorrelates this client's
    /// idempotency keys (and its jitter stream) from other clients'.
    pub fn new(connector: Connector, policy: RetryPolicy, clock: Clock, key_seed: u64) -> Self {
        ResilientBankClient {
            connector,
            client: None,
            policy: policy.with_seed(policy.seed ^ key_seed),
            breaker: CircuitBreaker::new(8, 1_000),
            clock,
            sleep: BackoffSleep::None,
            call_timeout: Some(Duration::from_millis(100)),
            key_seed,
            ops: 0,
        }
    }

    /// Replaces the circuit breaker (threshold/cooldown tuning).
    pub fn with_breaker(mut self, breaker: CircuitBreaker) -> Self {
        self.breaker = breaker;
        self
    }

    /// Sets the backoff sleeping mode.
    pub fn with_sleep(mut self, sleep: BackoffSleep) -> Self {
        self.sleep = sleep;
        self
    }

    /// Sets the per-attempt response timeout (`None` = transport
    /// default). Short timeouts make dropped replies fail fast.
    pub fn with_call_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.call_timeout = timeout;
        self
    }

    /// Observable breaker state (tests, dashboards).
    pub fn breaker_state(&self) -> BreakerState {
        self.breaker.state()
    }

    /// A fresh idempotency key for one logical mutating operation. The
    /// key stays fixed across every retry of that operation.
    fn fresh_key(&mut self) -> u64 {
        self.ops = self.ops.wrapping_add(1);
        self.key_seed ^ self.ops.wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }

    fn wait(&self, delay_ms: u64) {
        match self.sleep {
            BackoffSleep::None => {}
            BackoffSleep::Virtual => {
                self.clock.advance(delay_ms);
            }
            BackoffSleep::Real => std::thread::sleep(Duration::from_millis(delay_ms)),
        }
    }

    fn attempt(
        &mut self,
        key: Option<u64>,
        request: &BankRequest,
    ) -> Result<BankResponse, BankError> {
        let client = match self.client.take() {
            Some(live) => self.client.insert(live),
            None => {
                let mut fresh = (self.connector)()?;
                fresh.set_call_timeout(self.call_timeout);
                self.client.insert(fresh)
            }
        };
        client.call_keyed(key, request)
    }

    /// Sends one logical request with retries. Mutating requests are
    /// stamped with a stable idempotency key; reads retry bare (always
    /// safe to repeat).
    pub fn call(&mut self, request: &BankRequest) -> Result<BankResponse, BankError> {
        let key = if request.is_mutating() { Some(self.fresh_key()) } else { None };
        self.call_inner(key, request)
    }

    /// Blocks until the bank answers again — the restart-to-serving
    /// probe used by recovery drills (docs/STORAGE.md §5): sends a
    /// cheap read through the full reconnect/backoff machinery until a
    /// typed response arrives, for at most `max_rounds` retry schedules.
    /// Any typed bank response (even an error) counts as serving; only
    /// transport-level failure keeps probing.
    pub fn await_serving(&mut self, max_rounds: usize) -> Result<(), BankError> {
        let mut last = BankError::Protocol("await_serving given zero rounds".into());
        for _ in 0..max_rounds {
            match self.call(&BankRequest::MyAccount) {
                Ok(_) => return Ok(()),
                Err(BankError::Net(e)) => {
                    last = BankError::Net(e);
                    self.wait(self.policy.base_delay_ms);
                }
                // A typed bank error is a successful round trip: the
                // server is up and dispatching.
                Err(_) => return Ok(()),
            }
        }
        Err(last)
    }

    /// [`ResilientBankClient::call`] under a caller-supplied idempotency
    /// key. The federation layer re-ships journaled `IbCredit`s under
    /// the durable key from their pending row, so a delivery retried
    /// across crashes still dedups against the original.
    pub fn call_with_stable_key(
        &mut self,
        key: u64,
        request: &BankRequest,
    ) -> Result<BankResponse, BankError> {
        self.call_inner(Some(key), request)
    }

    fn call_inner(
        &mut self,
        key: Option<u64>,
        request: &BankRequest,
    ) -> Result<BankResponse, BankError> {
        let mut schedule = self.policy.schedule();
        loop {
            self.breaker.admit(self.clock.now_ms()).map_err(BankError::Net)?;
            gridbank_obs::count("net.retry.attempts", 1);
            match self.attempt(key, request) {
                Ok(resp) => {
                    self.breaker.record_success();
                    return Ok(resp);
                }
                Err(BankError::Net(e)) if e.is_retryable() => {
                    self.breaker.record_failure(self.clock.now_ms());
                    // The channel's state is suspect (lost frames break
                    // the sequence discipline): reconnect from scratch.
                    self.client = None;
                    match schedule.next() {
                        Some(delay_ms) => {
                            gridbank_obs::observe("net.retry.backoff_ms", delay_ms);
                            self.wait(delay_ms);
                        }
                        None => {
                            gridbank_obs::count("net.retry.giveups", 1);
                            return Err(BankError::Net(e));
                        }
                    }
                }
                Err(BankError::Net(e)) => {
                    // Non-retryable transport failure (refused, handshake,
                    // malformed frame, ...). Report it: if this was the
                    // half-open probe, the breaker must re-open with a
                    // fresh cooldown — swallowing the outcome would leave
                    // it wedged in HalfOpen, fast-failing forever.
                    self.breaker.record_failure(self.clock.now_ms());
                    self.client = None;
                    return Err(BankError::Net(e));
                }
                Err(e) => {
                    // A typed bank error is a *successful* round trip.
                    self.breaker.record_success();
                    return Err(e);
                }
            }
        }
    }
}

fn unexpected(resp: BankResponse) -> BankError {
    BankError::Protocol(format!("unexpected response {resp:?}"))
}

impl BankPort for ResilientBankClient {
    fn create_account(&mut self, organization: Option<String>) -> Result<AccountId, BankError> {
        match self.call(&BankRequest::CreateAccount { organization })? {
            BankResponse::AccountCreated { account } => Ok(account),
            other => Err(unexpected(other)),
        }
    }

    fn my_account(&mut self) -> Result<AccountRecord, BankError> {
        match self.call(&BankRequest::MyAccount)? {
            BankResponse::Account(r) => Ok(r),
            other => Err(unexpected(other)),
        }
    }

    fn check_funds(&mut self, account: AccountId, amount: Credits) -> Result<(), BankError> {
        match self.call(&BankRequest::CheckFunds { account, amount })? {
            BankResponse::Confirmation { .. } => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    fn direct_transfer(
        &mut self,
        to: AccountId,
        amount: Credits,
        recipient_address: &str,
    ) -> Result<TransferConfirmation, BankError> {
        match self.call(&BankRequest::DirectTransfer {
            to,
            amount,
            recipient_address: recipient_address.to_string(),
        })? {
            BankResponse::Confirmed(c) => Ok(c),
            // A deduplicated retry can observe the journaled placeholder
            // confirmation if the original signed response was never
            // upgraded (e.g. the bank restarted in between). The funds
            // moved exactly once either way; surface it as a protocol
            // error only if neither shape matches.
            other => Err(unexpected(other)),
        }
    }

    fn request_cheque(
        &mut self,
        payee_cert: &str,
        amount: Credits,
        validity_ms: u64,
    ) -> Result<GridCheque, BankError> {
        match self.call(&BankRequest::RequestCheque {
            payee_cert: payee_cert.to_string(),
            amount,
            validity_ms,
        })? {
            BankResponse::Cheque(c) => Ok(c),
            other => Err(unexpected(other)),
        }
    }

    fn redeem_cheque(
        &mut self,
        cheque: GridCheque,
        rur: ResourceUsageRecord,
    ) -> Result<(Credits, Credits), BankError> {
        match self.call(&BankRequest::RedeemCheque { cheque, rur })? {
            BankResponse::Redeemed { paid, released } => Ok((paid, released)),
            other => Err(unexpected(other)),
        }
    }

    fn request_hash_chain(
        &mut self,
        payee_cert: &str,
        length: u32,
        value_per_word: Credits,
        validity_ms: u64,
    ) -> Result<ClientHashChain, BankError> {
        match self.call(&BankRequest::RequestHashChain {
            payee_cert: payee_cert.to_string(),
            length,
            value_per_word,
            validity_ms,
        })? {
            BankResponse::HashChain { commitment, signature, chain } => {
                Ok(ClientHashChain { commitment, signature, chain })
            }
            other => Err(unexpected(other)),
        }
    }

    fn redeem_payword(
        &mut self,
        commitment: ChainCommitment,
        signature: MerkleSignature,
        payword: PayWord,
        rur_blob: Vec<u8>,
    ) -> Result<Credits, BankError> {
        match self.call(&BankRequest::RedeemPayWord { commitment, signature, payword, rur_blob })? {
            BankResponse::Redeemed { paid, .. } => Ok(paid),
            other => Err(unexpected(other)),
        }
    }

    fn register_resource_description(
        &mut self,
        desc: ResourceDescription,
    ) -> Result<(), BankError> {
        match self.call(&BankRequest::RegisterResourceDescription { desc })? {
            BankResponse::Confirmation { .. } => Ok(()),
            other => Err(unexpected(other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridbank_net::NetError;

    fn dead_connector() -> Connector {
        Box::new(|| Err(BankError::Net(NetError::Timeout)))
    }

    fn policy() -> RetryPolicy {
        RetryPolicy { base_delay_ms: 1, max_delay_ms: 4, max_attempts: 3, deadline_ms: 50, seed: 1 }
    }

    #[test]
    fn gives_up_after_max_attempts_on_retryable_errors() {
        let mut c = ResilientBankClient::new(dead_connector(), policy(), Clock::new(), 7);
        let err = c.call(&BankRequest::MyAccount);
        assert!(matches!(err, Err(BankError::Net(NetError::Timeout))));
    }

    #[test]
    fn fatal_errors_do_not_retry() {
        let counter = std::sync::Arc::new(std::sync::atomic::AtomicU32::new(0));
        let c2 = counter.clone();
        let connector: Connector = Box::new(move || {
            c2.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            Err(BankError::Net(NetError::Handshake("bad credentials".into())))
        });
        let mut c = ResilientBankClient::new(connector, policy(), Clock::new(), 7);
        let err = c.call(&BankRequest::MyAccount);
        assert!(matches!(err, Err(BankError::Net(NetError::Handshake(_)))));
        assert_eq!(counter.load(std::sync::atomic::Ordering::Relaxed), 1);
    }

    #[test]
    fn breaker_opens_under_persistent_failure_and_fails_fast() {
        let clock = Clock::new();
        let counter = std::sync::Arc::new(std::sync::atomic::AtomicU32::new(0));
        let c2 = counter.clone();
        let connector: Connector = Box::new(move || {
            c2.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            Err(BankError::Net(NetError::Timeout))
        });
        let mut c = ResilientBankClient::new(connector, policy(), clock.clone(), 7)
            .with_breaker(CircuitBreaker::new(2, 10_000));
        assert!(c.call(&BankRequest::MyAccount).is_err());
        assert!(matches!(c.breaker_state(), BreakerState::Open { .. }));
        let after_first = counter.load(std::sync::atomic::Ordering::Relaxed);
        // Now calls fail fast without touching the connector.
        let err = c.call(&BankRequest::MyAccount);
        assert!(matches!(err, Err(BankError::Net(NetError::CircuitOpen))));
        assert_eq!(counter.load(std::sync::atomic::Ordering::Relaxed), after_first);
        // After the cooldown exactly one probe is admitted; its failure
        // re-opens the circuit, so the call again fails fast.
        clock.advance(10_001);
        let err = c.call(&BankRequest::MyAccount);
        assert!(matches!(err, Err(BankError::Net(NetError::CircuitOpen))));
        assert_eq!(counter.load(std::sync::atomic::Ordering::Relaxed), after_first + 1);
        assert!(matches!(c.breaker_state(), BreakerState::Open { .. }));
    }

    // Regression: a half-open probe that dies with a *non-retryable*
    // transport error (e.g. reconnect refused while the peer is down)
    // must report the failure and re-open the circuit. Before the fix
    // the outcome was swallowed, leaving the breaker wedged in HalfOpen
    // — every later call failed fast forever, even after recovery.
    #[test]
    fn failed_probe_with_fatal_error_reopens_instead_of_wedging() {
        let clock = Clock::new();
        let calls = std::sync::Arc::new(std::sync::atomic::AtomicU32::new(0));
        let c2 = calls.clone();
        let connector: Connector = Box::new(move || {
            let n = c2.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            let err = if n < 2 {
                NetError::Timeout // trip the breaker
            } else {
                NetError::Refused { subject: "broker".into(), reason: "peer down".into() }
            };
            Err(BankError::Net(err))
        });
        let mut c = ResilientBankClient::new(connector, policy(), clock.clone(), 7)
            .with_breaker(CircuitBreaker::new(2, 10_000));
        assert!(c.call(&BankRequest::MyAccount).is_err());
        assert!(matches!(c.breaker_state(), BreakerState::Open { .. }));
        // Cooldown elapses; the probe fails with the fatal Refused.
        clock.advance(10_001);
        let err = c.call(&BankRequest::MyAccount);
        assert!(matches!(err, Err(BankError::Net(NetError::Refused { .. }))));
        // The breaker re-opened with a fresh cooldown — not HalfOpen.
        assert!(matches!(c.breaker_state(), BreakerState::Open { .. }));
        let err = c.call(&BankRequest::MyAccount);
        assert!(matches!(err, Err(BankError::Net(NetError::CircuitOpen))));
        // After another cooldown the next probe is admitted again: the
        // client recovers instead of being bricked.
        clock.advance(10_001);
        let before = calls.load(std::sync::atomic::Ordering::Relaxed);
        assert!(c.call(&BankRequest::MyAccount).is_err());
        assert_eq!(calls.load(std::sync::atomic::Ordering::Relaxed), before + 1);
    }

    #[test]
    fn idempotency_keys_are_unique_per_operation() {
        let mut c = ResilientBankClient::new(dead_connector(), policy(), Clock::new(), 7);
        let a = c.fresh_key();
        let b = c.fresh_key();
        assert_ne!(a, b);
        let mut other = ResilientBankClient::new(dead_connector(), policy(), Clock::new(), 8);
        assert_ne!(a, other.fresh_key());
    }
}
