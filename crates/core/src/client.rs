//! The typed GridBank client.
//!
//! §3.3: "The Security Layer is identical to the server. The Protocol
//! Layer has same protocol modules as the server with corresponding
//! client functionality. GridBank API provides an interface to the
//! Protocol layer, which is responsible for obtaining payment instruments
//! or performing direct transfers."
//!
//! [`GridBankClient`] connects over the in-process network, runs the
//! mutual handshake with the caller's proxy certificate (single sign-on),
//! and exposes one method per §5.2/§5.2.1 operation. The GBPM (broker
//! side) and GBCM (provider side) are built on this client.

use gridbank_crypto::cert::ProxyCertificate;
use gridbank_crypto::keys::{SigningIdentity, VerifyingKey};
use gridbank_crypto::rng::DeterministicStream;
use gridbank_crypto::sha256::Digest;
use gridbank_net::rpc::RpcClient;
use gridbank_net::transport::{Address, Network};
use gridbank_net::{client_handshake, HandshakeConfig};
use gridbank_rur::codec::{Decode, Encode};
use gridbank_rur::record::ResourceUsageRecord;
use gridbank_rur::Credits;

use crate::accounts::Statement;
use crate::api::{error_from_wire, BankRequest, BankResponse};
use crate::cheque::GridCheque;
use crate::db::{AccountId, AccountRecord};
use crate::direct::TransferConfirmation;
use crate::error::BankError;
use crate::payword::{ChainCommitment, GridHashChain, PayWord};
use crate::pricing::ResourceDescription;

/// A hash chain as received from the bank (client side holds the secret
/// words; `chain[0]` is the public root).
pub struct ClientHashChain {
    /// The signed commitment (share with the GSP).
    pub commitment: ChainCommitment,
    /// Bank signature over the commitment.
    pub signature: gridbank_crypto::merkle::MerkleSignature,
    /// `w_0..=w_n`.
    pub chain: Vec<Digest>,
}

impl ClientHashChain {
    /// The payword paying for `k` units.
    pub fn payword(&self, k: u32) -> Result<PayWord, BankError> {
        if k == 0 || k as usize >= self.chain.len() {
            return Err(BankError::InvalidInstrument(format!(
                "cannot spend {k} of {} paywords",
                self.chain.len().saturating_sub(1)
            )));
        }
        Ok(PayWord { index: k, word: self.chain[k as usize] })
    }

    /// Validates the bank's signature (GSP-side acceptance check).
    pub fn verify(&self, bank_key: &VerifyingKey) -> Result<(), BankError> {
        GridHashChain::verify_commitment(&self.commitment, &self.signature, bank_key)
    }
}

/// A connected, authenticated GridBank client.
pub struct GridBankClient {
    rpc: RpcClient,
}

impl GridBankClient {
    /// Connects and authenticates with a proxy certificate.
    #[allow(clippy::too_many_arguments)]
    pub fn connect(
        network: &Network,
        from: Address,
        bank_address: &Address,
        ca_key: VerifyingKey,
        now_ms: u64,
        proxy: &ProxyCertificate,
        proxy_identity: &SigningIdentity,
        nonce_stream: &mut DeterministicStream,
    ) -> Result<Self, BankError> {
        let duplex = network.connect(from, bank_address)?;
        let config = HandshakeConfig { ca_key, now: now_ms };
        let (channel, server) =
            client_handshake(duplex, &config, proxy, proxy_identity, nonce_stream)?;
        Ok(GridBankClient { rpc: RpcClient::new(channel, server) })
    }

    /// Overrides the per-call response timeout (`None` restores the
    /// transport default). Resilient wrappers set a short timeout so
    /// faulted calls fail fast and retry.
    pub fn set_call_timeout(&mut self, timeout: Option<std::time::Duration>) {
        self.rpc.set_timeout(timeout);
    }

    fn call(&mut self, request: &BankRequest) -> Result<BankResponse, BankError> {
        self.call_keyed(None, request)
    }

    /// Sends a request, stamping it with an idempotency key when one is
    /// given — the server then dedups retries of the same logical
    /// operation (see `docs/RESILIENCE.md`).
    pub fn call_keyed(
        &mut self,
        idem_key: Option<u64>,
        request: &BankRequest,
    ) -> Result<BankResponse, BankError> {
        let raw = match idem_key {
            Some(key) => self.rpc.call_with_key(key, &request.to_bytes())?,
            None => self.rpc.call(&request.to_bytes())?,
        };
        let resp = BankResponse::from_bytes(&raw)?;
        if let BankResponse::Error { kind, message, detail } = resp {
            return Err(error_from_wire(kind, message, detail));
        }
        Ok(resp)
    }

    /// Sends a request without waiting for its response, returning the
    /// correlation id; any number may be in flight at once. Pair with
    /// [`GridBankClient::recv_pipelined`]. Mutations should carry an
    /// idempotency key so a retry after a broken pipeline stays
    /// exactly-once.
    pub fn send_pipelined(
        &mut self,
        idem_key: Option<u64>,
        request: &BankRequest,
    ) -> Result<u64, BankError> {
        let bytes = request.to_bytes();
        Ok(match idem_key {
            Some(key) => self.rpc.send_request_with_key(key, &bytes)?,
            None => self.rpc.send_request(&bytes)?,
        })
    }

    /// Waits for the response to a pipelined request by correlation id.
    pub fn recv_pipelined(&mut self, id: u64) -> Result<BankResponse, BankError> {
        let raw = self.rpc.recv_response(id)?;
        let resp = BankResponse::from_bytes(&raw)?;
        if let BankResponse::Error { kind, message, detail } = resp {
            return Err(error_from_wire(kind, message, detail));
        }
        Ok(resp)
    }

    fn unexpected(resp: BankResponse) -> BankError {
        BankError::Protocol(format!("unexpected response {resp:?}"))
    }

    /// Create New Account (§5.2).
    pub fn create_account(&mut self, organization: Option<String>) -> Result<AccountId, BankError> {
        match self.call(&BankRequest::CreateAccount { organization })? {
            BankResponse::AccountCreated { account } => Ok(account),
            other => Err(Self::unexpected(other)),
        }
    }

    /// The caller's own account record.
    pub fn my_account(&mut self) -> Result<AccountRecord, BankError> {
        match self.call(&BankRequest::MyAccount)? {
            BankResponse::Account(r) => Ok(r),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Request Account Details / Check Balance (§5.2).
    pub fn account_details(&mut self, account: AccountId) -> Result<AccountRecord, BankError> {
        match self.call(&BankRequest::AccountDetails { account })? {
            BankResponse::Account(r) => Ok(r),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Update Account Details (§5.2).
    pub fn update_account(
        &mut self,
        account: AccountId,
        certificate_name: String,
        organization: Option<String>,
    ) -> Result<(), BankError> {
        match self.call(&BankRequest::UpdateAccount { account, certificate_name, organization })? {
            BankResponse::Confirmation { .. } => Ok(()),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Request Account Statement (§5.2).
    pub fn statement(
        &mut self,
        account: AccountId,
        start_ms: u64,
        end_ms: u64,
    ) -> Result<Statement, BankError> {
        match self.call(&BankRequest::Statement { account, start_ms, end_ms })? {
            BankResponse::Statement { account, transactions, transfers } => {
                Ok(Statement { account, transactions, transfers })
            }
            other => Err(Self::unexpected(other)),
        }
    }

    /// Queries the ops plane: a metrics snapshot, a structured health
    /// report, or the flight-recorder trace dump. The caller's base
    /// identity must be enrolled as an `OPS_ADMIN` on the bank
    /// (`GridBank::add_ops_admin`); everyone else — account admins
    /// included — gets [`BankError::NotAuthorized`].
    pub fn ops_query(
        &mut self,
        query: crate::api::OpsQuery,
    ) -> Result<crate::api::OpsReport, BankError> {
        match self.call(&BankRequest::OpsQuery { query })? {
            BankResponse::OpsReport { report } => Ok(report),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Perform Funds Availability Check (§5.2): locks the amount.
    pub fn check_funds(&mut self, account: AccountId, amount: Credits) -> Result<(), BankError> {
        match self.call(&BankRequest::CheckFunds { account, amount })? {
            BankResponse::Confirmation { .. } => Ok(()),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Request Direct Transfer (§5.2) — the pay-before-use protocol.
    pub fn direct_transfer(
        &mut self,
        to: AccountId,
        amount: Credits,
        recipient_address: &str,
    ) -> Result<TransferConfirmation, BankError> {
        match self.call(&BankRequest::DirectTransfer {
            to,
            amount,
            recipient_address: recipient_address.to_string(),
        })? {
            BankResponse::Confirmed(c) => Ok(c),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Request GridCheque (§5.2) — pay-after-use.
    pub fn request_cheque(
        &mut self,
        payee_cert: &str,
        amount: Credits,
        validity_ms: u64,
    ) -> Result<GridCheque, BankError> {
        match self.call(&BankRequest::RequestCheque {
            payee_cert: payee_cert.to_string(),
            amount,
            validity_ms,
        })? {
            BankResponse::Cheque(c) => Ok(c),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Redeem GridCheque (§5.2); returns (paid, released).
    pub fn redeem_cheque(
        &mut self,
        cheque: GridCheque,
        rur: ResourceUsageRecord,
    ) -> Result<(Credits, Credits), BankError> {
        match self.call(&BankRequest::RedeemCheque { cheque, rur })? {
            BankResponse::Redeemed { paid, released } => Ok((paid, released)),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Redeem a batch of cheques in one round trip (§3.1); entries settle
    /// independently and failures are returned per entry.
    #[allow(clippy::type_complexity)]
    pub fn redeem_cheque_batch(
        &mut self,
        items: Vec<(GridCheque, ResourceUsageRecord)>,
    ) -> Result<Vec<Result<(Credits, Credits), BankError>>, BankError> {
        match self.call(&BankRequest::RedeemChequeBatch { items })? {
            BankResponse::RedeemedBatch { results } => Ok(results
                .into_iter()
                .map(|r| r.map_err(|(kind, msg)| error_from_wire(kind, msg, 0)))
                .collect()),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Request GridHash chain (§5.2) — pay-as-you-go.
    pub fn request_hash_chain(
        &mut self,
        payee_cert: &str,
        length: u32,
        value_per_word: Credits,
        validity_ms: u64,
    ) -> Result<ClientHashChain, BankError> {
        match self.call(&BankRequest::RequestHashChain {
            payee_cert: payee_cert.to_string(),
            length,
            value_per_word,
            validity_ms,
        })? {
            BankResponse::HashChain { commitment, signature, chain } => {
                Ok(ClientHashChain { commitment, signature, chain })
            }
            other => Err(Self::unexpected(other)),
        }
    }

    /// Redeem GridHash chain up to `payword` (§5.2); returns the amount
    /// newly paid.
    pub fn redeem_payword(
        &mut self,
        commitment: ChainCommitment,
        signature: gridbank_crypto::merkle::MerkleSignature,
        payword: PayWord,
        rur_blob: Vec<u8>,
    ) -> Result<Credits, BankError> {
        match self.call(&BankRequest::RedeemPayWord { commitment, signature, payword, rur_blob })? {
            BankResponse::Redeemed { paid, .. } => Ok(paid),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Closes a hash chain, releasing the unspent reservation.
    pub fn close_hash_chain(&mut self, commitment: ChainCommitment) -> Result<Credits, BankError> {
        match self.call(&BankRequest::CloseHashChain { commitment })? {
            BankResponse::Redeemed { released, .. } => Ok(released),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Registers the caller's resource description (§4.2 pricing input).
    pub fn register_resource_description(
        &mut self,
        desc: ResourceDescription,
    ) -> Result<(), BankError> {
        match self.call(&BankRequest::RegisterResourceDescription { desc })? {
            BankResponse::Confirmation { .. } => Ok(()),
            other => Err(Self::unexpected(other)),
        }
    }

    /// §4.2 market price estimate.
    pub fn estimate_price(
        &mut self,
        desc: ResourceDescription,
        min_similarity_ppk: u64,
    ) -> Result<Credits, BankError> {
        match self.call(&BankRequest::EstimatePrice { desc, min_similarity_ppk })? {
            BankResponse::Estimate { price } => Ok(price),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Admin: deposit (§5.2.1).
    pub fn admin_deposit(&mut self, account: AccountId, amount: Credits) -> Result<u64, BankError> {
        match self.call(&BankRequest::AdminDeposit { account, amount })? {
            BankResponse::Confirmation { transaction_id } => Ok(transaction_id),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Admin: withdraw (§5.2.1).
    pub fn admin_withdraw(
        &mut self,
        account: AccountId,
        amount: Credits,
    ) -> Result<u64, BankError> {
        match self.call(&BankRequest::AdminWithdraw { account, amount })? {
            BankResponse::Confirmation { transaction_id } => Ok(transaction_id),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Admin: change credit limit (§5.2.1).
    pub fn admin_credit_limit(
        &mut self,
        account: AccountId,
        new_limit: Credits,
    ) -> Result<(), BankError> {
        match self.call(&BankRequest::AdminCreditLimit { account, new_limit })? {
            BankResponse::Confirmation { .. } => Ok(()),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Admin: cancel transfer (§5.2.1).
    pub fn admin_cancel_transfer(&mut self, transaction_id: u64) -> Result<u64, BankError> {
        match self.call(&BankRequest::AdminCancelTransfer { transaction_id })? {
            BankResponse::Confirmation { transaction_id } => Ok(transaction_id),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Inter-branch: delivers a cross-branch credit to this bank (the
    /// payee's home branch). `key` must be the durable key from the
    /// origin's journaled pending-credit row so re-deliveries dedup.
    pub fn ib_credit(
        &mut self,
        key: u64,
        to: AccountId,
        amount: Credits,
        origin_branch: u16,
        rur_blob: Vec<u8>,
    ) -> Result<u64, BankError> {
        match self
            .call_keyed(Some(key), &BankRequest::IbCredit { to, amount, origin_branch, rur_blob })?
        {
            BankResponse::Confirmation { transaction_id } => Ok(transaction_id),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Inter-branch: proposes one §6 netting round to this bank; returns
    /// the peer's gross return flow (`IbSettleAck`).
    pub fn ib_settle_proposal(
        &mut self,
        key: u64,
        origin_branch: u16,
        gross_out: Credits,
    ) -> Result<Credits, BankError> {
        match self
            .call_keyed(Some(key), &BankRequest::IbSettleProposal { origin_branch, gross_out })?
        {
            BankResponse::IbSettleAck { gross_back } => Ok(gross_back),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Admin: close account (§5.2.1).
    pub fn admin_close_account(
        &mut self,
        account: AccountId,
        transfer_to: Option<AccountId>,
    ) -> Result<(), BankError> {
        match self.call(&BankRequest::AdminCloseAccount { account, transfer_to })? {
            BankResponse::Confirmation { .. } => Ok(()),
            other => Err(Self::unexpected(other)),
        }
    }
}
