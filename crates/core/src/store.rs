//! The on-disk storage engine behind [`crate::db::Database`].
//!
//! The paper's GridBank server sits on a persistent DBMS (§3.2); this
//! module is the durable substrate of our embedded substitute. State is
//! **account-sharded**: every journal entry is routed to exactly one of
//! the [`crate::db`] shards (by account id, caller certificate, or
//! cross-branch credit key), and each shard owns its own directory of
//! rotating, checksummed **journal segment files** plus periodic
//! **snapshot files**. Crash recovery loads the newest valid snapshot
//! per shard and replays only the journal tail past it, so
//! restart-to-serving time is bounded by the tail length — not by the
//! full history. Compaction deletes segments the snapshots have made
//! redundant.
//!
//! Byte-level file formats, the durability contract, the recovery state
//! machine, and the compaction invariants are documented in
//! `docs/STORAGE.md`; this module is their implementation. The engine
//! is deliberately dependency-free: plain `std::fs`, the workspace's
//! own [`gridbank_rur::codec`] framing, and an FNV-1a checksum.

use std::collections::BTreeMap;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use gridbank_rur::codec::{ByteReader, ByteWriter, Decode, Encode};
use gridbank_rur::RurError;

use crate::db::{
    entry_shard, AccountRecord, JournalEntry, PendingIbCredit, TransactionRecord, TransferRecord,
    SHARDS,
};
use crate::error::BankError;
use crate::sync::{rank, AtomicBool, AtomicU64, OrderedMutex, Ordering};

/// Store format version; bumped on any incompatible layout change.
pub const FORMAT_VERSION: u32 = 1;

const MANIFEST_MAGIC: u32 = 0x4742_4D46; // "GBMF"
const SEGMENT_MAGIC: u32 = 0x4742_5347; // "GBSG"
const SNAPSHOT_MAGIC: u32 = 0x4742_534E; // "GBSN"
const COMPACTED_MAGIC: u32 = 0x4742_4354; // "GBCT"

/// Segment record frame overhead: `len: u32` + `check: u64`.
const FRAME_HEADER: usize = 12;
/// Segment file header size: magic + version + shard + first_lsn.
const SEGMENT_HEADER: usize = 20;

/// Tuning for the on-disk store.
#[derive(Clone, Debug)]
pub struct StoreConfig {
    /// Root directory; created on first open.
    pub dir: PathBuf,
    /// `fsync` segment appends and snapshot files. `true` is the
    /// durability contract of docs/STORAGE.md §3; `false` trades the
    /// power-failure guarantee for speed (process-crash durability is
    /// retained either way because the OS holds the written pages).
    pub fsync: bool,
    /// Rotate a shard's active segment once it exceeds this many bytes.
    pub segment_bytes: u64,
    /// [`crate::db::Database::maybe_checkpoint`] snapshots a shard once
    /// this many entries accumulated in its journal tail.
    pub snapshot_every: u64,
    /// Snapshot generations kept per shard (≥ 1). Compaction only drops
    /// segments already covered by the *oldest retained* snapshot, so a
    /// torn newest snapshot can always fall back one generation.
    pub retain_snapshots: usize,
}

impl StoreConfig {
    /// A config rooted at `dir` with production defaults.
    pub fn at(dir: impl Into<PathBuf>) -> Self {
        StoreConfig {
            dir: dir.into(),
            fsync: true,
            segment_bytes: 8 * 1024 * 1024,
            snapshot_every: 10_000,
            retain_snapshots: 2,
        }
    }

    /// Disables `fsync` (benchmarks, bulk loads, tests).
    pub fn no_fsync(mut self) -> Self {
        self.fsync = false;
        self
    }
}

/// FNV-1a 64-bit over `bytes` — the store's corruption check (and the
/// ledger digest hash). Detection-grade, not cryptographic; the threat
/// model is torn writes and bit rot, not an adversary (docs/STORAGE.md §2).
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn storage_err(context: &str, e: impl std::fmt::Display) -> BankError {
    BankError::Storage(format!("{context}: {e}"))
}

fn shard_dir(root: &Path, shard: usize) -> PathBuf {
    root.join(format!("shard-{shard:02}"))
}

fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("seg-{seq:08}.gbj"))
}

fn snapshot_path(dir: &Path, through_lsn: u64) -> PathBuf {
    dir.join(format!("snap-{through_lsn:020}.gbs"))
}

/// Parses `prefix-<number>.<ext>` names back to their number.
fn parse_numbered(name: &str, prefix: &str, ext: &str) -> Option<u64> {
    name.strip_prefix(prefix)?.strip_suffix(ext)?.parse().ok()
}

// ---------------------------------------------------------------------------
// Shard snapshot: the per-shard durable state image.
// ---------------------------------------------------------------------------

/// One consumed idempotency stamp inside a snapshot. `order` is the
/// stamp's position in the FIFO dedup queue at capture time, so recovery
/// can restore an approximation of the eviction order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SnapshotIdem {
    /// FIFO position at capture time.
    pub order: u64,
    /// Certificate name of the caller that consumed the key.
    pub cert: String,
    /// Client-generated idempotency key.
    pub key: u64,
    /// Remembered encoded response.
    pub response: Vec<u8>,
}

/// The durable image of one shard: every piece of [`crate::db::Database`]
/// state routed to it, plus the journal position (`through_lsn`) the
/// image is consistent with. Recovery = newest valid snapshot + replay
/// of the shard's journal entries with `lsn > through_lsn`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardSnapshot {
    /// Shard index the image belongs to.
    pub shard: u32,
    /// Every journal entry with `lsn <= through_lsn` routed to this
    /// shard is reflected in the image; entries past it are not.
    pub through_lsn: u64,
    /// Account-number allocator hint (max seen; recovery takes the max
    /// across shards and tail).
    pub next_account_hint: u32,
    /// Transaction-id allocator hint.
    pub next_tx_hint: u64,
    /// Account records homed on this shard, ordered by id.
    pub accounts: Vec<AccountRecord>,
    /// TRANSACTION rows whose account is homed here, in commit order.
    pub transactions: Vec<TransactionRecord>,
    /// TRANSFER rows whose drawer is homed here, in commit order.
    pub transfers: Vec<TransferRecord>,
    /// Idempotency stamps routed here (by certificate hash).
    pub idem: Vec<SnapshotIdem>,
    /// Unacknowledged cross-branch credits routed here (by key hash).
    pub pending: Vec<PendingIbCredit>,
}

impl ShardSnapshot {
    /// An empty image for `shard` at the journal's origin.
    pub fn empty(shard: u32) -> Self {
        ShardSnapshot {
            shard,
            through_lsn: 0,
            next_account_hint: 0,
            next_tx_hint: 0,
            accounts: Vec::new(),
            transactions: Vec::new(),
            transfers: Vec::new(),
            idem: Vec::new(),
            pending: Vec::new(),
        }
    }

    /// Serializes the snapshot (docs/STORAGE.md §2.3): header, the five
    /// sections, and a trailing FNV-1a checksum over everything before it.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w =
            ByteWriter::with_capacity(self.accounts.len().saturating_mul(96).saturating_add(256));
        w.put_u32(SNAPSHOT_MAGIC);
        w.put_u32(FORMAT_VERSION);
        w.put_u32(self.shard);
        w.put_u64(self.through_lsn);
        w.put_u32(self.next_account_hint);
        w.put_u64(self.next_tx_hint);
        w.put_u64(self.accounts.len() as u64);
        for r in &self.accounts {
            r.encode(&mut w);
        }
        w.put_u64(self.transactions.len() as u64);
        for t in &self.transactions {
            t.encode(&mut w);
        }
        w.put_u64(self.transfers.len() as u64);
        for t in &self.transfers {
            t.encode(&mut w);
        }
        w.put_u64(self.idem.len() as u64);
        for s in &self.idem {
            w.put_u64(s.order);
            w.put_str(&s.cert);
            w.put_u64(s.key);
            w.put_bytes(&s.response);
        }
        w.put_u64(self.pending.len() as u64);
        for p in &self.pending {
            // Reuse the journal codec: a pending credit is exactly the
            // payload of an `IbOut` entry.
            JournalEntry::IbOut(p.clone()).encode(&mut w);
        }
        let mut bytes = w.into_bytes();
        let check = fnv64(&bytes);
        bytes.extend_from_slice(&check.to_le_bytes());
        bytes
    }

    /// Parses and checksum-verifies a serialized snapshot.
    pub fn from_bytes(bytes: &[u8]) -> Result<ShardSnapshot, RurError> {
        if bytes.len() < 8 {
            return Err(RurError::Decode("snapshot too short".into()));
        }
        let (body, tail) = bytes.split_at(bytes.len().saturating_sub(8));
        let mut check = [0u8; 8];
        check.copy_from_slice(tail);
        if fnv64(body) != u64::from_le_bytes(check) {
            return Err(RurError::Decode("snapshot checksum mismatch".into()));
        }
        let mut r = ByteReader::new(body);
        if r.get_u32()? != SNAPSHOT_MAGIC {
            return Err(RurError::Decode("bad snapshot magic".into()));
        }
        let version = r.get_u32()?;
        if version != FORMAT_VERSION {
            return Err(RurError::Decode(format!("unsupported snapshot version {version}")));
        }
        let shard = r.get_u32()?;
        let through_lsn = r.get_u64()?;
        let next_account_hint = r.get_u32()?;
        let next_tx_hint = r.get_u64()?;
        let bounded = |n: u64| -> Result<usize, RurError> {
            if n > 1 << 28 {
                return Err(RurError::Decode("snapshot section too large".into()));
            }
            Ok(n as usize)
        };
        let n = bounded(r.get_u64()?)?;
        let mut accounts = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            accounts.push(AccountRecord::decode(&mut r)?);
        }
        let n = bounded(r.get_u64()?)?;
        let mut transactions = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            transactions.push(TransactionRecord::decode(&mut r)?);
        }
        let n = bounded(r.get_u64()?)?;
        let mut transfers = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            transfers.push(TransferRecord::decode(&mut r)?);
        }
        let n = bounded(r.get_u64()?)?;
        let mut idem = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            idem.push(SnapshotIdem {
                order: r.get_u64()?,
                cert: r.get_str()?,
                key: r.get_u64()?,
                response: r.get_bytes()?.to_vec(),
            });
        }
        let n = bounded(r.get_u64()?)?;
        let mut pending = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            match JournalEntry::decode(&mut r)? {
                JournalEntry::IbOut(p) => pending.push(p),
                other => {
                    return Err(RurError::Decode(format!(
                        "snapshot pending section holds non-IbOut entry {other:?}"
                    )))
                }
            }
        }
        r.finish()?;
        Ok(ShardSnapshot {
            shard,
            through_lsn,
            next_account_hint,
            next_tx_hint,
            accounts,
            transactions,
            transfers,
            idem,
            pending,
        })
    }
}

// ---------------------------------------------------------------------------
// Frames: journal entries on disk.
// ---------------------------------------------------------------------------

/// One decoded segment record: its LSN, the commit batch it belongs to
/// (first LSN + length), and the entry itself. A commit batch is one
/// `JournalStore::append` call — a multi-shard transfer, or a whole
/// group-commit flush. Acknowledgement happens only after the entire
/// batch reached every touched shard, so recovery drops any batch with
/// a missing member (it was never acked) instead of half-applying it.
#[derive(Clone, Debug)]
struct FrameRecord {
    lsn: u64,
    batch_first: u64,
    batch_len: u32,
    /// Byte offset of this frame in its segment file — where a repair
    /// truncation cuts if the frame's batch turns out torn.
    offset: u64,
    entry: JournalEntry,
}

fn encode_frame(
    out: &mut Vec<u8>,
    lsn: u64,
    batch_first: u64,
    batch_len: u32,
    entry: &JournalEntry,
) {
    let mut w = ByteWriter::with_capacity(64);
    w.put_u64(lsn);
    w.put_u64(batch_first);
    w.put_u32(batch_len);
    entry.encode(&mut w);
    let body = w.into_bytes();
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&fnv64(&body).to_le_bytes());
    out.extend_from_slice(&body);
}

/// Outcome of scanning one segment file's record stream.
struct SegmentScan {
    /// Decoded records, in file order (= LSN order).
    records: Vec<FrameRecord>,
    /// `true` when the scan stopped at a truncated or checksum-failed
    /// frame before the end of the file — a torn tail.
    torn: bool,
    /// Byte length of the valid prefix: the offset just past the last
    /// intact frame. Recovery truncates a torn final segment here.
    clean_len: u64,
}

/// Reads a segment file. A short/corrupt final frame ends the scan with
/// `torn = true`; a bad header is an error (the file is not a segment).
fn read_segment(path: &Path, expect_shard: u32) -> Result<SegmentScan, BankError> {
    let bytes = fs::read(path).map_err(|e| storage_err(&path.display().to_string(), e))?;
    if bytes.len() < SEGMENT_HEADER {
        // A segment created but never written past its header — or torn
        // inside the header itself. Treat as an empty torn segment.
        return Ok(SegmentScan { records: Vec::new(), torn: !bytes.is_empty(), clean_len: 0 });
    }
    let mut r = ByteReader::new(&bytes[..SEGMENT_HEADER]);
    let magic = r.get_u32().map_err(|e| storage_err("segment header", e))?;
    let version = r.get_u32().map_err(|e| storage_err("segment header", e))?;
    let shard = r.get_u32().map_err(|e| storage_err("segment header", e))?;
    let _first_lsn = r.get_u64().map_err(|e| storage_err("segment header", e))?;
    if magic != SEGMENT_MAGIC || version != FORMAT_VERSION || shard != expect_shard {
        return Err(BankError::Storage(format!(
            "{}: bad segment header (magic {magic:#x}, version {version}, shard {shard})",
            path.display()
        )));
    }
    let mut records = Vec::new();
    let mut pos = SEGMENT_HEADER;
    let mut torn = false;
    while pos < bytes.len() {
        let remaining = bytes.len().saturating_sub(pos);
        if remaining < FRAME_HEADER {
            torn = true;
            break;
        }
        let mut len4 = [0u8; 4];
        len4.copy_from_slice(&bytes[pos..pos.saturating_add(4)]);
        let len = u32::from_le_bytes(len4) as usize;
        let mut check8 = [0u8; 8];
        check8.copy_from_slice(&bytes[pos.saturating_add(4)..pos.saturating_add(12)]);
        let check = u64::from_le_bytes(check8);
        let body_start = pos.saturating_add(FRAME_HEADER);
        let body_end = body_start.saturating_add(len);
        if len == 0 || body_end > bytes.len() {
            torn = true;
            break;
        }
        let body = &bytes[body_start..body_end];
        if fnv64(body) != check {
            torn = true;
            break;
        }
        let mut br = ByteReader::new(body);
        let header = (br.get_u64(), br.get_u64(), br.get_u32());
        let (lsn, batch_first, batch_len) = match header {
            (Ok(l), Ok(f), Ok(n)) => (l, f, n),
            _ => {
                torn = true;
                break;
            }
        };
        match JournalEntry::decode(&mut br).and_then(|e| br.finish().map(|()| e)) {
            Ok(entry) => {
                records.push(FrameRecord { lsn, batch_first, batch_len, offset: pos as u64, entry })
            }
            Err(_) => {
                // The checksum held but the payload does not parse — a
                // format drift, not a torn write. Stop here too, but
                // callers distinguish last-segment (tolerated) from
                // mid-log (fatal) positions.
                torn = true;
                break;
            }
        }
        pos = body_end;
    }
    Ok(SegmentScan { records, torn, clean_len: pos as u64 })
}

// ---------------------------------------------------------------------------
// The live log: per-shard segment writers.
// ---------------------------------------------------------------------------

struct ShardWriter {
    dir: PathBuf,
    /// Sequence number of the *active* segment (created lazily).
    seq: u64,
    file: Option<fs::File>,
    bytes: u64,
}

impl ShardWriter {
    /// Closes the active segment (if any); the next append opens
    /// `seq + 1`. Called at snapshot time so compaction has a closed
    /// segment boundary to work with.
    fn rotate(&mut self, fsync: bool) -> Result<(), BankError> {
        if let Some(f) = self.file.take() {
            if fsync {
                f.sync_data().map_err(|e| storage_err("segment sync on rotate", e))?;
            }
            self.seq = self.seq.saturating_add(1);
            self.bytes = 0;
        }
        Ok(())
    }
}

/// The open, append-only side of the store: one rotating segment writer
/// per shard plus the global LSN allocator. Appends are serialized by
/// the [`crate::db`] journal lock; the group-commit queue amortizes the
/// per-batch `fsync` exactly as it amortizes the journal acquisition.
pub struct DiskLog {
    cfg: StoreConfig,
    /// Next LSN to assign (LSNs are global across shards, strictly
    /// increasing, sparse within any one shard's files).
    next_lsn: AtomicU64,
    shards: Vec<OrderedMutex<ShardWriter>>,
    /// Entries appended per shard since its last snapshot — the
    /// `maybe_checkpoint` trigger.
    since_snapshot: Vec<AtomicU64>,
    /// Sticky I/O failure flag: once an append fails, acks are no longer
    /// durable and the health report degrades (docs/STORAGE.md §3.4).
    failed: AtomicBool,
}

impl DiskLog {
    /// Root directory of the store.
    pub fn dir(&self) -> &Path {
        &self.cfg.dir
    }

    /// The store configuration.
    pub fn config(&self) -> &StoreConfig {
        &self.cfg
    }

    /// Highest LSN assigned so far (0 before the first append).
    pub fn last_lsn(&self) -> u64 {
        self.next_lsn.load(Ordering::SeqCst).saturating_sub(1)
    }

    /// Entries appended to `shard` since its last snapshot.
    pub fn tail_len(&self, shard: usize) -> u64 {
        self.since_snapshot.get(shard).map_or(0, |c| c.load(Ordering::Relaxed))
    }

    /// Whether every append so far reached disk. `false` means a prior
    /// append hit an I/O error: the process keeps serving from memory,
    /// but acknowledgements are no longer crash-durable.
    pub fn healthy(&self) -> bool {
        !self.failed.load(Ordering::Relaxed)
    }

    /// Appends `entries` as one commit batch, assigning consecutive
    /// LSNs. Caller (the journal lock) serializes invocations, so LSN
    /// order equals in-memory journal order. One buffered write and at
    /// most one `fsync` per *touched shard* per call — batching is the
    /// group-commit leader's job. Every frame carries the batch bounds,
    /// so recovery can refuse to half-apply a batch torn across shards.
    pub(crate) fn append(&self, entries: &[JournalEntry]) {
        if entries.is_empty() {
            return;
        }
        let batch_len = entries.len() as u32;
        let batch_first = self.next_lsn.fetch_add(entries.len() as u64, Ordering::SeqCst);
        // Route and frame first, one buffer per touched shard.
        let mut buffers: Vec<Option<(Vec<u8>, u64, u64)>> = (0..SHARDS).map(|_| None).collect();
        for (i, entry) in entries.iter().enumerate() {
            let lsn = batch_first.saturating_add(i as u64);
            let shard = entry_shard(entry);
            let slot = match buffers.get_mut(shard) {
                Some(s) => s,
                None => continue,
            };
            let (buf, _first, count) = slot.get_or_insert_with(|| (Vec::new(), lsn, 0));
            encode_frame(buf, lsn, batch_first, batch_len, entry);
            *count = count.saturating_add(1);
        }
        for (shard, slot) in buffers.into_iter().enumerate() {
            let Some((buf, first_lsn, count)) = slot else { continue };
            if let Err(e) = self.write_shard(shard, &buf, first_lsn) {
                if !self.failed.swap(true, Ordering::Relaxed) {
                    gridbank_obs::count("db.journal.disk_errors", 1);
                    eprintln!(
                        "gridbank-store: shard {shard} append failed ({e}); \
                         continuing in memory — acks are no longer crash-durable"
                    );
                }
            }
            if let Some(c) = self.since_snapshot.get(shard) {
                c.fetch_add(count, Ordering::Relaxed);
            }
        }
    }

    fn write_shard(&self, shard: usize, framed: &[u8], first_lsn: u64) -> Result<(), BankError> {
        let writer = match self.shards.get(shard) {
            Some(w) => w,
            None => return Err(BankError::Storage(format!("no such shard {shard}"))),
        };
        let mut w = writer.lock();
        if w.bytes >= self.cfg.segment_bytes {
            w.rotate(self.cfg.fsync)?;
        }
        if w.file.is_none() {
            // lint:allow(blocking-under-lock) first append to a fresh shard dir only;
            // the writer lock *is* the per-shard append serializer (docs/STORAGE.md §2)
            fs::create_dir_all(&w.dir).map_err(|e| storage_err("create shard dir", e))?;
            let path = segment_path(&w.dir, w.seq);
            // lint:allow(blocking-under-lock) segment open on rotate boundary; rare and
            // must happen under the writer lock to keep seq/bytes coherent
            let mut f = fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .map_err(|e| storage_err(&path.display().to_string(), e))?;
            let mut h = ByteWriter::with_capacity(SEGMENT_HEADER);
            h.put_u32(SEGMENT_MAGIC);
            h.put_u32(FORMAT_VERSION);
            h.put_u32(shard as u32);
            h.put_u64(first_lsn);
            let header = h.into_bytes();
            f.write_all(&header).map_err(|e| storage_err("segment header write", e))?;
            w.bytes = header.len() as u64;
            w.file = Some(f);
        }
        let Some(f) = w.file.as_mut() else {
            return Err(BankError::Storage("segment writer vanished".into()));
        };
        f.write_all(framed).map_err(|e| storage_err("segment append", e))?;
        if self.cfg.fsync {
            // lint:allow(blocking-under-lock) the group-commit fsync: one sync_data
            // covers the whole batch; moving it off-lock is ROADMAP item 1
            f.sync_data().map_err(|e| storage_err("segment fsync", e))?;
        }
        w.bytes = w.bytes.saturating_add(framed.len() as u64);
        Ok(())
    }

    /// Writes `snap` durably: tmp file → `fsync` → atomic rename →
    /// directory `fsync` → read-back verification. Only after the
    /// verification does the shard's tail counter reset and the segment
    /// rotate; a crash at any earlier point leaves the previous
    /// snapshot authoritative. Returns the bytes written.
    pub(crate) fn write_snapshot(&self, snap: &ShardSnapshot) -> Result<u64, BankError> {
        let shard = snap.shard as usize;
        let dir = shard_dir(&self.cfg.dir, shard);
        fs::create_dir_all(&dir).map_err(|e| storage_err("create shard dir", e))?;
        let bytes = snap.to_bytes();
        let final_path = snapshot_path(&dir, snap.through_lsn);
        let tmp_path = final_path.with_extension("gbs.tmp");
        {
            let mut f = fs::File::create(&tmp_path)
                .map_err(|e| storage_err(&tmp_path.display().to_string(), e))?;
            f.write_all(&bytes).map_err(|e| storage_err("snapshot write", e))?;
            if self.cfg.fsync {
                f.sync_all().map_err(|e| storage_err("snapshot fsync", e))?;
            }
        }
        fs::rename(&tmp_path, &final_path).map_err(|e| storage_err("snapshot rename", e))?;
        if self.cfg.fsync {
            if let Ok(d) = fs::File::open(&dir) {
                let _ = d.sync_all();
            }
        }
        // Belt and braces: never compact on the strength of a snapshot
        // we cannot read back.
        let reread = fs::read(&final_path).map_err(|e| storage_err("snapshot read-back", e))?;
        ShardSnapshot::from_bytes(&reread).map_err(|e| storage_err("snapshot verify", e))?;
        if let Some(c) = self.since_snapshot.get(shard) {
            c.store(0, Ordering::Relaxed);
        }
        if let Some(w) = self.shards.get(shard) {
            w.lock().rotate(self.cfg.fsync)?;
        }
        gridbank_obs::count("db.snapshot.writes", 1);
        gridbank_obs::count("db.snapshot.bytes", bytes.len() as u64);
        Ok(bytes.len() as u64)
    }

    /// Compacts one shard: prunes snapshot generations beyond
    /// `retain_snapshots`, records the covered prefix in the shard's
    /// `COMPACTED` marker, and deletes every *closed* segment whose
    /// entries are all at or below the oldest retained snapshot's
    /// `through_lsn`. Returns `(segments_dropped, snapshots_pruned)`.
    pub(crate) fn compact_shard(&self, shard: usize) -> Result<(usize, usize), BankError> {
        let dir = shard_dir(&self.cfg.dir, shard);
        let mut snaps = list_numbered(&dir, "snap-", ".gbs")?;
        if snaps.is_empty() {
            return Ok((0, 0));
        }
        snaps.sort_unstable();
        let retain = self.cfg.retain_snapshots.max(1);
        let cut = snaps.len().saturating_sub(retain);
        let mut pruned = 0usize;
        for lsn in snaps.drain(..cut) {
            if fs::remove_file(snapshot_path(&dir, lsn)).is_ok() {
                pruned = pruned.saturating_add(1);
            }
        }
        // `snaps` now holds the retained generations, oldest first.
        let Some(&oldest_retained) = snaps.first() else { return Ok((0, pruned)) };

        // Marker first, then deletion: recovery refuses to run from a
        // snapshot older than the marker, so a crash between the two
        // steps can never silently lose the gap.
        write_compacted_marker(&dir, oldest_retained, self.cfg.fsync)?;

        let mut segs = list_numbered(&dir, "seg-", ".gbj")?;
        segs.sort_unstable();
        let active_seq = self.shards.get(shard).map(|w| w.lock().seq);
        let mut dropped = 0usize;
        // A closed segment may be deleted when its successor's first
        // LSN shows every entry it holds is <= oldest_retained
        // (docs/STORAGE.md §4: LSNs are strictly increasing across a
        // shard's segment sequence).
        for pair in segs.windows(2) {
            let (seq, next_seq) = (pair[0], pair[1]);
            if Some(seq) == active_seq {
                break;
            }
            let next_first = read_segment_first_lsn(&segment_path(&dir, next_seq))?;
            if next_first == 0 || next_first > oldest_retained.saturating_add(1) {
                break;
            }
            if fs::remove_file(segment_path(&dir, seq)).is_ok() {
                dropped = dropped.saturating_add(1);
            }
        }
        gridbank_obs::count("db.snapshot.compacted_segments", dropped as u64);
        Ok((dropped, pruned))
    }
}

/// Reads only a segment's header to learn its first LSN (0 when the
/// file is shorter than a header — an empty torn segment).
fn read_segment_first_lsn(path: &Path) -> Result<u64, BankError> {
    let bytes = fs::read(path).map_err(|e| storage_err(&path.display().to_string(), e))?;
    if bytes.len() < SEGMENT_HEADER {
        return Ok(0);
    }
    let mut r = ByteReader::new(&bytes[..SEGMENT_HEADER]);
    let _magic = r.get_u32().map_err(|e| storage_err("segment header", e))?;
    let _version = r.get_u32().map_err(|e| storage_err("segment header", e))?;
    let _shard = r.get_u32().map_err(|e| storage_err("segment header", e))?;
    r.get_u64().map_err(|e| storage_err("segment header", e))
}

fn write_compacted_marker(dir: &Path, through: u64, fsync: bool) -> Result<(), BankError> {
    let mut w = ByteWriter::with_capacity(24);
    w.put_u32(COMPACTED_MAGIC);
    w.put_u32(FORMAT_VERSION);
    w.put_u64(through);
    let mut bytes = w.into_bytes();
    let check = fnv64(&bytes);
    bytes.extend_from_slice(&check.to_le_bytes());
    let final_path = dir.join("COMPACTED");
    let tmp = dir.join("COMPACTED.tmp");
    {
        let mut f = fs::File::create(&tmp).map_err(|e| storage_err("compacted marker", e))?;
        f.write_all(&bytes).map_err(|e| storage_err("compacted marker", e))?;
        if fsync {
            f.sync_all().map_err(|e| storage_err("compacted marker fsync", e))?;
        }
    }
    fs::rename(&tmp, &final_path).map_err(|e| storage_err("compacted marker rename", e))
}

fn read_compacted_marker(dir: &Path) -> u64 {
    let Ok(bytes) = fs::read(dir.join("COMPACTED")) else { return 0 };
    if bytes.len() != 24 {
        return 0;
    }
    let (body, tail) = bytes.split_at(16);
    let mut check = [0u8; 8];
    check.copy_from_slice(tail);
    if fnv64(body) != u64::from_le_bytes(check) {
        return 0;
    }
    let mut r = ByteReader::new(body);
    match (r.get_u32(), r.get_u32(), r.get_u64()) {
        (Ok(magic), Ok(version), Ok(through))
            if magic == COMPACTED_MAGIC && version == FORMAT_VERSION =>
        {
            through
        }
        _ => 0,
    }
}

fn list_numbered(dir: &Path, prefix: &str, ext: &str) -> Result<Vec<u64>, BankError> {
    let mut out = Vec::new();
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(storage_err(&dir.display().to_string(), e)),
    };
    for entry in entries {
        let entry = entry.map_err(|e| storage_err("read_dir", e))?;
        if let Some(name) = entry.file_name().to_str() {
            if let Some(n) = parse_numbered(name, prefix, ext) {
                out.push(n);
            }
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Manifest.
// ---------------------------------------------------------------------------

fn manifest_bytes(bank: u16, branch: u16) -> Vec<u8> {
    let mut w = ByteWriter::with_capacity(32);
    w.put_u32(MANIFEST_MAGIC);
    w.put_u32(FORMAT_VERSION);
    w.put_u32(bank as u32);
    w.put_u32(branch as u32);
    w.put_u32(SHARDS as u32);
    let mut bytes = w.into_bytes();
    let check = fnv64(&bytes);
    bytes.extend_from_slice(&check.to_le_bytes());
    bytes
}

/// Parsed `MANIFEST` identity of a store directory.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Manifest {
    /// Format version the store was written with.
    pub version: u32,
    /// Bank number the store belongs to.
    pub bank: u16,
    /// Branch number the store belongs to.
    pub branch: u16,
    /// Shard count the layout was built with.
    pub shards: u32,
}

/// Reads and verifies a store's `MANIFEST`.
pub fn read_manifest(dir: &Path) -> Result<Manifest, BankError> {
    let path = dir.join("MANIFEST");
    let bytes = fs::read(&path).map_err(|e| storage_err(&path.display().to_string(), e))?;
    if bytes.len() != 28 {
        return Err(BankError::Storage("MANIFEST has wrong length".into()));
    }
    let (body, tail) = bytes.split_at(20);
    let mut check = [0u8; 8];
    check.copy_from_slice(tail);
    if fnv64(body) != u64::from_le_bytes(check) {
        return Err(BankError::Storage("MANIFEST checksum mismatch".into()));
    }
    let mut r = ByteReader::new(body);
    let magic = r.get_u32().map_err(|e| storage_err("MANIFEST", e))?;
    let version = r.get_u32().map_err(|e| storage_err("MANIFEST", e))?;
    let bank = r.get_u32().map_err(|e| storage_err("MANIFEST", e))?;
    let branch = r.get_u32().map_err(|e| storage_err("MANIFEST", e))?;
    let shards = r.get_u32().map_err(|e| storage_err("MANIFEST", e))?;
    if magic != MANIFEST_MAGIC {
        return Err(BankError::Storage("bad MANIFEST magic".into()));
    }
    if version != FORMAT_VERSION {
        return Err(BankError::Storage(format!("unsupported store version {version}")));
    }
    Ok(Manifest { version, bank: bank as u16, branch: branch as u16, shards })
}

// ---------------------------------------------------------------------------
// Recovery.
// ---------------------------------------------------------------------------

/// What recovery did — the evidence behind the "tail-only" claim
/// (docs/STORAGE.md §5). `tail_entries_replayed` is the number the
/// bounded-recovery tests assert on.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Shards in the store.
    pub shards: usize,
    /// Shards whose state came from a snapshot file (the rest were
    /// rebuilt from journal alone — a fresh or never-snapshotted store).
    pub snapshots_loaded: usize,
    /// Newest-generation snapshots that failed verification and were
    /// skipped in favor of an older generation.
    pub snapshots_skipped: usize,
    /// Journal entries replayed past the snapshots — the *tail*. This,
    /// not total history, bounds restart time.
    pub tail_entries_replayed: usize,
    /// Segment files scanned while collecting the tail.
    pub segments_scanned: usize,
    /// Shards whose final segment ended in a truncated or
    /// checksum-failed record (tolerated: the torn suffix never acked).
    pub torn_tails: usize,
    /// Tail entries dropped because their commit batch was torn: the
    /// crash hit mid-batch, some shards' frames never reached disk, and
    /// the batch as a whole was never acknowledged. Dropping the found
    /// members keeps multi-shard batches (e.g. both sides of a
    /// transfer) all-or-nothing.
    pub torn_batch_entries_dropped: usize,
    /// Accounts alive after recovery.
    pub accounts: usize,
    /// Wall-clock recovery time (directory scan to serving state).
    pub elapsed_ms: u64,
}

/// Everything read back from disk, ready to be folded into a fresh
/// [`crate::db::Database`]: one base image per shard plus the merged,
/// LSN-ordered journal tail.
pub struct RecoveredState {
    /// Base image per shard (empty image where no snapshot existed).
    pub bases: Vec<ShardSnapshot>,
    /// Tail entries past each shard's snapshot, merged across shards in
    /// global LSN order.
    pub tail: Vec<(u64, JournalEntry)>,
    /// Evidence report (finished by the caller with timing/accounts).
    pub report: RecoveryReport,
    /// Highest LSN observed anywhere (snapshot `through_lsn`s and tail
    /// entries); the log resumes at `max_lsn + 1`.
    pub max_lsn: u64,
}

/// Opens (or creates) the store at `cfg.dir` and recovers its state:
/// newest valid snapshot per shard, tail-only journal replay past it.
/// Returns the recovered state and the live log positioned to append.
pub fn open_store(
    bank: u16,
    branch: u16,
    cfg: StoreConfig,
) -> Result<(RecoveredState, DiskLog), BankError> {
    fs::create_dir_all(&cfg.dir).map_err(|e| storage_err("create store dir", e))?;
    let manifest_path = cfg.dir.join("MANIFEST");
    match read_manifest(&cfg.dir) {
        Ok(m) => {
            if m.bank != bank || m.branch != branch || m.shards as usize != SHARDS {
                return Err(BankError::Storage(format!(
                    "store at {} belongs to bank {} branch {} ({} shards), \
                     not bank {bank} branch {branch} ({SHARDS} shards)",
                    cfg.dir.display(),
                    m.bank,
                    m.branch,
                    m.shards
                )));
            }
        }
        Err(_) if !manifest_path.exists() => {
            fs::write(&manifest_path, manifest_bytes(bank, branch))
                .map_err(|e| storage_err("write MANIFEST", e))?;
        }
        Err(e) => return Err(e),
    }

    let mut report = RecoveryReport { shards: SHARDS, ..RecoveryReport::default() };
    let mut bases = Vec::with_capacity(SHARDS);
    // Tail records tagged with their shard and whether they sit in the
    // shard's final segment (only final-segment frames can belong to a
    // torn batch, and only they are truncatable).
    let mut raw_tail: Vec<(usize, bool, FrameRecord)> = Vec::new();
    // Per shard: final segment path + valid-prefix length, for repair.
    let mut finals: Vec<Option<(PathBuf, u64)>> = Vec::with_capacity(SHARDS);
    let mut max_lsn = 0u64;
    let mut writers = Vec::with_capacity(SHARDS);

    for shard in 0..SHARDS {
        let dir = shard_dir(&cfg.dir, shard);
        let compacted = read_compacted_marker(&dir);

        // Newest valid snapshot wins; corrupt generations are skipped.
        let mut snaps = list_numbered(&dir, "snap-", ".gbs")?;
        snaps.sort_unstable_by(|a, b| b.cmp(a));
        let mut base = None;
        for lsn in snaps {
            match fs::read(snapshot_path(&dir, lsn)) {
                Ok(bytes) => match ShardSnapshot::from_bytes(&bytes) {
                    Ok(s) if s.shard as usize == shard => {
                        base = Some(s);
                        break;
                    }
                    _ => report.snapshots_skipped = report.snapshots_skipped.saturating_add(1),
                },
                Err(_) => report.snapshots_skipped = report.snapshots_skipped.saturating_add(1),
            }
        }
        let base = match base {
            Some(s) => {
                report.snapshots_loaded = report.snapshots_loaded.saturating_add(1);
                s
            }
            None => ShardSnapshot::empty(shard as u32),
        };
        if base.through_lsn < compacted {
            return Err(BankError::Storage(format!(
                "shard {shard}: no valid snapshot covers the compacted journal prefix \
                 (best snapshot at LSN {}, journal compacted through LSN {compacted}); \
                 the store cannot be recovered completely",
                base.through_lsn
            )));
        }
        max_lsn = max_lsn.max(base.through_lsn);

        // Journal tail: every segment record past the snapshot. A torn
        // record is tolerated only at the very end of the newest
        // segment; anywhere else it is mid-log corruption.
        let mut segs = list_numbered(&dir, "seg-", ".gbj")?;
        segs.sort_unstable();
        let last_seq = segs.last().copied();
        let mut final_seg = None;
        for seq in &segs {
            let path = segment_path(&dir, *seq);
            let scan = read_segment(&path, shard as u32)?;
            report.segments_scanned = report.segments_scanned.saturating_add(1);
            let is_last = Some(*seq) == last_seq;
            if scan.torn {
                if is_last {
                    report.torn_tails = report.torn_tails.saturating_add(1);
                } else {
                    return Err(BankError::Storage(format!(
                        "{}: corrupt record before the final segment — mid-log corruption, \
                         not a torn tail",
                        path.display()
                    )));
                }
            }
            if is_last {
                final_seg = Some((path, scan.clean_len));
            }
            for rec in scan.records {
                max_lsn = max_lsn.max(rec.lsn);
                if rec.lsn > base.through_lsn {
                    raw_tail.push((shard, is_last, rec));
                }
            }
        }
        finals.push(final_seg);
        let next_seq = segs.last().map_or(1, |s| s.saturating_add(1));
        writers.push(OrderedMutex::new(
            rank::SEGMENT_WRITER,
            shard as u32,
            "segment-writer",
            ShardWriter { dir, seq: next_seq, file: None, bytes: 0 },
        ));
        bases.push(base);
    }

    // Batch atomicity: a commit batch may span several shard files, and
    // a crash mid-flush can persist some members but not others. A batch
    // wholly past every snapshot (`batch_first > max_through`) was never
    // acknowledged unless *all* its frames hit disk, so an incomplete
    // such batch is dropped in full — half a multi-shard transfer must
    // not replay. A batch that overlaps a snapshot *was* acknowledged
    // (snapshots cut at durable batch boundaries); its "missing"
    // members are simply covered by a snapshot.
    let max_through = bases.iter().map(|b| b.through_lsn).max().unwrap_or(0);
    let mut found: BTreeMap<u64, u32> = BTreeMap::new();
    for (_, _, rec) in &raw_tail {
        if rec.batch_first > max_through {
            let n = found.entry(rec.batch_first).or_insert(0u32);
            *n = n.saturating_add(1);
        }
    }
    // Because appends are serialized, only the globally-last batch can
    // be incomplete, and its surviving frames are each the last frames
    // of their shard's final segment. Truncating there (plus any torn
    // partial frame) makes recovery idempotent: the orphans can never
    // resurrect after later appends or snapshots move past them.
    let mut truncate_to: Vec<Option<u64>> =
        finals.iter().map(|f| f.as_ref().map(|&(_, clean)| clean)).collect();
    let mut tail: Vec<(u64, JournalEntry)> = Vec::with_capacity(raw_tail.len());
    for (shard, in_final, rec) in raw_tail {
        let complete = rec.batch_first <= max_through
            || found.get(&rec.batch_first).copied().unwrap_or(0) >= rec.batch_len;
        if complete {
            tail.push((rec.lsn, rec.entry));
        } else {
            report.torn_batch_entries_dropped = report.torn_batch_entries_dropped.saturating_add(1);
            if in_final {
                if let Some(cut) = truncate_to.get_mut(shard).and_then(|c| c.as_mut()) {
                    *cut = (*cut).min(rec.offset);
                }
            }
        }
    }
    for (shard, final_seg) in finals.iter().enumerate() {
        let (path, _) = match final_seg {
            Some(f) => f,
            None => continue,
        };
        let cut = match truncate_to.get(shard).copied().flatten() {
            Some(c) => c,
            None => continue,
        };
        let len = fs::metadata(path).map_err(|e| storage_err("stat segment", e))?.len();
        if cut < len {
            let f = fs::OpenOptions::new()
                .write(true)
                .open(path)
                .map_err(|e| storage_err("open segment for repair", e))?;
            f.set_len(cut).map_err(|e| storage_err("truncate torn suffix", e))?;
            f.sync_all().map_err(|e| storage_err("sync repaired segment", e))?;
        }
    }

    // Global LSN order across shards restores the original commit
    // interleaving for the whole tail.
    tail.sort_by_key(|(lsn, _)| *lsn);
    report.tail_entries_replayed = tail.len();

    let log = DiskLog {
        next_lsn: AtomicU64::new(max_lsn.saturating_add(1)),
        shards: writers,
        since_snapshot: (0..SHARDS).map(|_| AtomicU64::new(0)).collect(),
        failed: AtomicBool::new(false),
        cfg,
    };
    Ok((RecoveredState { bases, tail, report, max_lsn }, log))
}

// ---------------------------------------------------------------------------
// Offline inspection (`gridbank store`).
// ---------------------------------------------------------------------------

/// One shard's on-disk inventory.
#[derive(Clone, Debug, Default)]
pub struct ShardInventory {
    /// Segment files present.
    pub segments: usize,
    /// Total segment bytes.
    pub segment_bytes: u64,
    /// Snapshot generations present.
    pub snapshots: usize,
    /// Newest snapshot's `through_lsn` (0 when none).
    pub snapshot_lsn: u64,
    /// Newest snapshot bytes (0 when none).
    pub snapshot_bytes: u64,
    /// Accounts in the newest valid snapshot.
    pub snapshot_accounts: usize,
    /// Journal-tail entries past the newest snapshot (what a restart
    /// would replay).
    pub tail_entries: usize,
    /// Whether the newest segment ends in a torn record.
    pub torn_tail: bool,
    /// The shard's `COMPACTED` marker (0 when never compacted).
    pub compacted_through: u64,
}

/// A full offline inventory of a store directory.
#[derive(Clone, Debug)]
pub struct StoreInspection {
    /// The verified manifest.
    pub manifest: Manifest,
    /// Per-shard inventories, indexed by shard.
    pub shards: Vec<ShardInventory>,
}

impl StoreInspection {
    /// Total journal-tail entries a restart would replay.
    pub fn tail_entries(&self) -> usize {
        self.shards.iter().fold(0usize, |acc, s| acc.saturating_add(s.tail_entries))
    }

    /// Total accounts across the newest snapshots.
    pub fn snapshot_accounts(&self) -> usize {
        self.shards.iter().fold(0usize, |acc, s| acc.saturating_add(s.snapshot_accounts))
    }

    /// Total bytes on disk (segments + newest snapshots).
    pub fn total_bytes(&self) -> u64 {
        self.shards.iter().fold(0u64, |acc, s| {
            acc.saturating_add(s.segment_bytes).saturating_add(s.snapshot_bytes)
        })
    }
}

/// Reads a store directory without opening it for writing — the
/// `gridbank store` subcommand. Never mutates anything.
///
/// Distinguishes "this was never a store" (missing, empty, or
/// MANIFEST-less directory → [`BankError::NotAStore`]) from "this store
/// is damaged" (manifest present but unreadable → [`BankError::Storage`]).
pub fn inspect(dir: &Path) -> Result<StoreInspection, BankError> {
    let not_a_store = |reason: &str| BankError::NotAStore {
        dir: dir.display().to_string(),
        reason: reason.to_string(),
    };
    if !dir.exists() {
        return Err(not_a_store("directory does not exist"));
    }
    if !dir.is_dir() {
        return Err(not_a_store("not a directory"));
    }
    let mut entries = fs::read_dir(dir).map_err(|e| storage_err("read store dir", &e))?;
    if entries.next().is_none() {
        return Err(not_a_store("directory is empty"));
    }
    if !dir.join("MANIFEST").is_file() {
        return Err(not_a_store("no MANIFEST file"));
    }
    let manifest = read_manifest(dir)?;
    let mut shards = Vec::with_capacity(manifest.shards as usize);
    for shard in 0..manifest.shards as usize {
        let sdir = shard_dir(dir, shard);
        let mut inv = ShardInventory {
            compacted_through: read_compacted_marker(&sdir),
            ..ShardInventory::default()
        };
        let mut snaps = list_numbered(&sdir, "snap-", ".gbs")?;
        snaps.sort_unstable_by(|a, b| b.cmp(a));
        inv.snapshots = snaps.len();
        let mut through = 0u64;
        for lsn in snaps {
            let path = snapshot_path(&sdir, lsn);
            if let Ok(bytes) = fs::read(&path) {
                if let Ok(s) = ShardSnapshot::from_bytes(&bytes) {
                    inv.snapshot_lsn = s.through_lsn;
                    inv.snapshot_bytes = bytes.len() as u64;
                    inv.snapshot_accounts = s.accounts.len();
                    through = s.through_lsn;
                    break;
                }
            }
        }
        let mut segs = list_numbered(&sdir, "seg-", ".gbj")?;
        segs.sort_unstable();
        inv.segments = segs.len();
        let last_seq = segs.last().copied();
        for seq in segs {
            let path = segment_path(&sdir, seq);
            if let Ok(meta) = fs::metadata(&path) {
                inv.segment_bytes = inv.segment_bytes.saturating_add(meta.len());
            }
            if let Ok(scan) = read_segment(&path, shard as u32) {
                if scan.torn && Some(seq) == last_seq {
                    inv.torn_tail = true;
                }
                inv.tail_entries = inv
                    .tail_entries
                    .saturating_add(scan.records.iter().filter(|r| r.lsn > through).count());
            }
        }
        shards.push(inv);
    }
    Ok(StoreInspection { manifest, shards })
}

#[cfg(test)]
mod tests {
    use proptest::prelude::*;

    use super::*;
    use crate::db::AccountId;
    use gridbank_rur::Credits;

    fn arb_credits() -> impl Strategy<Value = Credits> {
        any::<i64>().prop_map(|v| Credits::from_micro(v as i128))
    }

    fn arb_account_id() -> impl Strategy<Value = AccountId> {
        (0u16..99, 0u16..9999, 0u32..1_000_000).prop_map(|(bank, branch, number)| AccountId {
            bank,
            branch,
            number,
        })
    }

    fn arb_account() -> impl Strategy<Value = AccountRecord> {
        (
            (arb_account_id(), "[a-zA-Z0-9/=_ ]{0,24}", proptest::option::of("[a-zA-Z0-9]{0,12}")),
            (arb_credits(), arb_credits(), "[a-zA-Z]{0,12}", arb_credits()),
        )
            .prop_map(
                |(
                    (id, certificate_name, organization),
                    (available, locked, currency, credit_limit),
                )| {
                    AccountRecord {
                        id,
                        certificate_name,
                        organization,
                        available,
                        locked,
                        currency,
                        credit_limit,
                    }
                },
            )
    }

    fn arb_transaction() -> impl Strategy<Value = TransactionRecord> {
        (any::<u64>(), arb_account_id(), 0u8..3, any::<u64>(), arb_credits()).prop_map(
            |(transaction_id, account, tag, date_ms, amount)| TransactionRecord {
                transaction_id,
                account,
                tx_type: crate::db::TransactionType::from_tag(tag).unwrap(),
                date_ms,
                amount,
            },
        )
    }

    fn arb_transfer() -> impl Strategy<Value = TransferRecord> {
        (
            (any::<u64>(), any::<u64>(), arb_account_id()),
            (
                arb_credits(),
                arb_account_id(),
                proptest::collection::vec(any::<u8>(), 0..32),
                any::<u64>(),
            ),
        )
            .prop_map(
                |((transaction_id, date_ms, drawer), (amount, recipient, rur_blob, trace_id))| {
                    TransferRecord {
                        transaction_id,
                        date_ms,
                        drawer,
                        amount,
                        recipient,
                        rur_blob,
                        trace_id,
                    }
                },
            )
    }

    fn arb_idem() -> impl Strategy<Value = SnapshotIdem> {
        (
            any::<u64>(),
            "[a-zA-Z0-9/=]{0,24}",
            any::<u64>(),
            proptest::collection::vec(any::<u8>(), 0..48),
        )
            .prop_map(|(order, cert, key, response)| SnapshotIdem {
                order,
                cert,
                key,
                response,
            })
    }

    fn arb_pending() -> impl Strategy<Value = PendingIbCredit> {
        (
            any::<u64>(),
            arb_account_id(),
            arb_credits(),
            any::<u16>(),
            arb_account_id(),
            proptest::option::of(("[a-z]{0,16}", any::<u64>())),
        )
            .prop_map(|(key, to, amount, origin, drawer, idem)| PendingIbCredit {
                key,
                to,
                amount,
                origin,
                drawer,
                idem,
            })
    }

    fn arb_snapshot() -> impl Strategy<Value = ShardSnapshot> {
        (
            (0u32..SHARDS as u32, any::<u64>(), any::<u32>(), any::<u64>()),
            proptest::collection::vec(arb_account(), 0..8),
            proptest::collection::vec(arb_transaction(), 0..8),
            proptest::collection::vec(arb_transfer(), 0..8),
            proptest::collection::vec(arb_idem(), 0..6),
            proptest::collection::vec(arb_pending(), 0..6),
        )
            .prop_map(
                |(
                    (shard, through_lsn, next_account_hint, next_tx_hint),
                    accounts,
                    transactions,
                    transfers,
                    idem,
                    pending,
                )| ShardSnapshot {
                    shard,
                    through_lsn,
                    next_account_hint,
                    next_tx_hint,
                    accounts,
                    transactions,
                    transfers,
                    idem,
                    pending,
                },
            )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// docs/STORAGE.md §2.3: the snapshot codec round-trips any state
        /// image exactly.
        #[test]
        fn snapshot_codec_round_trips(snap in arb_snapshot()) {
            let bytes = snap.to_bytes();
            let back = ShardSnapshot::from_bytes(&bytes).expect("decode");
            prop_assert_eq!(back, snap);
        }

        /// Any single flipped byte breaks the trailing checksum — the
        /// corruption detection compaction and recovery depend on.
        #[test]
        fn snapshot_codec_rejects_bit_rot(snap in arb_snapshot(), pos in any::<usize>()) {
            let mut bytes = snap.to_bytes();
            let i = pos % bytes.len();
            bytes[i] ^= 0x01;
            prop_assert!(ShardSnapshot::from_bytes(&bytes).is_err());
        }
    }

    #[test]
    fn truncated_snapshot_is_rejected() {
        let bytes = ShardSnapshot::empty(3).to_bytes();
        assert!(ShardSnapshot::from_bytes(&bytes).is_ok());
        for cut in 0..bytes.len() {
            assert!(ShardSnapshot::from_bytes(&bytes[..cut]).is_err(), "cut {cut} accepted");
        }
    }

    #[test]
    fn fnv64_matches_reference_vectors() {
        // FNV-1a 64 published test vectors.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn numbered_names_parse_and_sort() {
        assert_eq!(parse_numbered("seg-00000042.gbj", "seg-", ".gbj"), Some(42));
        assert_eq!(parse_numbered("snap-00000000000000000007.gbs", "snap-", ".gbs"), Some(7));
        assert_eq!(parse_numbered("seg-x.gbj", "seg-", ".gbj"), None);
        assert_eq!(parse_numbered("other-1.gbj", "seg-", ".gbj"), None);
    }
}
