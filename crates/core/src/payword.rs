//! GridHash — the pay-as-you-go payment instrument (§3.1).
//!
//! "A hash chain scheme based on PayWord would allow service consumers to
//! dynamically pay service providers for CPU time or per each computation
//! result delivered."
//!
//! The bank generates a hash chain `w_n → w_{n-1} → … → w_0` with
//! `w_i = H(w_{i+1})`, signs a commitment to the *root* `w_0`, the chain
//! length and the value per payword, and locks `n × value` on the drawer
//! (§3.4 guarantee). The GSC holds the full chain and pays the GSP by
//! revealing successive paywords: revealing `w_k` proves entitlement to
//! `k` paywords because `H^k(w_k) = w_0` is one-way. The GSP redeems
//! incrementally or at the end; the bank tracks the highest index paid per
//! chain, so replaying an old payword pays nothing.

use gridbank_crypto::keys::{SigningIdentity, VerifyingKey};
use gridbank_crypto::merkle::MerkleSignature;
use gridbank_crypto::rng::DeterministicStream;
use gridbank_crypto::sha256::{iterate_hash, sha256, Digest};
use gridbank_rur::codec::{ByteReader, ByteWriter, Decode, Encode};
use gridbank_rur::{Credits, RurError};

use std::collections::HashMap;
use std::sync::Arc;

use crate::sync::Mutex;

use crate::db::AccountId;
use crate::error::BankError;
use crate::guarantee::FundsGuarantee;

/// One revealed payword: the preimage and its index.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PayWord {
    /// Chain index: revealing `word` at index `k` pays for `k` units.
    pub index: u32,
    /// The `k`-th preimage of the committed root.
    pub word: Digest,
}

impl PayWord {
    /// Verifies this payword against a committed root.
    pub fn verify(&self, root: &Digest, max_len: u32) -> Result<(), BankError> {
        if self.index == 0 || self.index > max_len {
            return Err(BankError::InvalidInstrument(format!(
                "payword index {} outside 1..={max_len}",
                self.index
            )));
        }
        if iterate_hash(self.word, self.index as usize) != *root {
            return Err(BankError::InvalidInstrument(
                "payword does not hash to the committed root".into(),
            ));
        }
        Ok(())
    }
}

/// The bank-signed chain commitment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChainCommitment {
    /// Instrument id — also the reservation id.
    pub chain_id: u64,
    /// Drawer (GSC) account.
    pub drawer: AccountId,
    /// Payee certificate name the chain is bound to.
    pub payee_cert: String,
    /// Chain root `w_0`.
    pub root: Digest,
    /// Chain length `n`.
    pub length: u32,
    /// Value of each payword.
    pub value_per_word: Credits,
    /// Issue time.
    pub issued_ms: u64,
    /// Expiry.
    pub expires_ms: u64,
}

impl Encode for ChainCommitment {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u8(1);
        w.put_u64(self.chain_id);
        w.put_str(&self.drawer.to_string());
        w.put_str(&self.payee_cert);
        w.put_bytes(self.root.as_bytes());
        w.put_u32(self.length);
        self.value_per_word.encode(w);
        w.put_u64(self.issued_ms);
        w.put_u64(self.expires_ms);
    }
}

impl Decode for ChainCommitment {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, RurError> {
        let v = r.get_u8()?;
        if v != 1 {
            return Err(RurError::Decode(format!("chain version {v}")));
        }
        let chain_id = r.get_u64()?;
        let drawer = AccountId::parse(&r.get_str()?)
            .ok_or_else(|| RurError::Decode("bad drawer id".into()))?;
        let payee_cert = r.get_str()?;
        let root_bytes = r.get_bytes()?;
        if root_bytes.len() != 32 {
            return Err(RurError::Decode("bad root length".into()));
        }
        let mut root = [0u8; 32];
        root.copy_from_slice(root_bytes);
        Ok(ChainCommitment {
            chain_id,
            drawer,
            payee_cert,
            root: Digest(root),
            length: r.get_u32()?,
            value_per_word: Credits::decode(r)?,
            issued_ms: r.get_u64()?,
            expires_ms: r.get_u64()?,
        })
    }
}

/// What the GSC receives: the signed commitment plus the secret chain.
pub struct GridHashChain {
    /// The bank-signed commitment (shareable with the GSP).
    pub commitment: ChainCommitment,
    /// Bank signature over the commitment.
    pub signature: MerkleSignature,
    /// The full chain, `chain[i] = w_i` for `i` in `0..=n`. `chain[0]` is
    /// the public root; higher indices are secret until spent.
    chain: Vec<Digest>,
}

impl GridHashChain {
    /// The payword paying for `k` units (1-based).
    pub fn payword(&self, k: u32) -> Result<PayWord, BankError> {
        if k == 0 || k > self.commitment.length {
            return Err(BankError::InvalidInstrument(format!(
                "cannot spend {k} of {} paywords",
                self.commitment.length
            )));
        }
        Ok(PayWord { index: k, word: self.chain[k as usize] })
    }

    /// Verifies the bank signature on the commitment.
    pub fn verify_commitment(
        commitment: &ChainCommitment,
        signature: &MerkleSignature,
        bank_key: &VerifyingKey,
    ) -> Result<(), BankError> {
        bank_key
            .verify(&commitment.to_bytes(), signature)
            .map_err(|_| BankError::InvalidInstrument("bad bank signature on chain".into()))
    }
}

/// Bank-side chain issuance and redemption.
pub struct PayWordOffice<'a> {
    /// Guarantee registry backing chain reservations.
    pub guarantee: &'a FundsGuarantee,
    /// Bank signing identity.
    pub signer: &'a SigningIdentity,
    /// Per-chain highest index already redeemed.
    pub redeemed: &'a Mutex<HashMap<u64, u32>>,
    /// Secret-generation stream (bank-internal).
    pub secrets: &'a Mutex<DeterministicStream>,
}

/// Shared redemption state, owned by the bank.
#[derive(Clone, Default)]
pub struct PayWordLedger {
    /// chain_id → highest redeemed index.
    pub redeemed: Arc<Mutex<HashMap<u64, u32>>>,
}

impl PayWordOffice<'_> {
    /// Issues a chain of `length` paywords each worth `value_per_word`,
    /// locking the full value on the drawer.
    pub fn issue(
        &self,
        drawer: &AccountId,
        payee_cert: &str,
        length: u32,
        value_per_word: Credits,
        now_ms: u64,
        validity_ms: u64,
    ) -> Result<GridHashChain, BankError> {
        if length == 0 {
            return Err(BankError::Protocol("zero-length chain".into()));
        }
        if !value_per_word.is_positive() {
            return Err(BankError::NonPositiveAmount);
        }
        let total = value_per_word.checked_mul(length as i128)?;
        let chain_id =
            self.guarantee.reserve_until(drawer, total, now_ms.saturating_add(validity_ms))?;

        // Build the chain from a fresh secret tip.
        let tip = {
            let mut s = self.secrets.lock();
            // Mix the chain id in so two chains never share a tip.
            sha256(&[s.next_digest().as_bytes().as_slice(), &chain_id.to_be_bytes()].concat())
        };
        let mut chain = vec![Digest::ZERO; (length as usize).saturating_add(1)];
        chain[length as usize] = tip;
        let mut next = tip;
        for word in chain.iter_mut().take(length as usize).rev() {
            *word = sha256(next.as_bytes());
            next = *word;
        }
        let commitment = ChainCommitment {
            chain_id,
            drawer: *drawer,
            payee_cert: payee_cert.to_string(),
            root: chain[0],
            length,
            value_per_word,
            issued_ms: now_ms,
            expires_ms: now_ms.saturating_add(validity_ms),
        };
        let signature = self.signer.sign(&commitment.to_bytes())?;
        Ok(GridHashChain { commitment, signature, chain })
    }

    /// Redeems up to payword `pay.index`. Pays the *delta* over the
    /// highest previously redeemed index — incremental redemption; a
    /// replay of an old or equal index pays zero and errors.
    pub fn redeem(
        &self,
        commitment: &ChainCommitment,
        signature: &MerkleSignature,
        pay: &PayWord,
        payee_account: &AccountId,
        rur_blob: Vec<u8>,
        now_ms: u64,
    ) -> Result<Credits, BankError> {
        GridHashChain::verify_commitment(commitment, signature, &self.signer.verifying_key())?;
        if now_ms >= commitment.expires_ms {
            return Err(BankError::InvalidInstrument("chain expired".into()));
        }
        pay.verify(&commitment.root, commitment.length)?;

        let delta = {
            let mut redeemed = self.redeemed.lock();
            let prev = redeemed.entry(commitment.chain_id).or_insert(0);
            if pay.index <= *prev {
                return Err(BankError::AlreadyRedeemed(format!(
                    "chain {} already redeemed through index {prev}",
                    commitment.chain_id
                )));
            }
            let delta = pay.index.saturating_sub(*prev);
            *prev = pay.index;
            delta
        };
        let amount = commitment.value_per_word.checked_mul(delta as i128)?;
        self.guarantee.settle_partial(commitment.chain_id, payee_account, amount, rur_blob)?;
        Ok(amount)
    }

    /// Closes out a chain after final redemption or expiry, releasing the
    /// unspent reservation to the drawer.
    pub fn close(&self, commitment: &ChainCommitment, now_ms: u64) -> Result<Credits, BankError> {
        let redeemed_idx = *self.redeemed.lock().get(&commitment.chain_id).unwrap_or(&0);
        // Before expiry, only a fully spent chain may close early.
        if now_ms < commitment.expires_ms && redeemed_idx < commitment.length {
            return Err(BankError::InvalidInstrument(
                "chain still live and not fully spent".into(),
            ));
        }
        self.guarantee.release(commitment.chain_id).or_else(|e| {
            // Fully settled chains have nothing to release.
            if redeemed_idx == commitment.length {
                if let BankError::AlreadyRedeemed(_) = e {
                    return Ok(Credits::ZERO);
                }
            }
            Err(e)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accounts::GbAccounts;
    use crate::clock::Clock;
    use crate::db::Database;
    use gridbank_crypto::keys::KeyMaterial;

    struct Fixture {
        guarantee: FundsGuarantee,
        accounts: GbAccounts,
        signer: SigningIdentity,
        ledger: PayWordLedger,
        secrets: Mutex<DeterministicStream>,
        gsc: AccountId,
        gsp: AccountId,
    }

    fn fixture() -> Fixture {
        let db = Arc::new(Database::new(1, 1));
        let accounts = GbAccounts::new(db.clone(), Clock::new());
        let gsc = accounts.create_account("/CN=alice", None).unwrap();
        let gsp = accounts.create_account("/CN=gsp", None).unwrap();
        db.with_account_mut(&gsc, |r| {
            r.available = Credits::from_gd(100);
            Ok(())
        })
        .unwrap();
        Fixture {
            guarantee: FundsGuarantee::new(accounts.clone()),
            accounts,
            signer: SigningIdentity::generate_small(KeyMaterial { seed: 8 }, "bank"),
            ledger: PayWordLedger::default(),
            secrets: Mutex::new(DeterministicStream::from_u64(77, b"chains")),
            gsc,
            gsp,
        }
    }

    fn office<'a>(f: &'a Fixture) -> PayWordOffice<'a> {
        PayWordOffice {
            guarantee: &f.guarantee,
            signer: &f.signer,
            redeemed: &f.ledger.redeemed,
            secrets: &f.secrets,
        }
    }

    #[test]
    fn issue_builds_valid_chain_and_locks_funds() {
        let f = fixture();
        let chain =
            office(&f).issue(&f.gsc, "/CN=gsp", 20, Credits::from_gd(1), 0, 10_000).unwrap();
        assert_eq!(f.accounts.account_details(&f.gsc).unwrap().locked, Credits::from_gd(20));
        // Every payword verifies against the root.
        for k in 1..=20 {
            chain.payword(k).unwrap().verify(&chain.commitment.root, 20).unwrap();
        }
        assert!(chain.payword(0).is_err());
        assert!(chain.payword(21).is_err());
        // Commitment codec round-trips.
        let decoded = ChainCommitment::from_bytes(&chain.commitment.to_bytes()).unwrap();
        assert_eq!(decoded, chain.commitment);
    }

    #[test]
    fn paywords_are_one_way() {
        let f = fixture();
        let chain = office(&f).issue(&f.gsc, "/CN=gsp", 5, Credits::from_gd(1), 0, 10_000).unwrap();
        // Knowing w_2 gives w_1 (hash forward) but never w_3: a forged
        // index-3 claim with a guessed word fails.
        let forged = PayWord { index: 3, word: sha256(b"guess") };
        assert!(forged.verify(&chain.commitment.root, 5).is_err());
        // Claiming a valid word at the wrong index also fails.
        let w2 = chain.payword(2).unwrap();
        let wrong_index = PayWord { index: 3, word: w2.word };
        assert!(wrong_index.verify(&chain.commitment.root, 5).is_err());
    }

    #[test]
    fn incremental_redemption_pays_deltas() {
        let f = fixture();
        let o = office(&f);
        let chain = o.issue(&f.gsc, "/CN=gsp", 10, Credits::from_gd(1), 0, 10_000).unwrap();
        let c = &chain.commitment;
        let s = &chain.signature;

        // Redeem through 3: pays 3.
        let paid = o.redeem(c, s, &chain.payword(3).unwrap(), &f.gsp, vec![], 10).unwrap();
        assert_eq!(paid, Credits::from_gd(3));
        // Redeem through 7: pays 4 more.
        let paid = o.redeem(c, s, &chain.payword(7).unwrap(), &f.gsp, vec![], 20).unwrap();
        assert_eq!(paid, Credits::from_gd(4));
        assert_eq!(f.accounts.account_details(&f.gsp).unwrap().available, Credits::from_gd(7));

        // Replaying index 7 or lower is refused.
        assert!(matches!(
            o.redeem(c, s, &chain.payword(7).unwrap(), &f.gsp, vec![], 30),
            Err(BankError::AlreadyRedeemed(_))
        ));
        assert!(matches!(
            o.redeem(c, s, &chain.payword(2).unwrap(), &f.gsp, vec![], 30),
            Err(BankError::AlreadyRedeemed(_))
        ));

        // Close before expiry with words left is refused; after expiry the
        // drawer gets the remaining 3 back.
        assert!(o.close(c, 100).is_err());
        assert_eq!(o.close(c, 10_001).unwrap(), Credits::from_gd(3));
        let gsc = f.accounts.account_details(&f.gsc).unwrap();
        assert_eq!(gsc.available, Credits::from_gd(93));
        assert_eq!(gsc.locked, Credits::ZERO);
    }

    #[test]
    fn fully_spent_chain_closes_early() {
        let f = fixture();
        let o = office(&f);
        let chain = o.issue(&f.gsc, "/CN=gsp", 4, Credits::from_gd(2), 0, 10_000).unwrap();
        o.redeem(
            &chain.commitment,
            &chain.signature,
            &chain.payword(4).unwrap(),
            &f.gsp,
            vec![],
            5,
        )
        .unwrap();
        assert_eq!(o.close(&chain.commitment, 6).unwrap(), Credits::ZERO);
        assert_eq!(f.accounts.account_details(&f.gsp).unwrap().available, Credits::from_gd(8));
    }

    #[test]
    fn expired_chain_rejects_redemption() {
        let f = fixture();
        let o = office(&f);
        let chain = o.issue(&f.gsc, "/CN=gsp", 4, Credits::from_gd(1), 0, 100).unwrap();
        assert!(matches!(
            o.redeem(
                &chain.commitment,
                &chain.signature,
                &chain.payword(1).unwrap(),
                &f.gsp,
                vec![],
                100
            ),
            Err(BankError::InvalidInstrument(_))
        ));
    }

    #[test]
    fn forged_commitment_rejected() {
        let f = fixture();
        let o = office(&f);
        let chain = o.issue(&f.gsc, "/CN=gsp", 4, Credits::from_gd(1), 0, 10_000).unwrap();
        let mut forged = chain.commitment.clone();
        forged.value_per_word = Credits::from_gd(1_000);
        assert!(matches!(
            o.redeem(&forged, &chain.signature, &chain.payword(1).unwrap(), &f.gsp, vec![], 10),
            Err(BankError::InvalidInstrument(_))
        ));
    }

    #[test]
    fn issue_validates_inputs() {
        let f = fixture();
        let o = office(&f);
        assert!(o.issue(&f.gsc, "/CN=gsp", 0, Credits::from_gd(1), 0, 10).is_err());
        assert!(o.issue(&f.gsc, "/CN=gsp", 5, Credits::ZERO, 0, 10).is_err());
        // Total beyond balance.
        assert!(matches!(
            o.issue(&f.gsc, "/CN=gsp", 200, Credits::from_gd(1), 0, 10),
            Err(BankError::InsufficientFunds { .. })
        ));
    }

    #[test]
    fn distinct_chains_have_distinct_roots() {
        let f = fixture();
        let o = office(&f);
        let c1 = o.issue(&f.gsc, "/CN=gsp", 4, Credits::from_gd(1), 0, 10_000).unwrap();
        let c2 = o.issue(&f.gsc, "/CN=gsp", 4, Credits::from_gd(1), 0, 10_000).unwrap();
        assert_ne!(c1.commitment.root, c2.commitment.root);
    }
}
