//! Co-operative operating model (§4.1, Figure 4).
//!
//! "In co-operative computing environments, all participants both consume
//! and provide services; when participants provide services, they earn
//! credits … Each participant may be initially allocated a certain amount
//! of credits. The amount depends on the value of the resource the
//! participant owns."
//!
//! This module provides the two bank-side pieces:
//!
//! * [`allocate_initial_credits`] — the community's initial allocation,
//!   proportional to declared resource value;
//! * [`BarterStats`] — per-participant consumed/provided totals computed
//!   from the transfer table, reproducing Figure 4's account view, plus
//!   the equilibrium gap the "community pricing authority" watches.

use std::collections::HashMap;

use gridbank_rur::Credits;

use crate::admin::GbAdmin;
use crate::db::{AccountId, Database};
use crate::error::BankError;

/// Deposits `value_units × per_unit` into each participant's account —
/// how the community seeds a barter economy. Returns the total minted.
pub fn allocate_initial_credits(
    admin: &GbAdmin,
    admin_cert: &str,
    allocations: &[(AccountId, u64)],
    per_unit: Credits,
) -> Result<Credits, BankError> {
    let mut total = Credits::ZERO;
    for (account, units) in allocations {
        if *units == 0 {
            continue;
        }
        let amount = per_unit.checked_mul(*units as i128)?;
        admin.deposit(admin_cert, account, amount)?;
        total = total.checked_add(amount)?;
    }
    Ok(total)
}

/// Consumed/provided totals for one participant (Figure 4's annotations).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BarterBalance {
    /// Value of services this participant consumed from others.
    pub consumed: Credits,
    /// Value of services this participant provided to others.
    pub provided: Credits,
}

impl BarterBalance {
    /// provided − consumed; positive for net providers.
    pub fn net(&self) -> Credits {
        self.provided.saturating_add(self.consumed.negated())
    }
}

/// Community-wide barter statistics.
#[derive(Clone, Debug, Default)]
pub struct BarterStats {
    /// Per-account balances.
    pub balances: HashMap<AccountId, BarterBalance>,
}

impl BarterStats {
    /// Computes stats from the bank's transfer table over a time window.
    pub fn compute(db: &Database, start_ms: u64, end_ms: u64) -> Self {
        let mut balances: HashMap<AccountId, BarterBalance> = HashMap::new();
        for t in db.all_transfers() {
            if t.date_ms < start_ms || t.date_ms >= end_ms {
                continue;
            }
            balances.entry(t.drawer).or_default().consumed =
                balances.entry(t.drawer).or_default().consumed.saturating_add(t.amount);
            balances.entry(t.recipient).or_default().provided =
                balances.entry(t.recipient).or_default().provided.saturating_add(t.amount);
        }
        BarterStats { balances }
    }

    /// The largest |provided − consumed| across participants — zero at
    /// perfect price equilibrium ("GSPs are paid approximately as much
    /// currency as they will use to access other Grid services").
    pub fn equilibrium_gap(&self) -> Credits {
        self.balances.values().map(|b| b.net().abs()).max().unwrap_or(Credits::ZERO)
    }

    /// Total value exchanged in the window.
    pub fn total_exchanged(&self) -> Credits {
        self.balances.values().map(|b| b.provided).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accounts::GbAccounts;
    use crate::clock::Clock;
    use std::sync::Arc;

    const ADMIN: &str = "/CN=gb-admin";

    fn setup(n: usize) -> (GbAdmin, GbAccounts, Vec<AccountId>) {
        let db = Arc::new(Database::new(1, 1));
        let acc = GbAccounts::new(db, Clock::new());
        let admin = GbAdmin::new(acc.clone(), [ADMIN.to_string()]);
        let ids = (0..n).map(|i| acc.create_account(&format!("/CN=p{i}"), None).unwrap()).collect();
        (admin, acc, ids)
    }

    #[test]
    fn initial_allocation_proportional_to_value() {
        let (admin, acc, ids) = setup(3);
        let total = allocate_initial_credits(
            &admin,
            ADMIN,
            &[(ids[0], 10), (ids[1], 5), (ids[2], 0)],
            Credits::from_gd(2),
        )
        .unwrap();
        assert_eq!(total, Credits::from_gd(30));
        assert_eq!(acc.account_details(&ids[0]).unwrap().available, Credits::from_gd(20));
        assert_eq!(acc.account_details(&ids[1]).unwrap().available, Credits::from_gd(10));
        assert_eq!(acc.account_details(&ids[2]).unwrap().available, Credits::ZERO);
    }

    #[test]
    fn barter_stats_track_both_directions() {
        let (admin, acc, ids) = setup(3);
        allocate_initial_credits(
            &admin,
            ADMIN,
            &[(ids[0], 10), (ids[1], 10), (ids[2], 10)],
            Credits::from_gd(1),
        )
        .unwrap();
        // Ring of services: 0 pays 1 pays 2 pays 0.
        acc.transfer(&ids[0], &ids[1], Credits::from_gd(4), vec![]).unwrap();
        acc.transfer(&ids[1], &ids[2], Credits::from_gd(4), vec![]).unwrap();
        acc.transfer(&ids[2], &ids[0], Credits::from_gd(4), vec![]).unwrap();

        let stats = BarterStats::compute(acc.db(), 0, u64::MAX);
        for id in &ids {
            let b = stats.balances[id];
            assert_eq!(b.consumed, Credits::from_gd(4));
            assert_eq!(b.provided, Credits::from_gd(4));
            assert_eq!(b.net(), Credits::ZERO);
        }
        assert_eq!(stats.equilibrium_gap(), Credits::ZERO);
        assert_eq!(stats.total_exchanged(), Credits::from_gd(12));
    }

    #[test]
    fn unbalanced_trade_shows_gap() {
        let (admin, acc, ids) = setup(2);
        allocate_initial_credits(&admin, ADMIN, &[(ids[0], 10), (ids[1], 10)], Credits::from_gd(1))
            .unwrap();
        // Participant 0 only consumes.
        acc.transfer(&ids[0], &ids[1], Credits::from_gd(7), vec![]).unwrap();
        let stats = BarterStats::compute(acc.db(), 0, u64::MAX);
        assert_eq!(stats.equilibrium_gap(), Credits::from_gd(7));
        assert_eq!(stats.balances[&ids[0]].net(), Credits::from_gd(-7));
        assert_eq!(stats.balances[&ids[1]].net(), Credits::from_gd(7));
    }

    #[test]
    fn window_filters_apply() {
        let (admin, acc, ids) = setup(2);
        allocate_initial_credits(&admin, ADMIN, &[(ids[0], 10)], Credits::from_gd(1)).unwrap();
        acc.transfer(&ids[0], &ids[1], Credits::from_gd(1), vec![]).unwrap();
        acc.clock().advance(1000);
        acc.transfer(&ids[0], &ids[1], Credits::from_gd(2), vec![]).unwrap();
        let early = BarterStats::compute(acc.db(), 0, 500);
        assert_eq!(early.total_exchanged(), Credits::from_gd(1));
        let late = BarterStats::compute(acc.db(), 500, u64::MAX);
        assert_eq!(late.total_exchanged(), Credits::from_gd(2));
    }
}
