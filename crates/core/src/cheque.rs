//! GridCheque — the pay-after-use payment instrument (§3.1, §3.4).
//!
//! "When the service charge is unknown beforehand, GSC forwards a payment
//! order in the form of a digital cheque to GSP. The cheque is made out to
//! GSP so no one else can redeem it. After computation has finished, GSP
//! calculates total cost and forwards the cheque along with resource usage
//! record to GridBank for processing. This can be done in batches. Such
//! scheme is based on NetCheque and relies on public key cryptography."
//!
//! A [`GridCheque`] is signed by the *bank* (the bank issues the cheque to
//! the GSC against locked funds, §3.4); the GSP validates it offline
//! against the bank's well-known key before accepting a job, and redeems
//! it with the RUR after execution. Redemption recomputes the charge from
//! the RUR itself — a signed cheque plus a conforming RUR is the whole
//! evidence chain.

use gridbank_crypto::keys::{SigningIdentity, VerifyingKey};
use gridbank_crypto::merkle::MerkleSignature;
use gridbank_rur::codec::{ByteReader, ByteWriter, Decode, Encode};
use gridbank_rur::record::ResourceUsageRecord;
use gridbank_rur::{Credits, RurError};

use crate::db::AccountId;
use crate::error::BankError;
use crate::guarantee::FundsGuarantee;

/// The signed body of a GridCheque.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChequeBody {
    /// Instrument id — also the reservation id guaranteeing it.
    pub cheque_id: u64,
    /// Drawer (GSC) account.
    pub drawer: AccountId,
    /// Payee certificate name — "made out to GSP so no one else can
    /// redeem it".
    pub payee_cert: String,
    /// Reserved (maximum) amount.
    pub reserved: Credits,
    /// Issue time, virtual ms.
    pub issued_ms: u64,
    /// Redemption deadline, virtual ms.
    pub expires_ms: u64,
    /// Issuing branch number.
    pub branch: u16,
}

impl Encode for ChequeBody {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u8(1); // version
        w.put_u64(self.cheque_id);
        w.put_str(&self.drawer.to_string());
        w.put_str(&self.payee_cert);
        self.reserved.encode(w);
        w.put_u64(self.issued_ms);
        w.put_u64(self.expires_ms);
        w.put_u32(self.branch as u32);
    }
}

impl Decode for ChequeBody {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, RurError> {
        let v = r.get_u8()?;
        if v != 1 {
            return Err(RurError::Decode(format!("cheque version {v}")));
        }
        let cheque_id = r.get_u64()?;
        let drawer = AccountId::parse(&r.get_str()?)
            .ok_or_else(|| RurError::Decode("bad drawer id".into()))?;
        let payee_cert = r.get_str()?;
        let reserved = Credits::decode(r)?;
        Ok(ChequeBody {
            cheque_id,
            drawer,
            payee_cert,
            reserved,
            issued_ms: r.get_u64()?,
            expires_ms: r.get_u64()?,
            branch: r.get_u32()? as u16,
        })
    }
}

/// A bank-signed cheque.
#[derive(Clone, Debug)]
pub struct GridCheque {
    /// The signed fields.
    pub body: ChequeBody,
    /// Bank signature over [`ChequeBody`]'s canonical encoding.
    pub signature: MerkleSignature,
}

impl GridCheque {
    /// Verifies the bank signature and (optionally) the payee binding.
    pub fn verify(
        &self,
        bank_key: &VerifyingKey,
        expect_payee: Option<&str>,
        now_ms: u64,
    ) -> Result<(), BankError> {
        bank_key
            .verify(&self.body.to_bytes(), &self.signature)
            .map_err(|_| BankError::InvalidInstrument("bad bank signature on cheque".into()))?;
        if let Some(p) = expect_payee {
            if self.body.payee_cert != p {
                return Err(BankError::InvalidInstrument(format!(
                    "cheque payable to `{}`, not `{p}`",
                    self.body.payee_cert
                )));
            }
        }
        if now_ms >= self.body.expires_ms {
            return Err(BankError::InvalidInstrument(format!(
                "cheque expired at {} (now {now_ms})",
                self.body.expires_ms
            )));
        }
        Ok(())
    }
}

/// Bank-side cheque issuance and redemption.
pub struct ChequeOffice<'a> {
    /// The guarantee registry backing cheque reservations.
    pub guarantee: &'a FundsGuarantee,
    /// The bank's signing identity.
    pub signer: &'a SigningIdentity,
    /// Branch number stamped into cheques.
    pub branch: u16,
}

/// Result of redeeming one cheque.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Redemption {
    /// Cheque that was redeemed.
    pub cheque_id: u64,
    /// Amount actually paid to the payee.
    pub paid: Credits,
    /// Unused reservation returned to the drawer.
    pub released: Credits,
}

impl ChequeOffice<'_> {
    /// Issues a cheque: locks `amount` on the drawer and signs the body.
    /// "The exact amount will depend on the budget constraint set with the
    /// GRB" (§3.4).
    pub fn issue(
        &self,
        drawer: &AccountId,
        payee_cert: &str,
        amount: Credits,
        now_ms: u64,
        validity_ms: u64,
    ) -> Result<GridCheque, BankError> {
        if payee_cert.is_empty() {
            return Err(BankError::Protocol("cheque needs a payee".into()));
        }
        let cheque_id =
            self.guarantee.reserve_until(drawer, amount, now_ms.saturating_add(validity_ms))?;
        let body = ChequeBody {
            cheque_id,
            drawer: *drawer,
            payee_cert: payee_cert.to_string(),
            reserved: amount,
            issued_ms: now_ms,
            expires_ms: now_ms.saturating_add(validity_ms),
            branch: self.branch,
        };
        let signature = self.signer.sign(&body.to_bytes())?;
        Ok(GridCheque { body, signature })
    }

    /// Redeems a cheque against a usage record. The redeemer must be the
    /// payee; the charge is recomputed from the RUR; payment is capped at
    /// the reservation (§3.4) and the remainder released.
    pub fn redeem(
        &self,
        cheque: &GridCheque,
        rur: &ResourceUsageRecord,
        redeemer_cert: &str,
        payee_account: &AccountId,
        now_ms: u64,
    ) -> Result<Redemption, BankError> {
        cheque.verify(&self.signer.verifying_key(), Some(redeemer_cert), now_ms)?;
        rur.validate()?;
        // The RUR must name the payee as the provider — a cheque cannot be
        // redeemed with someone else's usage evidence.
        if rur.resource.certificate_name != cheque.body.payee_cert {
            return Err(BankError::InvalidInstrument(format!(
                "RUR provider `{}` is not the cheque payee `{}`",
                rur.resource.certificate_name, cheque.body.payee_cert
            )));
        }
        let charge = rur.total_cost()?;
        let (paid, released) =
            self.guarantee.settle(cheque.body.cheque_id, payee_account, charge, rur.to_bytes())?;
        Ok(Redemption { cheque_id: cheque.body.cheque_id, paid, released })
    }

    /// Batch redemption ("This can be done in batches", §3.1): each entry
    /// settles independently; failures don't abort the rest.
    pub fn redeem_batch(
        &self,
        batch: &[(GridCheque, ResourceUsageRecord)],
        redeemer_cert: &str,
        payee_account: &AccountId,
        now_ms: u64,
    ) -> Vec<Result<Redemption, BankError>> {
        batch
            .iter()
            .map(|(cheque, rur)| self.redeem(cheque, rur, redeemer_cert, payee_account, now_ms))
            .collect()
    }

    /// Cancels an unredeemed cheque after expiry, returning the locked
    /// funds to the drawer.
    pub fn reclaim_expired(&self, cheque: &GridCheque, now_ms: u64) -> Result<Credits, BankError> {
        if now_ms < cheque.body.expires_ms {
            return Err(BankError::InvalidInstrument("cheque has not expired yet".into()));
        }
        self.guarantee.release(cheque.body.cheque_id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accounts::GbAccounts;
    use crate::clock::Clock;
    use crate::db::Database;
    use gridbank_crypto::keys::KeyMaterial;
    use gridbank_rur::record::{ChargeableItem, RurBuilder, UsageAmount};
    use gridbank_rur::units::Duration;
    use std::sync::Arc;

    struct Fixture {
        guarantee: FundsGuarantee,
        accounts: GbAccounts,
        signer: SigningIdentity,
        gsc: AccountId,
        gsp: AccountId,
    }

    fn fixture() -> Fixture {
        let db = Arc::new(Database::new(1, 1));
        let accounts = GbAccounts::new(db.clone(), Clock::new());
        let gsc = accounts.create_account("/CN=alice", None).unwrap();
        let gsp = accounts.create_account("/CN=gsp-alpha", None).unwrap();
        db.with_account_mut(&gsc, |r| {
            r.available = Credits::from_gd(100);
            Ok(())
        })
        .unwrap();
        Fixture {
            guarantee: FundsGuarantee::new(accounts.clone()),
            accounts,
            signer: SigningIdentity::generate_small(KeyMaterial { seed: 5 }, "bank"),
            gsc,
            gsp,
        }
    }

    fn office<'a>(f: &'a Fixture) -> ChequeOffice<'a> {
        ChequeOffice { guarantee: &f.guarantee, signer: &f.signer, branch: 1 }
    }

    fn rur_for(provider: &str, cpu_hours: u64, rate_gd: i64) -> ResourceUsageRecord {
        RurBuilder::default()
            .user("h", "/CN=alice")
            .job("j", "app", 0, cpu_hours * 3_600_000)
            .resource("r", provider, None, 1)
            .line(
                ChargeableItem::Cpu,
                UsageAmount::Time(Duration::from_hours(cpu_hours)),
                Credits::from_gd(rate_gd),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn issue_locks_funds_and_signs() {
        let f = fixture();
        let cheque =
            office(&f).issue(&f.gsc, "/CN=gsp-alpha", Credits::from_gd(30), 0, 1_000).unwrap();
        assert_eq!(f.accounts.account_details(&f.gsc).unwrap().locked, Credits::from_gd(30));
        cheque.verify(&f.signer.verifying_key(), Some("/CN=gsp-alpha"), 10).unwrap();
        // Body survives its codec.
        let decoded = ChequeBody::from_bytes(&cheque.body.to_bytes()).unwrap();
        assert_eq!(decoded, cheque.body);
    }

    #[test]
    fn cheque_cannot_be_redeemed_by_others() {
        let f = fixture();
        let cheque =
            office(&f).issue(&f.gsc, "/CN=gsp-alpha", Credits::from_gd(30), 0, 1_000).unwrap();
        assert!(matches!(
            cheque.verify(&f.signer.verifying_key(), Some("/CN=gsp-beta"), 10),
            Err(BankError::InvalidInstrument(_))
        ));
    }

    #[test]
    fn tampered_cheque_rejected() {
        let f = fixture();
        let mut cheque =
            office(&f).issue(&f.gsc, "/CN=gsp-alpha", Credits::from_gd(30), 0, 1_000).unwrap();
        cheque.body.reserved = Credits::from_gd(1_000_000);
        assert!(cheque.verify(&f.signer.verifying_key(), None, 10).is_err());
    }

    #[test]
    fn redeem_pays_actual_charge_and_releases_rest() {
        let f = fixture();
        let o = office(&f);
        let cheque = o.issue(&f.gsc, "/CN=gsp-alpha", Credits::from_gd(30), 0, 10_000_000).unwrap();
        // Actual usage: 2 CPU-hours at 5 G$/h = 10 G$.
        let rur = rur_for("/CN=gsp-alpha", 2, 5);
        let red = o.redeem(&cheque, &rur, "/CN=gsp-alpha", &f.gsp, 100).unwrap();
        assert_eq!(red.paid, Credits::from_gd(10));
        assert_eq!(red.released, Credits::from_gd(20));
        assert_eq!(f.accounts.account_details(&f.gsp).unwrap().available, Credits::from_gd(10));
        let gsc = f.accounts.account_details(&f.gsc).unwrap();
        assert_eq!(gsc.available, Credits::from_gd(90));
        assert_eq!(gsc.locked, Credits::ZERO);
        // The transfer carries the RUR blob as evidence.
        let st = f.accounts.statement(&f.gsp, 0, u64::MAX).unwrap();
        assert_eq!(st.transfers.len(), 1);
        let stored = ResourceUsageRecord::from_bytes(&st.transfers[0].rur_blob).unwrap();
        assert_eq!(stored, rur);
    }

    #[test]
    fn charge_capped_at_reservation() {
        let f = fixture();
        let o = office(&f);
        let cheque = o.issue(&f.gsc, "/CN=gsp-alpha", Credits::from_gd(10), 0, 10_000_000).unwrap();
        // Usage worth 50 G$ against a 10 G$ guarantee.
        let rur = rur_for("/CN=gsp-alpha", 10, 5);
        let red = o.redeem(&cheque, &rur, "/CN=gsp-alpha", &f.gsp, 100).unwrap();
        assert_eq!(red.paid, Credits::from_gd(10));
    }

    #[test]
    fn double_redemption_rejected() {
        let f = fixture();
        let o = office(&f);
        let cheque = o.issue(&f.gsc, "/CN=gsp-alpha", Credits::from_gd(10), 0, 10_000_000).unwrap();
        let rur = rur_for("/CN=gsp-alpha", 1, 5);
        o.redeem(&cheque, &rur, "/CN=gsp-alpha", &f.gsp, 100).unwrap();
        assert!(matches!(
            o.redeem(&cheque, &rur, "/CN=gsp-alpha", &f.gsp, 100),
            Err(BankError::AlreadyRedeemed(_))
        ));
    }

    #[test]
    fn foreign_rur_rejected() {
        let f = fixture();
        let o = office(&f);
        let cheque = o.issue(&f.gsc, "/CN=gsp-alpha", Credits::from_gd(10), 0, 10_000_000).unwrap();
        let rur = rur_for("/CN=gsp-beta", 1, 5);
        assert!(matches!(
            o.redeem(&cheque, &rur, "/CN=gsp-alpha", &f.gsp, 100),
            Err(BankError::InvalidInstrument(_))
        ));
    }

    #[test]
    fn expired_cheque_rejected_then_reclaimed() {
        let f = fixture();
        let o = office(&f);
        let cheque = o.issue(&f.gsc, "/CN=gsp-alpha", Credits::from_gd(10), 0, 500).unwrap();
        let rur = rur_for("/CN=gsp-alpha", 1, 5);
        assert!(o.redeem(&cheque, &rur, "/CN=gsp-alpha", &f.gsp, 600).is_err());
        // Reclaim before expiry is refused, after expiry returns the lock.
        assert!(o.reclaim_expired(&cheque, 400).is_err());
        assert_eq!(o.reclaim_expired(&cheque, 600).unwrap(), Credits::from_gd(10));
        assert_eq!(f.accounts.account_details(&f.gsc).unwrap().available, Credits::from_gd(100));
    }

    #[test]
    fn batch_redemption_is_independent() {
        let f = fixture();
        let o = office(&f);
        let c1 = o.issue(&f.gsc, "/CN=gsp-alpha", Credits::from_gd(10), 0, 10_000_000).unwrap();
        let c2 = o.issue(&f.gsc, "/CN=gsp-alpha", Credits::from_gd(10), 0, 10_000_000).unwrap();
        let good = rur_for("/CN=gsp-alpha", 1, 5);
        let bad = rur_for("/CN=gsp-beta", 1, 5);
        let results = o.redeem_batch(&[(c1, good), (c2, bad)], "/CN=gsp-alpha", &f.gsp, 100);
        assert!(results[0].is_ok());
        assert!(results[1].is_err());
        assert_eq!(f.accounts.account_details(&f.gsp).unwrap().available, Credits::from_gd(5));
    }
}
