//! The GB database module.
//!
//! §3.2: "GB database module is a relational database that stores account
//! and transaction information." The paper used MySQL; this is the
//! embedded substitute (DESIGN.md §2): typed tables with the §5.1 schemas,
//! a certificate-name secondary index, date-range statement scans, a
//! write-ahead journal for crash-consistency, and sharded account storage
//! so concurrent transfers scale (two-account operations take shard locks
//! in a global order — no deadlocks).
//!
//! Monetary fields are exact [`Credits`] rather than the paper's SQL
//! `FLOAT` (see DESIGN.md §4).
//!
//! Journal appends from commit batches go through a **group-commit
//! queue** ([`GroupCommitConfig`]): concurrent committers enqueue their
//! entry batches and one of them, the elected leader, flushes every
//! pending batch with a single journal acquisition. Each batch stays
//! contiguous and per-account order is preserved (committers hold their
//! shard locks across submission), so crash-replay semantics are
//! unchanged — the queue only amortizes journal-lock traffic on the hot
//! payment path.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use crate::sync::{
    rank, AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Condvar, Mutex, OrderedMutex,
    OrderedRwLock, Ordering,
};

use gridbank_rur::Credits;

use crate::error::BankError;

/// Number of account shards; a power of two so masking works. The
/// on-disk layout ([`crate::store`]) mirrors this: one segment/snapshot
/// directory per shard, recorded in the store `MANIFEST`.
pub(crate) const SHARDS: usize = 16;

/// Shard an account id is homed on — the single routing function shared
/// by the in-memory maps and the on-disk layout (docs/STORAGE.md §1).
pub(crate) fn account_shard(id: &AccountId) -> usize {
    // Cheap avalanche over the numeric id fields.
    let k = (id.bank as u64) << 48 | (id.branch as u64) << 32 | id.number as u64;
    (k.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize & (SHARDS - 1)
}

/// Shard an idempotency stamp is homed on (by caller certificate, so a
/// caller's stamps stay together).
pub(crate) fn cert_shard(cert: &str) -> usize {
    crate::store::fnv64(cert.as_bytes()) as usize & (SHARDS - 1)
}

/// Shard a cross-branch credit key is homed on.
pub(crate) fn key_shard(key: u64) -> usize {
    (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize & (SHARDS - 1)
}

/// The one shard a journal entry is durably routed to. Account-state
/// entries follow the account; audit rows follow the posted/drawer
/// account; stamps and credits follow their hash. Total (every entry has
/// exactly one home), so sharded recovery reassembles the full journal.
pub(crate) fn entry_shard(entry: &JournalEntry) -> usize {
    match entry {
        JournalEntry::Create(r) | JournalEntry::Update(r) => account_shard(&r.id),
        JournalEntry::Remove(id) => account_shard(id),
        JournalEntry::Transaction(t) => account_shard(&t.account),
        JournalEntry::Transfer(t) => account_shard(&t.drawer),
        JournalEntry::Idem { cert, .. } | JournalEntry::IdemDrop { cert, .. } => cert_shard(cert),
        JournalEntry::IbOut(credit) => key_shard(credit.key),
        JournalEntry::IbAck { key } => key_shard(*key),
    }
}

/// ACCOUNT RECORD key (§5.1): "imitates real world account numbers: bank
/// number-branch number-account number. E.g. 01-0001-00000001".
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AccountId {
    /// Bank number (multiple payment systems, §6).
    pub bank: u16,
    /// Branch number (one branch per Virtual Organization, §6).
    pub branch: u16,
    /// Account number within the branch.
    pub number: u32,
}

impl AccountId {
    /// Builds an id.
    pub const fn new(bank: u16, branch: u16, number: u32) -> Self {
        AccountId { bank, branch, number }
    }

    /// Parses the `bb-bbbb-nnnnnnnn` form.
    pub fn parse(s: &str) -> Option<AccountId> {
        let mut parts = s.split('-');
        let bank = parts.next()?.parse().ok()?;
        let branch = parts.next()?.parse().ok()?;
        let number = parts.next()?.parse().ok()?;
        if parts.next().is_some() {
            return None;
        }
        Some(AccountId { bank, branch, number })
    }
}

impl std::fmt::Display for AccountId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:02}-{:04}-{:08}", self.bank, self.branch, self.number)
    }
}

impl std::fmt::Debug for AccountId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self}")
    }
}

/// ACCOUNT RECORD (§5.1).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccountRecord {
    /// Account id.
    pub id: AccountId,
    /// X509v3 certificate name — the globally unique client identifier.
    pub certificate_name: String,
    /// Optional organization name.
    pub organization: Option<String>,
    /// Spendable balance.
    pub available: Credits,
    /// Funds locked "to guarantee payment for jobs that already have
    /// started".
    pub locked: Credits,
    /// Currency label (e.g. "GridDollar").
    pub currency: String,
    /// Credit limit (default 0): how far `available` may go negative.
    pub credit_limit: Credits,
}

impl AccountRecord {
    /// Spendable headroom: available + credit limit.
    pub fn spendable(&self) -> Credits {
        self.available.saturating_add(self.credit_limit)
    }
}

/// TRANSACTION RECORD type tag (§5.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TransactionType {
    /// Funds entered the bank from outside.
    Deposit,
    /// Funds left the bank.
    Withdrawal,
    /// Internal transfer (paired with a TRANSFER RECORD).
    Transfer,
}

impl TransactionType {
    /// Stable tag for codecs.
    pub fn tag(self) -> u8 {
        match self {
            TransactionType::Deposit => 0,
            TransactionType::Withdrawal => 1,
            TransactionType::Transfer => 2,
        }
    }

    /// Inverse of [`Self::tag`].
    pub fn from_tag(t: u8) -> Option<Self> {
        match t {
            0 => Some(TransactionType::Deposit),
            1 => Some(TransactionType::Withdrawal),
            2 => Some(TransactionType::Transfer),
            _ => None,
        }
    }
}

/// TRANSACTION RECORD (§5.1).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransactionRecord {
    /// Unique transaction identifier.
    pub transaction_id: u64,
    /// The account the entry is posted against.
    pub account: AccountId,
    /// Deposit / Withdrawal / Transfer.
    pub tx_type: TransactionType,
    /// Commit time, virtual epoch ms.
    pub date_ms: u64,
    /// Signed amount: negative when funds leave the account.
    pub amount: Credits,
}

/// TRANSFER RECORD (§5.1); `rur_blob` is the binary-encoded Resource
/// Usage Record ("GridBank stores RUR in binary format").
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransferRecord {
    /// Same id as the paired transaction records.
    pub transaction_id: u64,
    /// Commit time.
    pub date_ms: u64,
    /// GSC (payer) account.
    pub drawer: AccountId,
    /// Transfer amount, always positive.
    pub amount: Credits,
    /// GSP (payee) account.
    pub recipient: AccountId,
    /// Binary RUR evidence, empty when none applies (plain transfers).
    pub rur_blob: Vec<u8>,
    /// Telemetry trace id active when the transfer committed (0 when
    /// telemetry was off) — correlates the audit trail with span traces.
    pub trace_id: u64,
}

/// A cross-branch credit owed to a remote payee: the drawer's branch has
/// already parked the amount in its clearing account, and the matching
/// `IbCredit` has not yet been acknowledged by the payee's branch. The
/// set of pending credits is journal-backed (`IbOut`/`IbAck` entries), so
/// a crashed branch re-ships exactly the credits that never landed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PendingIbCredit {
    /// The idempotency key the credit ships under — stable across
    /// redeliveries, so the payee's branch applies it at most once.
    pub key: u64,
    /// The remote payee account.
    pub to: AccountId,
    /// Amount owed.
    pub amount: Credits,
    /// This (the drawer's) branch.
    pub origin: u16,
    /// The payer account the parked amount came from — a re-ship that
    /// the payee's branch rejects refunds here.
    pub drawer: AccountId,
    /// The `(cert, key)` idempotency stamp of the payer's original
    /// request, if it carried one: a rejected re-ship invalidates it so
    /// the payer's retry does not read a stale success.
    pub idem: Option<(String, u64)>,
}

/// One write-ahead journal entry. Replaying a journal into a fresh
/// [`Database`] reconstructs identical state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JournalEntry {
    /// Account created with this initial record.
    Create(AccountRecord),
    /// Account state after a mutation (absolute, idempotent on replay).
    Update(AccountRecord),
    /// Account removed.
    Remove(AccountId),
    /// A transaction row appended.
    Transaction(TransactionRecord),
    /// A transfer row appended.
    Transfer(TransferRecord),
    /// An idempotency key consumed by a mutating request, with the
    /// encoded response it produced — replay repopulates the dedup
    /// cache so retries after a crash still return the original result.
    Idem {
        /// Certificate name of the caller that supplied the key.
        cert: String,
        /// Client-generated idempotency key.
        key: u64,
        /// Encoded response of the original execution.
        response: Vec<u8>,
    },
    /// A cross-branch credit became owed (committed atomically with the
    /// drawer's debit into the clearing account).
    IbOut(PendingIbCredit),
    /// The payee's branch acknowledged the credit with this key.
    IbAck {
        /// Key of the acknowledged [`JournalEntry::IbOut`].
        key: u64,
    },
    /// An idempotency stamp was invalidated: the operation it remembered
    /// was compensated (e.g. a rejected cross-branch payment refunded),
    /// so a retry must re-attempt instead of reading the stale success.
    IdemDrop {
        /// Certificate name of the caller that supplied the key.
        cert: String,
        /// Client-generated idempotency key.
        key: u64,
    },
}

/// An idempotency stamp committed atomically with a mutation batch.
#[derive(Clone, Debug)]
pub struct IdemStamp {
    /// Certificate name of the caller.
    pub cert: String,
    /// Client-generated idempotency key.
    pub key: u64,
    /// Encoded response to hand back on a retried request.
    pub response: Vec<u8>,
}

/// Rows committed atomically with a two-account mutation — the audit
/// trail and the dedup mark land in the journal in the same critical
/// section as the balance updates, so a crash can never separate them.
#[derive(Default)]
pub struct CommitRows {
    /// TRANSACTION RECORD rows (one per posted account entry).
    pub transactions: Vec<TransactionRecord>,
    /// The paired TRANSFER RECORD, if this mutation is a transfer.
    pub transfer: Option<TransferRecord>,
    /// Idempotency stamp for exactly-once retry semantics.
    pub idem: Option<IdemStamp>,
    /// A cross-branch credit to record as owed, atomically with the
    /// drawer's debit — a crash can never separate "funds parked in
    /// clearing" from "credit owed to the remote payee".
    pub ib_out: Option<PendingIbCredit>,
}

/// Bounded FIFO dedup cache for idempotency keys.
struct IdemCache {
    capacity: usize,
    map: HashMap<(String, u64), Vec<u8>>,
    order: VecDeque<(String, u64)>,
}

impl IdemCache {
    fn remove(&mut self, cert: &str, key: u64) -> bool {
        // The `order` entry stays behind; popping it later is a harmless
        // no-op against the map.
        self.map.remove(&(cert.to_string(), key)).is_some()
    }

    fn insert(&mut self, cert: &str, key: u64, response: Vec<u8>) {
        if self.capacity == 0 {
            return;
        }
        let k = (cert.to_string(), key);
        if self.map.insert(k.clone(), response).is_none() {
            self.order.push_back(k);
            while self.order.len() > self.capacity {
                if let Some(old) = self.order.pop_front() {
                    self.map.remove(&old);
                }
            }
        }
    }
}

/// Default bound on remembered idempotency keys per database.
pub const DEFAULT_IDEM_CAPACITY: usize = 4096;

/// Group-commit tuning for the write-ahead journal.
#[derive(Clone, Copy, Debug)]
pub struct GroupCommitConfig {
    /// Most batches one leader flushes in a single journal acquisition.
    /// `<= 1` disables grouping: every committer appends directly.
    pub max_batch: usize,
    /// Longest a flush leader lingers waiting for more committers to
    /// join the group before flushing what it has.
    pub max_delay_micros: u64,
}

impl Default for GroupCommitConfig {
    fn default() -> Self {
        GroupCommitConfig { max_batch: 64, max_delay_micros: 100 }
    }
}

/// One committer's journal entries, queued for a grouped flush. The
/// entries of a batch are appended contiguously, never interleaved with
/// another batch's.
struct PendingBatch {
    ticket: u64,
    entries: Vec<JournalEntry>,
}

struct CommitState {
    pending: Vec<PendingBatch>,
    /// A leader is currently gathering or flushing.
    leader: bool,
    next_ticket: u64,
    /// Highest ticket whose entries have reached the journal.
    flushed_through: u64,
}

/// The group-commit queue: committers enqueue entry batches; one becomes
/// the flush leader, lingers briefly for stragglers, and appends every
/// pending batch in ticket order under a single journal acquisition.
///
/// Committers call [`CommitQueue::submit`] while still holding their
/// shard locks, so two batches touching the same account can never race
/// into the queue out of application order — the invariant `replay`
/// depends on (updates are absolute snapshots).
struct CommitQueue {
    state: Mutex<CommitState>,
    /// Signals a gathering leader that another batch arrived.
    arrived: Condvar,
    /// Signals followers that a flush advanced `flushed_through`.
    flushed: Condvar,
    /// Threads currently inside `submit` — lets a leader flush
    /// immediately when nobody else could still join the group.
    writers: AtomicUsize,
    config: Mutex<GroupCommitConfig>,
}

impl CommitQueue {
    fn new() -> Self {
        CommitQueue {
            state: Mutex::new(CommitState {
                pending: Vec::new(),
                leader: false,
                next_ticket: 1,
                flushed_through: 0,
            }),
            arrived: Condvar::new(),
            flushed: Condvar::new(),
            writers: AtomicUsize::new(0),
            config: Mutex::new(GroupCommitConfig::default()),
        }
    }

    /// Appends `entries` to `journal` as one contiguous batch, returning
    /// once they are flushed. Blocks at most `max_delay` waiting for a
    /// group to form; with grouping disabled (`max_batch <= 1`), appends
    /// directly.
    fn submit(&self, entries: Vec<JournalEntry>, journal: &JournalStore) {
        // The journal stage of request processing: everything between a
        // committer arriving with entries and those entries reaching the
        // journal (including group-formation linger and leader flushes).
        let timer = gridbank_obs::Stopwatch::start();
        self.submit_inner(entries, journal);
        timer.record_named("server.stage.journal_ns");
    }

    fn submit_inner(&self, entries: Vec<JournalEntry>, journal: &JournalStore) {
        let cfg = *self.config.lock();
        if cfg.max_batch <= 1 {
            journal.append(entries);
            return;
        }
        self.writers.fetch_add(1, Ordering::SeqCst);
        let mut st = self.state.lock();
        let ticket = st.next_ticket;
        st.next_ticket = st.next_ticket.wrapping_add(1);
        st.pending.push(PendingBatch { ticket, entries });
        self.arrived.notify_all();
        loop {
            if st.flushed_through >= ticket {
                break;
            }
            if st.leader {
                // A leader is gathering or flushing; it will take our
                // batch (it drains everything pending) — wait for it.
                self.flushed.wait(&mut st);
                continue;
            }
            st.leader = true;
            // Linger for stragglers — but only while other writers are
            // actually in flight; a lone committer flushes immediately.
            // A pathological max_delay_micros that overflows Instant
            // clamps to a bounded one-second linger rather than
            // silently degrading to zero linger.
            let now = Instant::now();
            let deadline = now
                .checked_add(Duration::from_micros(cfg.max_delay_micros))
                .or_else(|| now.checked_add(Duration::from_secs(1)))
                .unwrap_or(now);
            while st.pending.len() < cfg.max_batch
                && st.pending.len() < self.writers.load(Ordering::SeqCst)
            {
                if self.arrived.wait_until(&mut st, deadline).timed_out() {
                    break;
                }
            }
            st.pending.sort_by_key(|b| b.ticket);
            let drained = std::mem::take(&mut st.pending);
            let high = drained.last().map_or(st.flushed_through, |b| b.ticket);
            drop(st);
            let batches = drained.len();
            {
                // One contiguous flush: a single journal acquisition and
                // (in durable mode) a single disk append + fsync for the
                // whole group — the amortization the queue exists for.
                let mut flat = Vec::with_capacity(
                    drained.iter().fold(0usize, |n, b| n.saturating_add(b.entries.len())),
                );
                for batch in drained {
                    flat.extend(batch.entries);
                }
                journal.append(flat);
            }
            gridbank_obs::count("db.journal.flushes", 1);
            gridbank_obs::observe("db.journal.batch_size", batches as u64);
            st = self.state.lock();
            st.flushed_through = st.flushed_through.max(high);
            st.leader = false;
            self.flushed.notify_all();
            // Loop re-checks: the leader drained its own ticket, so this
            // terminates here; a woken follower may become the next
            // leader for batches that arrived mid-flush.
        }
        drop(st);
        self.writers.fetch_sub(1, Ordering::SeqCst);
    }
}

/// The write-ahead journal: an in-memory mirror plus, in durable mode,
/// the on-disk segment log ([`crate::store::DiskLog`]).
///
/// Every append holds the `mem` lock across the disk write, so LSN
/// order on disk always equals in-memory journal order — the property
/// that lets sharded recovery reassemble the exact commit interleaving.
/// In durable mode the mirror holds only entries appended *since open*
/// (a diagnostic tail); history before that lives in snapshots+segments.
pub(crate) struct JournalStore {
    mem: OrderedMutex<Vec<JournalEntry>>,
    disk: Option<crate::store::DiskLog>,
}

impl JournalStore {
    /// A memory-only journal (the non-durable default).
    fn memory() -> Self {
        JournalStore {
            mem: OrderedMutex::new(rank::JOURNAL_MEM, 0, "journal-mem", Vec::new()),
            disk: None,
        }
    }

    /// Appends one batch: LSN assignment + segment write + fsync happen
    /// under the `mem` lock, then the mirror extends. Serialized, so
    /// batches stay contiguous on disk exactly as in memory.
    fn append(&self, entries: Vec<JournalEntry>) {
        let mut mem = self.mem.lock();
        if let Some(disk) = &self.disk {
            disk.append(&entries);
        }
        mem.extend(entries);
    }

    /// Appends one entry.
    fn append_one(&self, entry: JournalEntry) {
        self.append(vec![entry]);
    }

    /// Runs `apply` (a table mutation) and appends `entry` inside the
    /// same journal critical section — so a concurrent shard snapshot
    /// can never capture the table row *and* see its journal entry land
    /// past the snapshot's cut (which would double-apply on recovery).
    fn append_with(&self, entry: JournalEntry, apply: impl FnOnce()) {
        let mut mem = self.mem.lock();
        apply();
        if let Some(disk) = &self.disk {
            disk.append(std::slice::from_ref(&entry));
        }
        mem.push(entry);
    }
}

/// The embedded store.
pub struct Database {
    branch: u16,
    bank: u16,
    shards: Vec<OrderedRwLock<HashMap<AccountId, AccountRecord>>>,
    by_cert: OrderedRwLock<HashMap<String, AccountId>>,
    transactions: OrderedRwLock<Vec<TransactionRecord>>,
    transfers: OrderedRwLock<Vec<TransferRecord>>,
    journal: JournalStore,
    commit: CommitQueue,
    idem: OrderedMutex<IdemCache>,
    ib_pending: OrderedMutex<BTreeMap<u64, PendingIbCredit>>,
    next_account: AtomicU32,
    next_tx: AtomicU64,
    /// Guards `maybe_checkpoint` so at most one thread snapshots at a
    /// time (others skip rather than queue).
    checkpointing: AtomicBool,
}

impl Database {
    /// Creates an empty database for `bank`/`branch`.
    pub fn new(bank: u16, branch: u16) -> Self {
        Database {
            bank,
            branch,
            shards: (0..SHARDS)
                .map(|i| {
                    OrderedRwLock::new(
                        rank::ACCOUNT_SHARD,
                        i as u32,
                        "account-shard",
                        HashMap::new(),
                    )
                })
                .collect(),
            by_cert: OrderedRwLock::new(rank::ACCOUNT_INDEX, 0, "account-index", HashMap::new()),
            transactions: OrderedRwLock::new(
                rank::AUDIT_TRANSACTIONS,
                0,
                "audit-transactions",
                Vec::new(),
            ),
            transfers: OrderedRwLock::new(rank::AUDIT_TRANSFERS, 0, "audit-transfers", Vec::new()),
            journal: JournalStore::memory(),
            commit: CommitQueue::new(),
            idem: OrderedMutex::new(
                rank::IDEM_CACHE,
                0,
                "idem-cache",
                IdemCache {
                    capacity: DEFAULT_IDEM_CAPACITY,
                    map: HashMap::new(),
                    order: VecDeque::new(),
                },
            ),
            ib_pending: OrderedMutex::new(rank::IB_PENDING, 0, "ib-pending", BTreeMap::new()),
            next_account: AtomicU32::new(1),
            next_tx: AtomicU64::new(1),
            checkpointing: AtomicBool::new(false),
        }
    }

    /// Opens (or creates) a durable database at `cfg.dir` and recovers
    /// its state: newest valid snapshot per shard + replay of only the
    /// journal tail past it (docs/STORAGE.md §5). All subsequent commits
    /// are written through to sharded segment files via the group-commit
    /// queue.
    pub fn open(
        bank: u16,
        branch: u16,
        cfg: crate::store::StoreConfig,
    ) -> Result<(Self, crate::store::RecoveryReport), BankError> {
        let started = Instant::now();
        let (state, log) = crate::store::open_store(bank, branch, cfg)?;
        let mut db = Database::new(bank, branch);
        let mut max_account = 0u32;
        let mut max_tx = 0u64;

        // Fold the per-shard base images in.
        let mut stamps: Vec<crate::store::SnapshotIdem> = Vec::new();
        for base in &state.bases {
            max_account = max_account.max(base.next_account_hint);
            max_tx = max_tx.max(base.next_tx_hint);
            for r in &base.accounts {
                if r.id.bank == bank && r.id.branch == branch {
                    max_account = max_account.max(r.id.number);
                }
                db.by_cert.write().insert(r.certificate_name.clone(), r.id);
                db.shards[account_shard(&r.id)].write().insert(r.id, r.clone());
            }
            for t in &base.transactions {
                max_tx = max_tx.max(t.transaction_id);
            }
            db.transactions.write().extend(base.transactions.iter().cloned());
            db.transfers.write().extend(base.transfers.iter().cloned());
            for p in &base.pending {
                db.ib_pending.lock().insert(p.key, p.clone());
            }
            stamps.extend(base.idem.iter().cloned());
        }
        // Idempotency stamps merge across shards in their captured FIFO
        // order, approximating the original eviction order.
        stamps.sort_by_key(|s| s.order);
        {
            let mut cache = db.idem.lock();
            for s in stamps {
                cache.insert(&s.cert, s.key, s.response);
            }
        }
        // Replay the merged tail in global LSN order — the original
        // commit interleaving.
        for (_lsn, entry) in &state.tail {
            db.apply_entry(entry, &mut max_account, &mut max_tx);
        }
        db.next_account.store(max_account.saturating_add(1), Ordering::Relaxed);
        db.next_tx.store(max_tx.saturating_add(1), Ordering::Relaxed);
        db.journal.disk = Some(log);

        let mut report = state.report;
        report.accounts = db.account_count();
        report.elapsed_ms = started.elapsed().as_millis() as u64;
        gridbank_obs::count("db.recovery.replayed", report.tail_entries_replayed as u64);
        gridbank_obs::count("db.recovery.snapshots_loaded", report.snapshots_loaded as u64);
        gridbank_obs::count("db.recovery.torn_tails", report.torn_tails as u64);
        gridbank_obs::observe("db.recovery.ms", report.elapsed_ms);
        Ok((db, report))
    }

    /// Replaces the group-commit tuning. Takes effect for subsequent
    /// commits; `max_batch <= 1` turns grouping off entirely.
    pub fn set_group_commit(&self, config: GroupCommitConfig) {
        *self.commit.config.lock() = config;
    }

    /// The current group-commit tuning.
    pub fn group_commit(&self) -> GroupCommitConfig {
        *self.commit.config.lock()
    }

    /// Batches currently queued behind the group-commit leader — the
    /// ops-plane's view of journal backlog.
    pub fn commit_queue_depth(&self) -> usize {
        self.commit.state.lock().pending.len()
    }

    /// Commit tickets issued but not yet flushed to the journal: how far
    /// the write-ahead log trails its committers. Zero when idle.
    pub fn journal_flush_lag(&self) -> u64 {
        let st = self.commit.state.lock();
        st.next_ticket.saturating_sub(1).saturating_sub(st.flushed_through)
    }

    /// Re-bounds the idempotency dedup cache. Capacity 0 disables
    /// exactly-once deduplication entirely (chaos tests use this to
    /// prove their double-charge assertions have teeth).
    pub fn set_idem_capacity(&self, capacity: usize) {
        let mut cache = self.idem.lock();
        cache.capacity = capacity;
        if capacity == 0 {
            cache.map.clear();
            cache.order.clear();
        } else {
            while cache.order.len() > capacity {
                if let Some(old) = cache.order.pop_front() {
                    cache.map.remove(&old);
                }
            }
        }
    }

    /// Looks up the remembered response for `(cert, key)`, if this
    /// idempotency key was already consumed.
    pub fn idem_lookup(&self, cert: &str, key: u64) -> Option<Vec<u8>> {
        self.idem.lock().map.get(&(cert.to_string(), key)).cloned()
    }

    /// Records a consumed idempotency key with its response: cached for
    /// retries and journaled so crash-replay preserves the dedup. No-op
    /// when the cache is disabled (capacity 0).
    pub fn idem_record(&self, cert: &str, key: u64, response: Vec<u8>) {
        let mut cache = self.idem.lock();
        if cache.capacity == 0 {
            return;
        }
        cache.insert(cert, key, response.clone());
        drop(cache);
        self.journal.append_one(JournalEntry::Idem { cert: cert.to_string(), key, response });
    }

    /// Invalidates a consumed idempotency key: the remembered operation
    /// was compensated (refunded), so a retry must re-attempt instead of
    /// reading the stale success. Removed from the cache and journaled
    /// (`IdemDrop`) so crash-replay cannot resurrect the stamp.
    pub fn idem_invalidate(&self, cert: &str, key: u64) {
        let removed = self.idem.lock().remove(cert, key);
        if removed {
            self.journal.append_one(JournalEntry::IdemDrop { cert: cert.to_string(), key });
        }
    }

    /// Replaces the cached response for an already-recorded key without
    /// journaling again — used to upgrade a journaled placeholder to the
    /// fully signed response once post-commit signing finishes.
    pub fn idem_upgrade(&self, cert: &str, key: u64, response: Vec<u8>) {
        let mut cache = self.idem.lock();
        let k = (cert.to_string(), key);
        if let Some(slot) = cache.map.get_mut(&k) {
            *slot = response;
        }
    }

    /// The branch number of this database.
    pub fn branch(&self) -> u16 {
        self.branch
    }

    /// The bank number of this database.
    pub fn bank(&self) -> u16 {
        self.bank
    }

    fn shard_of(&self, id: &AccountId) -> usize {
        account_shard(id)
    }

    /// Allocates the next account id in this branch.
    pub fn allocate_account_id(&self) -> AccountId {
        AccountId {
            bank: self.bank,
            branch: self.branch,
            number: self.next_account.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// Allocates the next transaction id.
    pub fn allocate_transaction_id(&self) -> u64 {
        self.next_tx.fetch_add(1, Ordering::Relaxed)
    }

    /// Inserts a brand-new account record. Fails if the certificate name
    /// is already bound (one account per identity per branch).
    pub fn insert_account(&self, record: AccountRecord) -> Result<(), BankError> {
        let mut idx = self.by_cert.write();
        if idx.contains_key(&record.certificate_name) {
            return Err(BankError::DuplicateAccount(record.certificate_name.clone()));
        }
        idx.insert(record.certificate_name.clone(), record.id);
        drop(idx);
        self.shards[self.shard_of(&record.id)].write().insert(record.id, record.clone());
        self.journal.append_one(JournalEntry::Create(record));
        Ok(())
    }

    /// Reads an account by id.
    pub fn get_account(&self, id: &AccountId) -> Result<AccountRecord, BankError> {
        self.shards[self.shard_of(id)].read().get(id).cloned().ok_or(BankError::NoSuchAccount(*id))
    }

    /// Looks up the account bound to a certificate name.
    pub fn account_by_cert(&self, cert: &str) -> Result<AccountRecord, BankError> {
        let id = *self
            .by_cert
            .read()
            .get(cert)
            .ok_or_else(|| BankError::UnknownSubject(cert.to_string()))?;
        self.get_account(&id)
    }

    /// True if a certificate name has an account (the connection gate's
    /// query).
    pub fn subject_known(&self, cert: &str) -> bool {
        self.by_cert.read().contains_key(cert)
    }

    /// Mutates one account atomically; the closure's result is journaled.
    pub fn with_account_mut<T>(
        &self,
        id: &AccountId,
        f: impl FnOnce(&mut AccountRecord) -> Result<T, BankError>,
    ) -> Result<T, BankError> {
        let mut shard = self.shards[self.shard_of(id)].write();
        let record = shard.get_mut(id).ok_or(BankError::NoSuchAccount(*id))?;
        let out = f(record)?;
        let snapshot = record.clone();
        // Submit while still holding the shard lock: Update entries are
        // absolute snapshots, so per-account journal order must match
        // application order or replay resurrects stale balances.
        self.commit.submit(vec![JournalEntry::Update(snapshot)], &self.journal);
        drop(shard);
        Ok(out)
    }

    /// Mutates two accounts atomically (transfers). Shard locks are taken
    /// in ascending shard order — the classic deadlock-free protocol —
    /// and both journal entries are appended together.
    pub fn with_two_accounts_mut<T>(
        &self,
        a: &AccountId,
        b: &AccountId,
        f: impl FnOnce(&mut AccountRecord, &mut AccountRecord) -> Result<T, BankError>,
    ) -> Result<T, BankError> {
        self.two_account_commit(a, b, f, CommitRows::default())
    }

    /// Like [`Database::with_two_accounts_mut`], but also commits the
    /// given audit rows and idempotency stamp in the *same* critical
    /// section: the balance updates, transaction/transfer rows, and the
    /// dedup mark reach the journal as one contiguous batch while the
    /// shard locks are still held. A crash therefore either sees the
    /// whole operation (and replay dedups the retry) or none of it (and
    /// the retry applies cleanly) — never a double-apply.
    pub fn two_account_commit<T>(
        &self,
        a: &AccountId,
        b: &AccountId,
        f: impl FnOnce(&mut AccountRecord, &mut AccountRecord) -> Result<T, BankError>,
        rows: CommitRows,
    ) -> Result<T, BankError> {
        if a == b {
            return Err(BankError::Protocol("transfer to the same account".into()));
        }
        let (sa, sb) = (self.shard_of(a), self.shard_of(b));
        let out;
        let (snap_a, snap_b);
        if sa == sb {
            let mut shard = self.shards[sa].write();
            // Two disjoint &mut entries from one map: take `a` out, work,
            // put it back. Simpler and safe.
            let mut ra = shard.remove(a).ok_or(BankError::NoSuchAccount(*a))?;
            let rb = match shard.get_mut(b) {
                Some(rb) => rb,
                None => {
                    shard.insert(*a, ra);
                    return Err(BankError::NoSuchAccount(*b));
                }
            };
            match f(&mut ra, rb) {
                Ok(v) => {
                    out = v;
                    snap_b = rb.clone();
                    snap_a = ra.clone();
                    shard.insert(*a, ra);
                }
                Err(e) => {
                    shard.insert(*a, ra);
                    return Err(e);
                }
            }
        } else {
            // Order by shard index.
            let (first, second) = if sa < sb { (sa, sb) } else { (sb, sa) };
            let mut lock_first = self.shards[first].write();
            let mut lock_second = self.shards[second].write();
            let (shard_a, shard_b) = if sa < sb {
                (&mut *lock_first, &mut *lock_second)
            } else {
                (&mut *lock_second, &mut *lock_first)
            };
            let ra = shard_a.get_mut(a).ok_or(BankError::NoSuchAccount(*a))?;
            let rb = shard_b.get_mut(b).ok_or(BankError::NoSuchAccount(*b))?;
            out = f(ra, rb)?;
            snap_a = ra.clone();
            snap_b = rb.clone();
        }
        // Commit tables, then hand the journal batch to the group-commit
        // queue — still under the shard locks, so replay order matches
        // application order. The closure already succeeded by now; a
        // member whose closure failed returned above and contributes
        // nothing to the group (the failed member is "split out" and the
        // rest of the group commits without it).
        let mut entries = Vec::with_capacity(rows.transactions.len().saturating_add(3));
        entries.push(JournalEntry::Update(snap_a));
        entries.push(JournalEntry::Update(snap_b));
        {
            let mut txs_table = self.transactions.write();
            let mut tfs_table = self.transfers.write();
            for tx in rows.transactions {
                txs_table.push(tx.clone());
                entries.push(JournalEntry::Transaction(tx));
            }
            if let Some(t) = rows.transfer {
                tfs_table.push(t.clone());
                entries.push(JournalEntry::Transfer(t));
            }
        }
        if let Some(stamp) = rows.idem {
            let mut cache = self.idem.lock();
            if cache.capacity > 0 {
                cache.insert(&stamp.cert, stamp.key, stamp.response.clone());
                entries.push(JournalEntry::Idem {
                    cert: stamp.cert,
                    key: stamp.key,
                    response: stamp.response,
                });
            }
        }
        if let Some(credit) = rows.ib_out {
            self.ib_pending.lock().insert(credit.key, credit.clone());
            entries.push(JournalEntry::IbOut(credit));
        }
        self.commit.submit(entries, &self.journal);
        Ok(out)
    }

    /// Marks a pending cross-branch credit as delivered: the payee's
    /// branch acknowledged the `IbCredit` with this key. Journaled so
    /// replay won't re-ship it. Returns whether the key was pending.
    pub fn ib_ack(&self, key: u64) -> bool {
        let removed = self.ib_pending.lock().remove(&key).is_some();
        if removed {
            self.journal.append_one(JournalEntry::IbAck { key });
        }
        removed
    }

    /// Snapshot of unacknowledged cross-branch credits, in key order —
    /// the set a recovering branch must re-ship.
    pub fn ib_pending_snapshot(&self) -> Vec<PendingIbCredit> {
        self.ib_pending.lock().values().cloned().collect()
    }

    /// Removes an account (close-account path; caller enforces emptiness).
    pub fn remove_account(&self, id: &AccountId) -> Result<AccountRecord, BankError> {
        let record = self.shards[self.shard_of(id)]
            .write()
            .remove(id)
            .ok_or(BankError::NoSuchAccount(*id))?;
        self.by_cert.write().remove(&record.certificate_name);
        self.journal.append_one(JournalEntry::Remove(*id));
        Ok(record)
    }

    /// Appends a transaction row. Row and journal entry land in the
    /// same journal critical section, so a concurrent shard snapshot
    /// sees either both or neither.
    pub fn append_transaction(&self, tx: TransactionRecord) {
        let entry = JournalEntry::Transaction(tx.clone());
        self.journal.append_with(entry, || self.transactions.write().push(tx));
    }

    /// Appends a transfer row (same atomicity as
    /// [`Database::append_transaction`]).
    pub fn append_transfer(&self, t: TransferRecord) {
        let entry = JournalEntry::Transfer(t.clone());
        self.journal.append_with(entry, || self.transfers.write().push(t));
    }

    /// Statement query: transactions for `account` with
    /// `start_ms <= date < end_ms`.
    pub fn transactions_in_range(
        &self,
        account: &AccountId,
        start_ms: u64,
        end_ms: u64,
    ) -> Vec<TransactionRecord> {
        self.transactions
            .read()
            .iter()
            .filter(|t| t.account == *account && t.date_ms >= start_ms && t.date_ms < end_ms)
            .cloned()
            .collect()
    }

    /// Transfer rows involving `account` in the window (either side).
    pub fn transfers_in_range(
        &self,
        account: &AccountId,
        start_ms: u64,
        end_ms: u64,
    ) -> Vec<TransferRecord> {
        self.transfers
            .read()
            .iter()
            .filter(|t| {
                (t.drawer == *account || t.recipient == *account)
                    && t.date_ms >= start_ms
                    && t.date_ms < end_ms
            })
            .cloned()
            .collect()
    }

    /// All transfer rows (price-estimation scans; bank-internal).
    pub fn all_transfers(&self) -> Vec<TransferRecord> {
        self.transfers.read().clone()
    }

    /// Finds a transfer by transaction id.
    pub fn transfer_by_id(&self, transaction_id: u64) -> Option<TransferRecord> {
        self.transfers.read().iter().find(|t| t.transaction_id == transaction_id).cloned()
    }

    /// Total of available+locked across all accounts — the conservation
    /// quantity the property tests track.
    pub fn total_funds(&self) -> Credits {
        let mut total = Credits::ZERO;
        for shard in &self.shards {
            for r in shard.read().values() {
                total = total.saturating_add(r.available).saturating_add(r.locked);
            }
        }
        total
    }

    /// Number of accounts.
    pub fn account_count(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Snapshot of every account (statements, settlement, diagnostics).
    pub fn all_accounts(&self) -> Vec<AccountRecord> {
        let mut out = Vec::with_capacity(self.account_count());
        for shard in &self.shards {
            out.extend(shard.read().values().cloned());
        }
        out.sort_by_key(|r| r.id);
        out
    }

    /// Clones the in-memory journal mirror (crash-consistency
    /// snapshots). In durable mode this holds only entries appended
    /// since open — history before that lives in the on-disk store.
    pub fn journal_snapshot(&self) -> Vec<JournalEntry> {
        self.journal.mem.lock().clone()
    }

    /// Applies one journal entry to live state — the single replay
    /// transition shared by [`Database::replay`] (full history) and
    /// [`Database::open`] (snapshot + tail).
    fn apply_entry(&self, entry: &JournalEntry, max_account: &mut u32, max_tx: &mut u64) {
        match entry {
            JournalEntry::Create(r) => {
                *max_account = (*max_account).max(r.id.number);
                self.by_cert.write().insert(r.certificate_name.clone(), r.id);
                self.shards[self.shard_of(&r.id)].write().insert(r.id, r.clone());
            }
            JournalEntry::Update(r) => {
                self.shards[self.shard_of(&r.id)].write().insert(r.id, r.clone());
            }
            JournalEntry::Remove(id) => {
                if let Some(r) = self.shards[self.shard_of(id)].write().remove(id) {
                    self.by_cert.write().remove(&r.certificate_name);
                }
            }
            JournalEntry::Transaction(t) => {
                *max_tx = (*max_tx).max(t.transaction_id);
                self.transactions.write().push(t.clone());
            }
            JournalEntry::Transfer(t) => {
                *max_tx = (*max_tx).max(t.transaction_id);
                self.transfers.write().push(t.clone());
            }
            JournalEntry::Idem { cert, key, response } => {
                self.idem.lock().insert(cert, *key, response.clone());
            }
            JournalEntry::IbOut(credit) => {
                self.ib_pending.lock().insert(credit.key, credit.clone());
            }
            JournalEntry::IbAck { key } => {
                self.ib_pending.lock().remove(key);
            }
            JournalEntry::IdemDrop { cert, key } => {
                self.idem.lock().remove(cert, *key);
            }
        }
    }

    /// Rebuilds a database by replaying a journal.
    pub fn replay(bank: u16, branch: u16, journal: &[JournalEntry]) -> Self {
        let db = Database::new(bank, branch);
        let mut max_account = 0u32;
        let mut max_tx = 0u64;
        for entry in journal {
            db.apply_entry(entry, &mut max_account, &mut max_tx);
        }
        *db.journal.mem.lock() = journal.to_vec();
        db.next_account.store(max_account.saturating_add(1), Ordering::Relaxed);
        db.next_tx.store(max_tx.saturating_add(1), Ordering::Relaxed);
        db
    }

    // -- durable mode -------------------------------------------------

    /// Whether this database writes through to an on-disk store.
    pub fn durable(&self) -> bool {
        self.journal.disk.is_some()
    }

    /// Root directory of the on-disk store, when durable.
    pub fn store_dir(&self) -> Option<std::path::PathBuf> {
        self.journal.disk.as_ref().map(|d| d.dir().to_path_buf())
    }

    /// `false` once a disk append has failed: the bank keeps serving
    /// from memory, but acknowledgements are no longer crash-durable
    /// and the ops plane reports the branch Unhealthy.
    pub fn disk_healthy(&self) -> bool {
        self.journal.disk.as_ref().is_none_or(|d| d.healthy())
    }

    /// Journal entries appended since `shard`'s last snapshot — the
    /// tail a restart would replay for it. Zero when not durable.
    pub fn shard_tail_len(&self, shard: usize) -> u64 {
        self.journal.disk.as_ref().map_or(0, |d| d.tail_len(shard))
    }

    /// Captures a consistent image of one shard. Holding the shard's
    /// write lock *and* the journal lock at the cut means every entry
    /// routed here with `lsn <= through_lsn` is in the image and none
    /// past it is (docs/STORAGE.md §4 proves why out-of-shard entries
    /// cannot violate this).
    fn capture_shard(&self, s: usize) -> Option<crate::store::ShardSnapshot> {
        let disk = self.journal.disk.as_ref()?;
        let shard_guard = self.shards.get(s)?.write();
        let mem_guard = self.journal.mem.lock();
        let through_lsn = disk.last_lsn();
        let mut accounts: Vec<AccountRecord> = shard_guard.values().cloned().collect();
        accounts.sort_by_key(|r| r.id);
        let transactions = self
            .transactions
            .read()
            .iter()
            .filter(|t| account_shard(&t.account) == s)
            .cloned()
            .collect();
        let transfers = self
            .transfers
            .read()
            .iter()
            .filter(|t| account_shard(&t.drawer) == s)
            .cloned()
            .collect();
        let idem = {
            let cache = self.idem.lock();
            cache
                .order
                .iter()
                .enumerate()
                .filter(|(_, k)| cert_shard(&k.0) == s)
                .filter_map(|(i, k)| {
                    cache.map.get(k).map(|resp| crate::store::SnapshotIdem {
                        order: i as u64,
                        cert: k.0.clone(),
                        key: k.1,
                        response: resp.clone(),
                    })
                })
                .collect()
        };
        let pending =
            self.ib_pending.lock().values().filter(|p| key_shard(p.key) == s).cloned().collect();
        drop(mem_guard);
        drop(shard_guard);
        Some(crate::store::ShardSnapshot {
            shard: s as u32,
            through_lsn,
            next_account_hint: self.next_account.load(Ordering::Relaxed).saturating_sub(1),
            next_tx_hint: self.next_tx.load(Ordering::Relaxed).saturating_sub(1),
            accounts,
            transactions,
            transfers,
            idem,
            pending,
        })
    }

    /// Snapshots one shard to disk. No-op (Ok) when not durable.
    pub fn snapshot_shard(&self, shard: usize) -> Result<(), BankError> {
        let Some(snap) = self.capture_shard(shard) else { return Ok(()) };
        if let Some(disk) = self.journal.disk.as_ref() {
            disk.write_snapshot(&snap)?;
        }
        Ok(())
    }

    /// Snapshots every shard (no compaction) — the durable image after
    /// this call covers all state at its capture points.
    pub fn snapshot_all(&self) -> Result<CheckpointStats, BankError> {
        let mut stats = CheckpointStats::default();
        let Some(disk) = self.journal.disk.as_ref() else { return Ok(stats) };
        for s in 0..SHARDS {
            if let Some(snap) = self.capture_shard(s) {
                stats.bytes = stats.bytes.saturating_add(disk.write_snapshot(&snap)?);
                stats.shards_snapshotted = stats.shards_snapshotted.saturating_add(1);
            }
        }
        Ok(stats)
    }

    /// Compacts every shard: prunes old snapshot generations and drops
    /// segments fully covered by the oldest retained snapshot.
    pub fn compact_store(&self) -> Result<CheckpointStats, BankError> {
        let mut stats = CheckpointStats::default();
        let Some(disk) = self.journal.disk.as_ref() else { return Ok(stats) };
        for s in 0..SHARDS {
            let (dropped, pruned) = disk.compact_shard(s)?;
            stats.segments_dropped = stats.segments_dropped.saturating_add(dropped);
            stats.snapshots_pruned = stats.snapshots_pruned.saturating_add(pruned);
        }
        Ok(stats)
    }

    /// Full checkpoint: snapshot every shard, then compact. After this,
    /// a restart replays only entries committed since the call started.
    pub fn checkpoint(&self) -> Result<CheckpointStats, BankError> {
        let mut stats = self.snapshot_all()?;
        let compacted = self.compact_store()?;
        stats.segments_dropped = compacted.segments_dropped;
        stats.snapshots_pruned = compacted.snapshots_pruned;
        Ok(stats)
    }

    /// Incremental checkpoint trigger: snapshots (and compacts) only the
    /// shards whose journal tail reached `snapshot_every`. Must be
    /// called with **no** database locks held (the server calls it after
    /// dispatch). Concurrent callers skip; returns whether work ran.
    pub fn maybe_checkpoint(&self) -> Result<bool, BankError> {
        let Some(disk) = self.journal.disk.as_ref() else { return Ok(false) };
        let every = disk.config().snapshot_every;
        if every == 0 {
            return Ok(false);
        }
        let due: Vec<usize> = (0..SHARDS).filter(|s| disk.tail_len(*s) >= every).collect();
        if due.is_empty() {
            return Ok(false);
        }
        if self.checkpointing.swap(true, Ordering::SeqCst) {
            return Ok(false);
        }
        let result = (|| {
            for s in due {
                self.snapshot_shard(s)?;
                if let Some(d) = self.journal.disk.as_ref() {
                    d.compact_shard(s)?;
                }
            }
            Ok(true)
        })();
        self.checkpointing.store(false, Ordering::SeqCst);
        result
    }

    /// Order-insensitive digest of durable state: accounts (sorted),
    /// audit rows (sorted by encoding), pending credits, and live idem
    /// stamps. Two databases with identical logical state — e.g. before
    /// a kill and after the recovery — produce identical digests, even
    /// though recovery may reorder rows across shards.
    pub fn state_digest(&self) -> u64 {
        use gridbank_rur::codec::{ByteWriter, Encode as _};
        let mut w = ByteWriter::with_capacity(4096);
        for r in self.all_accounts() {
            r.encode(&mut w);
        }
        let mut rows: Vec<Vec<u8>> = self
            .transactions
            .read()
            .iter()
            .map(|t| {
                let mut rw = ByteWriter::with_capacity(64);
                t.encode(&mut rw);
                rw.into_bytes()
            })
            .collect();
        rows.sort_unstable();
        for row in rows {
            w.put_bytes(&row);
        }
        let mut rows: Vec<Vec<u8>> = self
            .transfers
            .read()
            .iter()
            .map(|t| {
                let mut rw = ByteWriter::with_capacity(64);
                t.encode(&mut rw);
                rw.into_bytes()
            })
            .collect();
        rows.sort_unstable();
        for row in rows {
            w.put_bytes(&row);
        }
        for p in self.ib_pending_snapshot() {
            w.put_u64(p.key);
        }
        let mut stamps: Vec<(String, u64)> = self.idem.lock().map.keys().cloned().collect();
        stamps.sort_unstable();
        for (cert, key) in stamps {
            w.put_str(&cert);
            w.put_u64(key);
        }
        crate::store::fnv64(&w.into_bytes())
    }
}

/// What a checkpoint did (snapshot + compaction totals).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CheckpointStats {
    /// Shards whose snapshot was written.
    pub shards_snapshotted: usize,
    /// Snapshot bytes written.
    pub bytes: u64,
    /// Segment files deleted by compaction.
    pub segments_dropped: usize,
    /// Old snapshot generations deleted.
    pub snapshots_pruned: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(db: &Database, cert: &str, gd: i64) -> AccountRecord {
        AccountRecord {
            id: db.allocate_account_id(),
            certificate_name: cert.to_string(),
            organization: None,
            available: Credits::from_gd(gd),
            locked: Credits::ZERO,
            currency: "GridDollar".into(),
            credit_limit: Credits::ZERO,
        }
    }

    #[test]
    fn account_id_format_and_parse() {
        let id = AccountId::new(1, 1, 1);
        assert_eq!(id.to_string(), "01-0001-00000001");
        assert_eq!(AccountId::parse("01-0001-00000001"), Some(id));
        assert_eq!(AccountId::parse("01-0001"), None);
        assert_eq!(AccountId::parse("x-y-z"), None);
        assert_eq!(AccountId::parse("1-2-3-4"), None);
    }

    #[test]
    fn insert_get_and_cert_index() {
        let db = Database::new(1, 1);
        let r = record(&db, "/CN=alice", 10);
        let id = r.id;
        db.insert_account(r.clone()).unwrap();
        assert_eq!(db.get_account(&id).unwrap(), r);
        assert_eq!(db.account_by_cert("/CN=alice").unwrap().id, id);
        assert!(db.subject_known("/CN=alice"));
        assert!(!db.subject_known("/CN=bob"));
        assert!(matches!(
            db.insert_account(record(&db, "/CN=alice", 0)),
            Err(BankError::DuplicateAccount(_))
        ));
    }

    #[test]
    fn ids_are_sequential_per_branch() {
        let db = Database::new(1, 3);
        let a = db.allocate_account_id();
        let b = db.allocate_account_id();
        assert_eq!(a.branch, 3);
        assert_eq!(b.number, a.number + 1);
    }

    #[test]
    fn two_account_mutation_both_orders() {
        let db = Database::new(1, 1);
        let ra = record(&db, "/CN=a", 10);
        let rb = record(&db, "/CN=b", 0);
        let (ida, idb) = (ra.id, rb.id);
        db.insert_account(ra).unwrap();
        db.insert_account(rb).unwrap();

        db.with_two_accounts_mut(&ida, &idb, |a, b| {
            a.available = a.available.checked_sub(Credits::from_gd(4))?;
            b.available = b.available.checked_add(Credits::from_gd(4))?;
            Ok(())
        })
        .unwrap();
        // Reverse order too (exercises the other lock order).
        db.with_two_accounts_mut(&idb, &ida, |b, a| {
            b.available = b.available.checked_sub(Credits::from_gd(1))?;
            a.available = a.available.checked_add(Credits::from_gd(1))?;
            Ok(())
        })
        .unwrap();
        assert_eq!(db.get_account(&ida).unwrap().available, Credits::from_gd(7));
        assert_eq!(db.get_account(&idb).unwrap().available, Credits::from_gd(3));
    }

    #[test]
    fn two_account_mutation_error_rolls_back() {
        let db = Database::new(1, 1);
        let ra = record(&db, "/CN=a", 10);
        let rb = record(&db, "/CN=b", 5);
        let (ida, idb) = (ra.id, rb.id);
        db.insert_account(ra).unwrap();
        db.insert_account(rb).unwrap();
        let before_a = db.get_account(&ida).unwrap();
        let err = db
            .with_two_accounts_mut(&ida, &idb, |_a, _b| Err::<(), _>(BankError::NonPositiveAmount));
        assert!(err.is_err());
        assert_eq!(db.get_account(&ida).unwrap(), before_a);
        // Self-transfer rejected.
        assert!(db.with_two_accounts_mut(&ida, &ida, |_a, _b| Ok(())).is_err());
        // Missing account rejected either side.
        let ghost = AccountId::new(9, 9, 9);
        assert!(db.with_two_accounts_mut(&ida, &ghost, |_a, _b| Ok(())).is_err());
        assert!(db.with_two_accounts_mut(&ghost, &ida, |_a, _b| Ok(())).is_err());
    }

    #[test]
    fn statements_filter_by_range_and_account() {
        let db = Database::new(1, 1);
        let ra = record(&db, "/CN=a", 0);
        let rb = record(&db, "/CN=b", 0);
        let (ida, idb) = (ra.id, rb.id);
        db.insert_account(ra).unwrap();
        db.insert_account(rb).unwrap();
        for (t, amount, date) in [(ida, 5, 10u64), (ida, -2, 20), (idb, 7, 15)] {
            db.append_transaction(TransactionRecord {
                transaction_id: db.allocate_transaction_id(),
                account: t,
                tx_type: TransactionType::Deposit,
                date_ms: date,
                amount: Credits::from_gd(amount),
            });
        }
        db.append_transfer(TransferRecord {
            transaction_id: db.allocate_transaction_id(),
            date_ms: 12,
            drawer: ida,
            amount: Credits::from_gd(3),
            recipient: idb,
            rur_blob: vec![1, 2, 3],
            trace_id: 0,
        });

        assert_eq!(db.transactions_in_range(&ida, 0, 100).len(), 2);
        assert_eq!(db.transactions_in_range(&ida, 15, 100).len(), 1);
        assert_eq!(db.transactions_in_range(&idb, 0, 100).len(), 1);
        // Transfers visible from both sides.
        assert_eq!(db.transfers_in_range(&ida, 0, 100).len(), 1);
        assert_eq!(db.transfers_in_range(&idb, 0, 100).len(), 1);
        assert_eq!(db.transfers_in_range(&ida, 13, 100).len(), 0);
        assert!(db.transfer_by_id(999).is_none());
    }

    #[test]
    fn journal_replay_reconstructs_state() {
        let db = Database::new(1, 1);
        let ra = record(&db, "/CN=a", 100);
        let rb = record(&db, "/CN=b", 50);
        let rc = record(&db, "/CN=c", 10);
        let (ida, idb, idc) = (ra.id, rb.id, rc.id);
        for r in [ra, rb, rc] {
            db.insert_account(r).unwrap();
        }
        db.with_two_accounts_mut(&ida, &idb, |a, b| {
            a.available = a.available.checked_sub(Credits::from_gd(30))?;
            b.available = b.available.checked_add(Credits::from_gd(30))?;
            Ok(())
        })
        .unwrap();
        db.with_account_mut(&idc, |c| {
            c.locked = Credits::from_gd(5);
            c.available = c.available.checked_sub(Credits::from_gd(5))?;
            Ok(())
        })
        .unwrap();
        db.append_transaction(TransactionRecord {
            transaction_id: db.allocate_transaction_id(),
            account: ida,
            tx_type: TransactionType::Transfer,
            date_ms: 1,
            amount: Credits::from_gd(-30),
        });
        db.remove_account(&idc).unwrap();

        let journal = db.journal_snapshot();
        let rebuilt = Database::replay(1, 1, &journal);
        assert_eq!(rebuilt.all_accounts(), db.all_accounts());
        assert_eq!(rebuilt.account_count(), 2);
        assert_eq!(rebuilt.total_funds(), db.total_funds());
        assert_eq!(rebuilt.transactions_in_range(&ida, 0, 10).len(), 1);
        // Id allocation resumes past the replayed maximum.
        assert!(rebuilt.allocate_account_id().number > idb.number);
        assert!(rebuilt.allocate_transaction_id() > 1);
        // Removed account's cert can be reused after replay.
        assert!(!rebuilt.subject_known("/CN=c"));
    }

    #[test]
    fn idem_cache_remembers_evicts_and_survives_replay() {
        let db = Database::new(1, 1);
        assert_eq!(db.idem_lookup("/CN=a", 7), None);
        db.idem_record("/CN=a", 7, vec![1, 2]);
        assert_eq!(db.idem_lookup("/CN=a", 7), Some(vec![1, 2]));
        // Keys are scoped per caller certificate.
        assert_eq!(db.idem_lookup("/CN=b", 7), None);
        // Upgrade replaces the cached bytes without another journal row.
        let journal_len = db.journal_snapshot().len();
        db.idem_upgrade("/CN=a", 7, vec![9]);
        assert_eq!(db.idem_lookup("/CN=a", 7), Some(vec![9]));
        assert_eq!(db.journal_snapshot().len(), journal_len);
        // Replay repopulates the cache (with the journaled bytes).
        let rebuilt = Database::replay(1, 1, &db.journal_snapshot());
        assert_eq!(rebuilt.idem_lookup("/CN=a", 7), Some(vec![1, 2]));
        // FIFO eviction at the capacity bound.
        db.set_idem_capacity(2);
        db.idem_record("/CN=a", 8, vec![]);
        db.idem_record("/CN=a", 9, vec![]);
        assert_eq!(db.idem_lookup("/CN=a", 7), None);
        assert!(db.idem_lookup("/CN=a", 9).is_some());
        // Capacity 0 disables the cache entirely.
        db.set_idem_capacity(0);
        assert_eq!(db.idem_lookup("/CN=a", 9), None);
        db.idem_record("/CN=a", 10, vec![3]);
        assert_eq!(db.idem_lookup("/CN=a", 10), None);
    }

    #[test]
    fn two_account_commit_batches_rows_atomically() {
        let db = Database::new(1, 1);
        let ra = record(&db, "/CN=a", 10);
        let rb = record(&db, "/CN=b", 0);
        let (ida, idb) = (ra.id, rb.id);
        db.insert_account(ra).unwrap();
        db.insert_account(rb).unwrap();
        let txid = db.allocate_transaction_id();
        let rows = CommitRows {
            transactions: vec![TransactionRecord {
                transaction_id: txid,
                account: ida,
                tx_type: TransactionType::Transfer,
                date_ms: 5,
                amount: Credits::from_gd(-4),
            }],
            transfer: Some(TransferRecord {
                transaction_id: txid,
                date_ms: 5,
                drawer: ida,
                amount: Credits::from_gd(4),
                recipient: idb,
                rur_blob: vec![],
                trace_id: 0,
            }),
            idem: Some(IdemStamp { cert: "/CN=a".into(), key: 42, response: vec![7] }),
            ib_out: None,
        };
        db.two_account_commit(
            &ida,
            &idb,
            |a, b| {
                a.available = a.available.checked_sub(Credits::from_gd(4))?;
                b.available = b.available.checked_add(Credits::from_gd(4))?;
                Ok(())
            },
            rows,
        )
        .unwrap();
        assert_eq!(db.idem_lookup("/CN=a", 42), Some(vec![7]));
        assert!(db.transfer_by_id(txid).is_some());
        assert_eq!(db.transactions_in_range(&ida, 0, 100).len(), 1);
        // The journal batch is contiguous: updates, rows, then the stamp.
        let tail: Vec<_> = db.journal_snapshot().into_iter().rev().take(4).collect();
        assert!(matches!(tail[0], JournalEntry::Idem { key: 42, .. }));
        assert!(matches!(tail[1], JournalEntry::Transfer(_)));
        assert!(matches!(tail[2], JournalEntry::Transaction(_)));
        assert!(matches!(tail[3], JournalEntry::Update(_)));
        // A failed mutation commits none of the rows.
        let before = db.journal_snapshot().len();
        let bad = db.two_account_commit(
            &ida,
            &idb,
            |_a, _b| Err::<(), _>(BankError::NonPositiveAmount),
            CommitRows {
                idem: Some(IdemStamp { cert: "/CN=a".into(), key: 43, response: vec![] }),
                ..CommitRows::default()
            },
        );
        assert!(bad.is_err());
        assert_eq!(db.journal_snapshot().len(), before);
        assert_eq!(db.idem_lookup("/CN=a", 43), None);
    }

    #[test]
    fn group_commit_coalesces_concurrent_transfers() {
        let db = Database::new(1, 1);
        db.set_group_commit(GroupCommitConfig { max_batch: 8, max_delay_micros: 500 });
        let mut ids = Vec::new();
        for i in 0..8 {
            let r = record(&db, &format!("/CN=gc{i}"), 100);
            ids.push(r.id);
            db.insert_account(r).unwrap();
        }
        // Four threads transfer over disjoint account pairs, so every
        // interleaving of their grouped batches is order-equivalent.
        std::thread::scope(|s| {
            for pair in ids.chunks(2) {
                let (a, b) = (pair[0], pair[1]);
                let db = &db;
                s.spawn(move || {
                    for _ in 0..25 {
                        db.with_two_accounts_mut(&a, &b, |ra, rb| {
                            ra.available = ra.available.checked_sub(Credits::from_gd(1))?;
                            rb.available = rb.available.checked_add(Credits::from_gd(1))?;
                            Ok(())
                        })
                        .unwrap();
                    }
                });
            }
        });
        assert_eq!(db.total_funds(), Credits::from_gd(800));
        // Every batch reached the journal and replay agrees with live
        // state — grouping changed journal-lock traffic, not contents.
        let rebuilt = Database::replay(1, 1, &db.journal_snapshot());
        assert_eq!(rebuilt.all_accounts(), db.all_accounts());
        assert_eq!(rebuilt.total_funds(), db.total_funds());
    }

    #[test]
    fn group_commit_disabled_appends_directly() {
        let db = Database::new(1, 1);
        db.set_group_commit(GroupCommitConfig { max_batch: 1, max_delay_micros: 10_000 });
        let ra = record(&db, "/CN=a", 10);
        let rb = record(&db, "/CN=b", 0);
        let (ida, idb) = (ra.id, rb.id);
        db.insert_account(ra).unwrap();
        db.insert_account(rb).unwrap();
        let before = db.journal_snapshot().len();
        db.with_two_accounts_mut(&ida, &idb, |a, b| {
            a.available = a.available.checked_sub(Credits::from_gd(1))?;
            b.available = b.available.checked_add(Credits::from_gd(1))?;
            Ok(())
        })
        .unwrap();
        assert_eq!(db.journal_snapshot().len(), before + 2);
    }

    #[test]
    fn failed_group_member_is_split_out_without_journal_rows() {
        let db = Database::new(1, 1);
        db.set_group_commit(GroupCommitConfig { max_batch: 4, max_delay_micros: 2_000 });
        let accounts: Vec<_> = [100i64, 100, 100, 100, 0, 100]
            .iter()
            .enumerate()
            .map(|(i, gd)| {
                let r = record(&db, &format!("/CN=m{i}"), *gd);
                db.insert_account(r.clone()).unwrap();
                r.id
            })
            .collect();
        let poor = accounts[4];
        let (a0, a1, a2, a3, a5) =
            (accounts[0], accounts[1], accounts[2], accounts[3], accounts[5]);
        // Three committers race into one group; the broke member must
        // fail without contributing journal rows while the others' rows
        // commit (abort-or-split, not abort-the-group).
        std::thread::scope(|s| {
            let db = &db;
            s.spawn(move || {
                db.with_two_accounts_mut(&a0, &a1, |a, b| {
                    a.available = a.available.checked_sub(Credits::from_gd(10))?;
                    b.available = b.available.checked_add(Credits::from_gd(10))?;
                    Ok(())
                })
                .unwrap();
            });
            s.spawn(move || {
                db.with_two_accounts_mut(&a2, &a3, |a, b| {
                    a.available = a.available.checked_sub(Credits::from_gd(10))?;
                    b.available = b.available.checked_add(Credits::from_gd(10))?;
                    Ok(())
                })
                .unwrap();
            });
            s.spawn(move || {
                let out = db.with_two_accounts_mut(&poor, &a5, |a, b| {
                    let amount = Credits::from_gd(10);
                    if a.spendable() < amount {
                        return Err(BankError::InsufficientFunds {
                            account: a.id,
                            needed: amount,
                            spendable: a.spendable(),
                        });
                    }
                    a.available = a.available.checked_sub(amount)?;
                    b.available = b.available.checked_add(amount)?;
                    Ok(())
                });
                assert!(matches!(out, Err(BankError::InsufficientFunds { .. })));
            });
        });
        // The failed member left no Update rows; replay can't resurrect
        // a half-applied transfer.
        let journal = db.journal_snapshot();
        assert!(!journal.iter().any(|e| matches!(e, JournalEntry::Update(r) if r.id == poor)));
        let rebuilt = Database::replay(1, 1, &journal);
        assert_eq!(rebuilt.all_accounts(), db.all_accounts());
        assert_eq!(db.get_account(&poor).unwrap().available, Credits::ZERO);
    }

    #[test]
    fn ib_pending_tracks_acks_and_survives_replay() {
        let db = Database::new(1, 1);
        let ra = record(&db, "/CN=a", 10);
        let rb = record(&db, "/CN=clearing", 0);
        let (ida, idb) = (ra.id, rb.id);
        db.insert_account(ra).unwrap();
        db.insert_account(rb).unwrap();
        let credit = PendingIbCredit {
            key: 0xC0FFEE,
            to: AccountId::new(1, 2, 5),
            amount: Credits::from_gd(4),
            origin: 1,
            drawer: ida,
            idem: Some(("/CN=a".into(), 77)),
        };
        db.two_account_commit(
            &ida,
            &idb,
            |a, b| {
                a.available = a.available.checked_sub(Credits::from_gd(4))?;
                b.available = b.available.checked_add(Credits::from_gd(4))?;
                Ok(())
            },
            CommitRows { ib_out: Some(credit.clone()), ..CommitRows::default() },
        )
        .unwrap();
        assert_eq!(db.ib_pending_snapshot(), vec![credit.clone()]);
        // A crash here re-ships the credit: replay rebuilds the set.
        let rebuilt = Database::replay(1, 1, &db.journal_snapshot());
        assert_eq!(rebuilt.ib_pending_snapshot(), vec![credit]);
        // Invalidation journals an IdemDrop that replay honors.
        db.idem_record("/CN=a", 77, vec![1]);
        assert!(db.idem_lookup("/CN=a", 77).is_some());
        db.idem_invalidate("/CN=a", 77);
        assert!(db.idem_lookup("/CN=a", 77).is_none());
        let rebuilt = Database::replay(1, 1, &db.journal_snapshot());
        assert!(rebuilt.idem_lookup("/CN=a", 77).is_none());
        // Acking removes it, is journaled, and is idempotent.
        assert!(db.ib_ack(0xC0FFEE));
        assert!(!db.ib_ack(0xC0FFEE));
        assert!(db.ib_pending_snapshot().is_empty());
        let rebuilt = Database::replay(1, 1, &db.journal_snapshot());
        assert!(rebuilt.ib_pending_snapshot().is_empty());
    }

    #[test]
    fn total_funds_sums_available_and_locked() {
        let db = Database::new(1, 1);
        let mut r = record(&db, "/CN=a", 10);
        r.locked = Credits::from_gd(4);
        db.insert_account(r).unwrap();
        db.insert_account(record(&db, "/CN=b", 1)).unwrap();
        assert_eq!(db.total_funds(), Credits::from_gd(15));
    }

    #[test]
    fn concurrent_transfers_preserve_total() {
        let db = std::sync::Arc::new(Database::new(1, 1));
        let mut ids = Vec::new();
        for i in 0..8 {
            let r = record(&db, &format!("/CN=u{i}"), 100);
            ids.push(r.id);
            db.insert_account(r).unwrap();
        }
        let before = db.total_funds();
        std::thread::scope(|s| {
            for t in 0..8 {
                let db = db.clone();
                let ids = ids.clone();
                s.spawn(move || {
                    for k in 0..200 {
                        let from = ids[(t + k) % ids.len()];
                        let to = ids[(t + k + 1 + k % 5) % ids.len()];
                        if from == to {
                            continue;
                        }
                        let _ = db.with_two_accounts_mut(&from, &to, |a, b| {
                            let amt = Credits::from_micro(1_000);
                            a.available = a.available.checked_sub(amt)?;
                            b.available = b.available.checked_add(amt)?;
                            Ok(())
                        });
                    }
                });
            }
        });
        assert_eq!(db.total_funds(), before);
    }
}

// ---------------------------------------------------------------------------
// Loom model: the group-commit queue under concurrent submitters.
// ---------------------------------------------------------------------------
//
// Built only under `RUSTFLAGS="--cfg loom"`: `crate::sync` swaps to the
// vendored yield-injecting primitives and these models hammer
// `CommitQueue::submit` across many randomized interleavings (see
// docs/STATIC_ANALYSIS.md for how bounded the exploration is).

#[cfg(all(loom, test))]
mod loom_model {
    use super::*;
    use std::sync::Arc;

    /// A journal entry tagged so it can be tracked through a flush.
    fn entry(tag: u64) -> JournalEntry {
        JournalEntry::Transaction(TransactionRecord {
            transaction_id: tag,
            account: AccountId::new(1, 1, 1),
            tx_type: TransactionType::Transfer,
            date_ms: 0,
            amount: Credits::ZERO,
        })
    }

    fn tag_of(e: &JournalEntry) -> u64 {
        match e {
            JournalEntry::Transaction(t) => t.transaction_id,
            other => panic!("unexpected journal entry {other:?}"),
        }
    }

    /// Three submitters, two 2-entry batches each, `max_batch = 2`: the
    /// queue must run several flush rounds with leader handoff in
    /// between. Every batch must land exactly once, stay contiguous,
    /// and batches from one submitter must land in submission order.
    #[test]
    fn group_commit_loses_nothing_and_keeps_batches_contiguous() {
        loom::model(|| {
            let queue = Arc::new(CommitQueue::new());
            *queue.config.lock() = GroupCommitConfig { max_batch: 2, max_delay_micros: 50 };
            let journal = Arc::new(JournalStore::memory());

            let handles: Vec<_> = (0..3u64)
                .map(|t| {
                    let queue = Arc::clone(&queue);
                    let journal = Arc::clone(&journal);
                    loom::thread::spawn(move || {
                        for b in 0..2u64 {
                            let batch = t * 2 + b;
                            queue.submit(vec![entry(batch * 2), entry(batch * 2 + 1)], &journal);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("submitter thread");
            }

            let tags: Vec<u64> = journal.mem.lock().iter().map(tag_of).collect();
            assert_eq!(tags.len(), 12, "lost or duplicated entries: {tags:?}");
            let mut sorted = tags.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..12).collect::<Vec<_>>(), "entry set mangled: {tags:?}");
            // Batches are contiguous: each even tag is immediately
            // followed by its odd partner (submit promises a single
            // journal acquisition per group, batch by batch).
            for pair in tags.chunks(2) {
                assert_eq!(pair[0] % 2, 0, "batch boundary misaligned: {tags:?}");
                assert_eq!(pair[1], pair[0] + 1, "batch split across flushes: {tags:?}");
            }
            // Submitter order: thread t's first batch (first tag 4t)
            // precedes its second (first tag 4t + 2).
            let pos = |tag: u64| tags.iter().position(|&x| x == tag).expect("tag present");
            for t in 0..3u64 {
                assert!(pos(t * 4) < pos(t * 4 + 2), "submitter {t} batches reordered: {tags:?}");
            }
        });
    }

    /// A lone submitter with a large `max_batch` must not deadlock
    /// waiting for a group that can never form: the linger loop is
    /// bounded by the live-writer count, so a single writer flushes
    /// immediately.
    #[test]
    fn lone_submitter_flushes_without_lingering() {
        loom::model(|| {
            let queue = Arc::new(CommitQueue::new());
            // Deadline long enough that an accidental linger would make
            // the model run visibly slow rather than racing past it.
            *queue.config.lock() = GroupCommitConfig { max_batch: 64, max_delay_micros: 100_000 };
            let journal = Arc::new(JournalStore::memory());
            let h = {
                let queue = Arc::clone(&queue);
                let journal = Arc::clone(&journal);
                loom::thread::spawn(move || queue.submit(vec![entry(1)], &journal))
            };
            h.join().expect("submitter thread");
            assert_eq!(journal.mem.lock().len(), 1);
        });
    }

    /// A scratch store directory unique to this process *and* model
    /// iteration, so iterations never replay each other's journals.
    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        static NEXT: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
        let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        std::env::temp_dir().join(format!("gb-loom-{tag}-{}-{n}", std::process::id()))
    }

    fn scratch_cfg(dir: &std::path::Path) -> crate::store::StoreConfig {
        crate::store::StoreConfig {
            dir: dir.to_path_buf(),
            // No power-failure drill here — the model probes lock/cut
            // interleavings, not fsync ordering (L8 covers that).
            fsync: false,
            segment_bytes: 64 * 1024,
            snapshot_every: u64::MAX,
            retain_snapshots: 1,
        }
    }

    fn funded_account(db: &Database, cert: &str, gd: i64) -> AccountRecord {
        AccountRecord {
            id: db.allocate_account_id(),
            certificate_name: cert.to_string(),
            organization: None,
            available: Credits::from_gd(gd),
            locked: Credits::ZERO,
            currency: "GridDollar".into(),
            credit_limit: Credits::ZERO,
        }
    }

    /// A shard snapshot racing a commit on the same shard: the snapshot
    /// cut must land each update either *in* the snapshot or *past* it
    /// in the replay tail — a reopened store always converges to the
    /// live digest, never double-applies, never loses a deposit.
    #[test]
    fn snapshot_during_commit_replays_to_the_live_digest() {
        loom::model(|| {
            let dir = scratch_dir("snap");
            let _ = std::fs::remove_dir_all(&dir);
            let cfg = scratch_cfg(&dir);
            let (db, _report) = Database::open(1, 1, cfg.clone()).expect("open scratch store");
            let rec = funded_account(&db, "/CN=loom-snap", 100);
            let id = rec.id;
            let shard = account_shard(&id);
            db.insert_account(rec).expect("insert");

            let db = Arc::new(db);
            let depositor = {
                let db = Arc::clone(&db);
                loom::thread::spawn(move || {
                    for _ in 0..2 {
                        db.with_account_mut(&id, |a| {
                            a.available = a.available.checked_add(Credits::from_gd(1))?;
                            Ok(())
                        })
                        .expect("deposit");
                    }
                })
            };
            let snapshotter = {
                let db = Arc::clone(&db);
                loom::thread::spawn(move || db.snapshot_shard(shard).expect("snapshot"))
            };
            depositor.join().expect("depositor thread");
            snapshotter.join().expect("snapshot thread");

            let live_digest = db.state_digest();
            let live_funds = db.total_funds();
            assert_eq!(live_funds, Credits::from_gd(102), "deposit lost or doubled");
            drop(db);

            let (reopened, _report) = Database::open(1, 1, cfg).expect("reopen scratch store");
            assert_eq!(reopened.state_digest(), live_digest, "replay diverged from live state");
            assert_eq!(reopened.total_funds(), live_funds);
            let _ = std::fs::remove_dir_all(&dir);
        });
    }

    /// A cross-shard transfer racing store compaction: the transfer's
    /// sorted two-shard lock hold and compaction's marker-then-delete
    /// protocol must interleave without deadlock, conservation breaks,
    /// or a recovery gap (the COMPACTED marker never outruns a
    /// snapshot that covers it).
    #[test]
    fn cross_shard_transfer_vs_compaction_conserves_and_recovers() {
        loom::model(|| {
            let dir = scratch_dir("compact");
            let _ = std::fs::remove_dir_all(&dir);
            let cfg = scratch_cfg(&dir);
            let (db, _report) = Database::open(1, 1, cfg.clone()).expect("open scratch store");
            let payer = funded_account(&db, "/CN=loom-payer", 100);
            // Walk the id sequence until the payee homes on a different
            // shard — the transfer must take two distinct shard locks.
            let mut payee = funded_account(&db, "/CN=loom-payee", 50);
            while account_shard(&payee.id) == account_shard(&payer.id) {
                payee.id = db.allocate_account_id();
            }
            let (pay_from, pay_to) = (payer.id, payee.id);
            db.insert_account(payer).expect("insert payer");
            db.insert_account(payee).expect("insert payee");
            // Seed a snapshot generation so compaction has a covered
            // prefix to mark and prune behind.
            db.snapshot_all().expect("seed snapshots");

            let db = Arc::new(db);
            let transferrer = {
                let db = Arc::clone(&db);
                loom::thread::spawn(move || {
                    db.with_two_accounts_mut(&pay_from, &pay_to, |a, b| {
                        a.available = a.available.checked_sub(Credits::from_gd(30))?;
                        b.available = b.available.checked_add(Credits::from_gd(30))?;
                        Ok(())
                    })
                    .expect("transfer");
                })
            };
            let compactor = {
                let db = Arc::clone(&db);
                loom::thread::spawn(move || {
                    db.compact_store().expect("compact");
                })
            };
            transferrer.join().expect("transfer thread");
            compactor.join().expect("compactor thread");

            let live_digest = db.state_digest();
            let live_funds = db.total_funds();
            assert_eq!(live_funds, Credits::from_gd(150), "transfer broke conservation");
            assert_eq!(db.get_account(&pay_from).expect("payer").available, Credits::from_gd(70));
            drop(db);

            let (reopened, _report) = Database::open(1, 1, cfg).expect("reopen scratch store");
            assert_eq!(reopened.state_digest(), live_digest, "replay diverged from live state");
            assert_eq!(reopened.total_funds(), live_funds);
            let _ = std::fs::remove_dir_all(&dir);
        });
    }
}
