//! Competitive-model price estimation (§4.2).
//!
//! "GridBank's transaction history can assist in deciding how much a
//! computational service is worth. Such transaction history is
//! confidential and cannot be disclosed as is. Therefore GridBank would
//! receive a description of the resource, process the information in its
//! database regarding prices paid for resources of similar type, and then
//! produce an estimate. The simplest approach to compare resources is to
//! consider hardware parameters such as processor speed, number of
//! processors, amount of main memory and secondary storage, network
//! bandwidth."
//!
//! [`PriceEstimator`] keeps (description, realized unit price)
//! observations — fed by the bank as cheques/chains are redeemed — and
//! answers queries with a similarity-weighted average. Only the estimate
//! leaves the bank; raw history stays confidential.

use std::sync::Arc;

use crate::sync::RwLock;

use gridbank_rur::Credits;

use crate::error::BankError;

/// Hardware description of a resource — §4.2's comparison attributes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResourceDescription {
    /// Per-core speed rating.
    pub cpu_speed: u32,
    /// Core count.
    pub cpu_count: u32,
    /// Main memory, MB.
    pub memory_mb: u64,
    /// Secondary storage, MB.
    pub storage_mb: u64,
    /// Network bandwidth, Mbit/s.
    pub bandwidth_mbps: u32,
}

/// One realized price point.
#[derive(Clone, Copy, Debug)]
struct Observation {
    desc: ResourceDescription,
    /// Realized price per CPU-hour.
    unit_price: Credits,
}

/// Similarity in fixed-point parts-per-1024: 1024 = identical.
///
/// The per-attribute min/max ratios are *multiplied* (not averaged) so a
/// resource must be close on every attribute to score high — a machine
/// that matches on storage and bandwidth but is 50× faster contributes
/// almost nothing to an estimate.
fn similarity(a: &ResourceDescription, b: &ResourceDescription) -> u64 {
    fn ratio(x: u64, y: u64) -> u64 {
        if x == 0 && y == 0 {
            return 1024;
        }
        let (lo, hi) = if x <= y { (x, y) } else { (y, x) };
        if hi == 0 {
            return 1024;
        }
        lo.saturating_mul(1024).checked_div(hi).unwrap_or(1024)
    }
    let parts = [
        ratio(a.cpu_speed as u64, b.cpu_speed as u64),
        ratio(a.cpu_count as u64, b.cpu_count as u64),
        ratio(a.memory_mb, b.memory_mb),
        ratio(a.storage_mb, b.storage_mb),
        ratio(a.bandwidth_mbps as u64, b.bandwidth_mbps as u64),
    ];
    parts.iter().fold(1024u64, |acc, r| acc.saturating_mul(*r) / 1024)
}

/// The estimator.
#[derive(Clone, Default)]
pub struct PriceEstimator {
    observations: Arc<RwLock<Vec<Observation>>>,
}

impl PriceEstimator {
    /// An empty estimator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a realized price for a resource of the given description.
    pub fn observe(&self, desc: ResourceDescription, unit_price: Credits) {
        self.observations.write().push(Observation { desc, unit_price });
    }

    /// Number of price points held.
    pub fn observation_count(&self) -> usize {
        self.observations.read().len()
    }

    /// Produces a similarity-weighted market estimate (G$ per CPU-hour)
    /// for a resource, considering only observations with similarity above
    /// `min_similarity_ppk` (parts per 1024; 0 accepts everything).
    pub fn estimate(
        &self,
        desc: &ResourceDescription,
        min_similarity_ppk: u64,
    ) -> Result<Credits, BankError> {
        let obs = self.observations.read();
        let mut weighted_sum: i128 = 0;
        let mut weight_total: i128 = 0;
        for o in obs.iter() {
            let w = similarity(desc, &o.desc);
            if w < min_similarity_ppk {
                continue;
            }
            // Saturating is fine here: this is a price *estimate*, not
            // account arithmetic, and similarity weights are <= 1000.
            weighted_sum =
                weighted_sum.saturating_add(o.unit_price.micro().saturating_mul(w as i128));
            weight_total = weight_total.saturating_add(w as i128);
        }
        if weight_total == 0 {
            return Err(BankError::Protocol("no comparable transaction history".into()));
        }
        Ok(Credits::from_micro(weighted_sum.checked_div(weight_total).unwrap_or(0)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn desc(speed: u32, cores: u32, mem: u64) -> ResourceDescription {
        ResourceDescription {
            cpu_speed: speed,
            cpu_count: cores,
            memory_mb: mem,
            storage_mb: 100_000,
            bandwidth_mbps: 1000,
        }
    }

    #[test]
    fn similarity_properties() {
        let a = desc(1000, 8, 16_384);
        let b = desc(2000, 8, 16_384);
        assert_eq!(similarity(&a, &a), 1024);
        assert_eq!(similarity(&a, &b), similarity(&b, &a));
        // Doubling one of five attributes halves the product similarity.
        assert_eq!(similarity(&a, &b), 512);
        // A very different machine scores near zero despite matching
        // storage and bandwidth exactly.
        let c = desc(10, 1, 128);
        assert!(similarity(&a, &c) < 10);
    }

    #[test]
    fn estimate_weights_similar_resources_higher() {
        let e = PriceEstimator::new();
        // Cluster of machines like `target` trading at ~2 G$/h.
        let target = desc(1000, 8, 16_384);
        e.observe(desc(1000, 8, 16_384), Credits::from_gd(2));
        e.observe(desc(1100, 8, 16_384), Credits::from_micro(2_100_000));
        // A supercomputer trading at 50 G$/h — dissimilar, low weight.
        e.observe(desc(50_000, 1024, 4_000_000), Credits::from_gd(50));

        let est = e.estimate(&target, 0).unwrap();
        // Weighted estimate stays near 2, far from the naive mean (~18).
        assert!(est < Credits::from_gd(6), "estimate {est}");
        assert!(est > Credits::from_gd(1), "estimate {est}");

        // With a similarity threshold, the outlier is excluded entirely.
        let strict = e.estimate(&target, 800).unwrap();
        assert!(strict < Credits::from_micro(2_200_000), "strict {strict}");
        assert!(strict >= Credits::from_gd(2), "strict {strict}");
    }

    #[test]
    fn estimate_without_history_errs() {
        let e = PriceEstimator::new();
        assert!(e.estimate(&desc(1, 1, 1), 0).is_err());
        e.observe(desc(1000, 8, 16_384), Credits::from_gd(2));
        // Threshold excludes everything.
        assert!(e.estimate(&desc(1, 1, 1), 1000).is_err());
    }

    #[test]
    fn identical_history_estimates_exactly() {
        let e = PriceEstimator::new();
        for _ in 0..5 {
            e.observe(desc(500, 4, 8_192), Credits::from_gd(3));
        }
        assert_eq!(e.observation_count(), 5);
        assert_eq!(e.estimate(&desc(500, 4, 8_192), 0).unwrap(), Credits::from_gd(3));
    }
}
