//! GridBank error type.

use std::fmt;

use gridbank_crypto::CryptoError;
use gridbank_net::NetError;
use gridbank_rur::RurError;

use crate::db::AccountId;

/// Errors from GridBank operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BankError {
    /// Account does not exist.
    NoSuchAccount(AccountId),
    /// No account is bound to this certificate name.
    UnknownSubject(String),
    /// An account already exists for this certificate name.
    DuplicateAccount(String),
    /// Available balance (plus credit) cannot cover the operation.
    InsufficientFunds {
        /// Account short of funds.
        account: AccountId,
        /// Amount that was needed.
        needed: gridbank_rur::Credits,
        /// Spendable amount (available + remaining credit).
        spendable: gridbank_rur::Credits,
    },
    /// Locked balance cannot cover a transfer-from-locked.
    InsufficientLockedFunds {
        /// Account involved.
        account: AccountId,
        /// Amount requested from the locked balance.
        needed: gridbank_rur::Credits,
        /// Locked amount actually present.
        locked: gridbank_rur::Credits,
    },
    /// A payment instrument (cheque/chain) was rejected.
    InvalidInstrument(String),
    /// An instrument was already redeemed (double-spend attempt).
    AlreadyRedeemed(String),
    /// The caller lacks the privilege for an operation.
    NotAuthorized(String),
    /// Amounts must be positive for this operation.
    NonPositiveAmount,
    /// The account still holds funds or locks and cannot be closed.
    AccountNotEmpty(AccountId),
    /// A cross-branch operation referenced an unknown branch.
    UnknownBranch(u16),
    /// The account lives on another branch; retry against its home branch.
    NotHomeBranch {
        /// The branch that actually holds the account.
        home: u16,
    },
    /// Arithmetic/record-level failure.
    Record(RurError),
    /// Signature/certificate failure.
    Crypto(CryptoError),
    /// Transport/handshake failure (client side).
    Net(NetError),
    /// Malformed wire message.
    Protocol(String),
    /// On-disk store failure: I/O error, corrupt file, or an
    /// unrecoverable layout (e.g. journal compacted past every valid
    /// snapshot). See docs/STORAGE.md.
    Storage(String),
    /// The path handed to `gridbank store` / `inspect` is not a store
    /// directory at all: missing, empty, or lacking a MANIFEST. Distinct
    /// from `Storage`, which means a real store is damaged.
    NotAStore {
        /// The directory that was inspected.
        dir: String,
        /// Why it is not a store (missing, empty, no MANIFEST, ...).
        reason: String,
    },
}

impl fmt::Display for BankError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BankError::NoSuchAccount(id) => write!(f, "no such account {id}"),
            BankError::UnknownSubject(s) => write!(f, "no account for subject `{s}`"),
            BankError::DuplicateAccount(s) => write!(f, "account already exists for `{s}`"),
            BankError::InsufficientFunds { account, needed, spendable } => {
                write!(f, "account {account} has {spendable} spendable but needs {needed}")
            }
            BankError::InsufficientLockedFunds { account, needed, locked } => {
                write!(f, "account {account} has {locked} locked but {needed} was claimed")
            }
            BankError::InvalidInstrument(why) => write!(f, "invalid payment instrument: {why}"),
            BankError::AlreadyRedeemed(what) => write!(f, "already redeemed: {what}"),
            BankError::NotAuthorized(why) => write!(f, "not authorized: {why}"),
            BankError::NonPositiveAmount => write!(f, "amount must be positive"),
            BankError::AccountNotEmpty(id) => {
                write!(f, "account {id} still holds funds or locks")
            }
            BankError::UnknownBranch(b) => write!(f, "unknown branch {b:04}"),
            BankError::NotHomeBranch { home } => {
                write!(f, "account's home branch is {home}")
            }
            BankError::Record(e) => write!(f, "record error: {e}"),
            BankError::Crypto(e) => write!(f, "crypto error: {e}"),
            BankError::Net(e) => write!(f, "network error: {e}"),
            BankError::Protocol(why) => write!(f, "protocol error: {why}"),
            BankError::Storage(why) => write!(f, "storage error: {why}"),
            BankError::NotAStore { dir, reason } => {
                write!(f, "not a gridbank store: {dir} ({reason})")
            }
        }
    }
}

impl std::error::Error for BankError {}

impl From<RurError> for BankError {
    fn from(e: RurError) -> Self {
        BankError::Record(e)
    }
}

impl From<CryptoError> for BankError {
    fn from(e: CryptoError) -> Self {
        BankError::Crypto(e)
    }
}

impl From<NetError> for BankError {
    fn from(e: NetError) -> Self {
        BankError::Net(e)
    }
}
