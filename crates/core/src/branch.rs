//! Multiple GridBank branches and inter-branch settlement (§6).
//!
//! "In the future, GridBank system will be expanded to provide multiple
//! servers/branches across the Grid to achieve scalability … It is
//! precisely for this purpose that GridBank accounts have branch numbers.
//! Each Virtual Organization associates a GridBank server that all
//! participants of the organization use. If a GSC is from one VO and GSP
//! is from another, then their respective servers will need to define
//! protocols for settling accounts between the branches."
//!
//! Implemented here (the paper's future work):
//!
//! * each branch is a full accounts stack with its own database;
//! * every branch holds a **clearing account** per peer branch;
//! * a cross-branch payment debits the drawer into the local clearing
//!   account while the payee's branch credits the payee immediately
//!   (deposit against the remote branch's liability) — consumers and
//!   providers never wait on settlement;
//! * [`InterBank::settle`] periodically nets the pairwise liabilities and
//!   moves only the net amount between banks, reporting the gross-to-net
//!   compression that motivates netting.

use std::collections::HashMap;

use gridbank_rur::Credits;

use crate::accounts::GbAccounts;
use crate::admin::GbAdmin;
use crate::db::AccountId;
use crate::error::BankError;

/// The administrator identity settlement runs under.
pub const SETTLEMENT_ADMIN: &str = "/O=GridBank/OU=Settlement/CN=interbank";

/// Certificate name of the clearing account branch `local` holds for
/// flows toward branch `peer`. Deterministic, so crash recovery can
/// rediscover the account instead of minting a duplicate.
pub fn clearing_cert(local: u16, peer: u16) -> String {
    format!("/O=GridBank/OU=Clearing/CN=branch-{local:04}-vs-{peer:04}")
}

/// Inverse of [`clearing_cert`]: the peer branch id, if `cert` names one
/// of `local`'s clearing accounts.
pub fn parse_clearing_cert(local: u16, cert: &str) -> Option<u16> {
    let prefix = format!("/O=GridBank/OU=Clearing/CN=branch-{local:04}-vs-");
    cert.strip_prefix(&prefix)?.parse().ok()
}

/// Scans the database for `local`'s clearing accounts — the crash-
/// recovery path: journal replay restores the account rows, and this
/// rebinds peer → clearing id so the branch reuses them.
pub fn discover_clearing_accounts(accounts: &GbAccounts, local: u16) -> HashMap<u16, AccountId> {
    accounts
        .db()
        .all_accounts()
        .into_iter()
        .filter_map(|r| parse_clearing_cert(local, &r.certificate_name).map(|peer| (peer, r.id)))
        .collect()
}

/// Looks up the clearing account for `peer` in `clearing`, rebinding
/// from the certificate index or creating it on first use. Shared by the
/// in-process [`Branch`] and the networked `FederationRouter`.
pub fn clearing_account_for(
    clearing: &mut HashMap<u16, AccountId>,
    accounts: &GbAccounts,
    local: u16,
    peer: u16,
) -> Result<AccountId, BankError> {
    if let Some(id) = clearing.get(&peer) {
        return Ok(*id);
    }
    let cert = clearing_cert(local, peer);
    // Rediscover before creating: after a crash-replay the account row
    // exists but the in-memory binding is gone.
    let id = match accounts.account_by_cert(&cert) {
        Ok(record) => record.id,
        Err(BankError::UnknownSubject(_)) => {
            accounts.create_account(&cert, Some("GridBank".into()))?
        }
        Err(e) => return Err(e),
    };
    clearing.insert(peer, id);
    Ok(id)
}

/// One branch's stack plus its clearing accounts.
pub struct Branch {
    /// Branch number (also in every account id it issues).
    pub branch_id: u16,
    /// The accounts layer.
    pub accounts: GbAccounts,
    /// The admin layer (settlement uses privileged ops).
    pub admin: GbAdmin,
    /// Clearing account per peer branch.
    clearing: HashMap<u16, AccountId>,
}

impl Branch {
    /// Wraps a branch stack. Existing clearing accounts (e.g. restored by
    /// journal replay) are rediscovered from the certificate index; new
    /// ones are still created lazily on first cross-branch flow.
    pub fn new(branch_id: u16, accounts: GbAccounts, admin: GbAdmin) -> Self {
        admin.add_admin(SETTLEMENT_ADMIN.to_string());
        let clearing = discover_clearing_accounts(&accounts, branch_id);
        Branch { branch_id, accounts, admin, clearing }
    }

    fn clearing_account(&mut self, peer: u16) -> Result<AccountId, BankError> {
        clearing_account_for(&mut self.clearing, &self.accounts, self.branch_id, peer)
    }

    /// Balance currently parked in the clearing account for `peer`.
    pub fn clearing_balance(&self, peer: u16) -> Credits {
        self.clearing
            .get(&peer)
            .and_then(|id| self.accounts.account_details(id).ok())
            .map(|r| r.available)
            .unwrap_or(Credits::ZERO)
    }
}

/// Pairwise settlement outcome.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PairSettlement {
    /// Lower-numbered branch of the pair.
    pub branch_a: u16,
    /// Higher-numbered branch of the pair.
    pub branch_b: u16,
    /// Gross flow a→b since the last settlement.
    pub gross_a_to_b: Credits,
    /// Gross flow b→a.
    pub gross_b_to_a: Credits,
    /// The single net payment that actually crossed banks (positive means
    /// a paid b).
    pub net: Credits,
}

/// A settlement round's report.
#[derive(Clone, Debug, Default)]
pub struct SettlementReport {
    /// Per-pair outcomes.
    pub pairs: Vec<PairSettlement>,
}

impl SettlementReport {
    /// Total gross value that flowed between branches.
    pub fn total_gross(&self) -> Credits {
        self.pairs.iter().map(|p| p.gross_a_to_b.saturating_add(p.gross_b_to_a)).sum()
    }

    /// Total value that actually moved at settlement.
    pub fn total_net(&self) -> Credits {
        self.pairs.iter().map(|p| p.net.abs()).sum()
    }
}

/// The pure §6 netting engine: accrues gross pairwise flows and computes
/// per-pair netting outcomes. It never touches accounts — both the
/// in-process [`InterBank`] and the networked
/// [`FederationRouter`](crate::federation::FederationRouter) drive it
/// and apply the resulting drains to their own books.
#[derive(Clone, Debug, Default)]
pub struct NettingEngine {
    /// Gross flows accrued since the last settlement: (from, to) → amount.
    pending: HashMap<(u16, u16), Credits>,
}

impl NettingEngine {
    /// An empty engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accrues a gross flow `from` → `to`.
    pub fn note(&mut self, from: u16, to: u16, amount: Credits) {
        let entry = self.pending.entry((from, to)).or_insert(Credits::ZERO);
        *entry = entry.saturating_add(amount);
    }

    /// True when no flow is pending.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Drains every pending pair into netting outcomes, lower-numbered
    /// branch first, sorted by pair.
    pub fn drain_pairs(&mut self) -> Vec<PairSettlement> {
        let mut pairs: Vec<(u16, u16)> =
            self.pending.keys().map(|&(a, b)| if a < b { (a, b) } else { (b, a) }).collect();
        pairs.sort_unstable();
        pairs.dedup();
        pairs
            .into_iter()
            .map(|(a, b)| {
                let gross_ab = self.pending.remove(&(a, b)).unwrap_or(Credits::ZERO);
                let gross_ba = self.pending.remove(&(b, a)).unwrap_or(Credits::ZERO);
                Self::pair(a, b, gross_ab, gross_ba)
            })
            .collect()
    }

    /// The netting rule for one pair: only the difference crosses banks.
    /// Accepts the branches in either order and normalizes lower-first.
    pub fn pair(a: u16, b: u16, gross_a_to_b: Credits, gross_b_to_a: Credits) -> PairSettlement {
        let (a, b, gross_ab, gross_ba) = if a <= b {
            (a, b, gross_a_to_b, gross_b_to_a)
        } else {
            (b, a, gross_b_to_a, gross_a_to_b)
        };
        PairSettlement {
            branch_a: a,
            branch_b: b,
            gross_a_to_b: gross_ab,
            gross_b_to_a: gross_ba,
            net: gross_ab.saturating_add(gross_ba.negated()),
        }
    }
}

/// The inter-branch coordinator.
#[derive(Default)]
pub struct InterBank {
    branches: HashMap<u16, Branch>,
    netting: NettingEngine,
}

impl InterBank {
    /// An empty federation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a branch.
    pub fn add_branch(&mut self, branch: Branch) {
        self.branches.insert(branch.branch_id, branch);
    }

    /// Access a branch.
    pub fn branch(&self, id: u16) -> Result<&Branch, BankError> {
        self.branches.get(&id).ok_or(BankError::UnknownBranch(id))
    }

    /// Mutable access (tests/bench harnesses).
    pub fn branch_mut(&mut self, id: u16) -> Result<&mut Branch, BankError> {
        self.branches.get_mut(&id).ok_or(BankError::UnknownBranch(id))
    }

    /// A cross-branch payment: drawer at `from.branch` pays payee at
    /// `to.branch`. Fails on same-branch ids (use the local transfer).
    pub fn cross_branch_transfer(
        &mut self,
        from: AccountId,
        to: AccountId,
        amount: Credits,
        rur_blob: Vec<u8>,
    ) -> Result<(), BankError> {
        if from.branch == to.branch {
            return Err(BankError::Protocol("same-branch transfer must use the local path".into()));
        }
        if !amount.is_positive() {
            return Err(BankError::NonPositiveAmount);
        }
        // Drawer's branch: debit into the clearing account for the payee's
        // branch. This is where insufficient funds surface — before the
        // remote side does anything.
        {
            let src =
                self.branches.get_mut(&from.branch).ok_or(BankError::UnknownBranch(from.branch))?;
            let clearing = src.clearing_account(to.branch)?;
            src.accounts.transfer(&from, &clearing, amount, rur_blob.clone())?;
        }
        // Payee's branch: credit immediately against the remote liability.
        {
            let dst =
                self.branches.get_mut(&to.branch).ok_or(BankError::UnknownBranch(to.branch))?;
            // Ensure the clearing account exists on the destination too
            // (it absorbs the mirrored settlement leg).
            dst.clearing_account(from.branch)?;
            dst.admin.deposit(SETTLEMENT_ADMIN, &to, amount)?;
        }
        self.netting.note(from.branch, to.branch, amount);
        Ok(())
    }

    /// Nets and settles all pending inter-branch liabilities. For each
    /// branch pair only the net difference moves "on the wire"; the gross
    /// entries are drained from the clearing accounts.
    pub fn settle(&mut self) -> Result<SettlementReport, BankError> {
        let mut report = SettlementReport::default();
        for pair in self.netting.drain_pairs() {
            let (a, b) = (pair.branch_a, pair.branch_b);
            // Drain each side's clearing account: the money parked there
            // leaves the branch (external settlement rail).
            if pair.gross_a_to_b.is_positive() {
                let src = self.branches.get_mut(&a).ok_or(BankError::UnknownBranch(a))?;
                let clearing = src.clearing_account(b)?;
                src.admin.withdraw(SETTLEMENT_ADMIN, &clearing, pair.gross_a_to_b)?;
            }
            if pair.gross_b_to_a.is_positive() {
                let src = self.branches.get_mut(&b).ok_or(BankError::UnknownBranch(b))?;
                let clearing = src.clearing_account(a)?;
                src.admin.withdraw(SETTLEMENT_ADMIN, &clearing, pair.gross_b_to_a)?;
            }
            // The deposits made eagerly at the receiving branches summed to
            // gross_ab + gross_ba; the withdrawals above removed the same
            // total, so the federation's books balance. What crosses banks
            // externally is only the net.
            report.pairs.push(pair);
        }
        Ok(report)
    }

    /// Sum of every branch's internal funds (conservation checks).
    pub fn total_funds(&self) -> Credits {
        self.branches.values().map(|b| b.accounts.db().total_funds()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::Clock;
    use crate::db::Database;
    use std::sync::Arc;

    const ADMIN: &str = "/CN=root-admin";

    fn make_branch(id: u16) -> Branch {
        let db = Arc::new(Database::new(1, id));
        let accounts = GbAccounts::new(db, Clock::new());
        let admin = GbAdmin::new(accounts.clone(), [ADMIN.to_string()]);
        Branch::new(id, accounts, admin)
    }

    fn fund(branch: &Branch, cert: &str, gd: i64) -> AccountId {
        let id = branch.accounts.create_account(cert, None).unwrap();
        branch.admin.deposit(ADMIN, &id, Credits::from_gd(gd)).unwrap();
        id
    }

    fn two_branch_setup() -> (InterBank, AccountId, AccountId) {
        let mut ib = InterBank::new();
        let b1 = make_branch(1);
        let b2 = make_branch(2);
        let alice = fund(&b1, "/CN=alice", 100);
        let gsp = fund(&b2, "/CN=gsp", 10);
        ib.add_branch(b1);
        ib.add_branch(b2);
        (ib, alice, gsp)
    }

    #[test]
    fn cross_branch_payment_credits_payee_immediately() {
        let (mut ib, alice, gsp) = two_branch_setup();
        ib.cross_branch_transfer(alice, gsp, Credits::from_gd(30), vec![]).unwrap();
        assert_eq!(
            ib.branch(1).unwrap().accounts.account_details(&alice).unwrap().available,
            Credits::from_gd(70)
        );
        assert_eq!(
            ib.branch(2).unwrap().accounts.account_details(&gsp).unwrap().available,
            Credits::from_gd(40)
        );
        // The debit is parked in branch 1's clearing account for branch 2.
        assert_eq!(ib.branch(1).unwrap().clearing_balance(2), Credits::from_gd(30));
    }

    #[test]
    fn settlement_nets_opposing_flows() {
        let (mut ib, alice, gsp) = two_branch_setup();
        ib.cross_branch_transfer(alice, gsp, Credits::from_gd(30), vec![]).unwrap();
        ib.cross_branch_transfer(gsp, alice, Credits::from_gd(12), vec![]).unwrap();

        let before = ib.total_funds();
        let report = ib.settle().unwrap();
        assert_eq!(report.pairs.len(), 1);
        let p = &report.pairs[0];
        assert_eq!(p.gross_a_to_b, Credits::from_gd(30));
        assert_eq!(p.gross_b_to_a, Credits::from_gd(12));
        assert_eq!(p.net, Credits::from_gd(18));
        assert_eq!(report.total_gross(), Credits::from_gd(42));
        assert_eq!(report.total_net(), Credits::from_gd(18));

        // Settlement drains the eager deposits: the federation returns to
        // its pre-cross-transfer total (110 G$ of initial deposits).
        assert_eq!(before, Credits::from_gd(110 + 42));
        assert_eq!(ib.total_funds(), Credits::from_gd(110));
        // Clearing accounts are empty.
        assert_eq!(ib.branch(1).unwrap().clearing_balance(2), Credits::ZERO);
        assert_eq!(ib.branch(2).unwrap().clearing_balance(1), Credits::ZERO);
    }

    #[test]
    fn settlement_is_idempotent_when_nothing_pending() {
        let (mut ib, alice, gsp) = two_branch_setup();
        ib.cross_branch_transfer(alice, gsp, Credits::from_gd(5), vec![]).unwrap();
        ib.settle().unwrap();
        let report = ib.settle().unwrap();
        assert!(report.pairs.is_empty());
    }

    #[test]
    fn same_branch_and_unknown_branch_rejected() {
        let (mut ib, alice, _gsp) = two_branch_setup();
        let other_local = {
            let b1 = ib.branch(1).unwrap();
            b1.accounts.create_account("/CN=bob", None).unwrap()
        };
        assert!(matches!(
            ib.cross_branch_transfer(alice, other_local, Credits::from_gd(1), vec![]),
            Err(BankError::Protocol(_))
        ));
        let ghost = AccountId::new(1, 9, 1);
        assert!(matches!(
            ib.cross_branch_transfer(alice, ghost, Credits::from_gd(1), vec![]),
            Err(BankError::UnknownBranch(9))
        ));
    }

    #[test]
    fn insufficient_funds_fail_before_any_remote_effect() {
        let (mut ib, alice, gsp) = two_branch_setup();
        assert!(ib.cross_branch_transfer(alice, gsp, Credits::from_gd(101), vec![]).is_err());
        assert_eq!(
            ib.branch(2).unwrap().accounts.account_details(&gsp).unwrap().available,
            Credits::from_gd(10)
        );
        let report = ib.settle().unwrap();
        assert!(report.pairs.is_empty());
    }

    #[test]
    fn netting_engine_pairs_and_drains() {
        let mut eng = NettingEngine::new();
        assert!(eng.is_empty());
        eng.note(1, 2, Credits::from_gd(30));
        eng.note(2, 1, Credits::from_gd(12));
        eng.note(2, 1, Credits::from_gd(3));
        eng.note(3, 1, Credits::from_gd(7));
        let pairs = eng.drain_pairs();
        assert!(eng.is_empty());
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[0].gross_a_to_b, Credits::from_gd(30));
        assert_eq!(pairs[0].gross_b_to_a, Credits::from_gd(15));
        assert_eq!(pairs[0].net, Credits::from_gd(15));
        // (3,1) normalized lower-first: gross flows b→a.
        assert_eq!(pairs[1].branch_a, 1);
        assert_eq!(pairs[1].branch_b, 3);
        assert_eq!(pairs[1].gross_a_to_b, Credits::ZERO);
        assert_eq!(pairs[1].gross_b_to_a, Credits::from_gd(7));
        assert_eq!(pairs[1].net, Credits::from_gd(-7));
        // The pure pair rule is order-insensitive.
        assert_eq!(
            NettingEngine::pair(5, 2, Credits::from_gd(1), Credits::from_gd(4)),
            NettingEngine::pair(2, 5, Credits::from_gd(4), Credits::from_gd(1))
        );
    }

    #[test]
    fn clearing_accounts_rediscovered_after_replay() {
        let (mut ib, alice, gsp) = two_branch_setup();
        ib.cross_branch_transfer(alice, gsp, Credits::from_gd(30), vec![]).unwrap();

        // "Crash" branch 1: rebuild its stack from the replayed journal.
        let journal = ib.branch(1).unwrap().accounts.db().journal_snapshot();
        let db = Arc::new(Database::replay(1, 1, &journal));
        let accounts = GbAccounts::new(db, Clock::new());
        let admin = GbAdmin::new(accounts.clone(), [ADMIN.to_string()]);
        let count_before = accounts.db().account_count();
        let mut revived = Branch::new(1, accounts, admin);

        // The parked balance is visible again without any lazy creation…
        assert_eq!(revived.clearing_balance(2), Credits::from_gd(30));
        // …and asking for the clearing account reuses the replayed row
        // instead of erroring on the duplicate certificate.
        let id = revived.clearing_account(2).unwrap();
        assert_eq!(revived.accounts.account_details(&id).unwrap().available, Credits::from_gd(30));
        assert_eq!(revived.accounts.db().account_count(), count_before);
    }

    #[test]
    fn clearing_cert_round_trips() {
        assert_eq!(parse_clearing_cert(1, &clearing_cert(1, 2)), Some(2));
        assert_eq!(parse_clearing_cert(3, &clearing_cert(1, 2)), None);
        assert_eq!(parse_clearing_cert(1, "/CN=alice"), None);
    }

    #[test]
    fn three_branch_ring_settles_pairwise() {
        let mut ib = InterBank::new();
        let branches: Vec<Branch> = (1..=3).map(make_branch).collect();
        let accounts: Vec<AccountId> =
            branches.iter().enumerate().map(|(i, b)| fund(b, &format!("/CN=p{i}"), 50)).collect();
        for b in branches {
            ib.add_branch(b);
        }
        // Ring payments of equal value: every pair nets to the ring value.
        ib.cross_branch_transfer(accounts[0], accounts[1], Credits::from_gd(10), vec![]).unwrap();
        ib.cross_branch_transfer(accounts[1], accounts[2], Credits::from_gd(10), vec![]).unwrap();
        ib.cross_branch_transfer(accounts[2], accounts[0], Credits::from_gd(10), vec![]).unwrap();
        let report = ib.settle().unwrap();
        assert_eq!(report.pairs.len(), 3);
        assert_eq!(report.total_gross(), Credits::from_gd(30));
        // Pairwise netting can't cancel a ring: each pair still moves 10.
        assert_eq!(report.total_net(), Credits::from_gd(30));
        // Everyone ends where they started.
        for (i, id) in accounts.iter().enumerate() {
            let b = ib.branch((i + 1) as u16).unwrap();
            assert_eq!(b.accounts.account_details(id).unwrap().available, Credits::from_gd(50));
        }
        assert_eq!(ib.total_funds(), Credits::from_gd(150));
    }
}
