//! Multiple GridBank branches and inter-branch settlement (§6).
//!
//! "In the future, GridBank system will be expanded to provide multiple
//! servers/branches across the Grid to achieve scalability … It is
//! precisely for this purpose that GridBank accounts have branch numbers.
//! Each Virtual Organization associates a GridBank server that all
//! participants of the organization use. If a GSC is from one VO and GSP
//! is from another, then their respective servers will need to define
//! protocols for settling accounts between the branches."
//!
//! Implemented here (the paper's future work):
//!
//! * each branch is a full accounts stack with its own database;
//! * every branch holds a **clearing account** per peer branch;
//! * a cross-branch payment debits the drawer into the local clearing
//!   account while the payee's branch credits the payee immediately
//!   (deposit against the remote branch's liability) — consumers and
//!   providers never wait on settlement;
//! * [`InterBank::settle`] periodically nets the pairwise liabilities and
//!   moves only the net amount between banks, reporting the gross-to-net
//!   compression that motivates netting.

use std::collections::HashMap;

use gridbank_rur::Credits;

use crate::accounts::GbAccounts;
use crate::admin::GbAdmin;
use crate::db::AccountId;
use crate::error::BankError;

/// One branch's stack plus its clearing accounts.
pub struct Branch {
    /// Branch number (also in every account id it issues).
    pub branch_id: u16,
    /// The accounts layer.
    pub accounts: GbAccounts,
    /// The admin layer (settlement uses privileged ops).
    pub admin: GbAdmin,
    /// Clearing account per peer branch.
    clearing: HashMap<u16, AccountId>,
}

/// The administrator identity settlement runs under.
pub const SETTLEMENT_ADMIN: &str = "/O=GridBank/OU=Settlement/CN=interbank";

impl Branch {
    /// Wraps a branch stack; clearing accounts are created lazily.
    pub fn new(branch_id: u16, accounts: GbAccounts, admin: GbAdmin) -> Self {
        admin.add_admin(SETTLEMENT_ADMIN.to_string());
        Branch { branch_id, accounts, admin, clearing: HashMap::new() }
    }

    fn clearing_account(&mut self, peer: u16) -> Result<AccountId, BankError> {
        if let Some(id) = self.clearing.get(&peer) {
            return Ok(*id);
        }
        let cert = format!("/O=GridBank/OU=Clearing/CN=branch-{:04}-vs-{peer:04}", self.branch_id);
        let id = self.accounts.create_account(&cert, Some("GridBank".into()))?;
        self.clearing.insert(peer, id);
        Ok(id)
    }

    /// Balance currently parked in the clearing account for `peer`.
    pub fn clearing_balance(&self, peer: u16) -> Credits {
        self.clearing
            .get(&peer)
            .and_then(|id| self.accounts.account_details(id).ok())
            .map(|r| r.available)
            .unwrap_or(Credits::ZERO)
    }
}

/// Pairwise settlement outcome.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PairSettlement {
    /// Lower-numbered branch of the pair.
    pub branch_a: u16,
    /// Higher-numbered branch of the pair.
    pub branch_b: u16,
    /// Gross flow a→b since the last settlement.
    pub gross_a_to_b: Credits,
    /// Gross flow b→a.
    pub gross_b_to_a: Credits,
    /// The single net payment that actually crossed banks (positive means
    /// a paid b).
    pub net: Credits,
}

/// A settlement round's report.
#[derive(Clone, Debug, Default)]
pub struct SettlementReport {
    /// Per-pair outcomes.
    pub pairs: Vec<PairSettlement>,
}

impl SettlementReport {
    /// Total gross value that flowed between branches.
    pub fn total_gross(&self) -> Credits {
        self.pairs.iter().map(|p| p.gross_a_to_b.saturating_add(p.gross_b_to_a)).sum()
    }

    /// Total value that actually moved at settlement.
    pub fn total_net(&self) -> Credits {
        self.pairs.iter().map(|p| p.net.abs()).sum()
    }
}

/// The inter-branch coordinator.
#[derive(Default)]
pub struct InterBank {
    branches: HashMap<u16, Branch>,
    /// Gross flows accrued since the last settlement: (from, to) → amount.
    pending: HashMap<(u16, u16), Credits>,
}

impl InterBank {
    /// An empty federation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a branch.
    pub fn add_branch(&mut self, branch: Branch) {
        self.branches.insert(branch.branch_id, branch);
    }

    /// Access a branch.
    pub fn branch(&self, id: u16) -> Result<&Branch, BankError> {
        self.branches.get(&id).ok_or(BankError::UnknownBranch(id))
    }

    /// Mutable access (tests/bench harnesses).
    pub fn branch_mut(&mut self, id: u16) -> Result<&mut Branch, BankError> {
        self.branches.get_mut(&id).ok_or(BankError::UnknownBranch(id))
    }

    /// A cross-branch payment: drawer at `from.branch` pays payee at
    /// `to.branch`. Fails on same-branch ids (use the local transfer).
    pub fn cross_branch_transfer(
        &mut self,
        from: AccountId,
        to: AccountId,
        amount: Credits,
        rur_blob: Vec<u8>,
    ) -> Result<(), BankError> {
        if from.branch == to.branch {
            return Err(BankError::Protocol("same-branch transfer must use the local path".into()));
        }
        if !amount.is_positive() {
            return Err(BankError::NonPositiveAmount);
        }
        // Drawer's branch: debit into the clearing account for the payee's
        // branch. This is where insufficient funds surface — before the
        // remote side does anything.
        {
            let src =
                self.branches.get_mut(&from.branch).ok_or(BankError::UnknownBranch(from.branch))?;
            let clearing = src.clearing_account(to.branch)?;
            src.accounts.transfer(&from, &clearing, amount, rur_blob.clone())?;
        }
        // Payee's branch: credit immediately against the remote liability.
        {
            let dst =
                self.branches.get_mut(&to.branch).ok_or(BankError::UnknownBranch(to.branch))?;
            // Ensure the clearing account exists on the destination too
            // (it absorbs the mirrored settlement leg).
            dst.clearing_account(from.branch)?;
            dst.admin.deposit(SETTLEMENT_ADMIN, &to, amount)?;
        }
        let entry = self.pending.entry((from.branch, to.branch)).or_insert(Credits::ZERO);
        *entry = entry.saturating_add(amount);
        Ok(())
    }

    /// Nets and settles all pending inter-branch liabilities. For each
    /// branch pair only the net difference moves "on the wire"; the gross
    /// entries are drained from the clearing accounts.
    pub fn settle(&mut self) -> Result<SettlementReport, BankError> {
        // Collect the distinct pairs (lower branch first).
        let mut pairs: Vec<(u16, u16)> =
            self.pending.keys().map(|&(a, b)| if a < b { (a, b) } else { (b, a) }).collect();
        pairs.sort_unstable();
        pairs.dedup();

        let mut report = SettlementReport::default();
        for (a, b) in pairs {
            let gross_ab = self.pending.remove(&(a, b)).unwrap_or(Credits::ZERO);
            let gross_ba = self.pending.remove(&(b, a)).unwrap_or(Credits::ZERO);
            // Drain each side's clearing account: the money parked there
            // leaves the branch (external settlement rail).
            if gross_ab.is_positive() {
                let src = self.branches.get_mut(&a).ok_or(BankError::UnknownBranch(a))?;
                let clearing = src.clearing_account(b)?;
                src.admin.withdraw(SETTLEMENT_ADMIN, &clearing, gross_ab)?;
            }
            if gross_ba.is_positive() {
                let src = self.branches.get_mut(&b).ok_or(BankError::UnknownBranch(b))?;
                let clearing = src.clearing_account(a)?;
                src.admin.withdraw(SETTLEMENT_ADMIN, &clearing, gross_ba)?;
            }
            // The deposits made eagerly at the receiving branches summed to
            // gross_ab + gross_ba; the withdrawals above removed the same
            // total, so the federation's books balance. What crosses banks
            // externally is only the net.
            let net = gross_ab.saturating_add(-gross_ba);
            report.pairs.push(PairSettlement {
                branch_a: a,
                branch_b: b,
                gross_a_to_b: gross_ab,
                gross_b_to_a: gross_ba,
                net,
            });
        }
        Ok(report)
    }

    /// Sum of every branch's internal funds (conservation checks).
    pub fn total_funds(&self) -> Credits {
        self.branches.values().map(|b| b.accounts.db().total_funds()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::Clock;
    use crate::db::Database;
    use std::sync::Arc;

    const ADMIN: &str = "/CN=root-admin";

    fn make_branch(id: u16) -> Branch {
        let db = Arc::new(Database::new(1, id));
        let accounts = GbAccounts::new(db, Clock::new());
        let admin = GbAdmin::new(accounts.clone(), [ADMIN.to_string()]);
        Branch::new(id, accounts, admin)
    }

    fn fund(branch: &Branch, cert: &str, gd: i64) -> AccountId {
        let id = branch.accounts.create_account(cert, None).unwrap();
        branch.admin.deposit(ADMIN, &id, Credits::from_gd(gd)).unwrap();
        id
    }

    fn two_branch_setup() -> (InterBank, AccountId, AccountId) {
        let mut ib = InterBank::new();
        let b1 = make_branch(1);
        let b2 = make_branch(2);
        let alice = fund(&b1, "/CN=alice", 100);
        let gsp = fund(&b2, "/CN=gsp", 10);
        ib.add_branch(b1);
        ib.add_branch(b2);
        (ib, alice, gsp)
    }

    #[test]
    fn cross_branch_payment_credits_payee_immediately() {
        let (mut ib, alice, gsp) = two_branch_setup();
        ib.cross_branch_transfer(alice, gsp, Credits::from_gd(30), vec![]).unwrap();
        assert_eq!(
            ib.branch(1).unwrap().accounts.account_details(&alice).unwrap().available,
            Credits::from_gd(70)
        );
        assert_eq!(
            ib.branch(2).unwrap().accounts.account_details(&gsp).unwrap().available,
            Credits::from_gd(40)
        );
        // The debit is parked in branch 1's clearing account for branch 2.
        assert_eq!(ib.branch(1).unwrap().clearing_balance(2), Credits::from_gd(30));
    }

    #[test]
    fn settlement_nets_opposing_flows() {
        let (mut ib, alice, gsp) = two_branch_setup();
        ib.cross_branch_transfer(alice, gsp, Credits::from_gd(30), vec![]).unwrap();
        ib.cross_branch_transfer(gsp, alice, Credits::from_gd(12), vec![]).unwrap();

        let before = ib.total_funds();
        let report = ib.settle().unwrap();
        assert_eq!(report.pairs.len(), 1);
        let p = &report.pairs[0];
        assert_eq!(p.gross_a_to_b, Credits::from_gd(30));
        assert_eq!(p.gross_b_to_a, Credits::from_gd(12));
        assert_eq!(p.net, Credits::from_gd(18));
        assert_eq!(report.total_gross(), Credits::from_gd(42));
        assert_eq!(report.total_net(), Credits::from_gd(18));

        // Settlement drains the eager deposits: the federation returns to
        // its pre-cross-transfer total (110 G$ of initial deposits).
        assert_eq!(before, Credits::from_gd(110 + 42));
        assert_eq!(ib.total_funds(), Credits::from_gd(110));
        // Clearing accounts are empty.
        assert_eq!(ib.branch(1).unwrap().clearing_balance(2), Credits::ZERO);
        assert_eq!(ib.branch(2).unwrap().clearing_balance(1), Credits::ZERO);
    }

    #[test]
    fn settlement_is_idempotent_when_nothing_pending() {
        let (mut ib, alice, gsp) = two_branch_setup();
        ib.cross_branch_transfer(alice, gsp, Credits::from_gd(5), vec![]).unwrap();
        ib.settle().unwrap();
        let report = ib.settle().unwrap();
        assert!(report.pairs.is_empty());
    }

    #[test]
    fn same_branch_and_unknown_branch_rejected() {
        let (mut ib, alice, _gsp) = two_branch_setup();
        let other_local = {
            let b1 = ib.branch(1).unwrap();
            b1.accounts.create_account("/CN=bob", None).unwrap()
        };
        assert!(matches!(
            ib.cross_branch_transfer(alice, other_local, Credits::from_gd(1), vec![]),
            Err(BankError::Protocol(_))
        ));
        let ghost = AccountId::new(1, 9, 1);
        assert!(matches!(
            ib.cross_branch_transfer(alice, ghost, Credits::from_gd(1), vec![]),
            Err(BankError::UnknownBranch(9))
        ));
    }

    #[test]
    fn insufficient_funds_fail_before_any_remote_effect() {
        let (mut ib, alice, gsp) = two_branch_setup();
        assert!(ib.cross_branch_transfer(alice, gsp, Credits::from_gd(101), vec![]).is_err());
        assert_eq!(
            ib.branch(2).unwrap().accounts.account_details(&gsp).unwrap().available,
            Credits::from_gd(10)
        );
        let report = ib.settle().unwrap();
        assert!(report.pairs.is_empty());
    }

    #[test]
    fn three_branch_ring_settles_pairwise() {
        let mut ib = InterBank::new();
        let branches: Vec<Branch> = (1..=3).map(make_branch).collect();
        let accounts: Vec<AccountId> =
            branches.iter().enumerate().map(|(i, b)| fund(b, &format!("/CN=p{i}"), 50)).collect();
        for b in branches {
            ib.add_branch(b);
        }
        // Ring payments of equal value: every pair nets to the ring value.
        ib.cross_branch_transfer(accounts[0], accounts[1], Credits::from_gd(10), vec![]).unwrap();
        ib.cross_branch_transfer(accounts[1], accounts[2], Credits::from_gd(10), vec![]).unwrap();
        ib.cross_branch_transfer(accounts[2], accounts[0], Credits::from_gd(10), vec![]).unwrap();
        let report = ib.settle().unwrap();
        assert_eq!(report.pairs.len(), 3);
        assert_eq!(report.total_gross(), Credits::from_gd(30));
        // Pairwise netting can't cancel a ring: each pair still moves 10.
        assert_eq!(report.total_net(), Credits::from_gd(30));
        // Everyone ends where they started.
        for (i, id) in accounts.iter().enumerate() {
            let b = ib.branch((i + 1) as u16).unwrap();
            assert_eq!(b.accounts.account_details(id).unwrap().available, Credits::from_gd(50));
        }
        assert_eq!(ib.total_funds(), Credits::from_gd(150));
    }
}
