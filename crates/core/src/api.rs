//! The GridBank wire API (§5.2, §5.2.1).
//!
//! Every operation the paper lists is a [`BankRequest`] variant; the
//! server answers with a [`BankResponse`]. The caller's identity is never
//! in the message — it comes from the authenticated channel (the
//! certificate subject name), which is what makes "Create New Account:
//! Input: Client's Certificate" and payee-bound redemption sound.
//!
//! Messages use the shared binary codec from `gridbank-rur`.

use gridbank_crypto::merkle::MerkleSignature;
use gridbank_crypto::sha256::{Digest, DIGEST_LEN};
use gridbank_rur::codec::{ByteReader, ByteWriter, Decode, Encode};
use gridbank_rur::record::ResourceUsageRecord;
use gridbank_rur::{Credits, RurError};

use crate::cheque::{ChequeBody, GridCheque};
use crate::db::{AccountId, AccountRecord, TransactionRecord, TransactionType, TransferRecord};
use crate::direct::{ConfirmationBody, TransferConfirmation};
use crate::error::BankError;
use crate::payword::{ChainCommitment, PayWord};
use crate::pricing::ResourceDescription;

impl Encode for AccountId {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u32(self.bank as u32);
        w.put_u32(self.branch as u32);
        w.put_u32(self.number);
    }
}

impl Decode for AccountId {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, RurError> {
        Ok(AccountId {
            bank: r.get_u32()? as u16,
            branch: r.get_u32()? as u16,
            number: r.get_u32()?,
        })
    }
}

impl Encode for AccountRecord {
    fn encode(&self, w: &mut ByteWriter) {
        self.id.encode(w);
        w.put_str(&self.certificate_name);
        w.put_opt_str(self.organization.as_deref());
        self.available.encode(w);
        self.locked.encode(w);
        w.put_str(&self.currency);
        self.credit_limit.encode(w);
    }
}

impl Decode for AccountRecord {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, RurError> {
        Ok(AccountRecord {
            id: AccountId::decode(r)?,
            certificate_name: r.get_str()?,
            organization: r.get_opt_str()?,
            available: Credits::decode(r)?,
            locked: Credits::decode(r)?,
            currency: r.get_str()?,
            credit_limit: Credits::decode(r)?,
        })
    }
}

impl Encode for TransactionRecord {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u64(self.transaction_id);
        self.account.encode(w);
        w.put_u8(self.tx_type.tag());
        w.put_u64(self.date_ms);
        self.amount.encode(w);
    }
}

impl Decode for TransactionRecord {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, RurError> {
        Ok(TransactionRecord {
            transaction_id: r.get_u64()?,
            account: AccountId::decode(r)?,
            tx_type: TransactionType::from_tag(r.get_u8()?)
                .ok_or_else(|| RurError::Decode("bad tx type".into()))?,
            date_ms: r.get_u64()?,
            amount: Credits::decode(r)?,
        })
    }
}

impl Encode for TransferRecord {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u64(self.transaction_id);
        w.put_u64(self.date_ms);
        self.drawer.encode(w);
        self.amount.encode(w);
        self.recipient.encode(w);
        w.put_bytes(&self.rur_blob);
        w.put_u64(self.trace_id);
    }
}

impl Decode for TransferRecord {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, RurError> {
        Ok(TransferRecord {
            transaction_id: r.get_u64()?,
            date_ms: r.get_u64()?,
            drawer: AccountId::decode(r)?,
            amount: Credits::decode(r)?,
            recipient: AccountId::decode(r)?,
            rur_blob: r.get_bytes()?.to_vec(),
            trace_id: r.get_u64()?,
        })
    }
}

impl Encode for ResourceDescription {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u32(self.cpu_speed);
        w.put_u32(self.cpu_count);
        w.put_u64(self.memory_mb);
        w.put_u64(self.storage_mb);
        w.put_u32(self.bandwidth_mbps);
    }
}

impl Decode for ResourceDescription {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, RurError> {
        Ok(ResourceDescription {
            cpu_speed: r.get_u32()?,
            cpu_count: r.get_u32()?,
            memory_mb: r.get_u64()?,
            storage_mb: r.get_u64()?,
            bandwidth_mbps: r.get_u32()?,
        })
    }
}

fn put_sig(w: &mut ByteWriter, sig: &MerkleSignature) {
    w.put_bytes(&sig.to_bytes());
}

fn get_sig(r: &mut ByteReader<'_>) -> Result<MerkleSignature, RurError> {
    MerkleSignature::from_bytes(r.get_bytes()?)
        .map_err(|e| RurError::Decode(format!("bad signature: {e}")))
}

fn put_digest(w: &mut ByteWriter, d: &Digest) {
    w.put_bytes(d.as_bytes());
}

fn get_digest(r: &mut ByteReader<'_>) -> Result<Digest, RurError> {
    let b = r.get_bytes()?;
    if b.len() != DIGEST_LEN {
        return Err(RurError::Decode("bad digest length".into()));
    }
    let mut a = [0u8; DIGEST_LEN];
    a.copy_from_slice(b);
    Ok(Digest(a))
}

impl Encode for GridCheque {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_bytes(&self.body.to_bytes());
        put_sig(w, &self.signature);
    }
}

impl Decode for GridCheque {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, RurError> {
        let body = ChequeBody::from_bytes(r.get_bytes()?)?;
        Ok(GridCheque { body, signature: get_sig(r)? })
    }
}

impl Encode for crate::db::JournalEntry {
    fn encode(&self, w: &mut ByteWriter) {
        use crate::db::JournalEntry as J;
        match self {
            J::Create(r) => {
                w.put_u8(0);
                r.encode(w);
            }
            J::Update(r) => {
                w.put_u8(1);
                r.encode(w);
            }
            J::Remove(id) => {
                w.put_u8(2);
                id.encode(w);
            }
            J::Transaction(t) => {
                w.put_u8(3);
                t.encode(w);
            }
            J::Transfer(t) => {
                w.put_u8(4);
                t.encode(w);
            }
            J::Idem { cert, key, response } => {
                w.put_u8(5);
                w.put_str(cert);
                w.put_u64(*key);
                w.put_bytes(response);
            }
            J::IbOut(credit) => {
                w.put_u8(6);
                w.put_u64(credit.key);
                credit.to.encode(w);
                credit.amount.encode(w);
                w.put_u32(credit.origin as u32);
                credit.drawer.encode(w);
                match &credit.idem {
                    Some((cert, key)) => {
                        w.put_u8(1);
                        w.put_str(cert);
                        w.put_u64(*key);
                    }
                    None => w.put_u8(0),
                }
            }
            J::IbAck { key } => {
                w.put_u8(7);
                w.put_u64(*key);
            }
            J::IdemDrop { cert, key } => {
                w.put_u8(8);
                w.put_str(cert);
                w.put_u64(*key);
            }
        }
    }
}

impl Decode for crate::db::JournalEntry {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, RurError> {
        use crate::db::JournalEntry as J;
        Ok(match r.get_u8()? {
            0 => J::Create(AccountRecord::decode(r)?),
            1 => J::Update(AccountRecord::decode(r)?),
            2 => J::Remove(AccountId::decode(r)?),
            3 => J::Transaction(TransactionRecord::decode(r)?),
            4 => J::Transfer(TransferRecord::decode(r)?),
            5 => {
                J::Idem { cert: r.get_str()?, key: r.get_u64()?, response: r.get_bytes()?.to_vec() }
            }
            6 => J::IbOut(crate::db::PendingIbCredit {
                key: r.get_u64()?,
                to: AccountId::decode(r)?,
                amount: Credits::decode(r)?,
                origin: r.get_u32()? as u16,
                drawer: AccountId::decode(r)?,
                idem: match r.get_u8()? {
                    0 => None,
                    1 => Some((r.get_str()?, r.get_u64()?)),
                    t => return Err(RurError::Decode(format!("bad idem flag {t}"))),
                },
            }),
            7 => J::IbAck { key: r.get_u64()? },
            8 => J::IdemDrop { cert: r.get_str()?, key: r.get_u64()? },
            t => return Err(RurError::Decode(format!("bad journal tag {t}"))),
        })
    }
}

/// Serializes a whole journal (magic + count + entries) for durable
/// storage — the CLI persists bank state this way.
pub fn journal_to_bytes(journal: &[crate::db::JournalEntry]) -> Vec<u8> {
    let mut w = ByteWriter::with_capacity(journal.len().saturating_mul(64).saturating_add(64));
    w.put_u32(0x4742_4A31); // "GBJ1"
    w.put_u64(journal.len() as u64);
    for e in journal {
        e.encode(&mut w);
    }
    w.into_bytes()
}

/// Parses a serialized journal.
pub fn journal_from_bytes(bytes: &[u8]) -> Result<Vec<crate::db::JournalEntry>, RurError> {
    let mut r = ByteReader::new(bytes);
    if r.get_u32()? != 0x4742_4A31 {
        return Err(RurError::Decode("bad journal magic".into()));
    }
    let n = r.get_u64()? as usize;
    if n > 1 << 28 {
        return Err(RurError::Decode("journal too large".into()));
    }
    let mut out = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        out.push(crate::db::JournalEntry::decode(&mut r)?);
    }
    r.finish()?;
    Ok(out)
}

/// A client request (identity comes from the channel, never the message).
#[derive(Clone, Debug)]
pub enum BankRequest {
    /// Create New Account (§5.2); subject = authenticated caller.
    CreateAccount {
        /// Optional organization name.
        organization: Option<String>,
    },
    /// Details of the caller's own account.
    MyAccount,
    /// Request Account Details / Check Balance (§5.2).
    AccountDetails {
        /// Account to read.
        account: AccountId,
    },
    /// Update Account Details (§5.2); only cert/org fields apply.
    UpdateAccount {
        /// Account to update (must be the caller's).
        account: AccountId,
        /// New certificate name.
        certificate_name: String,
        /// New organization.
        organization: Option<String>,
    },
    /// Request Account Statement (§5.2).
    Statement {
        /// Account.
        account: AccountId,
        /// Window start (inclusive), virtual ms.
        start_ms: u64,
        /// Window end (exclusive).
        end_ms: u64,
    },
    /// Perform Funds Availability Check (§5.2): locks the amount.
    CheckFunds {
        /// Account to lock on (must be the caller's).
        account: AccountId,
        /// Amount to lock.
        amount: Credits,
    },
    /// Request Direct Transfer (§5.2); drawer = the caller's account.
    DirectTransfer {
        /// Recipient account.
        to: AccountId,
        /// Amount.
        amount: Credits,
        /// GSP address the confirmation is destined for.
        recipient_address: String,
    },
    /// Request GridCheque (§5.2); drawer = the caller's account.
    RequestCheque {
        /// Payee certificate name the cheque is made out to.
        payee_cert: String,
        /// Reserved amount.
        amount: Credits,
        /// Validity window, ms.
        validity_ms: u64,
    },
    /// Redeem GridCheque (§5.2); the caller must be the payee.
    RedeemCheque {
        /// The cheque.
        cheque: GridCheque,
        /// The usage record evidence.
        rur: ResourceUsageRecord,
    },
    /// Request GridHash chain (§5.2); drawer = the caller's account.
    RequestHashChain {
        /// Payee certificate name.
        payee_cert: String,
        /// Number of paywords.
        length: u32,
        /// Value of each payword.
        value_per_word: Credits,
        /// Validity window, ms.
        validity_ms: u64,
    },
    /// Redeem GridHash chain (§5.2); the caller must be the payee.
    RedeemPayWord {
        /// The signed chain commitment.
        commitment: ChainCommitment,
        /// Bank signature over the commitment.
        signature: MerkleSignature,
        /// Highest payword being redeemed.
        payword: PayWord,
        /// Binary RUR evidence (may be empty for interim redemptions).
        rur_blob: Vec<u8>,
    },
    /// Close a hash chain (release unspent reservation after expiry).
    CloseHashChain {
        /// The commitment to close.
        commitment: ChainCommitment,
    },
    /// Registers the caller's resource description (feeds §4.2 pricing).
    RegisterResourceDescription {
        /// Hardware description of the caller's resource.
        desc: ResourceDescription,
    },
    /// §4.2: market price estimate for a described resource.
    EstimatePrice {
        /// Description to price.
        desc: ResourceDescription,
        /// Minimum similarity (parts per 1024) for history to count.
        min_similarity_ppk: u64,
    },
    /// Redeem a batch of cheques in one round trip (§3.1: "This can be
    /// done in batches"); entries settle independently.
    RedeemChequeBatch {
        /// (cheque, evidence) pairs.
        items: Vec<(GridCheque, ResourceUsageRecord)>,
    },
    /// Admin: Deposit funds (§5.2.1).
    AdminDeposit {
        /// Target account.
        account: AccountId,
        /// Amount.
        amount: Credits,
    },
    /// Admin: Withdraw (§5.2.1).
    AdminWithdraw {
        /// Source account.
        account: AccountId,
        /// Amount.
        amount: Credits,
    },
    /// Admin: Change credit limit (§5.2.1).
    AdminCreditLimit {
        /// Target account.
        account: AccountId,
        /// New limit.
        new_limit: Credits,
    },
    /// Admin: Cancel Transfer (§5.2.1).
    AdminCancelTransfer {
        /// Transaction id of the transfer to reverse.
        transaction_id: u64,
    },
    /// Admin: Close account (§5.2.1).
    AdminCloseAccount {
        /// Account to close.
        account: AccountId,
        /// Where the outstanding balance goes (None = withdraw).
        transfer_to: Option<AccountId>,
    },
    /// Inter-branch (§6): credit a local payee on behalf of a remote
    /// drawer whose branch already parked the funds in its clearing
    /// account. Sent branch-to-branch only (callers must be settlement
    /// admins); always stamped with an idempotency key so redelivery
    /// after a crash or link fault applies exactly once.
    IbCredit {
        /// The payee account (must be home on the receiving branch).
        to: AccountId,
        /// Amount to credit.
        amount: Credits,
        /// Branch where the drawer (and the parked funds) live.
        origin_branch: u16,
        /// Binary RUR evidence carried along with the payment.
        rur_blob: Vec<u8>,
    },
    /// Inter-branch (§6): open a pairwise netting round. The proposer
    /// names the gross amount parked on its side for the receiver; the
    /// receiver drains its own clearing account toward the proposer and
    /// answers with [`BankResponse::IbSettleAck`].
    IbSettleProposal {
        /// The proposing branch.
        origin_branch: u16,
        /// Gross flow parked at the proposer for the receiver's members.
        gross_out: Credits,
    },
    /// Ops plane: live introspection of a running branch over the
    /// secure channel. Gated on the `OPS_ADMIN` trust role (mirroring
    /// the federation peer set); everyone else gets a typed
    /// `NotAuthorized` error. Read-only by construction.
    OpsQuery {
        /// What to report.
        query: OpsQuery,
    },
}

/// What an [`BankRequest::OpsQuery`] asks the serving branch for.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OpsQuery {
    /// Full metrics snapshot rendered server-side as JSON-lines,
    /// optionally narrowed to instruments whose name starts with
    /// `filter`.
    Metrics {
        /// Name-prefix filter; `None` = everything.
        filter: Option<String>,
    },
    /// Structured health report ([`HealthReport`]).
    Health,
    /// Dump of the flight recorder's retained slow/errored span trees,
    /// rendered server-side.
    Traces,
}

/// Coarse health verdict of a branch, worst-signal-wins (semantics in
/// `docs/OBSERVABILITY.md` §Ops plane).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HealthState {
    /// All signals nominal.
    Healthy,
    /// Operating, but a resilience signal is degraded (breaker probing,
    /// worker pool saturated, journal backlog).
    Degraded,
    /// A peer route's circuit breaker is open: cross-branch payments to
    /// it are failing fast.
    Unhealthy,
}

impl HealthState {
    /// Wire tag.
    pub fn tag(self) -> u8 {
        match self {
            HealthState::Healthy => 0,
            HealthState::Degraded => 1,
            HealthState::Unhealthy => 2,
        }
    }

    /// Parses a wire tag.
    pub fn from_tag(tag: u8) -> Option<HealthState> {
        match tag {
            0 => Some(HealthState::Healthy),
            1 => Some(HealthState::Degraded),
            2 => Some(HealthState::Unhealthy),
            _ => None,
        }
    }

    /// Stable display name (`Healthy` / `Degraded` / `Unhealthy`).
    pub fn name(self) -> &'static str {
        match self {
            HealthState::Healthy => "Healthy",
            HealthState::Degraded => "Degraded",
            HealthState::Unhealthy => "Unhealthy",
        }
    }
}

/// One federation peer's slice of a [`HealthReport`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PeerHealth {
    /// The peer branch id.
    pub branch: u16,
    /// Balance of the local clearing account held against that peer
    /// (positive = we owe the peer at the next netting round).
    pub clearing: Credits,
    /// False when the route's circuit breaker is open.
    pub reachable: bool,
    /// Circuit-breaker state name (`Closed`/`Open`/`HalfOpen`), or
    /// `None` for in-process routes that have no breaker.
    pub breaker: Option<String>,
}

/// Structured answer to [`OpsQuery::Health`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HealthReport {
    /// The serving branch.
    pub branch: u16,
    /// Worst-signal-wins verdict.
    pub state: HealthState,
    /// Journal entries submitted to the group-commit queue but not yet
    /// flushed (tickets in flight).
    pub journal_flush_lag: u64,
    /// Batches currently queued in the group-commit queue.
    pub group_commit_queue: u64,
    /// Worker threads currently executing a request.
    pub workers_busy: u32,
    /// Worker pool size.
    pub workers_total: u32,
    /// Live client connections.
    pub connections: u32,
    /// Per-peer clearing balances and reachability; empty when the
    /// branch is not federated.
    pub peers: Vec<PeerHealth>,
}

/// Server's answer to an [`BankRequest::OpsQuery`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OpsReport {
    /// Metrics snapshot, rendered as JSON-lines.
    Metrics {
        /// `gridbank_obs::render_jsonl` output.
        jsonl: String,
    },
    /// Structured health report.
    Health(HealthReport),
    /// Flight-recorder dump (rendered span trees, may be empty).
    Traces {
        /// `gridbank_obs::flight::dump` output.
        rendered: String,
    },
}

impl Encode for OpsQuery {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            OpsQuery::Metrics { filter } => {
                w.put_u8(0);
                w.put_opt_str(filter.as_deref());
            }
            OpsQuery::Health => w.put_u8(1),
            OpsQuery::Traces => w.put_u8(2),
        }
    }
}

impl Decode for OpsQuery {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, RurError> {
        Ok(match r.get_u8()? {
            0 => OpsQuery::Metrics { filter: r.get_opt_str()? },
            1 => OpsQuery::Health,
            2 => OpsQuery::Traces,
            t => return Err(RurError::Decode(format!("unknown ops query tag {t}"))),
        })
    }
}

impl Encode for PeerHealth {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u32(self.branch as u32);
        self.clearing.encode(w);
        w.put_u8(self.reachable as u8);
        w.put_opt_str(self.breaker.as_deref());
    }
}

impl Decode for PeerHealth {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, RurError> {
        Ok(PeerHealth {
            branch: r.get_u32()? as u16,
            clearing: Credits::decode(r)?,
            reachable: r.get_u8()? != 0,
            breaker: r.get_opt_str()?,
        })
    }
}

impl Encode for HealthReport {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u32(self.branch as u32);
        w.put_u8(self.state.tag());
        w.put_u64(self.journal_flush_lag);
        w.put_u64(self.group_commit_queue);
        w.put_u32(self.workers_busy);
        w.put_u32(self.workers_total);
        w.put_u32(self.connections);
        w.put_u32(self.peers.len() as u32);
        for p in &self.peers {
            p.encode(w);
        }
    }
}

impl Decode for HealthReport {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, RurError> {
        let branch = r.get_u32()? as u16;
        let state = HealthState::from_tag(r.get_u8()?)
            .ok_or_else(|| RurError::Decode("bad health state tag".into()))?;
        let journal_flush_lag = r.get_u64()?;
        let group_commit_queue = r.get_u64()?;
        let workers_busy = r.get_u32()?;
        let workers_total = r.get_u32()?;
        let connections = r.get_u32()?;
        let n = r.get_u32()? as usize;
        if n > 1 << 16 {
            return Err(RurError::Decode("too many peers".into()));
        }
        let mut peers = Vec::with_capacity(n);
        for _ in 0..n {
            peers.push(PeerHealth::decode(r)?);
        }
        Ok(HealthReport {
            branch,
            state,
            journal_flush_lag,
            group_commit_queue,
            workers_busy,
            workers_total,
            connections,
            peers,
        })
    }
}

impl Encode for OpsReport {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            OpsReport::Metrics { jsonl } => {
                w.put_u8(0);
                w.put_str(jsonl);
            }
            OpsReport::Health(report) => {
                w.put_u8(1);
                report.encode(w);
            }
            OpsReport::Traces { rendered } => {
                w.put_u8(2);
                w.put_str(rendered);
            }
        }
    }
}

impl Decode for OpsReport {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, RurError> {
        Ok(match r.get_u8()? {
            0 => OpsReport::Metrics { jsonl: r.get_str()? },
            1 => OpsReport::Health(HealthReport::decode(r)?),
            2 => OpsReport::Traces { rendered: r.get_str()? },
            t => return Err(RurError::Decode(format!("unknown ops report tag {t}"))),
        })
    }
}

impl BankRequest {
    /// The variant's stable name — the label under which telemetry
    /// records per-request latency (`rpc.server.latency_ns/<name>`).
    pub fn variant_name(&self) -> &'static str {
        match self {
            BankRequest::CreateAccount { .. } => "CreateAccount",
            BankRequest::MyAccount => "MyAccount",
            BankRequest::AccountDetails { .. } => "AccountDetails",
            BankRequest::UpdateAccount { .. } => "UpdateAccount",
            BankRequest::Statement { .. } => "Statement",
            BankRequest::CheckFunds { .. } => "CheckFunds",
            BankRequest::DirectTransfer { .. } => "DirectTransfer",
            BankRequest::RequestCheque { .. } => "RequestCheque",
            BankRequest::RedeemCheque { .. } => "RedeemCheque",
            BankRequest::RequestHashChain { .. } => "RequestHashChain",
            BankRequest::RedeemPayWord { .. } => "RedeemPayWord",
            BankRequest::CloseHashChain { .. } => "CloseHashChain",
            BankRequest::RegisterResourceDescription { .. } => "RegisterResourceDescription",
            BankRequest::EstimatePrice { .. } => "EstimatePrice",
            BankRequest::RedeemChequeBatch { .. } => "RedeemChequeBatch",
            BankRequest::AdminDeposit { .. } => "AdminDeposit",
            BankRequest::AdminWithdraw { .. } => "AdminWithdraw",
            BankRequest::AdminCreditLimit { .. } => "AdminCreditLimit",
            BankRequest::AdminCancelTransfer { .. } => "AdminCancelTransfer",
            BankRequest::AdminCloseAccount { .. } => "AdminCloseAccount",
            BankRequest::IbCredit { .. } => "IbCredit",
            BankRequest::IbSettleProposal { .. } => "IbSettleProposal",
            BankRequest::OpsQuery { .. } => "OpsQuery",
        }
    }

    /// Whether the request mutates bank state. Mutating requests are the
    /// ones a resilient client must stamp with an idempotency key before
    /// retrying — re-sending a read is always safe.
    pub fn is_mutating(&self) -> bool {
        match self {
            BankRequest::MyAccount
            | BankRequest::AccountDetails { .. }
            | BankRequest::Statement { .. }
            | BankRequest::EstimatePrice { .. }
            | BankRequest::OpsQuery { .. } => false,
            // CheckFunds *locks* funds (§3.4 guarantee) — replaying it
            // unkeyed would strand a second lock.
            BankRequest::CheckFunds { .. }
            | BankRequest::CreateAccount { .. }
            | BankRequest::UpdateAccount { .. }
            | BankRequest::DirectTransfer { .. }
            | BankRequest::RequestCheque { .. }
            | BankRequest::RedeemCheque { .. }
            | BankRequest::RequestHashChain { .. }
            | BankRequest::RedeemPayWord { .. }
            | BankRequest::CloseHashChain { .. }
            | BankRequest::RegisterResourceDescription { .. }
            | BankRequest::RedeemChequeBatch { .. }
            | BankRequest::AdminDeposit { .. }
            | BankRequest::AdminWithdraw { .. }
            | BankRequest::AdminCreditLimit { .. }
            | BankRequest::AdminCancelTransfer { .. }
            | BankRequest::AdminCloseAccount { .. }
            | BankRequest::IbCredit { .. }
            | BankRequest::IbSettleProposal { .. } => true,
        }
    }

    /// Which GridBank server layer (§3.2) services the request — the
    /// component name on the dispatch span.
    pub fn layer(&self) -> &'static str {
        match self {
            BankRequest::CreateAccount { .. }
            | BankRequest::MyAccount
            | BankRequest::AccountDetails { .. }
            | BankRequest::UpdateAccount { .. }
            | BankRequest::Statement { .. }
            | BankRequest::CheckFunds { .. }
            | BankRequest::AdminDeposit { .. }
            | BankRequest::AdminWithdraw { .. }
            | BankRequest::AdminCreditLimit { .. }
            | BankRequest::AdminCancelTransfer { .. }
            | BankRequest::AdminCloseAccount { .. } => "server.accounts",
            BankRequest::DirectTransfer { .. }
            | BankRequest::RequestCheque { .. }
            | BankRequest::RedeemCheque { .. }
            | BankRequest::RequestHashChain { .. }
            | BankRequest::RedeemPayWord { .. }
            | BankRequest::CloseHashChain { .. }
            | BankRequest::RedeemChequeBatch { .. } => "server.payment",
            BankRequest::RegisterResourceDescription { .. } | BankRequest::EstimatePrice { .. } => {
                "server.pricing"
            }
            BankRequest::IbCredit { .. } | BankRequest::IbSettleProposal { .. } => {
                "server.federation"
            }
            BankRequest::OpsQuery { .. } => "server.ops",
        }
    }
}

/// Server response.
#[derive(Clone, Debug)]
pub enum BankResponse {
    /// Account created.
    AccountCreated {
        /// The new account id.
        account: AccountId,
    },
    /// An account record.
    Account(AccountRecord),
    /// A statement.
    Statement {
        /// Account as of the query.
        account: AccountRecord,
        /// Transactions in range.
        transactions: Vec<TransactionRecord>,
        /// Transfers in range.
        transfers: Vec<TransferRecord>,
    },
    /// Generic confirmation carrying the transaction id (0 when none).
    Confirmation {
        /// Transaction id, if one was committed.
        transaction_id: u64,
    },
    /// A signed direct-transfer confirmation.
    Confirmed(TransferConfirmation),
    /// An issued cheque.
    Cheque(GridCheque),
    /// An issued hash chain (commitment + signature + the secret chain).
    HashChain {
        /// The signed commitment.
        commitment: ChainCommitment,
        /// Bank signature.
        signature: MerkleSignature,
        /// Full chain `w_0..=w_n` (w_0 public root, rest secret).
        chain: Vec<Digest>,
    },
    /// Result of a redemption.
    Redeemed {
        /// Amount paid to the payee.
        paid: Credits,
        /// Amount released back to the drawer.
        released: Credits,
    },
    /// A price estimate.
    Estimate {
        /// Estimated G$ per CPU-hour.
        price: Credits,
    },
    /// Per-entry outcomes of a batch redemption: `Ok((paid, released))`
    /// or `Err((kind, message))` per cheque, in submission order.
    RedeemedBatch {
        /// One result per submitted cheque.
        results: Vec<Result<(Credits, Credits), (u8, String)>>,
    },
    /// Failure.
    Error {
        /// Coarse error kind ([`error_kind`] / [`error_from_wire`]).
        kind: u8,
        /// Human-readable message.
        message: String,
        /// Kind-specific structured payload ([`error_detail`]): for
        /// [`kinds::NOT_HOME_BRANCH`] the account's home branch id.
        /// Zero when the kind carries none.
        detail: u32,
    },
    /// Answer to [`BankRequest::IbSettleProposal`]: the receiver's side
    /// of the pairwise netting round.
    IbSettleAck {
        /// Gross flow the receiver had parked for the proposer's members
        /// (now drained on the receiver's books).
        gross_back: Credits,
    },
    /// Answer to an [`BankRequest::OpsQuery`].
    OpsReport {
        /// The requested report.
        report: OpsReport,
    },
}

/// Coarse error kinds that survive the wire.
pub mod kinds {
    /// Anything not otherwise classified.
    pub const OTHER: u8 = 0;
    /// Insufficient (spendable or locked) funds.
    pub const INSUFFICIENT: u8 = 1;
    /// Instrument already redeemed.
    pub const ALREADY_REDEEMED: u8 = 2;
    /// Caller not authorized.
    pub const NOT_AUTHORIZED: u8 = 3;
    /// Unknown subject/account.
    pub const UNKNOWN_ACCOUNT: u8 = 4;
    /// Invalid payment instrument.
    pub const INVALID_INSTRUMENT: u8 = 5;
    /// Duplicate account.
    pub const DUPLICATE: u8 = 6;
    /// The account lives on another branch (typed redirect; the home
    /// branch id rides in the error frame's structured detail field).
    pub const NOT_HOME_BRANCH: u8 = 7;
}

/// Maps a [`BankError`] to its wire kind.
pub fn error_kind(e: &BankError) -> u8 {
    match e {
        BankError::InsufficientFunds { .. } | BankError::InsufficientLockedFunds { .. } => {
            kinds::INSUFFICIENT
        }
        BankError::AlreadyRedeemed(_) => kinds::ALREADY_REDEEMED,
        BankError::NotAuthorized(_) => kinds::NOT_AUTHORIZED,
        BankError::NoSuchAccount(_) | BankError::UnknownSubject(_) => kinds::UNKNOWN_ACCOUNT,
        BankError::InvalidInstrument(_) => kinds::INVALID_INSTRUMENT,
        BankError::DuplicateAccount(_) => kinds::DUPLICATE,
        BankError::NotHomeBranch { .. } => kinds::NOT_HOME_BRANCH,
        _ => kinds::OTHER,
    }
}

/// The kind-specific structured payload an error frame carries alongside
/// the kind and message — for [`kinds::NOT_HOME_BRANCH`] the home branch
/// id, zero for every other kind.
pub fn error_detail(e: &BankError) -> u32 {
    match e {
        BankError::NotHomeBranch { home } => *home as u32,
        _ => 0,
    }
}

/// Reconstructs a coarse [`BankError`] from a wire error.
pub fn error_from_wire(kind: u8, message: String, detail: u32) -> BankError {
    match kind {
        kinds::INSUFFICIENT => BankError::InsufficientFunds {
            account: AccountId::new(0, 0, 0),
            needed: Credits::ZERO,
            spendable: Credits::ZERO,
        },
        kinds::ALREADY_REDEEMED => BankError::AlreadyRedeemed(message),
        kinds::NOT_AUTHORIZED => BankError::NotAuthorized(message),
        kinds::UNKNOWN_ACCOUNT => BankError::UnknownSubject(message),
        kinds::INVALID_INSTRUMENT => BankError::InvalidInstrument(message),
        kinds::DUPLICATE => BankError::DuplicateAccount(message),
        kinds::NOT_HOME_BRANCH => BankError::NotHomeBranch { home: detail as u16 },
        _ => BankError::Protocol(message),
    }
}

impl Encode for BankRequest {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            BankRequest::CreateAccount { organization } => {
                w.put_u8(0);
                w.put_opt_str(organization.as_deref());
            }
            BankRequest::MyAccount => w.put_u8(1),
            BankRequest::AccountDetails { account } => {
                w.put_u8(2);
                account.encode(w);
            }
            BankRequest::UpdateAccount { account, certificate_name, organization } => {
                w.put_u8(3);
                account.encode(w);
                w.put_str(certificate_name);
                w.put_opt_str(organization.as_deref());
            }
            BankRequest::Statement { account, start_ms, end_ms } => {
                w.put_u8(4);
                account.encode(w);
                w.put_u64(*start_ms);
                w.put_u64(*end_ms);
            }
            BankRequest::CheckFunds { account, amount } => {
                w.put_u8(5);
                account.encode(w);
                amount.encode(w);
            }
            BankRequest::DirectTransfer { to, amount, recipient_address } => {
                w.put_u8(6);
                to.encode(w);
                amount.encode(w);
                w.put_str(recipient_address);
            }
            BankRequest::RequestCheque { payee_cert, amount, validity_ms } => {
                w.put_u8(7);
                w.put_str(payee_cert);
                amount.encode(w);
                w.put_u64(*validity_ms);
            }
            BankRequest::RedeemCheque { cheque, rur } => {
                w.put_u8(8);
                cheque.encode(w);
                rur.encode(w);
            }
            BankRequest::RequestHashChain { payee_cert, length, value_per_word, validity_ms } => {
                w.put_u8(9);
                w.put_str(payee_cert);
                w.put_u32(*length);
                value_per_word.encode(w);
                w.put_u64(*validity_ms);
            }
            BankRequest::RedeemPayWord { commitment, signature, payword, rur_blob } => {
                w.put_u8(10);
                w.put_bytes(&commitment.to_bytes());
                put_sig(w, signature);
                w.put_u32(payword.index);
                put_digest(w, &payword.word);
                w.put_bytes(rur_blob);
            }
            BankRequest::CloseHashChain { commitment } => {
                w.put_u8(11);
                w.put_bytes(&commitment.to_bytes());
            }
            BankRequest::RegisterResourceDescription { desc } => {
                w.put_u8(12);
                desc.encode(w);
            }
            BankRequest::EstimatePrice { desc, min_similarity_ppk } => {
                w.put_u8(13);
                desc.encode(w);
                w.put_u64(*min_similarity_ppk);
            }
            BankRequest::RedeemChequeBatch { items } => {
                w.put_u8(19);
                w.put_u32(items.len() as u32);
                for (cheque, rur) in items {
                    cheque.encode(w);
                    rur.encode(w);
                }
            }
            BankRequest::AdminDeposit { account, amount } => {
                w.put_u8(14);
                account.encode(w);
                amount.encode(w);
            }
            BankRequest::AdminWithdraw { account, amount } => {
                w.put_u8(15);
                account.encode(w);
                amount.encode(w);
            }
            BankRequest::AdminCreditLimit { account, new_limit } => {
                w.put_u8(16);
                account.encode(w);
                new_limit.encode(w);
            }
            BankRequest::AdminCancelTransfer { transaction_id } => {
                w.put_u8(17);
                w.put_u64(*transaction_id);
            }
            BankRequest::AdminCloseAccount { account, transfer_to } => {
                w.put_u8(18);
                account.encode(w);
                match transfer_to {
                    Some(t) => {
                        w.put_u8(1);
                        t.encode(w);
                    }
                    None => w.put_u8(0),
                }
            }
            BankRequest::IbCredit { to, amount, origin_branch, rur_blob } => {
                w.put_u8(20);
                to.encode(w);
                amount.encode(w);
                w.put_u32(*origin_branch as u32);
                w.put_bytes(rur_blob);
            }
            BankRequest::IbSettleProposal { origin_branch, gross_out } => {
                w.put_u8(21);
                w.put_u32(*origin_branch as u32);
                gross_out.encode(w);
            }
            BankRequest::OpsQuery { query } => {
                w.put_u8(22);
                query.encode(w);
            }
        }
    }
}

impl Decode for BankRequest {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, RurError> {
        Ok(match r.get_u8()? {
            0 => BankRequest::CreateAccount { organization: r.get_opt_str()? },
            1 => BankRequest::MyAccount,
            2 => BankRequest::AccountDetails { account: AccountId::decode(r)? },
            3 => BankRequest::UpdateAccount {
                account: AccountId::decode(r)?,
                certificate_name: r.get_str()?,
                organization: r.get_opt_str()?,
            },
            4 => BankRequest::Statement {
                account: AccountId::decode(r)?,
                start_ms: r.get_u64()?,
                end_ms: r.get_u64()?,
            },
            5 => BankRequest::CheckFunds {
                account: AccountId::decode(r)?,
                amount: Credits::decode(r)?,
            },
            6 => BankRequest::DirectTransfer {
                to: AccountId::decode(r)?,
                amount: Credits::decode(r)?,
                recipient_address: r.get_str()?,
            },
            7 => BankRequest::RequestCheque {
                payee_cert: r.get_str()?,
                amount: Credits::decode(r)?,
                validity_ms: r.get_u64()?,
            },
            8 => BankRequest::RedeemCheque {
                cheque: GridCheque::decode(r)?,
                rur: ResourceUsageRecord::decode(r)?,
            },
            9 => BankRequest::RequestHashChain {
                payee_cert: r.get_str()?,
                length: r.get_u32()?,
                value_per_word: Credits::decode(r)?,
                validity_ms: r.get_u64()?,
            },
            10 => BankRequest::RedeemPayWord {
                commitment: ChainCommitment::from_bytes(r.get_bytes()?)?,
                signature: get_sig(r)?,
                payword: PayWord { index: r.get_u32()?, word: get_digest(r)? },
                rur_blob: r.get_bytes()?.to_vec(),
            },
            11 => BankRequest::CloseHashChain {
                commitment: ChainCommitment::from_bytes(r.get_bytes()?)?,
            },
            12 => {
                BankRequest::RegisterResourceDescription { desc: ResourceDescription::decode(r)? }
            }
            13 => BankRequest::EstimatePrice {
                desc: ResourceDescription::decode(r)?,
                min_similarity_ppk: r.get_u64()?,
            },
            14 => BankRequest::AdminDeposit {
                account: AccountId::decode(r)?,
                amount: Credits::decode(r)?,
            },
            15 => BankRequest::AdminWithdraw {
                account: AccountId::decode(r)?,
                amount: Credits::decode(r)?,
            },
            16 => BankRequest::AdminCreditLimit {
                account: AccountId::decode(r)?,
                new_limit: Credits::decode(r)?,
            },
            17 => BankRequest::AdminCancelTransfer { transaction_id: r.get_u64()? },
            18 => BankRequest::AdminCloseAccount {
                account: AccountId::decode(r)?,
                transfer_to: match r.get_u8()? {
                    0 => None,
                    1 => Some(AccountId::decode(r)?),
                    t => return Err(RurError::Decode(format!("bad option tag {t}"))),
                },
            },
            19 => {
                let n = r.get_u32()? as usize;
                if n > 4096 {
                    return Err(RurError::Decode(format!("batch of {n} too large")));
                }
                let mut items = Vec::with_capacity(n);
                for _ in 0..n {
                    items.push((GridCheque::decode(r)?, ResourceUsageRecord::decode(r)?));
                }
                BankRequest::RedeemChequeBatch { items }
            }
            20 => BankRequest::IbCredit {
                to: AccountId::decode(r)?,
                amount: Credits::decode(r)?,
                origin_branch: r.get_u32()? as u16,
                rur_blob: r.get_bytes()?.to_vec(),
            },
            21 => BankRequest::IbSettleProposal {
                origin_branch: r.get_u32()? as u16,
                gross_out: Credits::decode(r)?,
            },
            22 => BankRequest::OpsQuery { query: OpsQuery::decode(r)? },
            t => return Err(RurError::Decode(format!("unknown request tag {t}"))),
        })
    }
}

impl Encode for BankResponse {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            BankResponse::AccountCreated { account } => {
                w.put_u8(0);
                account.encode(w);
            }
            BankResponse::Account(record) => {
                w.put_u8(1);
                record.encode(w);
            }
            BankResponse::Statement { account, transactions, transfers } => {
                w.put_u8(2);
                account.encode(w);
                w.put_u32(transactions.len() as u32);
                for t in transactions {
                    t.encode(w);
                }
                w.put_u32(transfers.len() as u32);
                for t in transfers {
                    t.encode(w);
                }
            }
            BankResponse::Confirmation { transaction_id } => {
                w.put_u8(3);
                w.put_u64(*transaction_id);
            }
            BankResponse::Confirmed(conf) => {
                w.put_u8(4);
                w.put_bytes(&conf.body.to_bytes());
                put_sig(w, &conf.signature);
            }
            BankResponse::Cheque(cheque) => {
                w.put_u8(5);
                cheque.encode(w);
            }
            BankResponse::HashChain { commitment, signature, chain } => {
                w.put_u8(6);
                w.put_bytes(&commitment.to_bytes());
                put_sig(w, signature);
                w.put_u32(chain.len() as u32);
                for d in chain {
                    put_digest(w, d);
                }
            }
            BankResponse::Redeemed { paid, released } => {
                w.put_u8(7);
                paid.encode(w);
                released.encode(w);
            }
            BankResponse::Estimate { price } => {
                w.put_u8(8);
                price.encode(w);
            }
            BankResponse::Error { kind, message, detail } => {
                w.put_u8(9);
                w.put_u8(*kind);
                w.put_str(message);
                w.put_u32(*detail);
            }
            BankResponse::RedeemedBatch { results } => {
                w.put_u8(10);
                w.put_u32(results.len() as u32);
                for r in results {
                    match r {
                        Ok((paid, released)) => {
                            w.put_u8(1);
                            paid.encode(w);
                            released.encode(w);
                        }
                        Err((kind, message)) => {
                            w.put_u8(0);
                            w.put_u8(*kind);
                            w.put_str(message);
                        }
                    }
                }
            }
            BankResponse::IbSettleAck { gross_back } => {
                w.put_u8(11);
                gross_back.encode(w);
            }
            BankResponse::OpsReport { report } => {
                w.put_u8(12);
                report.encode(w);
            }
        }
    }
}

impl Decode for BankResponse {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, RurError> {
        Ok(match r.get_u8()? {
            0 => BankResponse::AccountCreated { account: AccountId::decode(r)? },
            1 => BankResponse::Account(AccountRecord::decode(r)?),
            2 => {
                let account = AccountRecord::decode(r)?;
                let nt = r.get_u32()? as usize;
                if nt > 1 << 20 {
                    return Err(RurError::Decode("statement too large".into()));
                }
                let mut transactions = Vec::with_capacity(nt);
                for _ in 0..nt {
                    transactions.push(TransactionRecord::decode(r)?);
                }
                let nf = r.get_u32()? as usize;
                if nf > 1 << 20 {
                    return Err(RurError::Decode("statement too large".into()));
                }
                let mut transfers = Vec::with_capacity(nf);
                for _ in 0..nf {
                    transfers.push(TransferRecord::decode(r)?);
                }
                BankResponse::Statement { account, transactions, transfers }
            }
            3 => BankResponse::Confirmation { transaction_id: r.get_u64()? },
            4 => BankResponse::Confirmed(TransferConfirmation {
                body: ConfirmationBody::from_bytes(r.get_bytes()?)?,
                signature: get_sig(r)?,
            }),
            5 => BankResponse::Cheque(GridCheque::decode(r)?),
            6 => {
                let commitment = ChainCommitment::from_bytes(r.get_bytes()?)?;
                let signature = get_sig(r)?;
                let n = r.get_u32()? as usize;
                if n > 1 << 20 {
                    return Err(RurError::Decode("chain too long".into()));
                }
                let mut chain = Vec::with_capacity(n);
                for _ in 0..n {
                    chain.push(get_digest(r)?);
                }
                BankResponse::HashChain { commitment, signature, chain }
            }
            7 => {
                BankResponse::Redeemed { paid: Credits::decode(r)?, released: Credits::decode(r)? }
            }
            8 => BankResponse::Estimate { price: Credits::decode(r)? },
            9 => BankResponse::Error {
                kind: r.get_u8()?,
                message: r.get_str()?,
                detail: r.get_u32()?,
            },
            10 => {
                let n = r.get_u32()? as usize;
                if n > 4096 {
                    return Err(RurError::Decode(format!("batch of {n} too large")));
                }
                let mut results = Vec::with_capacity(n);
                for _ in 0..n {
                    results.push(match r.get_u8()? {
                        1 => Ok((Credits::decode(r)?, Credits::decode(r)?)),
                        0 => Err((r.get_u8()?, r.get_str()?)),
                        t => return Err(RurError::Decode(format!("bad batch result tag {t}"))),
                    });
                }
                BankResponse::RedeemedBatch { results }
            }
            11 => BankResponse::IbSettleAck { gross_back: Credits::decode(r)? },
            12 => BankResponse::OpsReport { report: OpsReport::decode(r)? },
            t => return Err(RurError::Decode(format!("unknown response tag {t}"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: BankRequest) -> BankRequest {
        BankRequest::from_bytes(&req.to_bytes()).unwrap()
    }

    #[test]
    fn simple_requests_round_trip() {
        let cases = vec![
            BankRequest::CreateAccount { organization: Some("UWA".into()) },
            BankRequest::MyAccount,
            BankRequest::AccountDetails { account: AccountId::new(1, 2, 3) },
            BankRequest::Statement { account: AccountId::new(1, 1, 1), start_ms: 5, end_ms: 10 },
            BankRequest::CheckFunds {
                account: AccountId::new(1, 1, 1),
                amount: Credits::from_gd(5),
            },
            BankRequest::DirectTransfer {
                to: AccountId::new(1, 1, 2),
                amount: Credits::from_gd(3),
                recipient_address: "gsp.org".into(),
            },
            BankRequest::RequestCheque {
                payee_cert: "/CN=gsp".into(),
                amount: Credits::from_gd(10),
                validity_ms: 1000,
            },
            BankRequest::AdminCancelTransfer { transaction_id: 99 },
            BankRequest::AdminCloseAccount { account: AccountId::new(1, 1, 4), transfer_to: None },
            BankRequest::AdminCloseAccount {
                account: AccountId::new(1, 1, 4),
                transfer_to: Some(AccountId::new(1, 1, 5)),
            },
            BankRequest::IbCredit {
                to: AccountId::new(1, 2, 7),
                amount: Credits::from_gd(4),
                origin_branch: 1,
                rur_blob: vec![9, 9, 9],
            },
            BankRequest::IbSettleProposal { origin_branch: 2, gross_out: Credits::from_gd(110) },
            BankRequest::OpsQuery { query: OpsQuery::Metrics { filter: None } },
            BankRequest::OpsQuery {
                query: OpsQuery::Metrics { filter: Some("server.stage.".into()) },
            },
            BankRequest::OpsQuery { query: OpsQuery::Health },
            BankRequest::OpsQuery { query: OpsQuery::Traces },
        ];
        for req in cases {
            let back = round_trip_request(req.clone());
            assert_eq!(format!("{back:?}"), format!("{req:?}"));
        }
    }

    #[test]
    fn responses_round_trip() {
        let rec = AccountRecord {
            id: AccountId::new(1, 1, 7),
            certificate_name: "/CN=x".into(),
            organization: None,
            available: Credits::from_gd(5),
            locked: Credits::from_gd(1),
            currency: "GridDollar".into(),
            credit_limit: Credits::ZERO,
        };
        let cases = vec![
            BankResponse::AccountCreated { account: rec.id },
            BankResponse::Account(rec.clone()),
            BankResponse::Statement {
                account: rec,
                transactions: vec![TransactionRecord {
                    transaction_id: 1,
                    account: AccountId::new(1, 1, 7),
                    tx_type: TransactionType::Deposit,
                    date_ms: 9,
                    amount: Credits::from_gd(5),
                }],
                transfers: vec![TransferRecord {
                    transaction_id: 2,
                    date_ms: 10,
                    drawer: AccountId::new(1, 1, 7),
                    amount: Credits::from_gd(1),
                    recipient: AccountId::new(1, 1, 8),
                    rur_blob: vec![1, 2],
                    trace_id: 0xABCD,
                }],
            },
            BankResponse::Confirmation { transaction_id: 3 },
            BankResponse::Redeemed { paid: Credits::from_gd(2), released: Credits::from_gd(1) },
            BankResponse::Estimate { price: Credits::from_milli(1500) },
            BankResponse::Error {
                kind: kinds::INSUFFICIENT,
                message: "no funds".into(),
                detail: 0,
            },
            BankResponse::Error {
                kind: kinds::NOT_HOME_BRANCH,
                message: "account's home branch is 7".into(),
                detail: 7,
            },
            BankResponse::IbSettleAck { gross_back: Credits::from_gd(42) },
            BankResponse::OpsReport {
                report: OpsReport::Metrics { jsonl: "{\"name\":\"x\"}\n".into() },
            },
            BankResponse::OpsReport {
                report: OpsReport::Health(HealthReport {
                    branch: 1,
                    state: HealthState::Degraded,
                    journal_flush_lag: 3,
                    group_commit_queue: 2,
                    workers_busy: 4,
                    workers_total: 8,
                    connections: 6,
                    peers: vec![
                        PeerHealth {
                            branch: 2,
                            clearing: Credits::from_gd(7),
                            reachable: true,
                            breaker: Some("HalfOpen".into()),
                        },
                        PeerHealth {
                            branch: 3,
                            clearing: Credits::ZERO,
                            reachable: false,
                            breaker: None,
                        },
                    ],
                }),
            },
            BankResponse::OpsReport { report: OpsReport::Traces { rendered: "trace".into() } },
        ];
        for resp in cases {
            let back = BankResponse::from_bytes(&resp.to_bytes()).unwrap();
            assert_eq!(format!("{back:?}"), format!("{resp:?}"));
        }
    }

    #[test]
    fn unknown_tags_rejected() {
        assert!(BankRequest::from_bytes(&[200]).is_err());
        assert!(BankResponse::from_bytes(&[200]).is_err());
        assert!(BankRequest::from_bytes(&[]).is_err());
    }

    #[test]
    fn journal_round_trips() {
        use crate::db::{JournalEntry, TransactionType};
        let rec = AccountRecord {
            id: AccountId::new(1, 1, 9),
            certificate_name: "/CN=j".into(),
            organization: Some("Org".into()),
            available: Credits::from_gd(3),
            locked: Credits::ZERO,
            currency: "GridDollar".into(),
            credit_limit: Credits::from_gd(1),
        };
        let journal = vec![
            JournalEntry::Create(rec.clone()),
            JournalEntry::Update(rec.clone()),
            JournalEntry::Transaction(TransactionRecord {
                transaction_id: 5,
                account: rec.id,
                tx_type: TransactionType::Deposit,
                date_ms: 11,
                amount: Credits::from_gd(3),
            }),
            JournalEntry::Transfer(TransferRecord {
                transaction_id: 6,
                date_ms: 12,
                drawer: rec.id,
                amount: Credits::from_gd(1),
                recipient: AccountId::new(1, 1, 10),
                rur_blob: vec![7, 7],
                trace_id: 42,
            }),
            JournalEntry::IbOut(crate::db::PendingIbCredit {
                key: 0xFEED_0001,
                to: AccountId::new(1, 2, 3),
                amount: Credits::from_gd(8),
                origin: 1,
                drawer: rec.id,
                idem: Some(("/CN=j".into(), 44)),
            }),
            JournalEntry::IbOut(crate::db::PendingIbCredit {
                key: 0xFEED_0002,
                to: AccountId::new(1, 2, 4),
                amount: Credits::from_gd(2),
                origin: 1,
                drawer: rec.id,
                idem: None,
            }),
            JournalEntry::IbAck { key: 0xFEED_0001 },
            JournalEntry::IdemDrop { cert: "/CN=j".into(), key: 44 },
            JournalEntry::Remove(rec.id),
        ];
        let bytes = journal_to_bytes(&journal);
        let back = journal_from_bytes(&bytes).unwrap();
        assert_eq!(back, journal);
        // Magic and truncation are checked.
        assert!(journal_from_bytes(&bytes[..3]).is_err());
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert!(journal_from_bytes(&bad).is_err());
    }

    #[test]
    fn error_kind_mapping() {
        let e = BankError::NotAuthorized("x".into());
        let k = error_kind(&e);
        assert!(matches!(error_from_wire(k, "x".into(), 0), BankError::NotAuthorized(_)));
        let e = BankError::AlreadyRedeemed("c".into());
        assert!(matches!(
            error_from_wire(error_kind(&e), "c".into(), 0),
            BankError::AlreadyRedeemed(_)
        ));
        assert_eq!(error_kind(&BankError::NonPositiveAmount), kinds::OTHER);
    }

    #[test]
    fn not_home_branch_round_trips_home_id() {
        let e = BankError::NotHomeBranch { home: 7 };
        let kind = error_kind(&e);
        assert_eq!(kind, kinds::NOT_HOME_BRANCH);
        assert_eq!(error_detail(&e), 7);
        match error_from_wire(kind, e.to_string(), error_detail(&e)) {
            BankError::NotHomeBranch { home } => assert_eq!(home, 7),
            other => panic!("expected NotHomeBranch, got {other:?}"),
        }
        // The id is structured: rewording (or a proxy mangling) the
        // human-readable message cannot degrade the redirect.
        assert!(matches!(
            error_from_wire(kinds::NOT_HOME_BRANCH, "garbled".into(), 7),
            BankError::NotHomeBranch { home: 7 }
        ));
        assert_eq!(error_detail(&BankError::NonPositiveAmount), 0);
    }
}
