//! Direct funds transfer — the pay-before-use protocol (§3.1).
//!
//! "The first policy is appropriate for services that have a fixed cost,
//! for example, to access a directory service. A simple funds transfer
//! protocol is designed to enable GSC to request funds transfer with the
//! confirmation send to GSP. GSC establishes secure connection with
//! GridBank to provide account details of GSC and GSP as well as amount
//! and URL of GSP. GridBank performs the funds transfer and sends the
//! confirmation to the specified URL of the GSP via another secure
//! channel."
//!
//! The confirmation here is a *signed receipt*: the GSC (or the bank
//! itself) can deliver it to the GSP's address, and the GSP verifies it
//! offline against the bank's key — equivalent evidence to the paper's
//! pushed confirmation, minus a second live connection.

use gridbank_crypto::keys::{SigningIdentity, VerifyingKey};
use gridbank_crypto::merkle::MerkleSignature;
use gridbank_rur::codec::{ByteReader, ByteWriter, Decode, Encode};
use gridbank_rur::{Credits, RurError};

use crate::accounts::{GbAccounts, IdemKey};
use crate::db::AccountId;
use crate::error::BankError;

/// The signed body of a transfer confirmation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConfirmationBody {
    /// The committed transaction id.
    pub transaction_id: u64,
    /// Paying account.
    pub drawer: AccountId,
    /// Receiving account.
    pub recipient: AccountId,
    /// Amount moved.
    pub amount: Credits,
    /// Commit time.
    pub date_ms: u64,
    /// The GSP address ("URL") the confirmation is destined for.
    pub recipient_address: String,
}

impl Encode for ConfirmationBody {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u8(1);
        w.put_u64(self.transaction_id);
        w.put_str(&self.drawer.to_string());
        w.put_str(&self.recipient.to_string());
        self.amount.encode(w);
        w.put_u64(self.date_ms);
        w.put_str(&self.recipient_address);
    }
}

impl Decode for ConfirmationBody {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, RurError> {
        let v = r.get_u8()?;
        if v != 1 {
            return Err(RurError::Decode(format!("confirmation version {v}")));
        }
        let transaction_id = r.get_u64()?;
        let drawer =
            AccountId::parse(&r.get_str()?).ok_or_else(|| RurError::Decode("bad drawer".into()))?;
        let recipient = AccountId::parse(&r.get_str()?)
            .ok_or_else(|| RurError::Decode("bad recipient".into()))?;
        Ok(ConfirmationBody {
            transaction_id,
            drawer,
            recipient,
            amount: Credits::decode(r)?,
            date_ms: r.get_u64()?,
            recipient_address: r.get_str()?,
        })
    }
}

/// A bank-signed transfer confirmation.
#[derive(Clone, Debug)]
pub struct TransferConfirmation {
    /// The signed fields.
    pub body: ConfirmationBody,
    /// Bank signature.
    pub signature: MerkleSignature,
}

impl TransferConfirmation {
    /// Verifies the bank's signature.
    pub fn verify(&self, bank_key: &VerifyingKey) -> Result<(), BankError> {
        bank_key
            .verify(&self.body.to_bytes(), &self.signature)
            .map_err(|_| BankError::InvalidInstrument("bad signature on confirmation".into()))
    }
}

/// Executes a pay-before-use direct transfer and signs the confirmation.
pub fn direct_transfer(
    accounts: &GbAccounts,
    signer: &SigningIdentity,
    from: &AccountId,
    to: &AccountId,
    amount: Credits,
    recipient_address: &str,
) -> Result<TransferConfirmation, BankError> {
    direct_transfer_keyed(accounts, signer, from, to, amount, recipient_address, None)
}

/// [`direct_transfer`] with an optional idempotency key. The dedup stamp
/// is journaled atomically with the transfer, so a retried request after
/// a crash cannot re-apply; the signature happens after the commit, so
/// the stamp remembers an unsigned placeholder confirmation that the
/// server upgrades to the signed response once signing completes.
pub fn direct_transfer_keyed(
    accounts: &GbAccounts,
    signer: &SigningIdentity,
    from: &AccountId,
    to: &AccountId,
    amount: Credits,
    recipient_address: &str,
    idem: Option<IdemKey>,
) -> Result<TransferConfirmation, BankError> {
    let transaction_id = accounts.transfer_keyed(from, to, amount, Vec::new(), idem)?;
    let body = ConfirmationBody {
        transaction_id,
        drawer: *from,
        recipient: *to,
        amount,
        date_ms: accounts.clock().now_ms(),
        recipient_address: recipient_address.to_string(),
    };
    let signature = signer.sign(&body.to_bytes())?;
    Ok(TransferConfirmation { body, signature })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::Clock;
    use crate::db::Database;
    use gridbank_crypto::keys::KeyMaterial;
    use std::sync::Arc;

    fn setup() -> (GbAccounts, SigningIdentity, AccountId, AccountId) {
        let db = Arc::new(Database::new(1, 1));
        let acc = GbAccounts::new(db.clone(), Clock::starting_at(42));
        let a = acc.create_account("/CN=gsc", None).unwrap();
        let b = acc.create_account("/CN=gsp", None).unwrap();
        db.with_account_mut(&a, |r| {
            r.available = Credits::from_gd(20);
            Ok(())
        })
        .unwrap();
        let signer = SigningIdentity::generate_small(KeyMaterial { seed: 3 }, "bank");
        (acc, signer, a, b)
    }

    #[test]
    fn transfer_and_verifiable_confirmation() {
        let (acc, signer, a, b) = setup();
        let conf =
            direct_transfer(&acc, &signer, &a, &b, Credits::from_gd(5), "gsp.grid.org").unwrap();
        conf.verify(&signer.verifying_key()).unwrap();
        assert_eq!(conf.body.amount, Credits::from_gd(5));
        assert_eq!(conf.body.date_ms, 42);
        assert_eq!(conf.body.recipient_address, "gsp.grid.org");
        assert_eq!(acc.account_details(&b).unwrap().available, Credits::from_gd(5));
        // Codec round-trip.
        let decoded = ConfirmationBody::from_bytes(&conf.body.to_bytes()).unwrap();
        assert_eq!(decoded, conf.body);
    }

    #[test]
    fn tampered_confirmation_fails() {
        let (acc, signer, a, b) = setup();
        let mut conf =
            direct_transfer(&acc, &signer, &a, &b, Credits::from_gd(5), "gsp.grid.org").unwrap();
        conf.body.amount = Credits::from_gd(500);
        assert!(conf.verify(&signer.verifying_key()).is_err());
    }

    #[test]
    fn failed_transfer_issues_no_confirmation() {
        let (acc, signer, a, b) = setup();
        let err = direct_transfer(&acc, &signer, &a, &b, Credits::from_gd(21), "x");
        assert!(matches!(err, Err(BankError::InsufficientFunds { .. })));
        // No money moved.
        assert_eq!(acc.account_details(&b).unwrap().available, Credits::ZERO);
    }
}
