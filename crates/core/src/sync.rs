//! Switchable concurrency primitives for the bank's hot paths, plus the
//! debug-build lock-order witness.
//!
//! `db.rs` (group-commit queue, journal, idempotency table) and
//! `server.rs` (per-key in-flight guard, worker pool) import their
//! locks, condvars, and atomics from here instead of naming
//! `parking_lot`/`std::sync::atomic` directly. A normal build re-exports
//! those unchanged — zero cost. Building with `RUSTFLAGS="--cfg loom"`
//! swaps in the vendored `loom` substitute, whose wrappers inject
//! seeded randomized yields at every acquisition/atomic op so the
//! `loom_model` tests (see `scripts/check.sh` stage `LOOM=1` and
//! docs/STATIC_ANALYSIS.md) can shake out interleaving bugs.
//!
//! # The lock-order witness
//!
//! [`OrderedMutex`] and [`OrderedRwLock`] carry the rank their class
//! holds in the declared acquisition order (the L6 table in
//! docs/STATIC_ANALYSIS.md). In debug builds every acquisition pushes
//! `(rank, index)` onto a thread-local stack and panics if it is not
//! strictly greater than the current top — the dynamic complement to
//! the lexical `gridbank-lint` L6 pass, catching inversions that only
//! materialize through call chains the lint cannot see. Same-rank
//! acquisitions must ascend by index (the cross-shard transfer idiom).
//! In release builds the bookkeeping compiles out entirely and the
//! wrappers are plain newtypes around the underlying locks. Locks
//! coupled to a `Condvar` (the commit queue, the in-flight key table)
//! stay unwrapped: `Condvar::wait` releases and reacquires its mutex
//! while parked, which a strict held-stack cannot model.

#[cfg(not(loom))]
pub(crate) use parking_lot::{Condvar, Mutex, RwLock};
#[cfg(not(loom))]
pub(crate) use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};

#[cfg(loom)]
pub(crate) use loom::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
#[cfg(loom)]
pub(crate) use loom::sync::{Condvar, Mutex, RwLock};

/// Acquisition ranks mirroring the declared lock-order table in
/// docs/STATIC_ANALYSIS.md §L6. Keep the two in sync: the lint checks
/// the table lexically, these constants enforce it at runtime.
pub(crate) mod rank {
    /// `Database.shards[i]` — ascending-index within the rank.
    pub const ACCOUNT_SHARD: u16 = 80;
    /// `Database.by_cert`.
    pub const ACCOUNT_INDEX: u16 = 90;
    /// `JournalStore.mem`.
    pub const JOURNAL_MEM: u16 = 110;
    /// `Database.transactions`.
    pub const AUDIT_TRANSACTIONS: u16 = 120;
    /// `Database.transfers`.
    pub const AUDIT_TRANSFERS: u16 = 130;
    /// `Database.idem`.
    pub const IDEM_CACHE: u16 = 140;
    /// `Database.ib_pending`.
    pub const IB_PENDING: u16 = 150;
    /// `DiskLog.shards[i]` — one writer per shard, taken last.
    pub const SEGMENT_WRITER: u16 = 160;
}

/// Debug-only held-lock bookkeeping. Everything in here is behind
/// `debug_assertions`; release builds never touch the thread-local.
#[cfg(debug_assertions)]
mod witness {
    use std::cell::RefCell;

    thread_local! {
        /// Stack of `(rank, index, name)` for locks this thread holds,
        /// in acquisition order.
        static HELD: RefCell<Vec<(u16, u32, &'static str)>> = const { RefCell::new(Vec::new()) };
    }

    /// RAII token: popping happens on drop, so early returns and panics
    /// inside the guard scope unwind the stack correctly.
    pub(super) struct Token {
        rank: u16,
        index: u32,
        name: &'static str,
    }

    /// Records an acquisition, panicking on inversion. Read-side
    /// re-acquisition of the same `(rank, index)` is also rejected:
    /// `parking_lot` locks are not reentrant and an interleaved writer
    /// deadlocks the pair.
    pub(super) fn acquire(rank: u16, index: u32, name: &'static str) -> Token {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(&(top_rank, top_index, top_name)) = held.last() {
                if (rank, index) <= (top_rank, top_index) {
                    // lint:allow(no-panic) the witness exists to panic: a debug-build
                    // tripwire for lock-order bugs, compiled out of release binaries.
                    panic!(
                        "lock-order inversion: acquiring {name} (rank {rank}, index \
                         {index}) while holding {top_name} (rank {top_rank}, index \
                         {top_index}) — see docs/STATIC_ANALYSIS.md §L6"
                    );
                }
            }
            held.push((rank, index, name));
        });
        Token { rank, index, name }
    }

    impl Drop for Token {
        fn drop(&mut self) {
            HELD.with(|held| {
                let mut held = held.borrow_mut();
                // Guards can drop out of acquisition order (drop(a) before
                // drop(b)); remove the matching entry, not blindly the top.
                if let Some(pos) = held
                    .iter()
                    .rposition(|&(r, i, n)| r == self.rank && i == self.index && n == self.name)
                {
                    held.remove(pos);
                }
            });
        }
    }
}

/// A mutex with a declared position in the global lock order.
pub(crate) struct OrderedMutex<T> {
    inner: Mutex<T>,
    #[cfg(debug_assertions)]
    meta: (u16, u32, &'static str),
}

impl<T> OrderedMutex<T> {
    /// Wraps `value` at `(rank, index)` in the declared order. `index`
    /// disambiguates same-rank locks (shard number); pass 0 for
    /// singleton classes.
    pub(crate) fn new(rank: u16, index: u32, name: &'static str, value: T) -> Self {
        #[cfg(not(debug_assertions))]
        let _ = (rank, index, name);
        OrderedMutex {
            inner: Mutex::new(value),
            #[cfg(debug_assertions)]
            meta: (rank, index, name),
        }
    }

    pub(crate) fn lock(&self) -> OrderedMutexGuard<'_, T> {
        #[cfg(debug_assertions)]
        let token = witness::acquire(self.meta.0, self.meta.1, self.meta.2);
        OrderedMutexGuard {
            inner: self.inner.lock(),
            #[cfg(debug_assertions)]
            _token: token,
        }
    }
}

/// Guard for [`OrderedMutex`]; releases the witness entry on drop.
pub(crate) struct OrderedMutexGuard<'a, T> {
    inner: parking_lot::MutexGuard<'a, T>,
    #[cfg(debug_assertions)]
    _token: witness::Token,
}

impl<T> std::ops::Deref for OrderedMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> std::ops::DerefMut for OrderedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// An rwlock with a declared position in the global lock order. Both
/// read and write acquisitions are witnessed: a read-while-held-read of
/// the same lock can still deadlock against a queued writer.
pub(crate) struct OrderedRwLock<T> {
    inner: RwLock<T>,
    #[cfg(debug_assertions)]
    meta: (u16, u32, &'static str),
}

impl<T> OrderedRwLock<T> {
    /// See [`OrderedMutex::new`].
    pub(crate) fn new(rank: u16, index: u32, name: &'static str, value: T) -> Self {
        #[cfg(not(debug_assertions))]
        let _ = (rank, index, name);
        OrderedRwLock {
            inner: RwLock::new(value),
            #[cfg(debug_assertions)]
            meta: (rank, index, name),
        }
    }

    pub(crate) fn read(&self) -> OrderedReadGuard<'_, T> {
        #[cfg(debug_assertions)]
        let token = witness::acquire(self.meta.0, self.meta.1, self.meta.2);
        OrderedReadGuard {
            inner: self.inner.read(),
            #[cfg(debug_assertions)]
            _token: token,
        }
    }

    pub(crate) fn write(&self) -> OrderedWriteGuard<'_, T> {
        #[cfg(debug_assertions)]
        let token = witness::acquire(self.meta.0, self.meta.1, self.meta.2);
        OrderedWriteGuard {
            inner: self.inner.write(),
            #[cfg(debug_assertions)]
            _token: token,
        }
    }
}

/// Shared guard for [`OrderedRwLock`].
pub(crate) struct OrderedReadGuard<'a, T> {
    inner: parking_lot::RwLockReadGuard<'a, T>,
    #[cfg(debug_assertions)]
    _token: witness::Token,
}

impl<T> std::ops::Deref for OrderedReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// Exclusive guard for [`OrderedRwLock`].
pub(crate) struct OrderedWriteGuard<'a, T> {
    inner: parking_lot::RwLockWriteGuard<'a, T>,
    #[cfg(debug_assertions)]
    _token: witness::Token,
}

impl<T> std::ops::Deref for OrderedWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> std::ops::DerefMut for OrderedWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(all(test, debug_assertions, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn ascending_acquisition_passes_and_unwinds() {
        let a = OrderedMutex::new(10, 0, "a", 1u32);
        let b = OrderedMutex::new(20, 0, "b", 2u32);
        {
            let ga = a.lock();
            let gb = b.lock();
            assert_eq!(*ga + *gb, 3);
        }
        // The stack unwound: rank 10 is acquirable again.
        let _ga = a.lock();
    }

    #[test]
    fn out_of_order_drop_keeps_the_stack_consistent() {
        let a = OrderedMutex::new(10, 0, "a", ());
        let b = OrderedMutex::new(20, 0, "b", ());
        let ga = a.lock();
        let gb = b.lock();
        drop(ga); // dropping the *lower* rank first must not corrupt the stack
        drop(gb);
        let _ga = a.lock();
        let _gb = b.lock();
    }

    #[test]
    fn same_rank_ascending_index_passes() {
        let s0 = OrderedRwLock::new(80, 0, "shard", ());
        let s1 = OrderedRwLock::new(80, 1, "shard", ());
        let _g0 = s0.write();
        let _g1 = s1.write();
    }

    #[test]
    #[should_panic(expected = "lock-order inversion")]
    fn seeded_inversion_panics() {
        let shard = OrderedRwLock::new(80, 0, "shard", ());
        let mem = OrderedMutex::new(110, 0, "journal-mem", ());
        let _gm = mem.lock();
        let _gs = shard.write(); // 80 after 110: the classic inversion
    }

    #[test]
    #[should_panic(expected = "lock-order inversion")]
    fn same_rank_descending_index_panics() {
        let s0 = OrderedRwLock::new(80, 0, "shard", ());
        let s1 = OrderedRwLock::new(80, 1, "shard", ());
        let _g1 = s1.write();
        let _g0 = s0.write(); // index 0 after index 1 within a rank
    }
}
