//! Switchable concurrency primitives for the bank's hot paths.
//!
//! `db.rs` (group-commit queue, journal, idempotency table) and
//! `server.rs` (per-key in-flight guard, worker pool) import their
//! locks, condvars, and atomics from here instead of naming
//! `parking_lot`/`std::sync::atomic` directly. A normal build re-exports
//! those unchanged — zero cost. Building with `RUSTFLAGS="--cfg loom"`
//! swaps in the vendored `loom` substitute, whose wrappers inject
//! seeded randomized yields at every acquisition/atomic op so the
//! `loom_model` tests (see `scripts/check.sh` stage `LOOM=1` and
//! docs/STATIC_ANALYSIS.md) can shake out interleaving bugs.

#[cfg(not(loom))]
pub(crate) use parking_lot::{Condvar, Mutex, RwLock};
#[cfg(not(loom))]
pub(crate) use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};

#[cfg(loom)]
pub(crate) use loom::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
#[cfg(loom)]
pub(crate) use loom::sync::{Condvar, Mutex, RwLock};
