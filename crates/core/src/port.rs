//! The bank port: one interface, two transports.
//!
//! The GridBank Payment Module (broker side) and GridBank Charging Module
//! (provider side) invoke bank operations either **in-process** (the
//! simulation/bench fast path — no handshake, but identical authorization
//! checks) or **remotely** over the authenticated channel. [`BankPort`]
//! abstracts the two so GBPM/GBCM code is transport-agnostic, mirroring
//! the paper's "GridBank API provides an interface to the Protocol layer"
//! (§3.3).

use gridbank_crypto::cert::SubjectName;
use gridbank_crypto::merkle::MerkleSignature;
use gridbank_rur::record::ResourceUsageRecord;
use gridbank_rur::Credits;

use std::sync::Arc;

use crate::api::{BankRequest, BankResponse};
use crate::cheque::GridCheque;
use crate::client::{ClientHashChain, GridBankClient};
use crate::db::{AccountId, AccountRecord};
use crate::direct::TransferConfirmation;
use crate::error::BankError;
use crate::payword::{ChainCommitment, PayWord};
use crate::pricing::ResourceDescription;
use crate::server::GridBank;

/// The §5.2 operations GBPM/GBCM need, transport-agnostic.
pub trait BankPort {
    /// Create New Account for the port's identity.
    fn create_account(&mut self, organization: Option<String>) -> Result<AccountId, BankError>;
    /// The port identity's own account.
    fn my_account(&mut self) -> Result<AccountRecord, BankError>;
    /// Lock funds (Perform Funds Availability Check).
    fn check_funds(&mut self, account: AccountId, amount: Credits) -> Result<(), BankError>;
    /// Pay-before-use direct transfer.
    fn direct_transfer(
        &mut self,
        to: AccountId,
        amount: Credits,
        recipient_address: &str,
    ) -> Result<TransferConfirmation, BankError>;
    /// Obtain a GridCheque.
    fn request_cheque(
        &mut self,
        payee_cert: &str,
        amount: Credits,
        validity_ms: u64,
    ) -> Result<GridCheque, BankError>;
    /// Redeem a GridCheque; returns (paid, released).
    fn redeem_cheque(
        &mut self,
        cheque: GridCheque,
        rur: ResourceUsageRecord,
    ) -> Result<(Credits, Credits), BankError>;
    /// Obtain a GridHash chain.
    fn request_hash_chain(
        &mut self,
        payee_cert: &str,
        length: u32,
        value_per_word: Credits,
        validity_ms: u64,
    ) -> Result<ClientHashChain, BankError>;
    /// Redeem paywords up to an index; returns the newly paid amount.
    fn redeem_payword(
        &mut self,
        commitment: ChainCommitment,
        signature: MerkleSignature,
        payword: PayWord,
        rur_blob: Vec<u8>,
    ) -> Result<Credits, BankError>;
    /// Register a resource description for §4.2 pricing.
    fn register_resource_description(&mut self, desc: ResourceDescription)
        -> Result<(), BankError>;
}

/// In-process port: calls the dispatcher directly under a fixed identity.
pub struct InProcessBank {
    /// The bank.
    pub bank: Arc<GridBank>,
    /// The identity requests run under.
    pub caller: SubjectName,
}

impl InProcessBank {
    /// Binds an identity to a bank.
    pub fn new(bank: Arc<GridBank>, caller: SubjectName) -> Self {
        InProcessBank { bank, caller }
    }

    fn call(&self, request: BankRequest) -> Result<BankResponse, BankError> {
        match self.bank.handle(&self.caller, request) {
            BankResponse::Error { kind, message, detail } => {
                Err(crate::api::error_from_wire(kind, message, detail))
            }
            resp => Ok(resp),
        }
    }
}

fn unexpected(resp: BankResponse) -> BankError {
    BankError::Protocol(format!("unexpected response {resp:?}"))
}

impl BankPort for InProcessBank {
    fn create_account(&mut self, organization: Option<String>) -> Result<AccountId, BankError> {
        match self.call(BankRequest::CreateAccount { organization })? {
            BankResponse::AccountCreated { account } => Ok(account),
            other => Err(unexpected(other)),
        }
    }

    fn my_account(&mut self) -> Result<AccountRecord, BankError> {
        match self.call(BankRequest::MyAccount)? {
            BankResponse::Account(r) => Ok(r),
            other => Err(unexpected(other)),
        }
    }

    fn check_funds(&mut self, account: AccountId, amount: Credits) -> Result<(), BankError> {
        match self.call(BankRequest::CheckFunds { account, amount })? {
            BankResponse::Confirmation { .. } => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    fn direct_transfer(
        &mut self,
        to: AccountId,
        amount: Credits,
        recipient_address: &str,
    ) -> Result<TransferConfirmation, BankError> {
        match self.call(BankRequest::DirectTransfer {
            to,
            amount,
            recipient_address: recipient_address.to_string(),
        })? {
            BankResponse::Confirmed(c) => Ok(c),
            other => Err(unexpected(other)),
        }
    }

    fn request_cheque(
        &mut self,
        payee_cert: &str,
        amount: Credits,
        validity_ms: u64,
    ) -> Result<GridCheque, BankError> {
        match self.call(BankRequest::RequestCheque {
            payee_cert: payee_cert.to_string(),
            amount,
            validity_ms,
        })? {
            BankResponse::Cheque(c) => Ok(c),
            other => Err(unexpected(other)),
        }
    }

    fn redeem_cheque(
        &mut self,
        cheque: GridCheque,
        rur: ResourceUsageRecord,
    ) -> Result<(Credits, Credits), BankError> {
        match self.call(BankRequest::RedeemCheque { cheque, rur })? {
            BankResponse::Redeemed { paid, released } => Ok((paid, released)),
            other => Err(unexpected(other)),
        }
    }

    fn request_hash_chain(
        &mut self,
        payee_cert: &str,
        length: u32,
        value_per_word: Credits,
        validity_ms: u64,
    ) -> Result<ClientHashChain, BankError> {
        match self.call(BankRequest::RequestHashChain {
            payee_cert: payee_cert.to_string(),
            length,
            value_per_word,
            validity_ms,
        })? {
            BankResponse::HashChain { commitment, signature, chain } => {
                Ok(ClientHashChain { commitment, signature, chain })
            }
            other => Err(unexpected(other)),
        }
    }

    fn redeem_payword(
        &mut self,
        commitment: ChainCommitment,
        signature: MerkleSignature,
        payword: PayWord,
        rur_blob: Vec<u8>,
    ) -> Result<Credits, BankError> {
        match self.call(BankRequest::RedeemPayWord { commitment, signature, payword, rur_blob })? {
            BankResponse::Redeemed { paid, .. } => Ok(paid),
            other => Err(unexpected(other)),
        }
    }

    fn register_resource_description(
        &mut self,
        desc: ResourceDescription,
    ) -> Result<(), BankError> {
        match self.call(BankRequest::RegisterResourceDescription { desc })? {
            BankResponse::Confirmation { .. } => Ok(()),
            other => Err(unexpected(other)),
        }
    }
}

impl BankPort for GridBankClient {
    fn create_account(&mut self, organization: Option<String>) -> Result<AccountId, BankError> {
        GridBankClient::create_account(self, organization)
    }

    fn my_account(&mut self) -> Result<AccountRecord, BankError> {
        GridBankClient::my_account(self)
    }

    fn check_funds(&mut self, account: AccountId, amount: Credits) -> Result<(), BankError> {
        GridBankClient::check_funds(self, account, amount)
    }

    fn direct_transfer(
        &mut self,
        to: AccountId,
        amount: Credits,
        recipient_address: &str,
    ) -> Result<TransferConfirmation, BankError> {
        GridBankClient::direct_transfer(self, to, amount, recipient_address)
    }

    fn request_cheque(
        &mut self,
        payee_cert: &str,
        amount: Credits,
        validity_ms: u64,
    ) -> Result<GridCheque, BankError> {
        GridBankClient::request_cheque(self, payee_cert, amount, validity_ms)
    }

    fn redeem_cheque(
        &mut self,
        cheque: GridCheque,
        rur: ResourceUsageRecord,
    ) -> Result<(Credits, Credits), BankError> {
        GridBankClient::redeem_cheque(self, cheque, rur)
    }

    fn request_hash_chain(
        &mut self,
        payee_cert: &str,
        length: u32,
        value_per_word: Credits,
        validity_ms: u64,
    ) -> Result<ClientHashChain, BankError> {
        GridBankClient::request_hash_chain(self, payee_cert, length, value_per_word, validity_ms)
    }

    fn redeem_payword(
        &mut self,
        commitment: ChainCommitment,
        signature: MerkleSignature,
        payword: PayWord,
        rur_blob: Vec<u8>,
    ) -> Result<Credits, BankError> {
        GridBankClient::redeem_payword(self, commitment, signature, payword, rur_blob)
    }

    fn register_resource_description(
        &mut self,
        desc: ResourceDescription,
    ) -> Result<(), BankError> {
        GridBankClient::register_resource_description(self, desc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::Clock;
    use crate::server::{GridBank, GridBankConfig};

    #[test]
    fn in_process_port_round_trip() {
        let bank = Arc::new(GridBank::new(
            GridBankConfig { signer_height: 5, ..GridBankConfig::default() },
            Clock::new(),
        ));
        let alice = SubjectName::new("UWA", "CSSE", "alice");
        let mut port = InProcessBank::new(bank.clone(), alice);
        let account = port.create_account(Some("UWA".into())).unwrap();
        assert_eq!(port.my_account().unwrap().id, account);
        // Funding via admin then a cheque round-trip through the port.
        let admin = SubjectName("/O=GridBank/OU=Admin/CN=operator".into());
        bank.handle(&admin, BankRequest::AdminDeposit { account, amount: Credits::from_gd(10) });
        let gsp = SubjectName::new("O", "U", "gsp");
        let mut gsp_port = InProcessBank::new(bank.clone(), gsp);
        gsp_port.create_account(None).unwrap();
        let cheque = port.request_cheque("/O=O/OU=U/CN=gsp", Credits::from_gd(5), 1_000).unwrap();
        assert_eq!(cheque.body.reserved, Credits::from_gd(5));
        // Errors map back to typed BankError.
        let err = port.request_cheque("/CN=gsp2", Credits::from_gd(50), 1_000);
        assert!(matches!(err, Err(BankError::InsufficientFunds { .. })));
    }
}
