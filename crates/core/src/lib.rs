//! # gridbank-core
//!
//! **GridBank** — the Grid Accounting Services Architecture (GASA) server
//! and client, the primary contribution of the paper. A secure Grid-wide
//! accounting and (micro)payment system: it maintains consumer and
//! provider accounts and resource-usage records, and speaks the three
//! payment protocols of §3.1 behind the layered architecture of Figure 3.
//!
//! ## Layer map (Figure 3 → modules)
//!
//! | Paper layer | Modules |
//! |---|---|
//! | GB database | [`db`] (tables, indexes, journal), [`store`] (on-disk segments + snapshots) |
//! | GB Accounts | [`accounts`] (create/get/update, transfer, lock funds, transfer-from-locked) |
//! | GB Admin | [`admin`] (deposit, withdraw, credit limit, cancel, close) |
//! | Payment Protocol Layer | [`cheque`] (GridCheque, pay-after-use), [`payword`] (GridHash chains, pay-as-you-go), [`direct`] (funds transfer, pay-before-use) |
//! | GB Security | [`server`] (GSS handshake + account-table connection gate), signing via `gridbank-crypto` |
//! | GridBank API | [`api`] (wire protocol for §5.2/§5.2.1), [`client`] (typed client) |
//!
//! Beyond the server core:
//!
//! * [`guarantee`] — §3.4 payment guarantee: funds locked against issued
//!   cheques/chains so clients can never overspend.
//! * [`pricing`] — §4.2 competitive model: price estimation from the
//!   (confidential) transaction history.
//! * [`coop`] — §4.1 co-operative model: initial credit allocation by
//!   resource value and barter-balance statistics.
//! * [`branch`] — §6 future work, implemented: one GridBank branch per
//!   Virtual Organization with netted inter-branch settlement.
//! * [`federation`] — the §6 protocol on the wire: branch-aware request
//!   routing, exactly-once `IbCredit` delivery, and a settlement daemon
//!   netting clearing accounts over RPC.
//! * [`clock`] — the virtual clock every time-dependent component reads.
//!
//! Money is exact fixed-point ([`gridbank_rur::Credits`]); every transfer
//! preserves Σ(available+locked) — property-tested in `accounts`.

// The workspace `clippy::arithmetic_side_effects` wall guards
// production money paths; test fixtures may build inputs with plain
// arithmetic (see docs/STATIC_ANALYSIS.md §lint wall).
#![cfg_attr(test, allow(clippy::arithmetic_side_effects))]

pub mod accounts;
pub mod admin;
pub mod api;
pub mod branch;
pub mod cheque;
pub mod client;
pub mod clock;
pub mod coop;
pub mod db;
pub mod direct;
pub mod error;
pub mod federation;
pub mod guarantee;
pub mod payword;
pub mod port;
pub mod pricing;
pub mod resilient;
pub mod server;
pub mod store;
pub(crate) mod sync;

pub use accounts::GbAccounts;
pub use admin::GbAdmin;
pub use api::{BankRequest, BankResponse};
pub use cheque::GridCheque;
pub use client::GridBankClient;
pub use clock::Clock;
pub use db::{
    AccountId, AccountRecord, CheckpointStats, Database, GroupCommitConfig, TransactionRecord,
    TransactionType, TransferRecord,
};
pub use error::BankError;
pub use federation::{
    settlement_identity, FederationRouter, LocalPeer, PeerTransport, RemotePeer, SettlementDaemon,
};
pub use payword::{GridHashChain, PayWord};
pub use resilient::{BackoffSleep, ResilientBankClient};
pub use server::{GridBank, GridBankConfig, GridBankServer, ServerTuning};
pub use store::{RecoveryReport, StoreConfig, StoreInspection};
