//! The GridBank server: the assembled bank plus its network front-end.
//!
//! [`GridBank`] wires the layers of Figure 3 together — database, GB
//! Accounts, GB Admin, the three payment protocol modules, the §4 model
//! helpers — behind a single [`GridBank::handle`] dispatcher whose caller
//! identity always comes from the authenticated channel.
//!
//! [`GridBankServer`] is the GB Security Protocol module in action: it
//! accepts connections, runs the GSS-style mutual handshake, applies the
//! §3.2 connection gate ("If the subject name appears either in the
//! accounts or in administrator tables, then the client is authorized to
//! establish a connection. Otherwise connection is refused"), and serves
//! the RPC loop per connection.
//!
//! Request execution is **pipelined**: each connection keeps a cheap
//! reader thread that decodes frames and submits them to a shared,
//! bounded worker pool ([`ServerTuning`]); workers run the bank dispatch
//! and hand results to the connection's `ResponseWriter`, which
//! re-sequences them into arrival order. A full job queue blocks the
//! readers — backpressure instead of unbounded thread growth.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use crate::sync::{AtomicBool, AtomicU64, Condvar, Mutex, Ordering, RwLock};

use gridbank_crypto::cert::{Certificate, SubjectName};
use gridbank_crypto::keys::{KeyMaterial, SigningIdentity, VerifyingKey};
use gridbank_crypto::rng::DeterministicStream;
use gridbank_net::gate::{AdmissionDecision, ConnectionGate};
use gridbank_net::rpc::RpcServer;
use gridbank_net::transport::{Address, Network};
use gridbank_net::{server_handshake, HandshakeConfig, NetError};
use gridbank_rur::codec::{Decode, Encode};
use gridbank_rur::record::ChargeableItem;
use gridbank_rur::record::UsageAmount;
use gridbank_rur::Credits;

use crate::accounts::GbAccounts;
use crate::admin::GbAdmin;
use crate::api::{error_kind, BankRequest, BankResponse};
use crate::cheque::ChequeOffice;
use crate::clock::Clock;
use crate::db::{AccountId, Database};
use crate::error::BankError;
use crate::guarantee::FundsGuarantee;
use crate::payword::PayWordOffice;
use crate::pricing::{PriceEstimator, ResourceDescription};

/// How the connection gate treats subjects without accounts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GateMode {
    /// Exactly the paper's §3.2 rule: unknown subjects are refused at the
    /// handshake; accounts must be opened by an administrator.
    Strict,
    /// Unknown subjects may connect but can only call `CreateAccount`
    /// (self-enrollment); everything else answers NotAuthorized.
    AllowEnrollment,
}

/// GridBank construction parameters.
#[derive(Clone, Debug)]
pub struct GridBankConfig {
    /// Bank number for issued account ids.
    pub bank: u16,
    /// Branch number (one per VO, §6).
    pub branch: u16,
    /// Administrator certificate names.
    pub admins: Vec<String>,
    /// Operations-plane administrator certificate names: trusted to read
    /// telemetry, health, and traces via [`BankRequest::OpsQuery`], and
    /// nothing more (deliberately *not* account administrators).
    pub ops_admins: Vec<String>,
    /// Seed for the bank's signing identity and chain secrets.
    pub key_material: KeyMaterial,
    /// MSS tree height: the bank can sign `2^height` instruments/
    /// handshakes before re-keying.
    pub signer_height: usize,
    /// Gate behaviour for unknown subjects.
    pub gate_mode: GateMode,
    /// Bound on the idempotency dedup cache (exactly-once retries).
    /// 0 disables deduplication — chaos tests use that to prove their
    /// double-charge assertions have teeth.
    pub idem_capacity: usize,
    /// Group-commit tuning for the write-ahead journal (`max_batch <= 1`
    /// turns grouping off).
    pub group_commit: crate::db::GroupCommitConfig,
}

impl Default for GridBankConfig {
    fn default() -> Self {
        GridBankConfig {
            bank: 1,
            branch: 1,
            admins: vec!["/O=GridBank/OU=Admin/CN=operator".into()],
            ops_admins: Vec::new(),
            key_material: KeyMaterial { seed: 0xB4A2 },
            signer_height: 12,
            gate_mode: GateMode::AllowEnrollment,
            idem_capacity: crate::db::DEFAULT_IDEM_CAPACITY,
            group_commit: crate::db::GroupCommitConfig::default(),
        }
    }
}

/// The assembled bank.
pub struct GridBank {
    /// Accounts layer.
    pub accounts: GbAccounts,
    /// Admin layer.
    pub admin: GbAdmin,
    /// Guarantee registry (§3.4).
    pub guarantee: FundsGuarantee,
    /// The bank's signing identity (cheques, chains, confirmations,
    /// handshakes).
    pub signer: Arc<SigningIdentity>,
    /// §4.2 price estimator.
    pub estimator: PriceEstimator,
    clock: Clock,
    config: GridBankConfig,
    payword_redeemed: Mutex<HashMap<u64, u32>>,
    chain_secrets: Mutex<DeterministicStream>,
    descriptions: RwLock<HashMap<String, ResourceDescription>>,
    /// Idempotency keys currently being applied. With pipelining, two
    /// requests carrying the same key can reach workers concurrently;
    /// the duplicate waits here until the original finishes, then hits
    /// the dedup cache instead of re-applying.
    in_flight_keys: Mutex<HashSet<(String, u64)>>,
    key_released: Condvar,
    /// Branch-aware routing (§6 federation). `None` means standalone:
    /// foreign-branch requests answer `NotHomeBranch` redirects.
    federation: RwLock<Option<Arc<crate::federation::FederationRouter>>>,
    /// Certificates trusted for the ops plane (`OpsQuery`).
    ops_admins: RwLock<HashSet<String>>,
    /// Live front-end statistics feeding health reports; installed by
    /// [`GridBankServer::start_tuned`], absent for in-process banks.
    ops_source: RwLock<Option<Arc<dyn OpsSource>>>,
}

/// The canonical certificate name for an ops-plane administrator, the
/// federation's `OU=Ops` naming convention (mirrors the settlement
/// identities of `crate::federation`).
pub fn ops_identity(name: &str) -> String {
    format!("/O=GridBank/OU=Ops/CN={name}")
}

/// Live statistics the network front-end exposes to the ops plane.
///
/// [`GridBank`] itself can report journal and federation health, but
/// worker-pool saturation and connection counts live in the server; the
/// server installs an implementation via
/// [`GridBank::install_ops_source`].
pub trait OpsSource: Send + Sync {
    /// Worker threads currently executing a request.
    fn workers_busy(&self) -> u32;
    /// Worker threads in the pool.
    fn workers_total(&self) -> u32;
    /// Connections currently live.
    fn connections(&self) -> u32;
}

impl GridBank {
    /// Builds a bank from configuration and a shared clock.
    pub fn new(config: GridBankConfig, clock: Clock) -> Self {
        let db = Arc::new(Database::new(config.bank, config.branch));
        Self::with_database(config, clock, db)
    }

    /// Rebuilds a bank by replaying a journal — crash recovery. Account
    /// state, audit rows, *and consumed idempotency keys* are restored,
    /// so a client retrying a request the pre-crash bank already applied
    /// still gets the original (deduplicated) outcome.
    pub fn from_journal(
        config: GridBankConfig,
        clock: Clock,
        journal: &[crate::db::JournalEntry],
    ) -> Self {
        let db = Arc::new(Database::replay(config.bank, config.branch, journal));
        Self::with_database(config, clock, db)
    }

    /// Opens (or creates) a bank backed by the on-disk store at
    /// `store.dir` — durable mode. Recovery loads the newest valid
    /// snapshot per shard and replays only the journal tail past it
    /// (docs/STORAGE.md §5); the returned report says how much. All
    /// subsequent commits write through to disk via the group-commit
    /// queue, and the server checkpoints shards incrementally as their
    /// tails reach `store.snapshot_every`.
    pub fn open_durable(
        config: GridBankConfig,
        clock: Clock,
        store: crate::store::StoreConfig,
    ) -> Result<(Self, crate::store::RecoveryReport), BankError> {
        let (db, report) = Database::open(config.bank, config.branch, store)?;
        Ok((Self::with_database(config, clock, Arc::new(db)), report))
    }

    fn with_database(config: GridBankConfig, clock: Clock, db: Arc<Database>) -> Self {
        db.set_idem_capacity(config.idem_capacity);
        db.set_group_commit(config.group_commit);
        let accounts = GbAccounts::new(db, clock.clone());
        let admin = GbAdmin::new(accounts.clone(), config.admins.iter().cloned());
        let guarantee = FundsGuarantee::new(accounts.clone());
        let signer = Arc::new(SigningIdentity::generate_with_height(
            config.key_material,
            &format!("gridbank-{}-{}", config.bank, config.branch),
            config.signer_height,
        ));
        let chain_secrets = Mutex::new(DeterministicStream::from_u64(
            config.key_material.seed ^ 0x5EC2E75,
            b"gridbank-chain-secrets",
        ));
        let ops_admins = RwLock::new(config.ops_admins.iter().cloned().collect());
        GridBank {
            accounts,
            admin,
            guarantee,
            signer,
            estimator: PriceEstimator::new(),
            clock,
            config,
            payword_redeemed: Mutex::new(HashMap::new()),
            chain_secrets,
            descriptions: RwLock::new(HashMap::new()),
            in_flight_keys: Mutex::new(HashSet::new()),
            key_released: Condvar::new(),
            federation: RwLock::new(None),
            ops_admins,
            ops_source: RwLock::new(None),
        }
    }

    /// Installs the federation router; usually via
    /// [`crate::federation::FederationRouter::install`].
    pub fn install_federation(&self, router: Arc<crate::federation::FederationRouter>) {
        *self.federation.write() = Some(router);
    }

    /// The installed federation router, if any.
    pub fn federation(&self) -> Option<Arc<crate::federation::FederationRouter>> {
        self.federation.read().clone()
    }

    /// Whether `cert` is the settlement identity of a federated peer
    /// branch — trusted to deliver `IbCredit`s and propose settlements,
    /// and nothing more (deliberately *not* an administrator).
    pub fn is_federation_peer(&self, cert: &str) -> bool {
        self.federation.read().as_ref().is_some_and(|r| r.is_peer(cert))
    }

    /// Whether `cert` may read the ops plane ([`BankRequest::OpsQuery`]).
    pub fn is_ops_admin(&self, cert: &str) -> bool {
        self.ops_admins.read().contains(cert)
    }

    /// Grants `cert` ops-plane access. Ops administrators can read
    /// telemetry, health, and traces; they hold no account privileges.
    pub fn add_ops_admin(&self, cert: impl Into<String>) {
        self.ops_admins.write().insert(cert.into());
    }

    /// Installs the front-end statistics feed for health reports;
    /// called by [`GridBankServer::start_tuned`].
    pub fn install_ops_source(&self, source: Arc<dyn OpsSource>) {
        *self.ops_source.write() = Some(source);
    }

    /// Assembles the structured health report the ops plane serves:
    /// journal lag, group-commit backlog, worker saturation, and per-peer
    /// clearing balances with circuit-breaker reachability, classified
    /// into an overall [`crate::api::HealthState`].
    pub fn health_report(&self) -> crate::api::HealthReport {
        use crate::api::HealthState;
        let db = self.accounts.db();
        let journal_flush_lag = db.journal_flush_lag();
        let group_commit_queue = db.commit_queue_depth() as u64;
        let (workers_busy, workers_total, connections) = match self.ops_source.read().as_ref() {
            Some(src) => (src.workers_busy(), src.workers_total(), src.connections()),
            None => (0, 0, 0),
        };
        let peers = self.federation().map(|router| router.peer_health()).unwrap_or_default();
        // Classification: an Open breaker means a peer branch is
        // unreachable — cross-branch payments are failing now, so the
        // branch is Unhealthy. Recovering breakers (HalfOpen), a
        // saturated worker pool, or a journal trailing by more than one
        // full commit group mean degraded service but nothing lost.
        let unreachable = peers.iter().any(|p| p.breaker.as_deref() == Some("Open"));
        let recovering = peers.iter().any(|p| p.breaker.as_deref() == Some("HalfOpen"));
        let saturated = workers_total > 0 && workers_busy >= workers_total;
        let lagging = journal_flush_lag > db.group_commit().max_batch as u64;
        // A failed disk append means acknowledgements are no longer
        // crash-durable (docs/STORAGE.md §3.4) — Unhealthy, like an
        // unreachable peer: operators must act now.
        let disk_failed = !db.disk_healthy();
        let state = if unreachable || disk_failed {
            HealthState::Unhealthy
        } else if recovering || saturated || lagging {
            HealthState::Degraded
        } else {
            HealthState::Healthy
        };
        crate::api::HealthReport {
            branch: self.config.branch,
            state,
            journal_flush_lag,
            group_commit_queue,
            workers_busy,
            workers_total,
            connections,
            peers,
        }
    }

    /// Routes a request targeting an account homed on `home`: forwarded
    /// over the federation when a router is installed, otherwise
    /// answered with a typed redirect the client can follow itself.
    fn forward_or_redirect(
        &self,
        home: u16,
        request: BankRequest,
    ) -> Result<BankResponse, BankError> {
        match self.federation() {
            Some(router) => router.forward(home, &request),
            None => Err(BankError::NotHomeBranch { home }),
        }
    }

    /// The bank's verifying key, which GSPs pin to validate instruments.
    pub fn verifying_key(&self) -> VerifyingKey {
        self.signer.verifying_key()
    }

    /// The shared clock.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// The branch number.
    pub fn branch(&self) -> u16 {
        self.config.branch
    }

    /// Σ(available+locked) across every account — the conservation
    /// quantity chaos and property tests track.
    pub fn total_funds(&self) -> gridbank_rur::Credits {
        self.accounts.db().total_funds()
    }

    /// Snapshot of every account (chaos assertions, diagnostics).
    pub fn all_accounts(&self) -> Vec<crate::db::AccountRecord> {
        self.accounts.db().all_accounts()
    }

    /// Snapshot of every transfer row (double-apply detection).
    pub fn all_transfers(&self) -> Vec<crate::db::TransferRecord> {
        self.accounts.db().all_transfers()
    }

    /// Snapshot of the write-ahead journal (crash-replay tests).
    pub fn journal_snapshot(&self) -> Vec<crate::db::JournalEntry> {
        self.accounts.db().journal_snapshot()
    }

    fn cheque_office(&self) -> ChequeOffice<'_> {
        ChequeOffice {
            guarantee: &self.guarantee,
            signer: &self.signer,
            branch: self.config.branch,
        }
    }

    fn payword_office(&self) -> PayWordOffice<'_> {
        PayWordOffice {
            guarantee: &self.guarantee,
            signer: &self.signer,
            redeemed: &self.payword_redeemed,
            secrets: &self.chain_secrets,
        }
    }

    /// The §3.2 admission rule as a [`ConnectionGate`].
    pub fn gate(self: &Arc<Self>) -> BankGate {
        BankGate { bank: Arc::clone(self) }
    }

    /// Housekeeping pass: releases the locked funds behind every expired,
    /// unredeemed cheque or hash chain back to its drawer. Deployments
    /// run this periodically; simulations call it when the clock jumps.
    /// Returns the number of reservations released and the total value.
    pub fn sweep_expired_instruments(&self) -> (usize, Credits) {
        let mut span = gridbank_obs::span("server.payment", "sweep_expired");
        let released = self.guarantee.sweep_expired(self.clock.now_ms());
        let total = released.iter().fold(Credits::ZERO, |acc, (_, c)| acc.saturating_add(*c));
        span.attr("released", released.len().to_string());
        gridbank_obs::count("core.sweep.released_count", released.len() as u64);
        gridbank_obs::count("core.sweep.released_micro", total.metric_micro());
        (released.len(), total)
    }

    fn require_owner_or_admin(
        &self,
        caller_cert: &str,
        account: &AccountId,
    ) -> Result<(), BankError> {
        let record = self.accounts.account_details(account)?;
        if record.certificate_name == caller_cert || self.admin.is_admin(caller_cert) {
            Ok(())
        } else {
            Err(BankError::NotAuthorized(format!("`{caller_cert}` does not own account {account}")))
        }
    }

    /// Dispatches one request on behalf of an authenticated caller.
    pub fn handle(&self, caller: &SubjectName, request: BankRequest) -> BankResponse {
        self.handle_keyed(caller, None, request)
    }

    /// [`GridBank::handle`] with the request's idempotency key (if the
    /// wire frame carried one). A mutating request whose key was already
    /// consumed returns the remembered original response instead of
    /// re-applying — the exactly-once contract retried clients rely on.
    /// Keys never dedup reads, and error responses are never remembered
    /// (a failed attempt may legitimately succeed on retry).
    pub fn handle_keyed(
        &self,
        caller: &SubjectName,
        idem_key: Option<u64>,
        request: BankRequest,
    ) -> BankResponse {
        // Security layer: the caller's wire identity is resolved here, so
        // this span covers identity mapping plus everything dispatched.
        let variant = request.variant_name();
        let mut span = gridbank_obs::span("server.security", "handle");
        span.attr("request", variant.to_string());
        let timer = gridbank_obs::Stopwatch::start();
        gridbank_obs::count("rpc.server.requests", 1);
        let caller_cert = caller.base_identity().0;
        let keyed = idem_key.filter(|_| request.is_mutating());
        // Serialize same-key arrivals before the cache lookup: with
        // pipelined connections a duplicate can land on another worker
        // while the original is mid-apply, and must wait for its stamp.
        // The lock stage covers this serialization point for every
        // request — near-zero for unkeyed reads, visible when duplicate
        // keys contend.
        let lock_timer = gridbank_obs::Stopwatch::start();
        let _key_guard = keyed.map(|key| {
            let entry = (caller_cert.clone(), key);
            let mut in_flight = self.in_flight_keys.lock();
            while !in_flight.insert(entry.clone()) {
                gridbank_obs::count("core.idem.in_flight_wait", 1);
                self.key_released.wait(&mut in_flight);
            }
            KeyGuard { bank: self, entry }
        });
        lock_timer.record_named("server.stage.lock_ns");
        if let Some(key) = keyed {
            if let Some(bytes) = self.accounts.db().idem_lookup(&caller_cert, key) {
                if let Ok(resp) = BankResponse::from_bytes(&bytes) {
                    gridbank_obs::count("core.idem.hit", 1);
                    span.attr("idem", "hit");
                    timer.record_named_label("rpc.server.latency_ns", variant);
                    return resp;
                }
            }
            gridbank_obs::count("core.idem.miss", 1);
        }
        // DirectTransfer commits its dedup stamp atomically inside the
        // transfer batch; every other mutating variant is stamped here
        // after it succeeds.
        let stamped_inline = matches!(request, BankRequest::DirectTransfer { .. });
        let resp = match self.dispatch(&caller_cert, keyed, request) {
            Ok(resp) => {
                if let Some(key) = keyed {
                    if stamped_inline {
                        // Upgrade the journaled placeholder to the fully
                        // signed response (cache-only; no second journal
                        // entry for the same key).
                        self.accounts.db().idem_upgrade(&caller_cert, key, resp.to_bytes());
                    } else {
                        self.accounts.db().idem_record(&caller_cert, key, resp.to_bytes());
                    }
                }
                resp
            }
            Err(e) => {
                gridbank_obs::count("rpc.server.errors", 1);
                span.attr("error", e.to_string());
                BankResponse::Error {
                    kind: error_kind(&e),
                    message: e.to_string(),
                    detail: crate::api::error_detail(&e),
                }
            }
        };
        // Incremental checkpointing rides the request path (no dedicated
        // thread): after dispatch, with no database locks held, snapshot
        // any shard whose journal tail reached the configured threshold.
        // Concurrent workers skip instead of queueing; a no-op in
        // non-durable mode.
        if let Err(e) = self.accounts.db().maybe_checkpoint() {
            gridbank_obs::count("db.snapshot.errors", 1);
            eprintln!("gridbank: incremental checkpoint failed: {e}");
        }
        timer.record_named_label("rpc.server.latency_ns", variant);
        resp
    }

    fn release_key(&self, entry: &(String, u64)) {
        self.in_flight_keys.lock().remove(entry);
        self.key_released.notify_all();
    }

    fn dispatch(
        &self,
        caller_cert: &str,
        idem_key: Option<u64>,
        request: BankRequest,
    ) -> Result<BankResponse, BankError> {
        // Enrollment-mode restriction: unknown subjects may only enroll.
        let known = self.accounts.db().subject_known(caller_cert)
            || self.admin.is_admin(caller_cert)
            || self.is_federation_peer(caller_cert)
            || self.is_ops_admin(caller_cert);
        if !known && !matches!(request, BankRequest::CreateAccount { .. }) {
            return Err(BankError::NotAuthorized(format!("`{caller_cert}` has no account")));
        }
        let now = self.clock.now_ms();
        // The serving layer's span: named after the §3.2 module
        // (accounts / payment / pricing) that owns the variant.
        let mut layer_span = gridbank_obs::span(request.layer(), request.variant_name());
        layer_span.attr("caller", caller_cert.to_string());
        match request {
            BankRequest::CreateAccount { organization } => {
                let account = self.accounts.create_account(caller_cert, organization)?;
                Ok(BankResponse::AccountCreated { account })
            }
            BankRequest::MyAccount => {
                Ok(BankResponse::Account(self.accounts.account_by_cert(caller_cert)?))
            }
            BankRequest::AccountDetails { account } => {
                if account.branch != self.config.branch {
                    return self.forward_or_redirect(
                        account.branch,
                        BankRequest::AccountDetails { account },
                    );
                }
                self.require_owner_or_admin(caller_cert, &account)?;
                Ok(BankResponse::Account(self.accounts.account_details(&account)?))
            }
            BankRequest::UpdateAccount { account, certificate_name, organization } => {
                self.require_owner_or_admin(caller_cert, &account)?;
                let mut record = self.accounts.account_details(&account)?;
                record.certificate_name = certificate_name;
                record.organization = organization;
                self.accounts.update_details(&record)?;
                Ok(BankResponse::Confirmation { transaction_id: 0 })
            }
            BankRequest::Statement { account, start_ms, end_ms } => {
                if account.branch != self.config.branch {
                    return self.forward_or_redirect(
                        account.branch,
                        BankRequest::Statement { account, start_ms, end_ms },
                    );
                }
                self.require_owner_or_admin(caller_cert, &account)?;
                let st = self.accounts.statement(&account, start_ms, end_ms)?;
                Ok(BankResponse::Statement {
                    account: st.account,
                    transactions: st.transactions,
                    transfers: st.transfers,
                })
            }
            BankRequest::CheckFunds { account, amount } => {
                self.require_owner_or_admin(caller_cert, &account)?;
                self.accounts.lock_funds(&account, amount)?;
                Ok(BankResponse::Confirmation { transaction_id: 0 })
            }
            BankRequest::DirectTransfer { to, amount, recipient_address } => {
                let from = self.accounts.account_by_cert(caller_cert)?.id;
                // The journaled stamp remembers a plain confirmation of
                // the committed txid; handle_keyed upgrades the cached
                // copy to the signed response after signing.
                let idem = idem_key.map(|key| crate::accounts::IdemKey {
                    cert: caller_cert.to_string(),
                    key,
                    response_of: |txid| {
                        BankResponse::Confirmation { transaction_id: txid }.to_bytes()
                    },
                });
                if to.branch != self.config.branch {
                    // Foreign payee: debit into clearing and ship the
                    // credit to the home branch (or redirect when this
                    // bank is not federated).
                    let Some(router) = self.federation() else {
                        return Err(BankError::NotHomeBranch { home: to.branch });
                    };
                    let transaction_id =
                        router.cross_branch_transfer(&from, &to, amount, Vec::new(), idem)?;
                    let body = crate::direct::ConfirmationBody {
                        transaction_id,
                        drawer: from,
                        recipient: to,
                        amount,
                        date_ms: now,
                        recipient_address,
                    };
                    let signature = self.signer.sign(&body.to_bytes())?;
                    return Ok(BankResponse::Confirmed(crate::direct::TransferConfirmation {
                        body,
                        signature,
                    }));
                }
                let conf = crate::direct::direct_transfer_keyed(
                    &self.accounts,
                    &self.signer,
                    &from,
                    &to,
                    amount,
                    &recipient_address,
                    idem,
                )?;
                Ok(BankResponse::Confirmed(conf))
            }
            BankRequest::RequestCheque { payee_cert, amount, validity_ms } => {
                let drawer = self.accounts.account_by_cert(caller_cert)?.id;
                let cheque =
                    self.cheque_office().issue(&drawer, &payee_cert, amount, now, validity_ms)?;
                Ok(BankResponse::Cheque(cheque))
            }
            BankRequest::RedeemCheque { cheque, rur } => {
                let payee = self.accounts.account_by_cert(caller_cert)?.id;
                let red = self.cheque_office().redeem(&cheque, &rur, caller_cert, &payee, now)?;
                self.observe_redemption(caller_cert, &rur);
                Ok(BankResponse::Redeemed { paid: red.paid, released: red.released })
            }
            BankRequest::RequestHashChain { payee_cert, length, value_per_word, validity_ms } => {
                let drawer = self.accounts.account_by_cert(caller_cert)?.id;
                let chain = self.payword_office().issue(
                    &drawer,
                    &payee_cert,
                    length,
                    value_per_word,
                    now,
                    validity_ms,
                )?;
                let mut full = Vec::with_capacity((length as usize).saturating_add(1));
                full.push(chain.commitment.root);
                for k in 1..=length {
                    full.push(chain.payword(k)?.word);
                }
                Ok(BankResponse::HashChain {
                    commitment: chain.commitment,
                    signature: chain.signature,
                    chain: full,
                })
            }
            BankRequest::RedeemPayWord { commitment, signature, payword, rur_blob } => {
                if commitment.payee_cert != caller_cert {
                    return Err(BankError::NotAuthorized(format!(
                        "chain payable to `{}`, not `{caller_cert}`",
                        commitment.payee_cert
                    )));
                }
                let payee = self.accounts.account_by_cert(caller_cert)?.id;
                let paid = self.payword_office().redeem(
                    &commitment,
                    &signature,
                    &payword,
                    &payee,
                    rur_blob,
                    now,
                )?;
                Ok(BankResponse::Redeemed { paid, released: Credits::ZERO })
            }
            BankRequest::CloseHashChain { commitment } => {
                self.require_owner_or_admin(caller_cert, &commitment.drawer)?;
                let released = self.payword_office().close(&commitment, now)?;
                Ok(BankResponse::Redeemed { paid: Credits::ZERO, released })
            }
            BankRequest::RegisterResourceDescription { desc } => {
                self.descriptions.write().insert(caller_cert.to_string(), desc);
                Ok(BankResponse::Confirmation { transaction_id: 0 })
            }
            BankRequest::EstimatePrice { desc, min_similarity_ppk } => {
                let price = self.estimator.estimate(&desc, min_similarity_ppk)?;
                Ok(BankResponse::Estimate { price })
            }
            BankRequest::RedeemChequeBatch { items } => {
                let payee = self.accounts.account_by_cert(caller_cert)?.id;
                let office = self.cheque_office();
                let results = items
                    .into_iter()
                    .map(|(cheque, rur)| {
                        match office.redeem(&cheque, &rur, caller_cert, &payee, now) {
                            Ok(red) => {
                                self.observe_redemption(caller_cert, &rur);
                                Ok((red.paid, red.released))
                            }
                            Err(e) => Err((error_kind(&e), e.to_string())),
                        }
                    })
                    .collect();
                Ok(BankResponse::RedeemedBatch { results })
            }
            BankRequest::AdminDeposit { account, amount } => {
                let txid = self.admin.deposit(caller_cert, &account, amount)?;
                Ok(BankResponse::Confirmation { transaction_id: txid })
            }
            BankRequest::AdminWithdraw { account, amount } => {
                let txid = self.admin.withdraw(caller_cert, &account, amount)?;
                Ok(BankResponse::Confirmation { transaction_id: txid })
            }
            BankRequest::AdminCreditLimit { account, new_limit } => {
                self.admin.change_credit_limit(caller_cert, &account, new_limit)?;
                Ok(BankResponse::Confirmation { transaction_id: 0 })
            }
            BankRequest::AdminCancelTransfer { transaction_id } => {
                let txid = self.admin.cancel_transfer(caller_cert, transaction_id)?;
                Ok(BankResponse::Confirmation { transaction_id: txid })
            }
            BankRequest::AdminCloseAccount { account, transfer_to } => {
                self.admin.close_account(caller_cert, &account, transfer_to)?;
                Ok(BankResponse::Confirmation { transaction_id: 0 })
            }
            BankRequest::IbCredit { to, amount, origin_branch, rur_blob: _ } => {
                let router = self.federation().ok_or_else(|| {
                    BankError::Protocol("bank is not part of a federation".into())
                })?;
                if !router.is_peer(caller_cert) {
                    return Err(BankError::NotAuthorized(format!(
                        "`{caller_cert}` may not deliver inter-branch credits"
                    )));
                }
                if to.branch != self.config.branch {
                    return Err(BankError::NotHomeBranch { home: to.branch });
                }
                let txid = router.apply_ib_credit(&to, amount, origin_branch)?;
                Ok(BankResponse::Confirmation { transaction_id: txid })
            }
            BankRequest::IbSettleProposal { origin_branch, gross_out } => {
                let router = self.federation().ok_or_else(|| {
                    BankError::Protocol("bank is not part of a federation".into())
                })?;
                if !router.is_peer(caller_cert) {
                    return Err(BankError::NotAuthorized(format!(
                        "`{caller_cert}` may not propose settlements"
                    )));
                }
                layer_span.attr("gross_out", gross_out.to_string());
                let gross_back = router.apply_settle_proposal(origin_branch)?;
                Ok(BankResponse::IbSettleAck { gross_back })
            }
            BankRequest::OpsQuery { query } => {
                // The ops plane is its own trust role: account owners,
                // administrators, and federation peers are all refused
                // unless also enrolled as ops administrators.
                if !self.is_ops_admin(caller_cert) {
                    return Err(BankError::NotAuthorized(format!(
                        "`{caller_cert}` may not query the ops plane"
                    )));
                }
                use crate::api::{OpsQuery, OpsReport};
                match query {
                    OpsQuery::Metrics { filter } => {
                        let snapshot = gridbank_obs::registry().snapshot();
                        let snapshot = match filter.as_deref() {
                            Some(prefix) => snapshot.filtered(prefix),
                            None => snapshot,
                        };
                        layer_span.attr("query", "metrics");
                        Ok(BankResponse::OpsReport {
                            report: OpsReport::Metrics {
                                jsonl: gridbank_obs::render_jsonl(&snapshot),
                            },
                        })
                    }
                    OpsQuery::Health => {
                        layer_span.attr("query", "health");
                        Ok(BankResponse::OpsReport {
                            report: OpsReport::Health(self.health_report()),
                        })
                    }
                    OpsQuery::Traces => {
                        layer_span.attr("query", "traces");
                        Ok(BankResponse::OpsReport {
                            report: OpsReport::Traces { rendered: gridbank_obs::flight::dump() },
                        })
                    }
                }
            }
        }
    }

    /// Feeds the §4.2 estimator when a redemption reveals a realized
    /// price: unit price = charge / CPU-hours, attributed to the payee's
    /// registered resource description.
    fn observe_redemption(&self, payee_cert: &str, rur: &gridbank_rur::ResourceUsageRecord) {
        let Some(desc) = self.descriptions.read().get(payee_cert).copied() else {
            return;
        };
        let Ok(total) = rur.total_cost() else { return };
        let Some(line) = rur.line(ChargeableItem::Cpu) else { return };
        let UsageAmount::Time(cpu) = line.usage else { return };
        if cpu.as_ms() == 0 || !total.is_positive() {
            return;
        }
        // Unit price in µG$ per CPU-hour.
        if let Ok(unit) = total.mul_ratio(gridbank_rur::units::MS_PER_HOUR, cpu.as_ms()) {
            self.estimator.observe(desc, unit);
        }
    }
}

/// The §3.2 connection gate over the bank's tables.
pub struct BankGate {
    bank: Arc<GridBank>,
}

impl ConnectionGate for BankGate {
    fn admit(&self, subject: &SubjectName) -> AdmissionDecision {
        let cert = subject.base_identity().0;
        let known = self.bank.accounts.db().subject_known(&cert)
            || self.bank.admin.is_admin(&cert)
            || self.bank.is_federation_peer(&cert)
            || self.bank.is_ops_admin(&cert);
        match (known, self.bank.config.gate_mode) {
            (true, _) | (false, GateMode::AllowEnrollment) => AdmissionDecision::Allow,
            (false, GateMode::Strict) => {
                AdmissionDecision::Deny("no account or administrator privilege".into())
            }
        }
    }
}

/// Sizing knobs for the network front-end.
///
/// The defaults suit tests and small simulations; the load generator
/// (`gridbank-bench loadgen`) raises `workers` to saturate the group-
/// commit journal. See `docs/BENCHMARKS.md`.
#[derive(Clone, Copy, Debug)]
pub struct ServerTuning {
    /// Worker threads executing requests, shared across connections.
    pub workers: usize,
    /// Bound on the shared job queue. When it fills, connection readers
    /// block on submit — backpressure toward the clients.
    pub queue_depth: usize,
    /// Connections beyond this are dropped at accept time (the client
    /// sees a failed handshake and may retry).
    pub max_connections: usize,
}

impl Default for ServerTuning {
    fn default() -> Self {
        ServerTuning { workers: 4, queue_depth: 256, max_connections: 1024 }
    }
}

type Job = Box<dyn FnOnce() + Send + 'static>;

/// The shared bounded execution pool behind every connection.
///
/// Workers pull jobs from one bounded channel (receiver behind a mutex —
/// the vendored channel is single-consumer) and exit when every submit
/// handle is gone, so the pool drains naturally at shutdown.
struct WorkerPool {
    submit: crossbeam::channel::Sender<Job>,
    /// Workers currently executing a job — the saturation signal the
    /// ops plane reports.
    busy: Arc<AtomicU64>,
}

impl WorkerPool {
    fn start(tuning: ServerTuning) -> Self {
        let (tx, rx) = crossbeam::channel::bounded::<Job>(tuning.queue_depth.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let busy = Arc::new(AtomicU64::new(0));
        for _ in 0..tuning.workers.max(1) {
            let rx = Arc::clone(&rx);
            let busy = Arc::clone(&busy);
            std::thread::spawn(move || loop {
                // Hold the lock only while waiting, never while running
                // the job, so workers execute in parallel.
                // lint:allow(blocking-under-lock) the lock exists solely to share the
                // receiver; it guards no bank state and jobs run outside it
                let job = rx.lock().recv();
                match job {
                    Ok(job) => {
                        busy.fetch_add(1, Ordering::Relaxed);
                        job();
                        busy.fetch_sub(1, Ordering::Relaxed);
                    }
                    Err(_) => break,
                }
            });
        }
        WorkerPool { submit: tx, busy }
    }
}

/// The server's [`OpsSource`]: worker saturation from the pool, live
/// connections from the accept loop's gauge.
struct ServerOps {
    busy: Arc<AtomicU64>,
    workers: u32,
    live: Arc<AtomicU64>,
}

impl OpsSource for ServerOps {
    fn workers_busy(&self) -> u32 {
        self.busy.load(Ordering::Relaxed).min(u32::MAX as u64) as u32
    }

    fn workers_total(&self) -> u32 {
        self.workers
    }

    fn connections(&self) -> u32 {
        self.live.load(Ordering::Relaxed).min(u32::MAX as u64) as u32
    }
}

/// Releases an in-flight idempotency key on every exit path from
/// `handle_keyed`, waking any duplicate waiting to consult the cache.
struct KeyGuard<'a> {
    bank: &'a GridBank,
    entry: (String, u64),
}

impl Drop for KeyGuard<'_> {
    fn drop(&mut self) {
        self.bank.release_key(&self.entry);
    }
}

/// Decrements the live-connection gauge when a connection thread exits,
/// however it exits.
struct LiveGuard(Arc<AtomicU64>);

impl Drop for LiveGuard {
    fn drop(&mut self) {
        // checked_sub in the update itself: an underflowing decrement
        // (a guard outliving its increment — an accounting bug) pins
        // the counter at zero instead of wrapping it to u64::MAX.
        let live = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1))
            .map_or(0, |prev| prev.saturating_sub(1));
        gridbank_obs::gauge_set("net.server.live_connections", live as i64);
    }
}

/// Server-side credentials for the handshake.
#[derive(Clone)]
pub struct ServerCredentials {
    /// The bank's CA-issued certificate.
    pub certificate: Certificate,
    /// The identity whose key the certificate binds.
    pub identity: Arc<SigningIdentity>,
    /// The CA key used to validate client chains.
    pub ca_key: VerifyingKey,
}

/// The running network front-end.
pub struct GridBankServer {
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    /// Address the server is bound to.
    pub address: Address,
    connections: Arc<AtomicU64>,
}

impl GridBankServer {
    /// Binds `address` on `network` and starts serving `bank` with
    /// default [`ServerTuning`].
    pub fn start(
        network: &Network,
        address: Address,
        bank: Arc<GridBank>,
        credentials: ServerCredentials,
        nonce_seed: u64,
    ) -> Result<Self, NetError> {
        Self::start_tuned(network, address, bank, credentials, nonce_seed, ServerTuning::default())
    }

    /// [`GridBankServer::start`] with explicit pool and admission sizing.
    ///
    /// Per connection, a reader thread decodes pipelined requests and
    /// submits them to the shared bounded worker pool; workers dispatch
    /// into the bank and complete the connection's `ResponseWriter`.
    pub fn start_tuned(
        network: &Network,
        address: Address,
        bank: Arc<GridBank>,
        credentials: ServerCredentials,
        nonce_seed: u64,
        tuning: ServerTuning,
    ) -> Result<Self, NetError> {
        let listener = network.bind(address.clone())?;
        let stop = Arc::new(AtomicBool::new(false));
        let connections = Arc::new(AtomicU64::new(0));
        let stop2 = Arc::clone(&stop);
        let conns = Arc::clone(&connections);
        let clock = bank.clock().clone();
        let pool = WorkerPool::start(tuning);
        let live = Arc::new(AtomicU64::new(0));
        bank.install_ops_source(Arc::new(ServerOps {
            busy: Arc::clone(&pool.busy),
            workers: tuning.workers.max(1) as u32,
            live: Arc::clone(&live),
        }));
        let accept_thread = std::thread::spawn(move || {
            let gate = bank.gate();
            let mut conn_seq = 0u64;
            loop {
                if stop2.load(Ordering::Relaxed) {
                    break;
                }
                let duplex = match listener.accept_timeout(std::time::Duration::from_millis(50)) {
                    Ok(d) => d,
                    Err(NetError::Timeout) => continue,
                    Err(_) => break,
                };
                if live.load(Ordering::Relaxed) >= tuning.max_connections as u64 {
                    // Over the admission cap: drop the link before the
                    // handshake; resilient clients back off and retry.
                    gridbank_obs::count("net.server.refused_connections", 1);
                    continue;
                }
                conn_seq = conn_seq.wrapping_add(1);
                let total = conns.fetch_add(1, Ordering::Relaxed).saturating_add(1);
                gridbank_obs::gauge_set("net.server.connection_count", total as i64);
                let now_live = live.fetch_add(1, Ordering::Relaxed).saturating_add(1);
                gridbank_obs::gauge_set("net.server.live_connections", now_live as i64);
                let guard = LiveGuard(Arc::clone(&live));
                let bank = Arc::clone(&bank);
                let credentials = credentials.clone();
                let clock = clock.clone();
                let jobs = pool.submit.clone();
                let mut nonces =
                    DeterministicStream::from_u64(nonce_seed ^ conn_seq, b"gridbank-server-nonce");
                let gate_bank = Arc::clone(&gate.bank);
                std::thread::spawn(move || {
                    let _guard = guard;
                    let config =
                        HandshakeConfig { ca_key: credentials.ca_key, now: clock.now_ms() };
                    let gate = BankGate { bank: gate_bank };
                    let hs = server_handshake(
                        duplex,
                        &config,
                        &credentials.certificate,
                        &credentials.identity,
                        &gate,
                        &mut nonces,
                    );
                    let (channel, peer) = match hs {
                        Ok(ok) => ok,
                        Err(_) => return, // refused or failed; nothing to serve
                    };
                    let _ = RpcServer::serve_pipelined(channel, |req, writer| {
                        let bank = Arc::clone(&bank);
                        let peer = peer.clone();
                        let writer = Arc::clone(writer);
                        let job: Job = Box::new(move || {
                            // Queue stage: reader decode → worker pickup.
                            if let Some(enqueued) = req.enqueued {
                                gridbank_obs::observe(
                                    "server.stage.queue_ns",
                                    enqueued.elapsed().as_nanos() as u64,
                                );
                            }
                            let response = {
                                // Join the client's trace so the dispatch
                                // nests under the caller's rpc span.
                                let mut span =
                                    gridbank_obs::span_under(req.trace, "net", "rpc_serve");
                                span.attr("peer", peer.base.0.clone());
                                let decode_timer = gridbank_obs::Stopwatch::start();
                                let decoded = BankRequest::from_bytes(&req.payload);
                                decode_timer.record_named("server.stage.decode_ns");
                                let dispatch_timer = gridbank_obs::Stopwatch::start();
                                let resp = match decoded {
                                    Ok(r) => bank.handle_keyed(&peer.subject, req.idem_key, r),
                                    Err(e) => BankResponse::Error {
                                        kind: crate::api::kinds::OTHER,
                                        message: format!("malformed request: {e}"),
                                        detail: 0,
                                    },
                                };
                                dispatch_timer.record_named("server.stage.dispatch_ns");
                                resp.to_bytes()
                            };
                            // An error here means the peer hung up; the
                            // reader loop will notice and wind down.
                            let reply_timer = gridbank_obs::Stopwatch::start();
                            let _ = writer.complete(req.seq, req.id, response);
                            reply_timer.record_named("server.stage.reply_ns");
                        });
                        // Blocking on a full queue is the backpressure
                        // path; an error means the pool is gone.
                        jobs.send(job).map_err(|_| NetError::Disconnected)
                    });
                });
            }
            // Dropping the pool's submit handle lets workers exit once
            // the last connection reader hangs up.
        });
        Ok(GridBankServer { stop, accept_thread: Some(accept_thread), address, connections })
    }

    /// Total connections accepted so far.
    pub fn connection_count(&self) -> u64 {
        self.connections.load(Ordering::Relaxed)
    }

    /// Stops the accept loop (established connections drain naturally).
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for GridBankServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bank() -> Arc<GridBank> {
        let config = GridBankConfig { signer_height: 6, ..GridBankConfig::default() };
        Arc::new(GridBank::new(config, Clock::new()))
    }

    fn subject(cn: &str) -> SubjectName {
        SubjectName::new("UWA", "CSSE", cn)
    }

    #[test]
    fn enrollment_then_operations() {
        let b = bank();
        let alice = subject("alice");
        // Unknown subjects can only enroll.
        let resp = b.handle(&alice, BankRequest::MyAccount);
        assert!(matches!(resp, BankResponse::Error { .. }));
        let resp = b.handle(&alice, BankRequest::CreateAccount { organization: None });
        let BankResponse::AccountCreated { account } = resp else {
            panic!("expected AccountCreated, got {resp:?}")
        };
        let resp = b.handle(&alice, BankRequest::MyAccount);
        let BankResponse::Account(rec) = resp else { panic!("{resp:?}") };
        assert_eq!(rec.id, account);
    }

    #[test]
    fn ownership_is_enforced() {
        let b = bank();
        let alice = subject("alice");
        let bob = subject("bob");
        let BankResponse::AccountCreated { account: alice_acct } =
            b.handle(&alice, BankRequest::CreateAccount { organization: None })
        else {
            panic!()
        };
        b.handle(&bob, BankRequest::CreateAccount { organization: None });
        // Bob cannot read Alice's account or statement.
        let resp = b.handle(&bob, BankRequest::AccountDetails { account: alice_acct });
        assert!(
            matches!(resp, BankResponse::Error { kind, .. } if kind == crate::api::kinds::NOT_AUTHORIZED)
        );
        let resp =
            b.handle(&bob, BankRequest::Statement { account: alice_acct, start_ms: 0, end_ms: 10 });
        assert!(matches!(resp, BankResponse::Error { .. }));
        // An admin can.
        let admin = SubjectName("/O=GridBank/OU=Admin/CN=operator".into());
        let resp = b.handle(&admin, BankRequest::AccountDetails { account: alice_acct });
        assert!(matches!(resp, BankResponse::Account(_)));
    }

    #[test]
    fn full_cheque_cycle_through_dispatcher() {
        let b = bank();
        let alice = subject("alice");
        let gsp = subject("gsp-alpha");
        let admin = SubjectName("/O=GridBank/OU=Admin/CN=operator".into());
        let BankResponse::AccountCreated { account: alice_acct } =
            b.handle(&alice, BankRequest::CreateAccount { organization: None })
        else {
            panic!()
        };
        b.handle(&gsp, BankRequest::CreateAccount { organization: None });
        b.handle(
            &admin,
            BankRequest::AdminDeposit { account: alice_acct, amount: Credits::from_gd(50) },
        );

        let BankResponse::Cheque(cheque) = b.handle(
            &alice,
            BankRequest::RequestCheque {
                payee_cert: gsp.base_identity().0,
                amount: Credits::from_gd(20),
                validity_ms: 100_000,
            },
        ) else {
            panic!()
        };
        // GSP redeems with a usage record worth 8 G$.
        let rur = gridbank_rur::record::RurBuilder::default()
            .user("h", &alice.0)
            .job("j", "a", 0, 3_600_000)
            .resource("r", &gsp.0, None, 1)
            .line(
                ChargeableItem::Cpu,
                UsageAmount::Time(gridbank_rur::units::Duration::from_hours(1)),
                Credits::from_gd(8),
            )
            .build()
            .unwrap();
        let resp =
            b.handle(&gsp, BankRequest::RedeemCheque { cheque: cheque.clone(), rur: rur.clone() });
        let BankResponse::Redeemed { paid, released } = resp else { panic!("{resp:?}") };
        assert_eq!(paid, Credits::from_gd(8));
        assert_eq!(released, Credits::from_gd(12));
        // A second redemption fails.
        let resp = b.handle(&gsp, BankRequest::RedeemCheque { cheque, rur });
        assert!(
            matches!(resp, BankResponse::Error { kind, .. } if kind == crate::api::kinds::ALREADY_REDEEMED)
        );
    }

    #[test]
    fn payword_cycle_through_dispatcher() {
        let b = bank();
        let alice = subject("alice");
        let gsp = subject("gsp");
        let admin = SubjectName("/O=GridBank/OU=Admin/CN=operator".into());
        let BankResponse::AccountCreated { account: alice_acct } =
            b.handle(&alice, BankRequest::CreateAccount { organization: None })
        else {
            panic!()
        };
        b.handle(&gsp, BankRequest::CreateAccount { organization: None });
        b.handle(
            &admin,
            BankRequest::AdminDeposit { account: alice_acct, amount: Credits::from_gd(50) },
        );

        let resp = b.handle(
            &alice,
            BankRequest::RequestHashChain {
                payee_cert: gsp.base_identity().0,
                length: 10,
                value_per_word: Credits::from_gd(1),
                validity_ms: 100_000,
            },
        );
        let BankResponse::HashChain { commitment, signature, chain } = resp else {
            panic!("{resp:?}")
        };
        assert_eq!(chain.len(), 11);
        assert_eq!(chain[0], commitment.root);
        // Mallory can't redeem a chain payable to the GSP.
        let mallory = subject("mallory");
        b.handle(&mallory, BankRequest::CreateAccount { organization: None });
        let resp = b.handle(
            &mallory,
            BankRequest::RedeemPayWord {
                commitment: commitment.clone(),
                signature: signature.clone(),
                payword: crate::payword::PayWord { index: 4, word: chain[4] },
                rur_blob: vec![],
            },
        );
        assert!(
            matches!(resp, BankResponse::Error { kind, .. } if kind == crate::api::kinds::NOT_AUTHORIZED)
        );
        // GSP redeems incrementally.
        let resp = b.handle(
            &gsp,
            BankRequest::RedeemPayWord {
                commitment: commitment.clone(),
                signature: signature.clone(),
                payword: crate::payword::PayWord { index: 4, word: chain[4] },
                rur_blob: vec![],
            },
        );
        let BankResponse::Redeemed { paid, .. } = resp else { panic!("{resp:?}") };
        assert_eq!(paid, Credits::from_gd(4));
    }

    #[test]
    fn idempotency_key_dedups_retried_mutations() {
        let b = bank();
        let alice = subject("alice");
        let gsp = subject("gsp");
        let admin = SubjectName("/O=GridBank/OU=Admin/CN=operator".into());
        let BankResponse::AccountCreated { account: alice_acct } =
            b.handle(&alice, BankRequest::CreateAccount { organization: None })
        else {
            panic!()
        };
        let BankResponse::AccountCreated { account: gsp_acct } =
            b.handle(&gsp, BankRequest::CreateAccount { organization: None })
        else {
            panic!()
        };
        b.handle(
            &admin,
            BankRequest::AdminDeposit { account: alice_acct, amount: Credits::from_gd(50) },
        );
        let transfer = || BankRequest::DirectTransfer {
            to: gsp_acct,
            amount: Credits::from_gd(10),
            recipient_address: "gsp.grid.org".into(),
        };
        // First keyed call applies and returns a signed confirmation.
        let r1 = b.handle_keyed(&alice, Some(77), transfer());
        let BankResponse::Confirmed(conf) = &r1 else { panic!("{r1:?}") };
        conf.verify(&b.verifying_key()).unwrap();
        // A retry with the same key returns the remembered (signed)
        // response without moving funds again.
        let r2 = b.handle_keyed(&alice, Some(77), transfer());
        let BankResponse::Confirmed(conf2) = &r2 else { panic!("{r2:?}") };
        assert_eq!(conf2.body, conf.body);
        let gsp_balance = |b: &GridBank| b.accounts.account_details(&gsp_acct).unwrap().available;
        assert_eq!(gsp_balance(&b), Credits::from_gd(10));
        // A different key is a different logical operation.
        let r3 = b.handle_keyed(&alice, Some(78), transfer());
        assert!(matches!(r3, BankResponse::Confirmed(_)));
        assert_eq!(gsp_balance(&b), Credits::from_gd(20));
        // Keys are per-caller: the same number from another subject does
        // not collide.
        let r4 = b.handle_keyed(&gsp, Some(77), BankRequest::MyAccount);
        assert!(matches!(r4, BankResponse::Account(_)));
        // Error responses are not remembered: a failed keyed attempt may
        // succeed when retried.
        let huge = BankRequest::DirectTransfer {
            to: gsp_acct,
            amount: Credits::from_gd(1_000),
            recipient_address: "x".into(),
        };
        assert!(matches!(b.handle_keyed(&alice, Some(79), huge), BankResponse::Error { .. }));
        let r5 = b.handle_keyed(&alice, Some(79), transfer());
        assert!(matches!(r5, BankResponse::Confirmed(_)));
        // Crash recovery: replaying the journal preserves the dedup, so
        // the retry still cannot double-apply.
        let journal = b.accounts.db().journal_snapshot();
        let config = GridBankConfig { signer_height: 6, ..GridBankConfig::default() };
        let rebuilt = GridBank::from_journal(config, Clock::new(), &journal);
        let before = gsp_balance(&rebuilt);
        let r6 = rebuilt.handle_keyed(&alice, Some(77), transfer());
        assert!(matches!(r6, BankResponse::Confirmation { .. } | BankResponse::Confirmed(_)));
        assert_eq!(gsp_balance(&rebuilt), before);
    }

    #[test]
    fn idem_capacity_zero_disables_dedup() {
        let config =
            GridBankConfig { signer_height: 6, idem_capacity: 0, ..GridBankConfig::default() };
        let b = Arc::new(GridBank::new(config, Clock::new()));
        let alice = subject("alice");
        let gsp = subject("gsp");
        let admin = SubjectName("/O=GridBank/OU=Admin/CN=operator".into());
        let BankResponse::AccountCreated { account: alice_acct } =
            b.handle(&alice, BankRequest::CreateAccount { organization: None })
        else {
            panic!()
        };
        let BankResponse::AccountCreated { account: gsp_acct } =
            b.handle(&gsp, BankRequest::CreateAccount { organization: None })
        else {
            panic!()
        };
        b.handle(
            &admin,
            BankRequest::AdminDeposit { account: alice_acct, amount: Credits::from_gd(50) },
        );
        let transfer = || BankRequest::DirectTransfer {
            to: gsp_acct,
            amount: Credits::from_gd(10),
            recipient_address: "gsp.grid.org".into(),
        };
        // With dedup disabled the same key double-applies.
        b.handle_keyed(&alice, Some(1), transfer());
        b.handle_keyed(&alice, Some(1), transfer());
        assert_eq!(b.accounts.account_details(&gsp_acct).unwrap().available, Credits::from_gd(20));
    }

    #[test]
    fn ops_plane_is_its_own_trust_role() {
        let b = bank();
        let ops = SubjectName(ops_identity("watcher"));
        let admin = SubjectName("/O=GridBank/OU=Admin/CN=operator".into());
        let alice = subject("alice");
        let BankResponse::AccountCreated { account: alice_acct } =
            b.handle(&alice, BankRequest::CreateAccount { organization: None })
        else {
            panic!()
        };
        b.handle(
            &admin,
            BankRequest::AdminDeposit { account: alice_acct, amount: Credits::from_gd(50) },
        );
        let health_query = || BankRequest::OpsQuery { query: crate::api::OpsQuery::Health };
        // Nobody is trusted for the ops plane yet: account owners and
        // full administrators alike are refused with a typed error.
        for caller in [&alice, &admin] {
            let resp = b.handle(caller, health_query());
            assert!(
                matches!(resp, BankResponse::Error { kind, .. } if kind == crate::api::kinds::NOT_AUTHORIZED),
                "{resp:?}"
            );
        }
        b.add_ops_admin(ops.0.clone());
        assert!(b.is_ops_admin(&ops.0));
        // The ops admin reads health but holds no account privileges.
        let resp = b.handle(&ops, health_query());
        let BankResponse::OpsReport { report: crate::api::OpsReport::Health(h) } = resp else {
            panic!("{resp:?}")
        };
        assert_eq!(h.branch, 1);
        assert_eq!(h.state, crate::api::HealthState::Healthy);
        let resp = b.handle(
            &ops,
            BankRequest::AdminWithdraw { account: alice_acct, amount: Credits::from_gd(50) },
        );
        assert!(
            matches!(resp, BankResponse::Error { kind, .. } if kind == crate::api::kinds::NOT_AUTHORIZED),
            "{resp:?}"
        );
        assert_eq!(
            b.accounts.account_details(&alice_acct).unwrap().available,
            Credits::from_gd(50)
        );
        // Metrics come back as JSON-lines, optionally prefix-filtered.
        let resp = b.handle(
            &ops,
            BankRequest::OpsQuery {
                query: crate::api::OpsQuery::Metrics { filter: Some("rpc.".into()) },
            },
        );
        let BankResponse::OpsReport { report: crate::api::OpsReport::Metrics { jsonl } } = resp
        else {
            panic!("{resp:?}")
        };
        assert!(jsonl.starts_with("{\"type\":\"meta\""), "{jsonl}");
        assert!(!jsonl.contains("\"name\":\"core."), "filter leaked: {jsonl}");
    }

    #[test]
    fn pricing_pipeline_observes_redemptions() {
        let b = bank();
        let alice = subject("alice");
        let gsp = subject("gsp");
        let admin = SubjectName("/O=GridBank/OU=Admin/CN=operator".into());
        let BankResponse::AccountCreated { account: alice_acct } =
            b.handle(&alice, BankRequest::CreateAccount { organization: None })
        else {
            panic!()
        };
        b.handle(&gsp, BankRequest::CreateAccount { organization: None });
        b.handle(
            &admin,
            BankRequest::AdminDeposit { account: alice_acct, amount: Credits::from_gd(50) },
        );
        let desc = ResourceDescription {
            cpu_speed: 1000,
            cpu_count: 8,
            memory_mb: 16_384,
            storage_mb: 100_000,
            bandwidth_mbps: 1000,
        };
        b.handle(&gsp, BankRequest::RegisterResourceDescription { desc });

        // No history yet.
        let resp = b.handle(&alice, BankRequest::EstimatePrice { desc, min_similarity_ppk: 0 });
        assert!(matches!(resp, BankResponse::Error { .. }));

        // One cheque redemption at 3 G$/CPU-hour feeds the estimator.
        let BankResponse::Cheque(cheque) = b.handle(
            &alice,
            BankRequest::RequestCheque {
                payee_cert: gsp.0.clone(),
                amount: Credits::from_gd(10),
                validity_ms: 100_000,
            },
        ) else {
            panic!()
        };
        let rur = gridbank_rur::record::RurBuilder::default()
            .user("h", &alice.0)
            .job("j", "a", 0, 3_600_000)
            .resource("r", &gsp.0, None, 1)
            .line(
                ChargeableItem::Cpu,
                UsageAmount::Time(gridbank_rur::units::Duration::from_hours(2)),
                Credits::from_gd(3),
            )
            .build()
            .unwrap();
        b.handle(&gsp, BankRequest::RedeemCheque { cheque, rur });

        let resp = b.handle(&alice, BankRequest::EstimatePrice { desc, min_similarity_ppk: 0 });
        let BankResponse::Estimate { price } = resp else { panic!("{resp:?}") };
        assert_eq!(price, Credits::from_gd(3));
    }
}

// ---------------------------------------------------------------------------
// Loom model: concurrent duplicate mutations through the real dispatcher.
// ---------------------------------------------------------------------------
//
// Built only under `RUSTFLAGS="--cfg loom"`: `crate::sync` swaps to the
// vendored yield-injecting primitives, so the in-flight key guard and
// idempotency cache inside `handle_keyed` run under randomized
// interleavings (see docs/STATIC_ANALYSIS.md).

#[cfg(all(loom, test))]
mod loom_model {
    use super::*;
    use std::sync::atomic::{AtomicU64 as StdAtomicU64, Ordering as StdOrdering};

    /// Three threads race the same idempotency key through the real
    /// `handle_keyed` path (in-flight guard, dedup cache, transfer).
    /// Exactly one transfer may apply per key, and every racer must see
    /// the identical signed confirmation.
    #[test]
    fn duplicate_keyed_transfers_apply_exactly_once() {
        // The bank (and its Merkle signer) is built once: keygen is far
        // too slow to repeat per interleaving. Height 9 = 512 one-time
        // signatures, enough for the default 128 model iterations (one
        // confirmation is signed per iteration; the racers that lose
        // the key race get the remembered bytes, not a fresh signature).
        let config = GridBankConfig { signer_height: 9, ..GridBankConfig::default() };
        let bank = Arc::new(GridBank::new(config, Clock::new()));
        let alice = SubjectName::new("UWA", "CSSE", "alice");
        let gsp = SubjectName::new("UWA", "CSSE", "gsp");
        let admin = SubjectName("/O=GridBank/OU=Admin/CN=operator".into());
        let BankResponse::AccountCreated { account: from } =
            bank.handle(&alice, BankRequest::CreateAccount { organization: None })
        else {
            panic!("alice enrollment failed")
        };
        let BankResponse::AccountCreated { account: to } =
            bank.handle(&gsp, BankRequest::CreateAccount { organization: None })
        else {
            panic!("gsp enrollment failed")
        };
        bank.handle(
            &admin,
            BankRequest::AdminDeposit { account: from, amount: Credits::from_gd(1_000_000) },
        );

        let amount = Credits::from_micro(7);
        let iteration = StdAtomicU64::new(0);
        loom::model(move || {
            let n = iteration.fetch_add(1, StdOrdering::SeqCst) + 1;
            let key = 1_000 + n;
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    let bank = Arc::clone(&bank);
                    let alice = alice.clone();
                    loom::thread::spawn(move || {
                        bank.handle_keyed(
                            &alice,
                            Some(key),
                            BankRequest::DirectTransfer {
                                to,
                                amount,
                                recipient_address: "gsp.grid.org".into(),
                            },
                        )
                    })
                })
                .collect();
            let responses: Vec<BankResponse> =
                handles.into_iter().map(|h| h.join().expect("racer thread")).collect();
            // Every racer observes the identical remembered confirmation.
            let first = responses[0].to_bytes();
            for r in &responses {
                assert!(matches!(r, BankResponse::Confirmed(_)), "unexpected response {r:?}");
                assert_eq!(r.to_bytes(), first, "racers saw divergent responses");
            }
            // The transfer applied exactly once per key: after n keys
            // the recipient holds exactly n * amount.
            let BankResponse::Account(rec) =
                bank.handle(&admin, BankRequest::AccountDetails { account: to })
            else {
                panic!("balance read failed")
            };
            assert_eq!(
                rec.available,
                Credits::from_micro(7 * n as i128),
                "duplicate transfer applied"
            );
        });
    }
}
