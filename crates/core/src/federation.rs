//! Wire-level multi-branch federation (§6 over RPC).
//!
//! [`crate::branch::InterBank`] settles branches that live in one
//! process. This module lifts the same protocol onto the network: each
//! [`crate::server::GridBank`] learns its branch id and a peer directory
//! (the [`FederationRouter`]), and cross-branch traffic travels as typed
//! wire messages instead of direct method calls:
//!
//! * `IbCredit` — delivers the payee-side credit of a cross-branch
//!   payment. The sending branch debits the drawer into its clearing
//!   account and journals a [`PendingIbCredit`] **in the same commit
//!   batch**, then ships the credit under the durable idempotency key
//!   from that row. Crash, reconnect, and re-ship all collapse into
//!   exactly-once delivery via the receiver's dedup cache.
//! * `IbSettleProposal` / `IbSettleAck` — one §6 netting round for a
//!   branch pair. The proposer reports its gross outbound flow; each
//!   side drains its own clearing account; only the net difference
//!   crosses banks on the external rail.
//!
//! The pure arithmetic lives in [`NettingEngine`]; this module owns the
//! transports, the durable re-ship queue, and the settlement daemon.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Mutex, RwLock};

use gridbank_crypto::cert::SubjectName;
use gridbank_rur::Credits;

use crate::accounts::{GbAccounts, IdemKey};
use crate::admin::GbAdmin;
use crate::api::{error_from_wire, BankRequest, BankResponse};
use crate::branch::{
    clearing_account_for, discover_clearing_accounts, NettingEngine, PairSettlement,
    SettlementReport, SETTLEMENT_ADMIN,
};
use crate::db::{AccountId, PendingIbCredit};
use crate::error::BankError;
use crate::resilient::ResilientBankClient;
use crate::server::GridBank;

/// The administrator identity branch `branch` uses when calling a peer
/// (delivering credits, proposing settlements, forwarding reads). Peers
/// authorize it via [`FederationRouter::add_peer`].
pub fn settlement_identity(branch: u16) -> String {
    format!("/O=GridBank/OU=Settlement/CN=branch-{branch:04}")
}

/// One hop to a peer branch. Implementations must turn a wire
/// [`BankResponse::Error`] back into the typed [`BankError`] (both
/// provided transports do), so callers can distinguish "the peer said
/// no" from "the peer was unreachable".
pub trait PeerTransport: Send + Sync {
    /// Sends one request, optionally stamped with an idempotency key
    /// that stays stable across retries of the same logical operation.
    fn call(&self, idem_key: Option<u64>, request: &BankRequest)
        -> Result<BankResponse, BankError>;
}

/// In-process transport: delivers straight into a peer bank's
/// dispatcher. Used by simulations and tests that federate several
/// banks inside one process without a network.
pub struct LocalPeer {
    bank: Arc<GridBank>,
    identity: SubjectName,
}

impl LocalPeer {
    /// A transport into `bank`, calling as `origin_branch`'s settlement
    /// identity.
    pub fn new(bank: Arc<GridBank>, origin_branch: u16) -> Arc<Self> {
        Arc::new(LocalPeer { bank, identity: SubjectName(settlement_identity(origin_branch)) })
    }
}

impl PeerTransport for LocalPeer {
    fn call(
        &self,
        idem_key: Option<u64>,
        request: &BankRequest,
    ) -> Result<BankResponse, BankError> {
        match self.bank.handle_keyed(&self.identity, idem_key, request.clone()) {
            BankResponse::Error { kind, message } => Err(error_from_wire(kind, message)),
            resp => Ok(resp),
        }
    }
}

/// Networked transport: a [`ResilientBankClient`] (reconnects, backoff,
/// circuit breaker) behind a lock so the router can call from any
/// thread. Keyed calls reuse the caller's stable key on every retry.
pub struct RemotePeer {
    client: Mutex<ResilientBankClient>,
}

impl RemotePeer {
    /// Wraps an already-configured resilient client.
    pub fn new(client: ResilientBankClient) -> Arc<Self> {
        Arc::new(RemotePeer { client: Mutex::new(client) })
    }
}

impl PeerTransport for RemotePeer {
    fn call(
        &self,
        idem_key: Option<u64>,
        request: &BankRequest,
    ) -> Result<BankResponse, BankError> {
        let mut client = self.client.lock();
        match idem_key {
            Some(key) => client.call_with_stable_key(key, request),
            None => client.call(request),
        }
    }
}

/// The branch-aware routing layer a federated [`GridBank`] consults for
/// any request whose target account lives on another branch, plus the
/// settlement machinery (outbound credit shipping, §6 netting rounds).
pub struct FederationRouter {
    local_branch: u16,
    accounts: GbAccounts,
    admin: GbAdmin,
    clearing: Mutex<HashMap<u16, AccountId>>,
    peers: RwLock<BTreeMap<u16, Arc<dyn PeerTransport>>>,
}

impl FederationRouter {
    /// Builds a router over `bank`'s accounts stack and installs it, so
    /// the dispatcher starts routing foreign-branch requests through it.
    /// Existing clearing accounts (e.g. restored by journal replay) are
    /// rediscovered from the certificate index.
    pub fn install(bank: &Arc<GridBank>) -> Arc<FederationRouter> {
        bank.admin.add_admin(SETTLEMENT_ADMIN.to_string());
        let clearing = discover_clearing_accounts(&bank.accounts, bank.branch());
        let router = Arc::new(FederationRouter {
            local_branch: bank.branch(),
            accounts: bank.accounts.clone(),
            admin: bank.admin.clone(),
            clearing: Mutex::new(clearing),
            peers: RwLock::new(BTreeMap::new()),
        });
        bank.install_federation(Arc::clone(&router));
        router
    }

    /// This router's branch id.
    pub fn local_branch(&self) -> u16 {
        self.local_branch
    }

    /// Registers a route to `peer_branch` and authorizes that branch's
    /// settlement identity to deliver credits and propose settlements
    /// here.
    pub fn add_peer(&self, peer_branch: u16, transport: Arc<dyn PeerTransport>) {
        self.admin.add_admin(settlement_identity(peer_branch));
        self.peers.write().insert(peer_branch, transport);
    }

    /// Known peer branch ids, ascending.
    pub fn peer_branches(&self) -> Vec<u16> {
        self.peers.read().keys().copied().collect()
    }

    fn peer(&self, branch: u16) -> Result<Arc<dyn PeerTransport>, BankError> {
        self.peers.read().get(&branch).cloned().ok_or(BankError::UnknownBranch(branch))
    }

    /// The clearing account this branch holds toward `peer` (created or
    /// rediscovered on first use).
    pub fn clearing_account(&self, peer: u16) -> Result<AccountId, BankError> {
        clearing_account_for(&mut self.clearing.lock(), &self.accounts, self.local_branch, peer)
    }

    /// Balance currently parked in the clearing account toward `peer`.
    pub fn clearing_balance(&self, peer: u16) -> Credits {
        self.clearing
            .lock()
            .get(&peer)
            .and_then(|id| self.accounts.account_details(id).ok())
            .map(|r| r.available)
            .unwrap_or(Credits::ZERO)
    }

    /// Parked value backing credits toward `peer` that the peer has not
    /// acknowledged yet — excluded from settlement drains so money never
    /// leaves before its credit is delivered.
    fn pending_toward(&self, peer: u16) -> Credits {
        self.accounts
            .db()
            .ib_pending_snapshot()
            .into_iter()
            .filter(|c| c.to.branch == peer)
            .fold(Credits::ZERO, |acc, c| acc.saturating_add(c.amount))
    }

    /// A durable, restart-unique key for an outbound credit: branch id
    /// in the high bits, a journal-replay-monotonic counter below.
    fn next_credit_key(&self) -> u64 {
        ((self.local_branch as u64) << 48) | self.accounts.db().allocate_transaction_id()
    }

    /// Forwards a read to the home branch of its target account.
    pub fn forward(&self, home: u16, request: &BankRequest) -> Result<BankResponse, BankError> {
        let peer = self.peer(home)?;
        gridbank_obs::count("ib.forwarded", 1);
        peer.call(None, request)
    }

    /// A cross-branch payment: debits `from` into the clearing account
    /// toward `to.branch` with the outbound credit journaled in the same
    /// commit batch, then ships the `IbCredit`. Returns the local
    /// transaction id.
    ///
    /// Failure handling: a typed rejection from the payee's branch
    /// reverses the clearing debit and fails the payment; an unreachable
    /// peer leaves the credit pending, to be re-shipped by
    /// [`FederationRouter::ship_pending`] — the payer's money is safe in
    /// clearing until delivery.
    pub fn cross_branch_transfer(
        &self,
        from: &AccountId,
        to: &AccountId,
        amount: Credits,
        rur_blob: Vec<u8>,
        idem: Option<IdemKey>,
    ) -> Result<u64, BankError> {
        let mut span = gridbank_obs::span("server.federation", "cross_branch_transfer");
        span.attr("home", to.branch.to_string());
        let peer = self.peer(to.branch)?;
        let clearing = self.clearing_account(to.branch)?;
        let credit = PendingIbCredit {
            key: self.next_credit_key(),
            to: *to,
            amount,
            origin: self.local_branch,
        };
        let txid = self.accounts.transfer_with_ib_credit(
            from,
            &clearing,
            amount,
            rur_blob.clone(),
            idem,
            credit,
        )?;
        match self.ship_credit(peer.as_ref(), &credit, rur_blob) {
            Ok(()) => {}
            Err(BankError::Net(_)) => {
                // Peer unreachable after retries: the journaled pending
                // row keeps the credit alive for a later re-ship.
                gridbank_obs::count("ib.credit.stranded", 1);
                span.attr("delivery", "deferred");
            }
            Err(e) => {
                // The peer answered and said no (payee closed, not
                // authorized, ...): compensate the clearing debit and
                // surface the rejection to the payer.
                self.accounts.db().ib_ack(credit.key);
                self.accounts.transfer(&clearing, from, amount, Vec::new())?;
                return Err(e);
            }
        }
        gridbank_obs::count("ib.transfers", 1);
        gridbank_obs::count("ib.transfers_micro", amount.micro().clamp(0, u64::MAX as i128) as u64);
        Ok(txid)
    }

    /// Delivers one credit and acknowledges it on success.
    fn ship_credit(
        &self,
        peer: &dyn PeerTransport,
        credit: &PendingIbCredit,
        rur_blob: Vec<u8>,
    ) -> Result<(), BankError> {
        let request = BankRequest::IbCredit {
            to: credit.to,
            amount: credit.amount,
            origin_branch: credit.origin,
            rur_blob,
        };
        match peer.call(Some(credit.key), &request)? {
            BankResponse::Confirmation { .. } => {
                self.accounts.db().ib_ack(credit.key);
                Ok(())
            }
            other => Err(BankError::Protocol(format!("unexpected response {other:?}"))),
        }
    }

    /// Re-ships every unacknowledged outbound credit (crash recovery and
    /// partition healing). Receiver-side dedup under the durable key
    /// makes repeats harmless. Returns how many deliveries succeeded.
    pub fn ship_pending(&self) -> usize {
        let mut shipped = 0;
        for credit in self.accounts.db().ib_pending_snapshot() {
            let Ok(peer) = self.peer(credit.to.branch) else { continue };
            match self.ship_credit(peer.as_ref(), &credit, Vec::new()) {
                Ok(()) => shipped += 1,
                Err(BankError::Net(_)) => {}
                Err(_) => {
                    // A typed rejection on a re-ship has no payer context
                    // left to refund; acknowledge the credit and let the
                    // parked value leave at the next settlement drain.
                    gridbank_obs::count("ib.credit.rejected", 1);
                    self.accounts.db().ib_ack(credit.key);
                }
            }
        }
        shipped
    }

    /// Applies an inbound `IbCredit`: credits the payee against the
    /// origin branch's liability. `caller` is the origin's settlement
    /// identity (authorized by [`FederationRouter::add_peer`]).
    pub fn apply_ib_credit(
        &self,
        caller: &str,
        to: &AccountId,
        amount: Credits,
        origin_branch: u16,
    ) -> Result<u64, BankError> {
        // Ensure the mirrored clearing account exists: it absorbs this
        // branch's own outbound flow toward the origin at settlement.
        self.clearing_account(origin_branch)?;
        let txid = self.admin.deposit(caller, to, amount)?;
        gridbank_obs::count("ib.credits_applied", 1);
        Ok(txid)
    }

    /// Answers an inbound `IbSettleProposal` from `origin_branch`: drains
    /// this branch's delivered clearing balance toward the origin and
    /// reports it as the gross return flow.
    pub fn apply_settle_proposal(&self, origin_branch: u16) -> Result<Credits, BankError> {
        let clearing = self.clearing_account(origin_branch)?;
        let parked = self.accounts.account_details(&clearing)?.available;
        let gross_back = parked.saturating_add(-self.pending_toward(origin_branch));
        if gross_back.is_positive() {
            self.admin.withdraw(SETTLEMENT_ADMIN, &clearing, gross_back)?;
        }
        Ok(if gross_back.is_positive() { gross_back } else { Credits::ZERO })
    }

    /// One §6 netting round over RPC: re-ships stranded credits, then
    /// proposes a settlement to every peer, draining both sides'
    /// clearing accounts so only the net difference crosses banks.
    pub fn settle_once(&self) -> Result<SettlementReport, BankError> {
        let mut span = gridbank_obs::span("server.federation", "settle_once");
        self.ship_pending();
        let peers: Vec<(u16, Arc<dyn PeerTransport>)> =
            self.peers.read().iter().map(|(b, t)| (*b, Arc::clone(t))).collect();
        let mut report = SettlementReport::default();
        for (peer_branch, transport) in peers {
            let clearing = self.clearing_account(peer_branch)?;
            let parked = self.accounts.account_details(&clearing)?.available;
            let gross_out = parked.saturating_add(-self.pending_toward(peer_branch));
            let gross_out = if gross_out.is_positive() { gross_out } else { Credits::ZERO };
            let proposal =
                BankRequest::IbSettleProposal { origin_branch: self.local_branch, gross_out };
            let ack = match transport.call(Some(self.next_credit_key()), &proposal) {
                Ok(BankResponse::IbSettleAck { gross_back }) => gross_back,
                Ok(other) => {
                    return Err(BankError::Protocol(format!("unexpected response {other:?}")))
                }
                Err(BankError::Net(_)) => continue, // peer down: settle next round
                Err(e) => return Err(e),
            };
            if gross_out.is_positive() {
                self.admin.withdraw(SETTLEMENT_ADMIN, &clearing, gross_out)?;
            }
            if !gross_out.is_positive() && !ack.is_positive() {
                continue;
            }
            let pair = NettingEngine::pair(self.local_branch, peer_branch, gross_out, ack);
            gridbank_obs::count(
                "ib.settle.gross",
                pair.gross_a_to_b
                    .saturating_add(pair.gross_b_to_a)
                    .micro()
                    .clamp(0, u64::MAX as i128) as u64,
            );
            gridbank_obs::count(
                "ib.settle.net",
                pair.net.abs().micro().clamp(0, u64::MAX as i128) as u64,
            );
            gridbank_obs::count("ib.settle.rounds", 1);
            report.pairs.push(pair);
        }
        span.attr("pairs", report.pairs.len().to_string());
        Ok(report)
    }

    /// Per-pair settlement preview without draining anything: the pairs
    /// a settlement round *would* produce from current clearing
    /// balances. Diagnostics (`gridbank branches`).
    pub fn settlement_preview(&self) -> Vec<PairSettlement> {
        self.peer_branches()
            .into_iter()
            .map(|peer| {
                NettingEngine::pair(
                    self.local_branch,
                    peer,
                    self.clearing_balance(peer),
                    Credits::ZERO,
                )
            })
            .collect()
    }

    /// Starts the settlement daemon: a thread running
    /// [`FederationRouter::settle_once`] every `interval` until the
    /// returned handle is dropped.
    pub fn start_daemon(self: &Arc<Self>, interval: Duration) -> SettlementDaemon {
        let router = Arc::clone(self);
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            while !stop_flag.load(Ordering::Relaxed) {
                std::thread::park_timeout(interval);
                if stop_flag.load(Ordering::Relaxed) {
                    break;
                }
                if router.settle_once().is_err() {
                    gridbank_obs::count("ib.settle.daemon_errors", 1);
                }
            }
        });
        SettlementDaemon { stop, handle: Some(handle) }
    }
}

/// Handle to the periodic settlement thread; dropping it stops the
/// daemon and joins the thread.
pub struct SettlementDaemon {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Drop for SettlementDaemon {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            handle.thread().unpark();
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::Clock;
    use crate::server::{GateMode, GridBankConfig};

    const ADMIN: &str = "/O=GridBank/OU=Admin/CN=operator";

    fn federated_pair(
    ) -> (Arc<GridBank>, Arc<GridBank>, Arc<FederationRouter>, Arc<FederationRouter>) {
        let clock = Clock::new();
        let mk = |branch: u16| {
            Arc::new(GridBank::new(
                GridBankConfig {
                    branch,
                    signer_height: 6,
                    gate_mode: GateMode::AllowEnrollment,
                    ..GridBankConfig::default()
                },
                clock.clone(),
            ))
        };
        let (a, b) = (mk(1), mk(2));
        let ra = FederationRouter::install(&a);
        let rb = FederationRouter::install(&b);
        ra.add_peer(2, LocalPeer::new(Arc::clone(&b), 1));
        rb.add_peer(1, LocalPeer::new(Arc::clone(&a), 2));
        (a, b, ra, rb)
    }

    fn open_funded(bank: &GridBank, cert: &str, gd: i64) -> AccountId {
        let id = bank.accounts.create_account(cert, None).unwrap();
        if gd > 0 {
            bank.admin.deposit(ADMIN, &id, Credits::from_gd(gd)).unwrap();
        }
        id
    }

    #[test]
    fn cross_branch_transfer_credits_payee_and_acks() {
        let (a, b, ra, _rb) = federated_pair();
        let alice = open_funded(&a, "/CN=alice", 100);
        let gsp = open_funded(&b, "/CN=gsp", 0);
        ra.cross_branch_transfer(&alice, &gsp, Credits::from_gd(30), vec![], None).unwrap();
        assert_eq!(a.accounts.account_details(&alice).unwrap().available, Credits::from_gd(70));
        assert_eq!(b.accounts.account_details(&gsp).unwrap().available, Credits::from_gd(30));
        assert_eq!(ra.clearing_balance(2), Credits::from_gd(30));
        // Delivered: nothing pending for re-ship.
        assert!(a.accounts.db().ib_pending_snapshot().is_empty());
    }

    #[test]
    fn settle_round_nets_and_zeroes_clearing() {
        let (a, b, ra, rb) = federated_pair();
        let alice = open_funded(&a, "/CN=alice", 100);
        let gsp = open_funded(&b, "/CN=gsp", 50);
        ra.cross_branch_transfer(&alice, &gsp, Credits::from_gd(30), vec![], None).unwrap();
        rb.cross_branch_transfer(&gsp, &alice, Credits::from_gd(12), vec![], None).unwrap();

        let report = ra.settle_once().unwrap();
        assert_eq!(report.pairs.len(), 1);
        let p = &report.pairs[0];
        assert_eq!(p.gross_a_to_b, Credits::from_gd(30));
        assert_eq!(p.gross_b_to_a, Credits::from_gd(12));
        assert_eq!(p.net, Credits::from_gd(18));
        assert_eq!(ra.clearing_balance(2), Credits::ZERO);
        assert_eq!(rb.clearing_balance(1), Credits::ZERO);
        // Nothing left: a second round settles no pairs.
        assert!(ra.settle_once().unwrap().pairs.is_empty());
        assert!(rb.settle_once().unwrap().pairs.is_empty());
        // Global books: 150 initial, minted 42 at delivery, drained 42.
        let total = a.total_funds().saturating_add(b.total_funds());
        assert_eq!(total, Credits::from_gd(150));
    }

    #[test]
    fn typed_rejection_compensates_the_drawer() {
        let (a, b, ra, _rb) = federated_pair();
        let alice = open_funded(&a, "/CN=alice", 100);
        // Payee account never opened on branch 2.
        let ghost = AccountId::new(1, 2, 999);
        let err = ra.cross_branch_transfer(&alice, &ghost, Credits::from_gd(10), vec![], None);
        assert!(err.is_err());
        assert_eq!(a.accounts.account_details(&alice).unwrap().available, Credits::from_gd(100));
        assert_eq!(ra.clearing_balance(2), Credits::ZERO);
        assert!(a.accounts.db().ib_pending_snapshot().is_empty());
        assert_eq!(b.total_funds(), Credits::ZERO);
    }

    #[test]
    fn settlement_identity_is_stable() {
        assert_eq!(settlement_identity(3), "/O=GridBank/OU=Settlement/CN=branch-0003");
    }
}
