//! Wire-level multi-branch federation (§6 over RPC).
//!
//! [`crate::branch::InterBank`] settles branches that live in one
//! process. This module lifts the same protocol onto the network: each
//! [`crate::server::GridBank`] learns its branch id and a peer directory
//! (the [`FederationRouter`]), and cross-branch traffic travels as typed
//! wire messages instead of direct method calls:
//!
//! * `IbCredit` — delivers the payee-side credit of a cross-branch
//!   payment. The sending branch debits the drawer into its clearing
//!   account and journals a [`PendingIbCredit`] **in the same commit
//!   batch**, then ships the credit under the durable idempotency key
//!   from that row. Crash, reconnect, and re-ship all collapse into
//!   exactly-once delivery via the receiver's dedup cache.
//! * `IbSettleProposal` / `IbSettleAck` — one §6 netting round for a
//!   branch pair. The proposer reports its gross outbound flow; each
//!   side drains its own clearing account; only the net difference
//!   crosses banks on the external rail.
//!
//! The pure arithmetic lives in [`NettingEngine`]; this module owns the
//! transports, the durable re-ship queue, and the settlement daemon.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::sync::{Mutex, RwLock};

use gridbank_crypto::cert::SubjectName;
use gridbank_rur::Credits;

use crate::accounts::{GbAccounts, IdemKey};
use crate::admin::GbAdmin;
use crate::api::{error_from_wire, BankRequest, BankResponse};
use crate::branch::{
    clearing_account_for, discover_clearing_accounts, NettingEngine, PairSettlement,
    SettlementReport, SETTLEMENT_ADMIN,
};
use crate::db::{AccountId, PendingIbCredit};
use crate::error::BankError;
use crate::resilient::ResilientBankClient;
use crate::server::GridBank;

/// The settlement identity branch `branch` uses when calling a peer
/// (delivering credits, proposing settlements, forwarding reads). Peers
/// trust it for exactly those federation operations via
/// [`FederationRouter::add_peer`] — it is never an administrator.
pub fn settlement_identity(branch: u16) -> String {
    format!("/O=GridBank/OU=Settlement/CN=branch-{branch:04}")
}

/// One hop to a peer branch. Implementations must turn a wire
/// [`BankResponse::Error`] back into the typed [`BankError`] (both
/// provided transports do), so callers can distinguish "the peer said
/// no" from "the peer was unreachable".
pub trait PeerTransport: Send + Sync {
    /// Sends one request, optionally stamped with an idempotency key
    /// that stays stable across retries of the same logical operation.
    fn call(&self, idem_key: Option<u64>, request: &BankRequest)
        -> Result<BankResponse, BankError>;

    /// Circuit-breaker state of the underlying link ("Closed", "Open",
    /// or "HalfOpen"), or `None` for links without a breaker — the
    /// ops plane's reachability signal. In-process transports have no
    /// breaker and report `None`.
    fn breaker_state(&self) -> Option<&'static str> {
        None
    }
}

/// In-process transport: delivers straight into a peer bank's
/// dispatcher. Used by simulations and tests that federate several
/// banks inside one process without a network.
pub struct LocalPeer {
    bank: Arc<GridBank>,
    identity: SubjectName,
}

impl LocalPeer {
    /// A transport into `bank`, calling as `origin_branch`'s settlement
    /// identity.
    pub fn new(bank: Arc<GridBank>, origin_branch: u16) -> Arc<Self> {
        Arc::new(LocalPeer { bank, identity: SubjectName(settlement_identity(origin_branch)) })
    }
}

impl PeerTransport for LocalPeer {
    fn call(
        &self,
        idem_key: Option<u64>,
        request: &BankRequest,
    ) -> Result<BankResponse, BankError> {
        match self.bank.handle_keyed(&self.identity, idem_key, request.clone()) {
            BankResponse::Error { kind, message, detail } => {
                Err(error_from_wire(kind, message, detail))
            }
            resp => Ok(resp),
        }
    }
}

/// Networked transport: a [`ResilientBankClient`] (reconnects, backoff,
/// circuit breaker) behind a lock so the router can call from any
/// thread. Keyed calls reuse the caller's stable key on every retry.
pub struct RemotePeer {
    client: Mutex<ResilientBankClient>,
}

impl RemotePeer {
    /// Wraps an already-configured resilient client.
    pub fn new(client: ResilientBankClient) -> Arc<Self> {
        Arc::new(RemotePeer { client: Mutex::new(client) })
    }
}

impl PeerTransport for RemotePeer {
    fn call(
        &self,
        idem_key: Option<u64>,
        request: &BankRequest,
    ) -> Result<BankResponse, BankError> {
        let mut client = self.client.lock();
        match idem_key {
            Some(key) => client.call_with_stable_key(key, request),
            None => client.call(request),
        }
    }

    fn breaker_state(&self) -> Option<&'static str> {
        Some(match self.client.lock().breaker_state() {
            gridbank_net::retry::BreakerState::Closed => "Closed",
            gridbank_net::retry::BreakerState::Open { .. } => "Open",
            gridbank_net::retry::BreakerState::HalfOpen => "HalfOpen",
        })
    }
}

/// The branch-aware routing layer a federated [`GridBank`] consults for
/// any request whose target account lives on another branch, plus the
/// settlement machinery (outbound credit shipping, §6 netting rounds).
pub struct FederationRouter {
    local_branch: u16,
    accounts: GbAccounts,
    admin: GbAdmin,
    clearing: Mutex<HashMap<u16, AccountId>>,
    peers: RwLock<BTreeMap<u16, Arc<dyn PeerTransport>>>,
    /// Settlement identities of federated peers — trusted to deliver
    /// `IbCredit`s and propose settlements here, and nothing else.
    /// Deliberately disjoint from the administrator set.
    peer_identities: RwLock<HashSet<String>>,
    /// Serializes settlement rounds on this router, so the daemon and a
    /// manual `settle` never interleave a pair's read-propose-withdraw.
    settle_lock: Mutex<()>,
}

impl FederationRouter {
    /// Builds a router over `bank`'s accounts stack and installs it, so
    /// the dispatcher starts routing foreign-branch requests through it.
    /// Existing clearing accounts (e.g. restored by journal replay) are
    /// rediscovered from the certificate index.
    pub fn install(bank: &Arc<GridBank>) -> Arc<FederationRouter> {
        bank.admin.add_admin(SETTLEMENT_ADMIN.to_string());
        let clearing = discover_clearing_accounts(&bank.accounts, bank.branch());
        let router = Arc::new(FederationRouter {
            local_branch: bank.branch(),
            accounts: bank.accounts.clone(),
            admin: bank.admin.clone(),
            clearing: Mutex::new(clearing),
            peers: RwLock::new(BTreeMap::new()),
            peer_identities: RwLock::new(HashSet::new()),
            settle_lock: Mutex::new(()),
        });
        bank.install_federation(Arc::clone(&router));
        router
    }

    /// This router's branch id.
    pub fn local_branch(&self) -> u16 {
        self.local_branch
    }

    /// Registers a route to `peer_branch` and trusts that branch's
    /// settlement identity to deliver credits and propose settlements
    /// here — a federation-scoped trust, deliberately narrower than the
    /// administrator set (a peer can never withdraw from or close member
    /// accounts).
    pub fn add_peer(&self, peer_branch: u16, transport: Arc<dyn PeerTransport>) {
        self.peer_identities.write().insert(settlement_identity(peer_branch));
        self.peers.write().insert(peer_branch, transport);
    }

    /// Whether `cert` is a federated peer branch's settlement identity.
    pub fn is_peer(&self, cert: &str) -> bool {
        self.peer_identities.read().contains(cert)
    }

    /// Known peer branch ids, ascending.
    pub fn peer_branches(&self) -> Vec<u16> {
        self.peers.read().keys().copied().collect()
    }

    /// Per-peer ops-plane health: clearing balance plus link
    /// reachability. A peer behind an `Open` breaker is currently being
    /// failed fast, not called — unreachable until its cooldown probe
    /// succeeds. Transports without a breaker count as reachable.
    pub fn peer_health(&self) -> Vec<crate::api::PeerHealth> {
        let peers: Vec<(u16, Arc<dyn PeerTransport>)> =
            self.peers.read().iter().map(|(b, t)| (*b, Arc::clone(t))).collect();
        peers
            .into_iter()
            .map(|(branch, transport)| {
                let breaker = transport.breaker_state();
                crate::api::PeerHealth {
                    branch,
                    clearing: self.clearing_balance(branch),
                    reachable: breaker != Some("Open"),
                    breaker: breaker.map(str::to_string),
                }
            })
            .collect()
    }

    fn peer(&self, branch: u16) -> Result<Arc<dyn PeerTransport>, BankError> {
        self.peers.read().get(&branch).cloned().ok_or(BankError::UnknownBranch(branch))
    }

    /// The clearing account this branch holds toward `peer` (created or
    /// rediscovered on first use).
    pub fn clearing_account(&self, peer: u16) -> Result<AccountId, BankError> {
        clearing_account_for(&mut self.clearing.lock(), &self.accounts, self.local_branch, peer)
    }

    /// Balance currently parked in the clearing account toward `peer`.
    pub fn clearing_balance(&self, peer: u16) -> Credits {
        self.clearing
            .lock()
            .get(&peer)
            .and_then(|id| self.accounts.account_details(id).ok())
            .map(|r| r.available)
            .unwrap_or(Credits::ZERO)
    }

    /// Parked value backing credits toward `peer` that the peer has not
    /// acknowledged yet — excluded from settlement drains so money never
    /// leaves before its credit is delivered.
    fn pending_toward(&self, peer: u16) -> Credits {
        self.accounts
            .db()
            .ib_pending_snapshot()
            .into_iter()
            .filter(|c| c.to.branch == peer)
            .fold(Credits::ZERO, |acc, c| acc.saturating_add(c.amount))
    }

    /// A durable, restart-unique key for an outbound credit: branch id
    /// in the high bits, a journal-replay-monotonic counter below.
    fn next_credit_key(&self) -> u64 {
        ((self.local_branch as u64) << 48) | self.accounts.db().allocate_transaction_id()
    }

    /// Forwards a read to the home branch of its target account.
    pub fn forward(&self, home: u16, request: &BankRequest) -> Result<BankResponse, BankError> {
        let peer = self.peer(home)?;
        gridbank_obs::count("ib.forwarded", 1);
        peer.call(None, request)
    }

    /// A cross-branch payment: debits `from` into the clearing account
    /// toward `to.branch` with the outbound credit journaled in the same
    /// commit batch, then ships the `IbCredit`. Returns the local
    /// transaction id.
    ///
    /// Failure handling: a typed rejection from the payee's branch
    /// reverses the clearing debit and fails the payment; an unreachable
    /// peer leaves the credit pending, to be re-shipped by
    /// [`FederationRouter::ship_pending`] — the payer's money is safe in
    /// clearing until delivery.
    pub fn cross_branch_transfer(
        &self,
        from: &AccountId,
        to: &AccountId,
        amount: Credits,
        rur_blob: Vec<u8>,
        idem: Option<IdemKey>,
    ) -> Result<u64, BankError> {
        let mut span = gridbank_obs::span("server.federation", "cross_branch_transfer");
        span.attr("home", to.branch.to_string());
        let peer = self.peer(to.branch)?;
        let clearing = self.clearing_account(to.branch)?;
        let credit = PendingIbCredit {
            key: self.next_credit_key(),
            to: *to,
            amount,
            origin: self.local_branch,
            drawer: *from,
            idem: idem.as_ref().map(|k| (k.cert.clone(), k.key)),
        };
        let txid = self.accounts.transfer_with_ib_credit(
            from,
            &clearing,
            amount,
            rur_blob.clone(),
            idem,
            credit.clone(),
        )?;
        match self.ship_credit(peer.as_ref(), &credit, rur_blob) {
            Ok(()) => {}
            Err(BankError::Net(_)) => {
                // Peer unreachable after retries: the journaled pending
                // row keeps the credit alive for a later re-ship.
                gridbank_obs::count("ib.credit.stranded", 1);
                span.attr("delivery", "deferred");
            }
            Err(e) => {
                // The peer answered and said no (payee closed, not
                // authorized, ...): compensate the clearing debit and
                // drop the idem stamp that committed with it — a retry
                // under the same key must see this rejection, never the
                // stamped placeholder success.
                self.accounts.db().ib_ack(credit.key);
                self.accounts.transfer(&clearing, from, amount, Vec::new())?;
                if let Some((cert, key)) = &credit.idem {
                    self.accounts.db().idem_invalidate(cert, *key);
                }
                return Err(e);
            }
        }
        gridbank_obs::count("ib.transfers", 1);
        gridbank_obs::count("ib.transfers_micro", amount.metric_micro());
        Ok(txid)
    }

    /// Delivers one credit and acknowledges it on success.
    fn ship_credit(
        &self,
        peer: &dyn PeerTransport,
        credit: &PendingIbCredit,
        rur_blob: Vec<u8>,
    ) -> Result<(), BankError> {
        let request = BankRequest::IbCredit {
            to: credit.to,
            amount: credit.amount,
            origin_branch: credit.origin,
            rur_blob,
        };
        match peer.call(Some(credit.key), &request)? {
            BankResponse::Confirmation { .. } => {
                self.accounts.db().ib_ack(credit.key);
                Ok(())
            }
            other => Err(BankError::Protocol(format!("unexpected response {other:?}"))),
        }
    }

    /// Re-ships every unacknowledged outbound credit (crash recovery and
    /// partition healing). Receiver-side dedup under the durable key
    /// makes repeats harmless. Returns how many deliveries succeeded.
    pub fn ship_pending(&self) -> usize {
        let mut shipped = 0usize;
        for credit in self.accounts.db().ib_pending_snapshot() {
            let Ok(peer) = self.peer(credit.to.branch) else { continue };
            match self.ship_credit(peer.as_ref(), &credit, Vec::new()) {
                Ok(()) => shipped = shipped.saturating_add(1),
                Err(BankError::Net(_)) => {}
                Err(_) => {
                    // A typed rejection on a re-ship (payee closed
                    // between crash and recovery, ...): compensate the
                    // payer exactly like the synchronous rejection path
                    // would have, instead of letting the parked value
                    // drain away at the next settlement.
                    gridbank_obs::count("ib.credit.rejected", 1);
                    if self.accounts.db().ib_ack(credit.key) {
                        self.refund_rejected(&credit);
                    }
                }
            }
        }
        shipped
    }

    /// Compensates a rejected outbound credit once its pending row is
    /// acked: the parked value returns to the drawer — or, if the drawer
    /// is gone too, parks in the branch's suspense account for operator
    /// resolution — and the payment's idem stamp is invalidated so the
    /// payer's retry re-attempts instead of reading a stale success.
    fn refund_rejected(&self, credit: &PendingIbCredit) {
        let refunded = self.clearing_account(credit.to.branch).and_then(|clearing| {
            self.accounts.transfer(&clearing, &credit.drawer, credit.amount, Vec::new()).or_else(
                |_| {
                    let suspense = self.suspense_account()?;
                    self.accounts.transfer(&clearing, &suspense, credit.amount, Vec::new())
                },
            )
        });
        if refunded.is_err() {
            gridbank_obs::count("ib.credit.refund_failed", 1);
        }
        if let Some((cert, key)) = &credit.idem {
            self.accounts.db().idem_invalidate(cert, *key);
        }
    }

    /// The branch's suspense account (created or rediscovered on first
    /// use): absorbs compensation value whose original owner is
    /// unreachable, keeping conservation intact until an operator
    /// resolves it.
    fn suspense_account(&self) -> Result<AccountId, BankError> {
        let cert = format!("/O=GridBank/OU=Suspense/CN=branch-{:04}", self.local_branch);
        match self.accounts.account_by_cert(&cert) {
            Ok(record) => Ok(record.id),
            Err(_) => self.accounts.create_account(&cert, None),
        }
    }

    /// Applies an inbound `IbCredit`: credits the payee against the
    /// origin branch's liability. The dispatcher has already checked the
    /// caller against [`FederationRouter::is_peer`]; the deposit itself
    /// runs under the local settlement administrator, so peers never
    /// need (and never hold) administrator rights here.
    pub fn apply_ib_credit(
        &self,
        to: &AccountId,
        amount: Credits,
        origin_branch: u16,
    ) -> Result<u64, BankError> {
        // Ensure the mirrored clearing account exists: it absorbs this
        // branch's own outbound flow toward the origin at settlement.
        self.clearing_account(origin_branch)?;
        let txid = self.admin.deposit(SETTLEMENT_ADMIN, to, amount)?;
        gridbank_obs::count("ib.credits_applied", 1);
        Ok(txid)
    }

    /// Answers an inbound `IbSettleProposal` from `origin_branch`: drains
    /// this branch's delivered clearing balance toward the origin and
    /// reports it as the gross return flow.
    pub fn apply_settle_proposal(&self, origin_branch: u16) -> Result<Credits, BankError> {
        let clearing = self.clearing_account(origin_branch)?;
        let parked = self.accounts.account_details(&clearing)?.available;
        let gross_back = parked.saturating_add(self.pending_toward(origin_branch).negated());
        if gross_back.is_positive() {
            self.admin.withdraw(SETTLEMENT_ADMIN, &clearing, gross_back)?;
        }
        Ok(if gross_back.is_positive() { gross_back } else { Credits::ZERO })
    }

    /// One §6 netting round over RPC: re-ships stranded credits, then
    /// proposes a settlement to every peer *this router is the proposer
    /// for*, draining both sides' clearing accounts so only the net
    /// difference crosses banks.
    ///
    /// Exactly one side proposes per pair — the lower branch id — so two
    /// concurrent daemons can never both act as proposer and race each
    /// other's read-propose-withdraw on the same pair (the higher side's
    /// clearing drains inside its
    /// [`FederationRouter::apply_settle_proposal`]). A round never
    /// aborts mid-loop: a failing pair is counted
    /// (`ib.settle.peer_errors`) and retried next round.
    pub fn settle_once(&self) -> Result<SettlementReport, BankError> {
        let mut span = gridbank_obs::span("server.federation", "settle_once");
        let _round = self.settle_lock.lock();
        self.ship_pending();
        let peers: Vec<(u16, Arc<dyn PeerTransport>)> =
            self.peers.read().iter().map(|(b, t)| (*b, Arc::clone(t))).collect();
        let mut report = SettlementReport::default();
        for (peer_branch, transport) in peers {
            if peer_branch < self.local_branch {
                continue; // the peer proposes for this pair
            }
            match self.settle_pair(peer_branch, transport.as_ref()) {
                Ok(Some(pair)) => {
                    gridbank_obs::count(
                        "ib.settle.gross",
                        pair.gross_a_to_b.saturating_add(pair.gross_b_to_a).metric_micro(),
                    );
                    gridbank_obs::count("ib.settle.net", pair.net.abs().metric_micro());
                    gridbank_obs::count("ib.settle.rounds", 1);
                    report.pairs.push(pair);
                }
                Ok(None) => {}
                Err(BankError::Net(_)) => {} // peer down: settle next round
                Err(_) => {
                    gridbank_obs::count("ib.settle.peer_errors", 1);
                }
            }
        }
        span.attr("pairs", report.pairs.len().to_string());
        Ok(report)
    }

    /// The proposer's side of one pair's netting round.
    fn settle_pair(
        &self,
        peer_branch: u16,
        transport: &dyn PeerTransport,
    ) -> Result<Option<PairSettlement>, BankError> {
        let clearing = self.clearing_account(peer_branch)?;
        let parked = self.accounts.account_details(&clearing)?.available;
        let gross_out = parked.saturating_add(self.pending_toward(peer_branch).negated());
        let gross_out = if gross_out.is_positive() { gross_out } else { Credits::ZERO };
        let proposal =
            BankRequest::IbSettleProposal { origin_branch: self.local_branch, gross_out };
        let ack = match transport.call(Some(self.next_credit_key()), &proposal)? {
            BankResponse::IbSettleAck { gross_back } => gross_back,
            other => return Err(BankError::Protocol(format!("unexpected response {other:?}"))),
        };
        if gross_out.is_positive() {
            self.admin.withdraw(SETTLEMENT_ADMIN, &clearing, gross_out)?;
        }
        if !gross_out.is_positive() && !ack.is_positive() {
            return Ok(None);
        }
        Ok(Some(NettingEngine::pair(self.local_branch, peer_branch, gross_out, ack)))
    }

    /// Per-pair settlement preview without draining anything: the pairs
    /// a settlement round *would* produce from current clearing
    /// balances. Diagnostics (`gridbank branches`).
    pub fn settlement_preview(&self) -> Vec<PairSettlement> {
        self.peer_branches()
            .into_iter()
            .map(|peer| {
                NettingEngine::pair(
                    self.local_branch,
                    peer,
                    self.clearing_balance(peer),
                    Credits::ZERO,
                )
            })
            .collect()
    }

    /// Starts the settlement daemon: a thread running
    /// [`FederationRouter::settle_once`] every `interval` until the
    /// returned handle is dropped.
    pub fn start_daemon(self: &Arc<Self>, interval: Duration) -> SettlementDaemon {
        let router = Arc::clone(self);
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            while !stop_flag.load(Ordering::Relaxed) {
                std::thread::park_timeout(interval);
                if stop_flag.load(Ordering::Relaxed) {
                    break;
                }
                if router.settle_once().is_err() {
                    gridbank_obs::count("ib.settle.daemon_errors", 1);
                }
            }
        });
        SettlementDaemon { stop, handle: Some(handle) }
    }
}

/// Handle to the periodic settlement thread; dropping it stops the
/// daemon and joins the thread.
pub struct SettlementDaemon {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Drop for SettlementDaemon {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            handle.thread().unpark();
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::Clock;
    use crate::server::{GateMode, GridBankConfig};

    const ADMIN: &str = "/O=GridBank/OU=Admin/CN=operator";

    fn federated_pair(
    ) -> (Arc<GridBank>, Arc<GridBank>, Arc<FederationRouter>, Arc<FederationRouter>) {
        let clock = Clock::new();
        let mk = |branch: u16| {
            Arc::new(GridBank::new(
                GridBankConfig {
                    branch,
                    signer_height: 6,
                    gate_mode: GateMode::AllowEnrollment,
                    ..GridBankConfig::default()
                },
                clock.clone(),
            ))
        };
        let (a, b) = (mk(1), mk(2));
        let ra = FederationRouter::install(&a);
        let rb = FederationRouter::install(&b);
        ra.add_peer(2, LocalPeer::new(Arc::clone(&b), 1));
        rb.add_peer(1, LocalPeer::new(Arc::clone(&a), 2));
        (a, b, ra, rb)
    }

    fn open_funded(bank: &GridBank, cert: &str, gd: i64) -> AccountId {
        let id = bank.accounts.create_account(cert, None).unwrap();
        if gd > 0 {
            bank.admin.deposit(ADMIN, &id, Credits::from_gd(gd)).unwrap();
        }
        id
    }

    #[test]
    fn cross_branch_transfer_credits_payee_and_acks() {
        let (a, b, ra, _rb) = federated_pair();
        let alice = open_funded(&a, "/CN=alice", 100);
        let gsp = open_funded(&b, "/CN=gsp", 0);
        ra.cross_branch_transfer(&alice, &gsp, Credits::from_gd(30), vec![], None).unwrap();
        assert_eq!(a.accounts.account_details(&alice).unwrap().available, Credits::from_gd(70));
        assert_eq!(b.accounts.account_details(&gsp).unwrap().available, Credits::from_gd(30));
        assert_eq!(ra.clearing_balance(2), Credits::from_gd(30));
        // Delivered: nothing pending for re-ship.
        assert!(a.accounts.db().ib_pending_snapshot().is_empty());
    }

    #[test]
    fn settle_round_nets_and_zeroes_clearing() {
        let (a, b, ra, rb) = federated_pair();
        let alice = open_funded(&a, "/CN=alice", 100);
        let gsp = open_funded(&b, "/CN=gsp", 50);
        ra.cross_branch_transfer(&alice, &gsp, Credits::from_gd(30), vec![], None).unwrap();
        rb.cross_branch_transfer(&gsp, &alice, Credits::from_gd(12), vec![], None).unwrap();

        let report = ra.settle_once().unwrap();
        assert_eq!(report.pairs.len(), 1);
        let p = &report.pairs[0];
        assert_eq!(p.gross_a_to_b, Credits::from_gd(30));
        assert_eq!(p.gross_b_to_a, Credits::from_gd(12));
        assert_eq!(p.net, Credits::from_gd(18));
        assert_eq!(ra.clearing_balance(2), Credits::ZERO);
        assert_eq!(rb.clearing_balance(1), Credits::ZERO);
        // Nothing left: a second round settles no pairs.
        assert!(ra.settle_once().unwrap().pairs.is_empty());
        assert!(rb.settle_once().unwrap().pairs.is_empty());
        // Global books: 150 initial, minted 42 at delivery, drained 42.
        let total = a.total_funds().saturating_add(b.total_funds());
        assert_eq!(total, Credits::from_gd(150));
    }

    #[test]
    fn typed_rejection_compensates_the_drawer() {
        let (a, b, ra, _rb) = federated_pair();
        let alice = open_funded(&a, "/CN=alice", 100);
        // Payee account never opened on branch 2.
        let ghost = AccountId::new(1, 2, 999);
        let err = ra.cross_branch_transfer(&alice, &ghost, Credits::from_gd(10), vec![], None);
        assert!(err.is_err());
        assert_eq!(a.accounts.account_details(&alice).unwrap().available, Credits::from_gd(100));
        assert_eq!(ra.clearing_balance(2), Credits::ZERO);
        assert!(a.accounts.db().ib_pending_snapshot().is_empty());
        assert_eq!(b.total_funds(), Credits::ZERO);
    }

    #[test]
    fn settlement_identity_is_stable() {
        assert_eq!(settlement_identity(3), "/O=GridBank/OU=Settlement/CN=branch-0003");
    }

    #[test]
    fn rejected_payment_is_not_remembered_as_success() {
        let (a, _b, _ra, _rb) = federated_pair();
        let subject = SubjectName("/CN=alice".into());
        let alice = open_funded(&a, "/CN=alice", 100);
        let ghost = AccountId::new(1, 2, 999);
        let pay = |bank: &GridBank| {
            bank.handle_keyed(
                &subject,
                Some(42),
                BankRequest::DirectTransfer {
                    to: ghost,
                    amount: Credits::from_gd(10),
                    recipient_address: "ghost.grid.org".into(),
                },
            )
        };
        assert!(matches!(pay(&a), BankResponse::Error { .. }));
        // The stamp committed with the clearing debit must not survive
        // the compensation: a retry re-attempts and sees the rejection,
        // never a cached success for a refunded payment.
        assert!(matches!(pay(&a), BankResponse::Error { .. }));
        assert!(a.accounts.db().idem_lookup("/CN=alice", 42).is_none());
        assert_eq!(a.accounts.account_details(&alice).unwrap().available, Credits::from_gd(100));
        // Crash-replay cannot resurrect the stamp either.
        let rebuilt = GridBank::from_journal(
            GridBankConfig {
                branch: 1,
                signer_height: 6,
                gate_mode: GateMode::AllowEnrollment,
                ..GridBankConfig::default()
            },
            Clock::new(),
            &a.journal_snapshot(),
        );
        assert!(rebuilt.accounts.db().idem_lookup("/CN=alice", 42).is_none());
    }

    #[test]
    fn reship_rejection_refunds_drawer_and_drops_stamp() {
        struct SwitchPeer {
            inner: Arc<LocalPeer>,
            down: AtomicBool,
        }
        impl PeerTransport for SwitchPeer {
            fn call(
                &self,
                idem_key: Option<u64>,
                request: &BankRequest,
            ) -> Result<BankResponse, BankError> {
                if self.down.load(Ordering::Relaxed) {
                    return Err(BankError::Net(gridbank_net::NetError::Disconnected));
                }
                self.inner.call(idem_key, request)
            }
        }

        let (a, b, ra, _rb) = federated_pair();
        let subject = SubjectName("/CN=alice".into());
        let alice = open_funded(&a, "/CN=alice", 100);
        let ghost = AccountId::new(1, 2, 999);
        let link = Arc::new(SwitchPeer {
            inner: LocalPeer::new(Arc::clone(&b), 1),
            down: AtomicBool::new(true),
        });
        ra.add_peer(2, Arc::clone(&link) as Arc<dyn PeerTransport>);
        // Wire down: the payment confirms locally and the credit strands.
        let reply = a.handle_keyed(
            &subject,
            Some(7),
            BankRequest::DirectTransfer {
                to: ghost,
                amount: Credits::from_gd(10),
                recipient_address: "ghost.grid.org".into(),
            },
        );
        assert!(matches!(reply, BankResponse::Confirmed(_)));
        assert_eq!(a.accounts.db().ib_pending_snapshot().len(), 1);
        assert!(a.accounts.db().idem_lookup("/CN=alice", 7).is_some());
        // Wire heals; the re-ship is rejected (the payee never existed):
        // the drawer gets the parked value back instead of losing it to
        // the next settlement drain, and the stale success stamp goes.
        link.down.store(false, Ordering::Relaxed);
        assert_eq!(ra.ship_pending(), 0);
        assert!(a.accounts.db().ib_pending_snapshot().is_empty());
        assert_eq!(a.accounts.account_details(&alice).unwrap().available, Credits::from_gd(100));
        assert_eq!(ra.clearing_balance(2), Credits::ZERO);
        assert!(a.accounts.db().idem_lookup("/CN=alice", 7).is_none());
        assert_eq!(b.total_funds(), Credits::ZERO);
    }

    #[test]
    fn peer_identity_is_never_an_admin() {
        let (a, _b, ra, _rb) = federated_pair();
        let victim = open_funded(&a, "/CN=victim", 50);
        assert!(ra.is_peer(&settlement_identity(2)));
        assert!(!a.admin.is_admin(&settlement_identity(2)));
        let peer = SubjectName(settlement_identity(2));
        let reply = a.handle(
            &peer,
            BankRequest::AdminWithdraw { account: victim, amount: Credits::from_gd(50) },
        );
        assert!(matches!(
            reply,
            BankResponse::Error { kind, .. } if kind == crate::api::kinds::NOT_AUTHORIZED
        ));
        assert_eq!(a.accounts.account_details(&victim).unwrap().available, Credits::from_gd(50));
    }

    #[test]
    fn only_the_lower_branch_proposes() {
        let (a, b, ra, rb) = federated_pair();
        let alice = open_funded(&a, "/CN=alice", 100);
        let gsp = open_funded(&b, "/CN=gsp", 50);
        ra.cross_branch_transfer(&alice, &gsp, Credits::from_gd(30), vec![], None).unwrap();
        rb.cross_branch_transfer(&gsp, &alice, Credits::from_gd(12), vec![], None).unwrap();
        // The higher branch never acts as proposer: its round settles no
        // pairs and leaves its own clearing intact.
        assert!(rb.settle_once().unwrap().pairs.is_empty());
        assert_eq!(rb.clearing_balance(1), Credits::from_gd(12));
        // Concurrent rounds from both sides settle the pair exactly once.
        let (from_a, from_b) = std::thread::scope(|s| {
            let ha = s.spawn(|| ra.settle_once().unwrap());
            let hb = s.spawn(|| rb.settle_once().unwrap());
            (ha.join().unwrap(), hb.join().unwrap())
        });
        assert!(from_b.pairs.is_empty());
        assert_eq!(from_a.pairs.len(), 1);
        assert_eq!(from_a.pairs[0].net, Credits::from_gd(18));
        assert_eq!(ra.clearing_balance(2), Credits::ZERO);
        assert_eq!(rb.clearing_balance(1), Credits::ZERO);
        let total = a.total_funds().saturating_add(b.total_funds());
        assert_eq!(total, Credits::from_gd(150));
    }
}
