//! Payment guarantee (§3.4).
//!
//! "To guarantee payment when issuing GridCheques, GridBank will have to
//! lock a certain amount of funds for the cheque to be valid … Each GSP
//! will receive a cheque with a reserved amount, which is transferred to
//! the 'locked' balance of the GSC's account."
//!
//! [`FundsGuarantee`] is the shared reservation registry behind both
//! GridCheques and GridHash chains: `reserve` locks funds against an
//! instrument id; `settle` pays the payee the actual charge (capped at the
//! reservation) and releases the remainder; `release` returns everything.

use std::collections::HashMap;
use std::sync::Arc;

use crate::sync::Mutex;

use gridbank_rur::Credits;

use crate::accounts::GbAccounts;
use crate::db::AccountId;
use crate::error::BankError;

/// State of one reservation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Reservation {
    /// Drawer account whose funds are locked.
    pub account: AccountId,
    /// Originally reserved amount.
    pub reserved: Credits,
    /// Amount already settled to payees.
    pub settled: Credits,
    /// True once fully settled/released; terminal.
    pub closed: bool,
    /// Instrument expiry, virtual ms; `u64::MAX` when the caller manages
    /// lifetime itself. The sweeper releases overdue reservations.
    pub expires_ms: u64,
}

impl Reservation {
    /// Locked amount still outstanding.
    pub fn outstanding(&self) -> Credits {
        self.reserved.checked_sub(self.settled).unwrap_or(Credits::ZERO)
    }
}

/// The reservation registry.
#[derive(Clone)]
pub struct FundsGuarantee {
    accounts: GbAccounts,
    reservations: Arc<Mutex<HashMap<u64, Reservation>>>,
    next_id: Arc<std::sync::atomic::AtomicU64>,
}

impl FundsGuarantee {
    /// Creates an empty registry over the accounts layer.
    pub fn new(accounts: GbAccounts) -> Self {
        FundsGuarantee {
            accounts,
            reservations: Arc::new(Mutex::new(HashMap::new())),
            next_id: Arc::new(std::sync::atomic::AtomicU64::new(1)),
        }
    }

    /// Locks `amount` of `account`'s funds; returns the reservation id.
    /// The reservation never expires on its own; use
    /// [`Self::reserve_until`] for instrument-backed reservations.
    pub fn reserve(&self, account: &AccountId, amount: Credits) -> Result<u64, BankError> {
        self.reserve_until(account, amount, u64::MAX)
    }

    /// Locks `amount` until `expires_ms`; [`Self::sweep_expired`] returns
    /// overdue reservations to their drawers.
    pub fn reserve_until(
        &self,
        account: &AccountId,
        amount: Credits,
        expires_ms: u64,
    ) -> Result<u64, BankError> {
        self.accounts.lock_funds(account, amount)?;
        let id = self.next_id.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.reservations.lock().insert(
            id,
            Reservation {
                account: *account,
                reserved: amount,
                settled: Credits::ZERO,
                closed: false,
                expires_ms,
            },
        );
        Ok(id)
    }

    /// Releases every open reservation whose expiry has passed — the
    /// bank's housekeeping pass for cheques and chains that were never
    /// (fully) redeemed. Returns `(reservation_id, amount_released)`
    /// pairs.
    pub fn sweep_expired(&self, now_ms: u64) -> Vec<(u64, Credits)> {
        let overdue: Vec<u64> = {
            let map = self.reservations.lock();
            map.iter()
                .filter(|(_, r)| !r.closed && r.expires_ms <= now_ms)
                .map(|(id, _)| *id)
                .collect()
        };
        let mut out = Vec::with_capacity(overdue.len());
        for id in overdue {
            if let Ok(released) = self.release(id) {
                out.push((id, released));
            }
        }
        out
    }

    /// Reads a reservation's state.
    pub fn get(&self, id: u64) -> Option<Reservation> {
        self.reservations.lock().get(&id).cloned()
    }

    /// Settles `charge` (capped at the outstanding reservation) to
    /// `payee`, attaching `rur_blob` as evidence, and releases the
    /// remainder. Returns `(paid, released)`. Terminal for the
    /// reservation.
    pub fn settle(
        &self,
        id: u64,
        payee: &AccountId,
        charge: Credits,
        rur_blob: Vec<u8>,
    ) -> Result<(Credits, Credits), BankError> {
        if charge.is_negative() {
            return Err(BankError::NonPositiveAmount);
        }
        // Claim the reservation first so concurrent settlers can't both
        // pay; the monetary ops below only touch the claimed amount.
        let reservation = {
            let mut map = self.reservations.lock();
            let r = map
                .get_mut(&id)
                .ok_or_else(|| BankError::InvalidInstrument(format!("no reservation {id}")))?;
            if r.closed {
                return Err(BankError::AlreadyRedeemed(format!("reservation {id}")));
            }
            r.closed = true;
            r.clone()
        };
        let pay = charge.min(reservation.outstanding());
        let release = reservation.outstanding().checked_sub(pay)?;
        if pay.is_positive() {
            self.accounts.transfer_from_locked(&reservation.account, payee, pay, rur_blob)?;
        }
        if release.is_positive() {
            self.accounts.unlock_funds(&reservation.account, release)?;
        }
        if let Some(r) = self.reservations.lock().get_mut(&id) {
            r.settled = r.settled.saturating_add(pay);
        }
        Ok((pay, release))
    }

    /// Settles part of the reservation *without closing it* — the
    /// incremental redemption path used by pay-as-you-go hash chains.
    pub fn settle_partial(
        &self,
        id: u64,
        payee: &AccountId,
        charge: Credits,
        rur_blob: Vec<u8>,
    ) -> Result<Credits, BankError> {
        if !charge.is_positive() {
            return Err(BankError::NonPositiveAmount);
        }
        // Atomically check headroom and provisionally account the payment,
        // carrying the account id out of the critical section rather than
        // re-looking the reservation up afterwards.
        let account = {
            let mut map = self.reservations.lock();
            let r = map
                .get_mut(&id)
                .ok_or_else(|| BankError::InvalidInstrument(format!("no reservation {id}")))?;
            if r.closed {
                return Err(BankError::AlreadyRedeemed(format!("reservation {id}")));
            }
            if r.outstanding() < charge {
                return Err(BankError::InsufficientLockedFunds {
                    account: r.account,
                    needed: charge,
                    locked: r.outstanding(),
                });
            }
            r.settled = r.settled.saturating_add(charge);
            r.account
        };
        self.accounts.transfer_from_locked(&account, payee, charge, rur_blob)?;
        Ok(charge)
    }

    /// Releases the whole outstanding reservation back to the drawer
    /// (instrument expired unused). Terminal.
    pub fn release(&self, id: u64) -> Result<Credits, BankError> {
        let reservation = {
            let mut map = self.reservations.lock();
            let r = map
                .get_mut(&id)
                .ok_or_else(|| BankError::InvalidInstrument(format!("no reservation {id}")))?;
            if r.closed {
                return Err(BankError::AlreadyRedeemed(format!("reservation {id}")));
            }
            r.closed = true;
            r.clone()
        };
        let outstanding = reservation.outstanding();
        if outstanding.is_positive() {
            self.accounts.unlock_funds(&reservation.account, outstanding)?;
        }
        Ok(outstanding)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::Clock;
    use crate::db::Database;

    fn setup() -> (FundsGuarantee, GbAccounts, AccountId, AccountId) {
        let db = Arc::new(Database::new(1, 1));
        let acc = GbAccounts::new(db.clone(), Clock::new());
        let a = acc.create_account("/CN=gsc", None).unwrap();
        let p = acc.create_account("/CN=gsp", None).unwrap();
        db.with_account_mut(&a, |r| {
            r.available = Credits::from_gd(100);
            Ok(())
        })
        .unwrap();
        (FundsGuarantee::new(acc.clone()), acc, a, p)
    }

    #[test]
    fn reserve_then_settle_with_remainder() {
        let (g, acc, a, p) = setup();
        let id = g.reserve(&a, Credits::from_gd(40)).unwrap();
        assert_eq!(acc.account_details(&a).unwrap().locked, Credits::from_gd(40));

        let (paid, released) = g.settle(id, &p, Credits::from_gd(25), vec![]).unwrap();
        assert_eq!(paid, Credits::from_gd(25));
        assert_eq!(released, Credits::from_gd(15));
        let r = acc.account_details(&a).unwrap();
        assert_eq!(r.available, Credits::from_gd(75));
        assert_eq!(r.locked, Credits::ZERO);
        assert_eq!(acc.account_details(&p).unwrap().available, Credits::from_gd(25));
    }

    #[test]
    fn settlement_caps_at_reservation() {
        let (g, acc, a, p) = setup();
        let id = g.reserve(&a, Credits::from_gd(10)).unwrap();
        // Charge exceeds the guarantee: payee gets only the reserved 10.
        let (paid, released) = g.settle(id, &p, Credits::from_gd(99), vec![]).unwrap();
        assert_eq!(paid, Credits::from_gd(10));
        assert_eq!(released, Credits::ZERO);
        assert_eq!(acc.account_details(&p).unwrap().available, Credits::from_gd(10));
    }

    #[test]
    fn double_settlement_rejected() {
        let (g, _acc, a, p) = setup();
        let id = g.reserve(&a, Credits::from_gd(10)).unwrap();
        g.settle(id, &p, Credits::from_gd(5), vec![]).unwrap();
        assert!(matches!(
            g.settle(id, &p, Credits::from_gd(5), vec![]),
            Err(BankError::AlreadyRedeemed(_))
        ));
        assert!(matches!(g.release(id), Err(BankError::AlreadyRedeemed(_))));
    }

    #[test]
    fn release_returns_funds() {
        let (g, acc, a, _p) = setup();
        let id = g.reserve(&a, Credits::from_gd(30)).unwrap();
        let back = g.release(id).unwrap();
        assert_eq!(back, Credits::from_gd(30));
        let r = acc.account_details(&a).unwrap();
        assert_eq!(r.available, Credits::from_gd(100));
        assert_eq!(r.locked, Credits::ZERO);
    }

    #[test]
    fn reserve_fails_without_funds() {
        let (g, _acc, a, _p) = setup();
        assert!(matches!(
            g.reserve(&a, Credits::from_gd(101)),
            Err(BankError::InsufficientFunds { .. })
        ));
        assert!(g.reserve(&a, Credits::ZERO).is_err());
    }

    #[test]
    fn partial_settlement_accumulates() {
        let (g, acc, a, p) = setup();
        let id = g.reserve(&a, Credits::from_gd(30)).unwrap();
        g.settle_partial(id, &p, Credits::from_gd(10), vec![]).unwrap();
        g.settle_partial(id, &p, Credits::from_gd(15), vec![]).unwrap();
        // Exceeding the outstanding lock is refused.
        assert!(matches!(
            g.settle_partial(id, &p, Credits::from_gd(6), vec![]),
            Err(BankError::InsufficientLockedFunds { .. })
        ));
        // Final settle closes and releases the tail.
        let (paid, released) = g.settle(id, &p, Credits::ZERO, vec![]).unwrap();
        assert_eq!(paid, Credits::ZERO);
        assert_eq!(released, Credits::from_gd(5));
        assert_eq!(acc.account_details(&p).unwrap().available, Credits::from_gd(25));
        assert_eq!(acc.account_details(&a).unwrap().available, Credits::from_gd(75));
    }

    #[test]
    fn sweep_releases_only_overdue_open_reservations() {
        let (g, acc, a, p) = setup();
        let expired = g.reserve_until(&a, Credits::from_gd(10), 100).unwrap();
        let live = g.reserve_until(&a, Credits::from_gd(20), 1_000).unwrap();
        let settled = g.reserve_until(&a, Credits::from_gd(5), 100).unwrap();
        g.settle(settled, &p, Credits::from_gd(5), vec![]).unwrap();

        let swept = g.sweep_expired(100);
        assert_eq!(swept, vec![(expired, Credits::from_gd(10))]);
        // The live reservation is untouched; the settled one already
        // closed; the expired one cannot be settled afterwards.
        assert_eq!(acc.account_details(&a).unwrap().locked, Credits::from_gd(20));
        assert!(matches!(
            g.settle(expired, &p, Credits::from_gd(1), vec![]),
            Err(BankError::AlreadyRedeemed(_))
        ));
        g.settle(live, &p, Credits::from_gd(20), vec![]).unwrap();
        // Second sweep finds nothing.
        assert!(g.sweep_expired(10_000).is_empty());
    }

    #[test]
    fn concurrent_settlers_pay_exactly_once() {
        let (g, acc, a, p) = setup();
        let id = g.reserve(&a, Credits::from_gd(20)).unwrap();
        let successes = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let g = g.clone();
                let successes = &successes;
                s.spawn(move || {
                    if g.settle(id, &p, Credits::from_gd(20), vec![]).is_ok() {
                        successes.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(successes.load(std::sync::atomic::Ordering::Relaxed), 1);
        assert_eq!(acc.account_details(&p).unwrap().available, Credits::from_gd(20));
    }
}
