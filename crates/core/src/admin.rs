//! GB Admin — privileged account management.
//!
//! §3.2: "GB Admin module provides account management such as deposit,
//! withdrawal, change credit limit, cancel transfers and close account
//! functions. These functions are performed by GridBank's administrators
//! who are responsible for transferring real money to and from clients."
//!
//! Administrators are identified by certificate name in the administrator
//! table; the same table feeds the connection gate (§3.2).

use std::collections::HashSet;
use std::sync::Arc;

use crate::sync::RwLock;

use gridbank_rur::Credits;

use crate::accounts::GbAccounts;
use crate::db::{AccountId, TransactionRecord, TransactionType};
use crate::error::BankError;

/// The admin module: the administrator table plus privileged operations.
#[derive(Clone)]
pub struct GbAdmin {
    accounts: GbAccounts,
    admins: Arc<RwLock<HashSet<String>>>,
}

impl GbAdmin {
    /// Creates the module with an initial administrator set.
    pub fn new(accounts: GbAccounts, admins: impl IntoIterator<Item = String>) -> Self {
        GbAdmin { accounts, admins: Arc::new(RwLock::new(admins.into_iter().collect())) }
    }

    /// True if the subject is in the administrator table.
    pub fn is_admin(&self, certificate_name: &str) -> bool {
        self.admins.read().contains(certificate_name)
    }

    /// Adds an administrator (bootstrap/ops path).
    pub fn add_admin(&self, certificate_name: String) {
        self.admins.write().insert(certificate_name);
    }

    fn require_admin(&self, caller: &str) -> Result<(), BankError> {
        if self.is_admin(caller) {
            Ok(())
        } else {
            Err(BankError::NotAuthorized(format!("`{caller}` is not an administrator")))
        }
    }

    /// Deposit (§5.2.1): administrator received real funds out-of-band and
    /// credits the GridBank account.
    pub fn deposit(
        &self,
        caller: &str,
        account: &AccountId,
        amount: Credits,
    ) -> Result<u64, BankError> {
        self.require_admin(caller)?;
        if !amount.is_positive() {
            return Err(BankError::NonPositiveAmount);
        }
        let db = self.accounts.db();
        db.with_account_mut(account, |r| {
            r.available = r.available.checked_add(amount)?;
            Ok(())
        })?;
        let txid = db.allocate_transaction_id();
        db.append_transaction(TransactionRecord {
            transaction_id: txid,
            account: *account,
            tx_type: TransactionType::Deposit,
            date_ms: self.accounts.clock().now_ms(),
            amount,
        });
        Ok(txid)
    }

    /// Withdraw (§5.2.1): moves funds out of the bank (to a real account,
    /// out of scope). Only available funds can leave; locks stay.
    pub fn withdraw(
        &self,
        caller: &str,
        account: &AccountId,
        amount: Credits,
    ) -> Result<u64, BankError> {
        self.require_admin(caller)?;
        if !amount.is_positive() {
            return Err(BankError::NonPositiveAmount);
        }
        let db = self.accounts.db();
        db.with_account_mut(account, |r| {
            let next = r.available.checked_sub(amount)?;
            if next.is_negative() {
                return Err(BankError::InsufficientFunds {
                    account: r.id,
                    needed: amount,
                    spendable: r.available,
                });
            }
            r.available = next;
            Ok(())
        })?;
        let txid = db.allocate_transaction_id();
        db.append_transaction(TransactionRecord {
            transaction_id: txid,
            account: *account,
            tx_type: TransactionType::Withdrawal,
            date_ms: self.accounts.clock().now_ms(),
            amount: amount.negated(),
        });
        Ok(txid)
    }

    /// Change credit limit (§5.2.1).
    pub fn change_credit_limit(
        &self,
        caller: &str,
        account: &AccountId,
        new_limit: Credits,
    ) -> Result<(), BankError> {
        self.require_admin(caller)?;
        if new_limit.is_negative() {
            return Err(BankError::NonPositiveAmount);
        }
        self.accounts.db().with_account_mut(account, |r| {
            // Lowering the limit below the current overdraft would make the
            // account instantly inconsistent; refuse.
            if r.available < new_limit.negated() {
                return Err(BankError::InsufficientFunds {
                    account: r.id,
                    needed: r.available.negated(),
                    spendable: new_limit,
                });
            }
            r.credit_limit = new_limit;
            Ok(())
        })
    }

    /// Cancel Transfer (§5.2.1): compensating reversal of a committed
    /// transfer, identified by transaction id. The recipient must still
    /// have the funds available.
    pub fn cancel_transfer(&self, caller: &str, transaction_id: u64) -> Result<u64, BankError> {
        self.require_admin(caller)?;
        let db = self.accounts.db();
        let t = db
            .transfer_by_id(transaction_id)
            .ok_or_else(|| BankError::Protocol(format!("no transfer {transaction_id}")))?;
        // Reverse: recipient pays the drawer back.
        self.accounts.transfer(&t.recipient, &t.drawer, t.amount, Vec::new())
    }

    /// Close account (§5.2.1): the outstanding balance is transferred to
    /// another GridBank account (or withdrawn); locked funds must be
    /// settled first.
    pub fn close_account(
        &self,
        caller: &str,
        account: &AccountId,
        transfer_remainder_to: Option<AccountId>,
    ) -> Result<(), BankError> {
        self.require_admin(caller)?;
        let record = self.accounts.account_details(account)?;
        if !record.locked.is_zero() {
            return Err(BankError::AccountNotEmpty(*account));
        }
        if record.available.is_negative() {
            return Err(BankError::AccountNotEmpty(*account));
        }
        if record.available.is_positive() {
            match transfer_remainder_to {
                Some(dest) => {
                    self.accounts.transfer(account, &dest, record.available, Vec::new())?;
                }
                None => {
                    self.withdraw(caller, account, record.available)?;
                }
            }
        }
        self.accounts.db().remove_account(account)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::Clock;
    use crate::db::Database;

    const ADMIN: &str = "/CN=gb-admin";

    fn setup() -> (GbAdmin, GbAccounts, AccountId, AccountId) {
        let db = Arc::new(Database::new(1, 1));
        let accounts = GbAccounts::new(db, Clock::new());
        let admin = GbAdmin::new(accounts.clone(), [ADMIN.to_string()]);
        let a = accounts.create_account("/CN=alice", None).unwrap();
        let b = accounts.create_account("/CN=bob", None).unwrap();
        (admin, accounts, a, b)
    }

    #[test]
    fn only_admins_may_operate() {
        let (admin, _acc, a, _) = setup();
        assert!(matches!(
            admin.deposit("/CN=alice", &a, Credits::from_gd(5)),
            Err(BankError::NotAuthorized(_))
        ));
        assert!(!admin.is_admin("/CN=alice"));
        admin.add_admin("/CN=alice".into());
        assert!(admin.is_admin("/CN=alice"));
        admin.deposit("/CN=alice", &a, Credits::from_gd(5)).unwrap();
    }

    #[test]
    fn deposit_and_withdraw_post_transactions() {
        let (admin, acc, a, _) = setup();
        admin.deposit(ADMIN, &a, Credits::from_gd(50)).unwrap();
        admin.withdraw(ADMIN, &a, Credits::from_gd(20)).unwrap();
        let r = acc.account_details(&a).unwrap();
        assert_eq!(r.available, Credits::from_gd(30));
        let st = acc.statement(&a, 0, u64::MAX).unwrap();
        assert_eq!(st.transactions.len(), 2);
        assert_eq!(st.transactions[0].tx_type, TransactionType::Deposit);
        assert_eq!(st.transactions[1].tx_type, TransactionType::Withdrawal);
        assert_eq!(st.transactions[1].amount, Credits::from_gd(-20));
        // Withdrawing more than available fails.
        assert!(admin.withdraw(ADMIN, &a, Credits::from_gd(31)).is_err());
    }

    #[test]
    fn credit_limit_changes_are_guarded() {
        let (admin, acc, a, b) = setup();
        admin.deposit(ADMIN, &a, Credits::from_gd(10)).unwrap();
        admin.change_credit_limit(ADMIN, &a, Credits::from_gd(5)).unwrap();
        acc.transfer(&a, &b, Credits::from_gd(13), vec![]).unwrap(); // now at -3
                                                                     // Cannot drop the limit below the live overdraft.
        assert!(admin.change_credit_limit(ADMIN, &a, Credits::from_gd(2)).is_err());
        admin.change_credit_limit(ADMIN, &a, Credits::from_gd(3)).unwrap();
        assert!(admin.change_credit_limit(ADMIN, &a, Credits::from_gd(-1)).is_err());
    }

    #[test]
    fn cancel_transfer_reverses() {
        let (admin, acc, a, b) = setup();
        admin.deposit(ADMIN, &a, Credits::from_gd(40)).unwrap();
        let txid = acc.transfer(&a, &b, Credits::from_gd(15), vec![]).unwrap();
        admin.cancel_transfer(ADMIN, txid).unwrap();
        assert_eq!(acc.account_details(&a).unwrap().available, Credits::from_gd(40));
        assert_eq!(acc.account_details(&b).unwrap().available, Credits::ZERO);
        assert!(admin.cancel_transfer(ADMIN, 424_242).is_err());
    }

    #[test]
    fn close_account_paths() {
        let (admin, acc, a, b) = setup();
        admin.deposit(ADMIN, &a, Credits::from_gd(25)).unwrap();

        // Locked funds block closure.
        acc.lock_funds(&a, Credits::from_gd(5)).unwrap();
        assert!(matches!(
            admin.close_account(ADMIN, &a, Some(b)),
            Err(BankError::AccountNotEmpty(_))
        ));
        acc.unlock_funds(&a, Credits::from_gd(5)).unwrap();

        // Remainder transfers to b.
        admin.close_account(ADMIN, &a, Some(b)).unwrap();
        assert!(acc.account_details(&a).is_err());
        assert_eq!(acc.account_details(&b).unwrap().available, Credits::from_gd(25));

        // Close with withdrawal (no destination).
        admin.close_account(ADMIN, &b, None).unwrap();
        assert!(acc.account_details(&b).is_err());
    }

    #[test]
    fn conservation_only_broken_by_deposit_withdraw() {
        let (admin, acc, a, b) = setup();
        let db = acc.db();
        assert_eq!(db.total_funds(), Credits::ZERO);
        admin.deposit(ADMIN, &a, Credits::from_gd(100)).unwrap();
        assert_eq!(db.total_funds(), Credits::from_gd(100));
        acc.transfer(&a, &b, Credits::from_gd(30), vec![]).unwrap();
        assert_eq!(db.total_funds(), Credits::from_gd(100));
        admin.withdraw(ADMIN, &b, Credits::from_gd(10)).unwrap();
        assert_eq!(db.total_funds(), Credits::from_gd(90));
    }
}
