//! GB Accounts — the core module interacting with the GB database.
//!
//! §3.2: "It provides functions for basic account operations such as
//! creation of accounts, requesting and updating account details, transfer
//! of funds from one account to another, locking funds and transfer from
//! locked funds. This module is independent of payment scheme, protocols
//! used and underlying security model."

use std::sync::Arc;

use gridbank_rur::Credits;

use crate::clock::Clock;
use crate::db::{
    AccountId, AccountRecord, CommitRows, Database, IdemStamp, PendingIbCredit, TransactionRecord,
    TransactionType, TransferRecord,
};
use crate::error::BankError;

/// A full account statement (§5.2 Request Account Statement).
#[derive(Clone, Debug)]
pub struct Statement {
    /// The account record as of the query.
    pub account: AccountRecord,
    /// Transactions in the requested window.
    pub transactions: Vec<TransactionRecord>,
    /// Transfers (either side) in the requested window.
    pub transfers: Vec<TransferRecord>,
}

/// Idempotency instructions for a keyed transfer. The dedup stamp is
/// journaled atomically with the transfer; since the transaction id is
/// allocated inside the transfer, the recorded response is produced by
/// `response_of(txid)` (a capture-free fn keeps this layer protocol-
/// independent — the caller decides the response encoding).
#[derive(Clone)]
pub struct IdemKey {
    /// Certificate name of the caller.
    pub cert: String,
    /// Client-generated idempotency key.
    pub key: u64,
    /// Builds the encoded response to remember, from the transaction id.
    pub response_of: fn(u64) -> Vec<u8>,
}

impl IdemKey {
    fn stamp(self, txid: u64) -> IdemStamp {
        IdemStamp { cert: self.cert, key: self.key, response: (self.response_of)(txid) }
    }
}

/// The accounts layer.
#[derive(Clone)]
pub struct GbAccounts {
    db: Arc<Database>,
    clock: Clock,
}

impl GbAccounts {
    /// Wraps a database and clock.
    pub fn new(db: Arc<Database>, clock: Clock) -> Self {
        GbAccounts { db, clock }
    }

    /// Access to the underlying database (bank-internal modules).
    pub fn db(&self) -> &Arc<Database> {
        &self.db
    }

    /// The shared clock.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// Creates an account for a certificate name; zero balances, zero
    /// credit limit (§5.1 default), GridDollar currency.
    pub fn create_account(
        &self,
        certificate_name: &str,
        organization: Option<String>,
    ) -> Result<AccountId, BankError> {
        if certificate_name.is_empty() {
            return Err(BankError::Protocol("empty certificate name".into()));
        }
        let record = AccountRecord {
            id: self.db.allocate_account_id(),
            certificate_name: certificate_name.to_string(),
            organization,
            available: Credits::ZERO,
            locked: Credits::ZERO,
            currency: "GridDollar".into(),
            credit_limit: Credits::ZERO,
        };
        let id = record.id;
        self.db.insert_account(record)?;
        Ok(id)
    }

    /// Request Account Details / Check Balance (§5.2).
    pub fn account_details(&self, id: &AccountId) -> Result<AccountRecord, BankError> {
        self.db.get_account(id)
    }

    /// Details by certificate name.
    pub fn account_by_cert(&self, cert: &str) -> Result<AccountRecord, BankError> {
        self.db.account_by_cert(cert)
    }

    /// Update Account Details (§5.2): "Only CertificateName and
    /// OrganizationName can be modified." Balances, currency, limits and
    /// the id in the submitted record are ignored.
    pub fn update_details(&self, submitted: &AccountRecord) -> Result<(), BankError> {
        // Cert renames must keep the index unique.
        let current = self.db.get_account(&submitted.id)?;
        if submitted.certificate_name != current.certificate_name {
            if self.db.subject_known(&submitted.certificate_name) {
                return Err(BankError::DuplicateAccount(submitted.certificate_name.clone()));
            }
            // Re-create the binding: remove + insert keeps the index
            // coherent under the account lock.
            let mut renamed = current.clone();
            self.db.remove_account(&current.id)?;
            renamed.certificate_name = submitted.certificate_name.clone();
            renamed.organization = submitted.organization.clone();
            self.db.insert_account(renamed)?;
            return Ok(());
        }
        self.db.with_account_mut(&submitted.id, |r| {
            r.organization = submitted.organization.clone();
            Ok(())
        })
    }

    /// Request Account Statement (§5.2).
    pub fn statement(
        &self,
        id: &AccountId,
        start_ms: u64,
        end_ms: u64,
    ) -> Result<Statement, BankError> {
        Ok(Statement {
            account: self.db.get_account(id)?,
            transactions: self.db.transactions_in_range(id, start_ms, end_ms),
            transfers: self.db.transfers_in_range(id, start_ms, end_ms),
        })
    }

    /// Transfers `amount` from `from` to `to`, recording the paired
    /// transaction rows and a transfer row carrying `rur_blob` as
    /// evidence. The drawer may go negative up to its credit limit.
    pub fn transfer(
        &self,
        from: &AccountId,
        to: &AccountId,
        amount: Credits,
        rur_blob: Vec<u8>,
    ) -> Result<u64, BankError> {
        self.transfer_keyed(from, to, amount, rur_blob, None)
    }

    /// [`GbAccounts::transfer`] with an optional idempotency stamp that
    /// commits atomically with the balance updates and audit rows — the
    /// exactly-once building block for retried `DirectTransfer`s.
    pub fn transfer_keyed(
        &self,
        from: &AccountId,
        to: &AccountId,
        amount: Credits,
        rur_blob: Vec<u8>,
        idem: Option<IdemKey>,
    ) -> Result<u64, BankError> {
        self.transfer_inner(from, to, amount, rur_blob, idem, None)
    }

    /// The first leg of a cross-branch payment (§6): debits `from` into
    /// the local `clearing` account and records the pending [`IbCredit`]
    /// for the remote payee in the *same* commit — funds parked and the
    /// obligation to ship them are journaled together, so a crash either
    /// sees both (recovery re-ships the credit) or neither.
    ///
    /// [`IbCredit`]: crate::api::BankRequest::IbCredit
    pub fn transfer_with_ib_credit(
        &self,
        from: &AccountId,
        clearing: &AccountId,
        amount: Credits,
        rur_blob: Vec<u8>,
        idem: Option<IdemKey>,
        credit: PendingIbCredit,
    ) -> Result<u64, BankError> {
        self.transfer_inner(from, clearing, amount, rur_blob, idem, Some(credit))
    }

    fn transfer_inner(
        &self,
        from: &AccountId,
        to: &AccountId,
        amount: Credits,
        rur_blob: Vec<u8>,
        idem: Option<IdemKey>,
        ib_out: Option<PendingIbCredit>,
    ) -> Result<u64, BankError> {
        if !amount.is_positive() {
            return Err(BankError::NonPositiveAmount);
        }
        let (txid, mut rows) = self.transfer_rows(from, to, amount, rur_blob, idem);
        rows.ib_out = ib_out;
        self.db.two_account_commit(
            from,
            to,
            |a, b| {
                // §5.1 gives every account a Currency; a single branch
                // clears only like-for-like (FX is a §6 inter-bank
                // concern).
                if a.currency != b.currency {
                    return Err(BankError::Protocol(format!(
                        "currency mismatch: {} pays in {}, {} holds {}",
                        a.id, a.currency, b.id, b.currency
                    )));
                }
                let new_avail = a.available.checked_sub(amount)?;
                if new_avail < a.credit_limit.negated() {
                    return Err(BankError::InsufficientFunds {
                        account: a.id,
                        needed: amount,
                        spendable: a.spendable(),
                    });
                }
                a.available = new_avail;
                b.available = b.available.checked_add(amount)?;
                Ok(())
            },
            rows,
        )?;
        self.note_transfer(amount);
        Ok(txid)
    }

    /// Perform Funds Availability Check (§5.2): "the amount is transferred
    /// into locked balance for guarantee". Moves available → locked.
    pub fn lock_funds(&self, id: &AccountId, amount: Credits) -> Result<(), BankError> {
        if !amount.is_positive() {
            return Err(BankError::NonPositiveAmount);
        }
        self.db.with_account_mut(id, |r| {
            let new_avail = r.available.checked_sub(amount)?;
            if new_avail < r.credit_limit.negated() {
                return Err(BankError::InsufficientFunds {
                    account: r.id,
                    needed: amount,
                    spendable: r.spendable(),
                });
            }
            r.available = new_avail;
            r.locked = r.locked.checked_add(amount)?;
            Ok(())
        })?;
        gridbank_obs::count("core.lock_funds.count", 1);
        gridbank_obs::observe("core.lock_funds.volume_micro", amount.metric_micro());
        Ok(())
    }

    /// Releases locked funds back to available (instrument expired or
    /// under-used).
    pub fn unlock_funds(&self, id: &AccountId, amount: Credits) -> Result<(), BankError> {
        if !amount.is_positive() {
            return Err(BankError::NonPositiveAmount);
        }
        self.db.with_account_mut(id, |r| {
            if r.locked < amount {
                return Err(BankError::InsufficientLockedFunds {
                    account: r.id,
                    needed: amount,
                    locked: r.locked,
                });
            }
            r.locked = r.locked.checked_sub(amount)?;
            r.available = r.available.checked_add(amount)?;
            Ok(())
        })
    }

    /// Transfer from locked funds (§3.2): pays a guaranteed instrument.
    pub fn transfer_from_locked(
        &self,
        from: &AccountId,
        to: &AccountId,
        amount: Credits,
        rur_blob: Vec<u8>,
    ) -> Result<u64, BankError> {
        self.transfer_from_locked_keyed(from, to, amount, rur_blob, None)
    }

    /// [`GbAccounts::transfer_from_locked`] with an optional idempotency
    /// stamp committed atomically with the payout.
    pub fn transfer_from_locked_keyed(
        &self,
        from: &AccountId,
        to: &AccountId,
        amount: Credits,
        rur_blob: Vec<u8>,
        idem: Option<IdemKey>,
    ) -> Result<u64, BankError> {
        if !amount.is_positive() {
            return Err(BankError::NonPositiveAmount);
        }
        let (txid, rows) = self.transfer_rows(from, to, amount, rur_blob, idem);
        self.db.two_account_commit(
            from,
            to,
            |a, b| {
                if a.locked < amount {
                    return Err(BankError::InsufficientLockedFunds {
                        account: a.id,
                        needed: amount,
                        locked: a.locked,
                    });
                }
                a.locked = a.locked.checked_sub(amount)?;
                b.available = b.available.checked_add(amount)?;
                Ok(())
            },
            rows,
        )?;
        self.note_transfer(amount);
        Ok(txid)
    }

    /// Builds the audit rows for a transfer so they can be committed in
    /// the same critical section as the balance mutation.
    fn transfer_rows(
        &self,
        from: &AccountId,
        to: &AccountId,
        amount: Credits,
        rur_blob: Vec<u8>,
        idem: Option<IdemKey>,
    ) -> (u64, CommitRows) {
        let txid = self.db.allocate_transaction_id();
        let now = self.clock.now_ms();
        let rows = CommitRows {
            transactions: vec![
                TransactionRecord {
                    transaction_id: txid,
                    account: *from,
                    tx_type: TransactionType::Transfer,
                    date_ms: now,
                    amount: amount.negated(),
                },
                TransactionRecord {
                    transaction_id: txid,
                    account: *to,
                    tx_type: TransactionType::Transfer,
                    date_ms: now,
                    amount,
                },
            ],
            transfer: Some(TransferRecord {
                transaction_id: txid,
                date_ms: now,
                drawer: *from,
                amount,
                recipient: *to,
                rur_blob,
                // Correlates this audit row with the active span trace
                // (0 = no trace was active).
                trace_id: gridbank_obs::current_trace_id(),
            }),
            idem: idem.map(|k| k.stamp(txid)),
            ib_out: None,
        };
        (txid, rows)
    }

    fn note_transfer(&self, amount: Credits) {
        gridbank_obs::count("core.transfer.count", 1);
        gridbank_obs::observe("core.transfer.volume_micro", amount.metric_micro());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn setup() -> (GbAccounts, AccountId, AccountId) {
        let db = Arc::new(Database::new(1, 1));
        let acc = GbAccounts::new(db.clone(), Clock::new());
        let a = acc.create_account("/CN=alice", Some("UWA".into())).unwrap();
        let b = acc.create_account("/CN=gsp", None).unwrap();
        db.with_account_mut(&a, |r| {
            r.available = Credits::from_gd(100);
            Ok(())
        })
        .unwrap();
        (acc, a, b)
    }

    #[test]
    fn create_and_lookup() {
        let (acc, a, _) = setup();
        let r = acc.account_details(&a).unwrap();
        assert_eq!(r.certificate_name, "/CN=alice");
        assert_eq!(r.currency, "GridDollar");
        assert_eq!(r.credit_limit, Credits::ZERO);
        assert_eq!(acc.account_by_cert("/CN=alice").unwrap().id, a);
        assert!(matches!(acc.account_by_cert("/CN=nobody"), Err(BankError::UnknownSubject(_))));
        assert!(acc.create_account("", None).is_err());
        assert!(matches!(
            acc.create_account("/CN=alice", None),
            Err(BankError::DuplicateAccount(_))
        ));
    }

    #[test]
    fn transfer_moves_funds_and_records() {
        let (acc, a, b) = setup();
        acc.clock().advance(500);
        let txid = acc.transfer(&a, &b, Credits::from_gd(30), vec![9, 9]).unwrap();
        assert_eq!(acc.account_details(&a).unwrap().available, Credits::from_gd(70));
        assert_eq!(acc.account_details(&b).unwrap().available, Credits::from_gd(30));
        let st = acc.statement(&a, 0, 1_000).unwrap();
        assert_eq!(st.transactions.len(), 1);
        assert_eq!(st.transactions[0].amount, Credits::from_gd(-30));
        assert_eq!(st.transactions[0].tx_type, TransactionType::Transfer);
        assert_eq!(st.transfers.len(), 1);
        assert_eq!(st.transfers[0].transaction_id, txid);
        assert_eq!(st.transfers[0].rur_blob, vec![9, 9]);
        // Recipient sees the positive leg.
        let st_b = acc.statement(&b, 0, 1_000).unwrap();
        assert_eq!(st_b.transactions[0].amount, Credits::from_gd(30));
    }

    #[test]
    fn overdraft_respects_credit_limit() {
        let (acc, a, b) = setup();
        assert!(matches!(
            acc.transfer(&a, &b, Credits::from_gd(101), vec![]),
            Err(BankError::InsufficientFunds { .. })
        ));
        // Grant credit; now the same transfer passes and goes negative.
        acc.db()
            .with_account_mut(&a, |r| {
                r.credit_limit = Credits::from_gd(10);
                Ok(())
            })
            .unwrap();
        acc.transfer(&a, &b, Credits::from_gd(105), vec![]).unwrap();
        assert_eq!(acc.account_details(&a).unwrap().available, Credits::from_gd(-5));
        // But not beyond the limit.
        assert!(acc.transfer(&a, &b, Credits::from_gd(6), vec![]).is_err());
    }

    #[test]
    fn non_positive_amounts_rejected_everywhere() {
        let (acc, a, b) = setup();
        for amt in [Credits::ZERO, Credits::from_gd(-1)] {
            assert!(matches!(acc.transfer(&a, &b, amt, vec![]), Err(BankError::NonPositiveAmount)));
            assert!(matches!(acc.lock_funds(&a, amt), Err(BankError::NonPositiveAmount)));
            assert!(matches!(acc.unlock_funds(&a, amt), Err(BankError::NonPositiveAmount)));
            assert!(matches!(
                acc.transfer_from_locked(&a, &b, amt, vec![]),
                Err(BankError::NonPositiveAmount)
            ));
        }
    }

    #[test]
    fn lock_transfer_unlock_cycle() {
        let (acc, a, b) = setup();
        acc.lock_funds(&a, Credits::from_gd(40)).unwrap();
        let r = acc.account_details(&a).unwrap();
        assert_eq!(r.available, Credits::from_gd(60));
        assert_eq!(r.locked, Credits::from_gd(40));

        // Locked funds can't be locked again beyond available.
        assert!(acc.lock_funds(&a, Credits::from_gd(61)).is_err());

        // Pay 25 from the lock, release the other 15.
        acc.transfer_from_locked(&a, &b, Credits::from_gd(25), vec![]).unwrap();
        acc.unlock_funds(&a, Credits::from_gd(15)).unwrap();
        let r = acc.account_details(&a).unwrap();
        assert_eq!(r.available, Credits::from_gd(75));
        assert_eq!(r.locked, Credits::ZERO);
        assert_eq!(acc.account_details(&b).unwrap().available, Credits::from_gd(25));

        // Over-claiming the lock fails.
        assert!(matches!(
            acc.transfer_from_locked(&a, &b, Credits::from_gd(1), vec![]),
            Err(BankError::InsufficientLockedFunds { .. })
        ));
        assert!(acc.unlock_funds(&a, Credits::from_gd(1)).is_err());
    }

    #[test]
    fn update_details_only_touches_allowed_fields() {
        let (acc, a, _) = setup();
        let mut submitted = acc.account_details(&a).unwrap();
        submitted.organization = Some("UniMelb".into());
        submitted.available = Credits::from_gd(999_999); // must be ignored
        submitted.credit_limit = Credits::from_gd(999_999); // ignored
        acc.update_details(&submitted).unwrap();
        let r = acc.account_details(&a).unwrap();
        assert_eq!(r.organization.as_deref(), Some("UniMelb"));
        assert_eq!(r.available, Credits::from_gd(100));
        assert_eq!(r.credit_limit, Credits::ZERO);
    }

    #[test]
    fn cert_rename_updates_index() {
        let (acc, a, _) = setup();
        let mut submitted = acc.account_details(&a).unwrap();
        submitted.certificate_name = "/CN=alice-renamed".into();
        acc.update_details(&submitted).unwrap();
        assert!(acc.account_by_cert("/CN=alice").is_err());
        assert_eq!(acc.account_by_cert("/CN=alice-renamed").unwrap().id, a);
        // Renaming onto an existing subject is refused.
        let mut clash = acc.account_details(&a).unwrap();
        clash.certificate_name = "/CN=gsp".into();
        assert!(matches!(acc.update_details(&clash), Err(BankError::DuplicateAccount(_))));
    }

    #[test]
    fn cross_currency_transfers_are_refused() {
        let (acc, a, b) = setup();
        // Re-denominate b's account in a VO-local currency (§1: "VOs can
        // choose to introduce their own currency").
        acc.db()
            .with_account_mut(&b, |r| {
                r.currency = "PhysGrid$".into();
                Ok(())
            })
            .unwrap();
        assert!(matches!(
            acc.transfer(&a, &b, Credits::from_gd(1), vec![]),
            Err(BankError::Protocol(_))
        ));
        // No partial effects.
        assert_eq!(acc.account_details(&a).unwrap().available, Credits::from_gd(100));
        assert_eq!(acc.account_details(&b).unwrap().available, Credits::ZERO);
    }

    #[test]
    fn concurrent_mixed_operations_conserve_funds() {
        let db = Arc::new(Database::new(1, 1));
        let acc = GbAccounts::new(db.clone(), Clock::new());
        let mut ids = Vec::new();
        for i in 0..6 {
            let id = acc.create_account(&format!("/CN=u{i}"), None).unwrap();
            db.with_account_mut(&id, |r| {
                r.available = Credits::from_gd(1_000);
                Ok(())
            })
            .unwrap();
            ids.push(id);
        }
        let before = db.total_funds();
        std::thread::scope(|s| {
            for t in 0..6 {
                let acc = acc.clone();
                let ids = ids.clone();
                s.spawn(move || {
                    for k in 0..100usize {
                        let me = ids[t];
                        let other = ids[(t + 1 + k % 4) % ids.len()];
                        if me == other {
                            continue;
                        }
                        match k % 4 {
                            0 => {
                                let _ = acc.transfer(&me, &other, Credits::from_gd(1), vec![]);
                            }
                            1 => {
                                let _ = acc.lock_funds(&me, Credits::from_gd(2));
                            }
                            2 => {
                                let _ = acc.transfer_from_locked(
                                    &me,
                                    &other,
                                    Credits::from_gd(1),
                                    vec![],
                                );
                            }
                            _ => {
                                let _ = acc.unlock_funds(&me, Credits::from_gd(1));
                            }
                        }
                    }
                });
            }
        });
        assert_eq!(db.total_funds(), before, "credits were created or destroyed");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn random_op_sequences_conserve_funds(ops in prop::collection::vec((0u8..4, 0usize..4, 0usize..4, 1i64..50), 1..60)) {
            let db = Arc::new(Database::new(1, 1));
            let acc = GbAccounts::new(db.clone(), Clock::new());
            let mut ids = Vec::new();
            for i in 0..4 {
                let id = acc.create_account(&format!("/CN=p{i}"), None).unwrap();
                db.with_account_mut(&id, |r| { r.available = Credits::from_gd(100); Ok(()) }).unwrap();
                ids.push(id);
            }
            let before = db.total_funds();
            for (op, from, to, amt) in ops {
                let from = ids[from];
                let to = ids[to];
                let amount = Credits::from_gd(amt);
                let _ = match op {
                    0 => acc.transfer(&from, &to, amount, vec![]).map(|_| ()),
                    1 => acc.lock_funds(&from, amount),
                    2 => acc.transfer_from_locked(&from, &to, amount, vec![]).map(|_| ()),
                    _ => acc.unlock_funds(&from, amount),
                };
                // Invariants that must hold after every op, success or not:
                for id in &ids {
                    let r = db.get_account(id).unwrap();
                    prop_assert!(r.locked >= Credits::ZERO, "negative lock on {id}");
                    prop_assert!(r.available >= -r.credit_limit, "over-overdraft on {id}");
                }
            }
            prop_assert_eq!(db.total_funds(), before);
        }
    }
}
