//! The virtual clock.
//!
//! Every time-dependent component (certificate validation, statement
//! ranges, quote expiry) reads one shared [`Clock`]. Simulations and tests
//! advance it explicitly; nothing in the workspace reads the wall clock,
//! which keeps every experiment reproducible.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A shared, monotonically advancing virtual clock (epoch milliseconds).
#[derive(Clone, Debug, Default)]
pub struct Clock {
    now_ms: Arc<AtomicU64>,
}

impl Clock {
    /// Creates a clock starting at 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a clock starting at `start_ms`.
    pub fn starting_at(start_ms: u64) -> Self {
        let c = Clock::new();
        c.now_ms.store(start_ms, Ordering::Relaxed);
        c
    }

    /// Current virtual time.
    pub fn now_ms(&self) -> u64 {
        self.now_ms.load(Ordering::Relaxed)
    }

    /// Advances the clock by `delta_ms`, returning the new time.
    pub fn advance(&self, delta_ms: u64) -> u64 {
        self.now_ms.fetch_add(delta_ms, Ordering::Relaxed).saturating_add(delta_ms)
    }

    /// Moves the clock to `target_ms` if that is in the future; a clock
    /// never runs backwards.
    pub fn advance_to(&self, target_ms: u64) -> u64 {
        self.now_ms.fetch_max(target_ms, Ordering::Relaxed);
        self.now_ms()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_and_advances() {
        let c = Clock::starting_at(100);
        assert_eq!(c.now_ms(), 100);
        assert_eq!(c.advance(50), 150);
        assert_eq!(c.now_ms(), 150);
    }

    #[test]
    fn clones_share_time() {
        let a = Clock::new();
        let b = a.clone();
        a.advance(7);
        assert_eq!(b.now_ms(), 7);
    }

    #[test]
    fn advance_to_never_goes_backwards() {
        let c = Clock::starting_at(100);
        assert_eq!(c.advance_to(50), 100);
        assert_eq!(c.advance_to(200), 200);
    }

    #[test]
    fn concurrent_advances_accumulate() {
        let c = Clock::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.advance(1);
                    }
                });
            }
        });
        assert_eq!(c.now_ms(), 8000);
    }
}
