//! Multi-branch federation scenario (§6).
//!
//! Builds N GridBank branches — one per Virtual Organization — wires
//! them into a full mesh with [`FederationRouter`]s, drives seeded
//! cross-VO payment traffic through the *server dispatch path* (so every
//! payment exercises the clearing-account debit plus the exactly-once
//! `IbCredit` hand-off), then runs the netting pass and reports
//! gross→net compression and conservation evidence. Deterministic under
//! the seed.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use gridbank_core::clock::Clock;
use gridbank_core::federation::{FederationRouter, LocalPeer};
use gridbank_core::server::{GridBank, GridBankConfig};
use gridbank_core::{AccountId, BankRequest, BankResponse};
use gridbank_crypto::cert::SubjectName;
use gridbank_rur::Credits;

const OPERATOR: &str = "/O=GridBank/OU=Admin/CN=operator";

/// Federation scenario parameters.
#[derive(Clone, Debug)]
pub struct FederationConfig {
    /// Master seed.
    pub seed: u64,
    /// Branch (VO) count; full-mesh federated.
    pub branches: u16,
    /// Funded member accounts per branch.
    pub members_per_branch: usize,
    /// Cross-branch payment attempts (same-branch draws are skipped).
    pub payments: usize,
    /// Initial balance per member, whole G$.
    pub initial_gd: i64,
    /// Bank signer height (2^h instruments).
    pub signer_height: usize,
}

impl Default for FederationConfig {
    fn default() -> Self {
        FederationConfig {
            seed: 0xFEDE,
            branches: 3,
            members_per_branch: 2,
            payments: 60,
            initial_gd: 1_000,
            signer_height: 8,
        }
    }
}

/// What the scenario measured.
#[derive(Clone, Debug)]
pub struct FederationReport {
    /// Cross-branch payments that actually ran.
    pub payments: u32,
    /// Sum of amounts sent (equals clearing gross before netting).
    pub gross: Credits,
    /// Net obligations moved by the settlement pass.
    pub net: Credits,
    /// Σ funds across all branches before traffic.
    pub initial_total: Credits,
    /// Σ funds across all branches after settlement.
    pub final_total: Credits,
    /// Σ |clearing balances| after settlement (must be zero).
    pub residual_clearing: Credits,
    /// Outbound credits still unacknowledged after settlement.
    pub pending_after: usize,
}

impl FederationReport {
    /// Eager payee credits exactly offset by clearing drains?
    pub fn conserved(&self) -> bool {
        self.initial_total == self.final_total
    }
}

fn expect_account(reply: BankResponse) -> AccountId {
    match reply {
        BankResponse::AccountCreated { account } => account,
        other => panic!("account creation failed: {other:?}"),
    }
}

/// Runs the scenario; see module docs.
pub fn run_federation(cfg: &FederationConfig) -> FederationReport {
    assert!(cfg.branches >= 2, "a federation needs at least two branches");
    let clock = Clock::new();
    let banks: Vec<Arc<GridBank>> = (1..=cfg.branches)
        .map(|b| {
            Arc::new(GridBank::new(
                GridBankConfig {
                    branch: b,
                    signer_height: cfg.signer_height,
                    key_material: gridbank_crypto::keys::KeyMaterial {
                        seed: cfg.seed ^ (b as u64),
                    },
                    ..GridBankConfig::default()
                },
                clock.clone(),
            ))
        })
        .collect();
    let routers: Vec<_> = banks.iter().map(FederationRouter::install).collect();
    for (i, router) in routers.iter().enumerate() {
        for (j, bank) in banks.iter().enumerate() {
            if i != j {
                router.add_peer((j + 1) as u16, LocalPeer::new(Arc::clone(bank), (i + 1) as u16));
            }
        }
    }

    let operator = SubjectName(OPERATOR.into());
    let mut members: Vec<Vec<(SubjectName, AccountId)>> = Vec::new();
    for (i, bank) in banks.iter().enumerate() {
        let mut branch_members = Vec::new();
        for m in 0..cfg.members_per_branch {
            let subject = SubjectName::new(&format!("vo-{}", i + 1), "Members", &format!("m{m}"));
            let account = expect_account(
                bank.handle(&subject, BankRequest::CreateAccount { organization: None }),
            );
            bank.handle(
                &operator,
                BankRequest::AdminDeposit { account, amount: Credits::from_gd(cfg.initial_gd) },
            );
            branch_members.push((subject, account));
        }
        members.push(branch_members);
    }
    let initial_total =
        banks.iter().map(|b| b.total_funds()).fold(Credits::ZERO, |a, c| a.saturating_add(c));

    // Seeded cross-VO traffic through the dispatch path.
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut gross = Credits::ZERO;
    let mut sent = 0u32;
    for k in 0..cfg.payments {
        let from_branch = rng.random_range(0..cfg.branches as usize);
        let to_branch = rng.random_range(0..cfg.branches as usize);
        if from_branch == to_branch {
            continue;
        }
        let (drawer, _) = &members[from_branch][rng.random_range(0..cfg.members_per_branch)];
        let (_, payee) = members[to_branch][rng.random_range(0..cfg.members_per_branch)];
        let amount = Credits::from_milli(rng.random_range(100..5_000));
        let reply = banks[from_branch].handle_keyed(
            drawer,
            Some((cfg.seed << 16) ^ k as u64),
            BankRequest::DirectTransfer {
                to: payee,
                amount,
                recipient_address: format!("member.vo{}.org", to_branch + 1),
            },
        );
        assert!(matches!(reply, BankResponse::Confirmed(_)), "payment {k} refused: {reply:?}");
        gross = gross.saturating_add(amount);
        sent += 1;
    }

    // §6 netting: every branch settles what it owes.
    let mut net = Credits::ZERO;
    for router in &routers {
        let report = router.settle_once().expect("settlement");
        net = net.saturating_add(report.total_net());
    }

    let final_total =
        banks.iter().map(|b| b.total_funds()).fold(Credits::ZERO, |a, c| a.saturating_add(c));
    let mut residual_clearing = Credits::ZERO;
    let mut pending_after = 0;
    for (i, router) in routers.iter().enumerate() {
        for peer in router.peer_branches() {
            residual_clearing =
                residual_clearing.saturating_add(router.clearing_balance(peer).abs());
        }
        pending_after += banks[i].accounts.db().ib_pending_snapshot().len();
    }

    FederationReport {
        payments: sent,
        gross,
        net,
        initial_total,
        final_total,
        residual_clearing,
        pending_after,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn federation_traffic_conserves_and_nets() {
        let report = run_federation(&FederationConfig::default());
        assert!(report.payments > 10);
        assert!(report.net <= report.gross, "netting never exceeds gross: {report:?}");
        assert!(report.conserved(), "funds not conserved: {report:?}");
        assert_eq!(report.residual_clearing, Credits::ZERO, "{report:?}");
        assert_eq!(report.pending_after, 0, "{report:?}");
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = FederationConfig { payments: 30, ..FederationConfig::default() };
        let a = run_federation(&cfg);
        let b = run_federation(&cfg);
        assert_eq!(a.payments, b.payments);
        assert_eq!(a.gross, b.gross);
        assert_eq!(a.net, b.net);
        let c = run_federation(&FederationConfig { seed: 7, ..cfg });
        assert_ne!(a.gross, c.gross, "different seeds should draw different traffic");
    }
}
